"""Figure 10: Vantage on different cache arrays.

Z4/52 and SA64 (u = 5%), Z4/16 and SA16 (u = 10%): Vantage works best
on high-candidate zcaches but degrades gracefully on plain hashed
set-associative arrays.
"""

from conftest import four_core_mixes, scaled_instructions, scaled_small_system

from repro.analysis import geo_mean
from repro.harness import relative_throughputs, save_results

DESIGNS = ["vantage-z4/52", "vantage-sa64", "vantage-z4/16", "vantage-sa16"]
BASELINE = "lru-sa16"


def test_fig10_cache_designs(run_once):
    config = scaled_small_system()
    instructions = scaled_instructions(600_000)
    mixes = four_core_mixes(default_count=2)

    def experiment():
        return relative_throughputs(mixes, DESIGNS, BASELINE, config, instructions)

    results = run_once(experiment)

    print()
    print(f"Figure 10: Vantage on different arrays ({len(mixes)} mixes)")
    print(f"{'design':>18s}{'geomean':>10s} {'worst':>8s} {'best':>8s}")
    geos = {}
    for design in DESIGNS:
        rel = results[design]
        geos[design] = geo_mean(rel)
        print(f"{design:>18s}{geos[design]:>10.3f} {min(rel):>8.3f} {max(rel):>8.3f}")
    save_results(
        "fig10", {d: {"per_mix": results[d], "geomean": geos[d]} for d in DESIGNS}
    )

    # Shape: high-R designs lead; SA16 trails but remains usable
    # (still a working Vantage, unlike way-partitioning at 16 ways).
    assert geos["vantage-z4/52"] >= geos["vantage-sa16"] - 0.03
    for design in DESIGNS:
        assert min(results[design]) > 0.80
