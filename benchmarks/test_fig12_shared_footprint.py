"""Figure 12 (extension): shared-footprint sensitivity.

The paper evaluates multiprogrammed mixes only; this extension sweeps
a *multi-threaded* axis the partitioning schemes never see in Figures
6-11: the fraction of each core's accesses that land in a shared
region overlapping every core.  For each shared fraction the sweep
reports aggregate throughput (normalised to unpartitioned LRU on the
same mix) and the min/max-slowdown fairness metric, per scheme --
including ``reuse-aware``, which migrates shared lines to their
requester and feeds split private/shared utility curves into UCP.

Expected shape: at low fractions the schemes track their Figure 6
behaviour; as sharing grows, strict owner-charged partitioning
(way-partitioning especially) misattributes shared capacity while the
reuse-aware scheme should hold throughput at least as well as plain
Vantage.
"""

from conftest import scaled_instructions, scaled_small_system

from repro.analysis import fairness
from repro.harness import SimJob, run_jobs, save_results
from repro.workloads import SharedRegionSpec, make_shared_mix

SCHEMES = [
    "vantage-z4/52",
    "waypart-sa16",
    "pipp-sa16",
    "reuse-aware-z4/52",
]
BASELINE = "lru-sa16"
FRACTIONS = (0.05, 0.15, 0.3, 0.5)
SHARED_LINES = 2_048
MIX_CLASS = "sftn"
MIX_INDEX = 1
KIND = "producer-consumer"


def test_fig12_shared_footprint_sweep(run_once):
    config = scaled_small_system()
    instructions = scaled_instructions()
    mixes = [
        make_shared_mix(
            MIX_CLASS,
            MIX_INDEX,
            SharedRegionSpec(kind=KIND, lines=SHARED_LINES, fraction=f),
        )
        for f in FRACTIONS
    ]
    columns = [BASELINE] + SCHEMES

    def experiment():
        # All (fraction, scheme) pairs -- baseline included -- as one
        # parallel batch through the cached harness.
        jobs = [
            SimJob(mix, scheme, config, instructions)
            for mix in mixes
            for scheme in columns
        ]
        outcomes = run_jobs(jobs)
        width = len(columns)
        series = {
            scheme: {"throughput": [], "fairness": []} for scheme in SCHEMES
        }
        for m in range(len(mixes)):
            row = outcomes[m * width : (m + 1) * width]
            base = row[0].result
            base_ipcs = [core.ipc for core in base.cores]
            for scheme, outcome in zip(SCHEMES, row[1:]):
                result = outcome.result
                series[scheme]["throughput"].append(
                    result.throughput / base.throughput
                )
                series[scheme]["fairness"].append(
                    fairness([core.ipc for core in result.cores], base_ipcs)
                )
        return series

    series = run_once(experiment)

    print()
    print(
        f"Figure 12: {KIND} sharing on {MIX_CLASS}{MIX_INDEX}, "
        f"{SHARED_LINES}-line region, vs {BASELINE} "
        f"({instructions} instrs/app)"
    )
    header = f"{'scheme':>18s} " + " ".join(f"{f:>12.2f}" for f in FRACTIONS)
    for metric in ("throughput", "fairness"):
        print(f"-- {metric} --")
        print(header)
        for scheme in SCHEMES:
            cells = " ".join(f"{v:>12.3f}" for v in series[scheme][metric])
            print(f"{scheme:>18s} {cells}")
    save_results(
        "fig12",
        {
            "fractions": list(FRACTIONS),
            "kind": KIND,
            "shared_lines": SHARED_LINES,
            "baseline": BASELINE,
            "series": series,
        },
    )

    for scheme in SCHEMES:
        for metric in ("throughput", "fairness"):
            values = series[scheme][metric]
            assert len(values) == len(FRACTIONS)
            assert all(v > 0 for v in values)
        # Fairness is a min/max slowdown ratio, bounded by 1.
        assert all(v <= 1.0 + 1e-9 for v in series[scheme]["fairness"])
