"""Figure 8: target-vs-actual partition sizes over time, plus the
associativity (eviction/demotion priority) distributions.

One 4-core mix with a phased cache-fitting app keeps UCP's targets
moving; we track one partition under way-partitioning, Vantage and
PIPP and report tracking error, undershoot, and the quantile summary
of the per-scheme heat maps (way-partitioning evictions vs Vantage
demotions, ranked within the partition).
"""

from conftest import scaled_instructions, scaled_small_system

from repro.analysis import (
    PriorityMonitor,
    attach_demotion_monitor,
    attach_eviction_monitor,
)
from repro.harness import SimJob, run_jobs, save_results
from repro.workloads import make_mix

SCHEMES = ("waypart-sa16", "vantage-z4/52", "pipp-sa16")
MIX_CLASS = "stfn"  # streaming + fitting + friendly + insensitive
TRACKED = 1  # the cache-fitting app's partition


def quantile_summary(quantiles):
    if not quantiles:
        return {"count": 0}
    ordered = sorted(quantiles)
    n = len(ordered)
    return {
        "count": n,
        "p10": ordered[n // 10],
        "p50": ordered[n // 2],
        "p90": ordered[9 * n // 10],
    }


def test_fig8_partition_size_tracking(run_once):
    config = scaled_small_system()
    instructions = scaled_instructions()
    mix = make_mix("sftn", 2)

    def experiment():
        jobs = [
            SimJob(
                mix,
                scheme,
                config,
                instructions,
                seed=2,
                size_sample_cycles=config.epoch_cycles // 4,
            )
            for scheme in SCHEMES
        ]
        outcomes = run_jobs(jobs)
        out = {}
        for scheme, outcome in zip(SCHEMES, outcomes):
            series = outcome.size_series
            out[scheme] = {
                "times": series.times,
                "targets": series.targets[TRACKED],
                "actuals": series.actuals[TRACKED],
                "mean_abs_error": series.mean_abs_error(TRACKED),
                "undershoot": series.undershoot(TRACKED),
            }
        return out

    out = run_once(experiment)

    print()
    print(f"Figure 8: partition {TRACKED} ({mix.apps[TRACKED].name}) size tracking")
    print(f"{'scheme':16s} {'mean |err| (lines)':>20s} {'max undershoot':>16s}")
    for scheme, data in out.items():
        print(
            f"{scheme:16s} {data['mean_abs_error']:>20.1f} {data['undershoot']:>16d}"
        )
    # A short excerpt of the time series, paper-plot style.
    for scheme, data in out.items():
        tail = list(zip(data["times"], data["targets"], data["actuals"]))[-6:]
        print(f"  {scheme} (cycle, target, actual): {tail}")
    save_results("fig08", out)

    vantage = out["vantage-z4/52"]
    pipp = out["pipp-sa16"]
    # Paper claims: way-partitioning and Vantage track target sizes
    # closely, PIPP only approximates them; Vantage never runs below
    # target by more than transient noise.
    assert vantage["mean_abs_error"] <= pipp["mean_abs_error"]


def test_fig8_heatmap_priority_distributions(run_once):
    """Vantage demotions concentrate near priority 1.0 inside the
    partition; way-partitioning evictions spread much lower when the
    partition has few ways (the heat-map contrast)."""
    config = scaled_small_system()
    instructions = scaled_instructions(500_000)
    mix = make_mix("sftn", 2)

    def experiment():
        summaries = {}
        for scheme, attach in (
            ("waypart-sa16", "evict"),
            ("vantage-z4/52", "demote"),
        ):
            monitor = PriorityMonitor(sample_size=64, seed=11)
            cache = None

            # Attach the monitor right after the cache is built: do the
            # run manually so the hook sees every event.
            from repro.harness import build_cache, build_policy
            from repro.sim import CMPSystem

            cache = build_cache(scheme, config.l2_lines, config.num_cores, seed=2)
            if attach == "demote":
                attach_demotion_monitor(cache, monitor, stride=32)
            else:
                cache.staleness = lambda slot: cache.policy.age_key(slot)
                attach_eviction_monitor(cache, monitor, per_partition=True, stride=32)
            policy = build_policy(cache, config, seed=2)
            system = CMPSystem(cache, mix.trace_factories(2), config, policy=policy)
            system.run(instructions)
            # Quantiles are ranked within each victim's own partition;
            # summarise over all partitions (the paper plots one, but
            # the contrast is the same).
            summaries[scheme] = quantile_summary(monitor.quantiles)
        return summaries

    summaries = run_once(experiment)
    print()
    print("Figure 8 heat-map summary (within-partition priority quantiles):")
    for scheme, s in summaries.items():
        print(f"  {scheme}: {s}")
    save_results("fig08_heatmap", summaries)

    assert summaries["vantage-z4/52"]["count"] > 100
    # Vantage demotes from the oldest lines; its median demotion
    # priority must exceed way-partitioning's median eviction priority.
    assert summaries["vantage-z4/52"]["p50"] >= summaries["waypart-sa16"]["p50"] - 0.05
