"""Section 6.2 model validation: the practical controller matches the
"unrealistic" configurations.

1. Feedback + setpoint demotions vs perfect-aperture control
   (AnalyticalVantageCache).
2. The zcache's near-uniform candidates vs truly uniform candidates
   (RandomCandidatesArray).

The paper reports both idealisations "perform exactly as the practical
implementation"; we check throughput and partition-size agreement on a
4-core UCP mix.
"""

from conftest import scaled_instructions, scaled_small_system

from repro.harness import run_mix, save_results
from repro.workloads import make_mix

VARIANTS = ["vantage-z4/52", "vantage-analytical-z4/52", "vantage-rc52"]


def test_sec62_unrealistic_configurations(run_once):
    config = scaled_small_system()
    instructions = scaled_instructions(600_000)
    mixes = [make_mix("sftn", 1), make_mix("ttff", 1)]

    def experiment():
        out = {}
        for mix in mixes:
            row = {}
            for scheme in VARIANTS:
                run = run_mix(mix, scheme, config, instructions, seed=1)
                row[scheme] = {
                    "throughput": run.result.throughput,
                    "sizes": run.cache.partition_sizes(),
                    "managed_ev_frac": run.cache.managed_eviction_fraction(),
                }
            out[mix.name] = row
        return out

    out = run_once(experiment)

    print()
    print("Section 6.2: practical vs idealised Vantage configurations")
    for mix_name, row in out.items():
        print(f"  mix {mix_name}:")
        for scheme, data in row.items():
            print(
                f"    {scheme:26s} thr={data['throughput']:.3f} "
                f"sizes={data['sizes']} mgd-ev={data['managed_ev_frac']:.4f}"
            )
    save_results("sec62", out)

    for mix_name, row in out.items():
        practical = row["vantage-z4/52"]["throughput"]
        for ideal in ("vantage-analytical-z4/52", "vantage-rc52"):
            assert abs(row[ideal]["throughput"] - practical) / practical < 0.08
