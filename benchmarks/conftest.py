"""Shared helpers for the per-figure benchmarks.

Every benchmark regenerates one of the paper's tables or figures at a
scaled-down default size (see DESIGN.md's scale-down policy) and
prints the same rows/series the paper reports.  Raw outputs are also
saved under ``results/``.  Scale knobs: REPRO_INSTRUCTIONS,
REPRO_MIXES_PER_CLASS, REPRO_CLASS_STRIDE, REPRO_EPOCH_CYCLES.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables
inline.
"""

from __future__ import annotations

import os

import pytest


def pytest_collection_modifyitems(items):
    # Every figure regeneration is a long-running experiment; the
    # ``slow`` marker lets CI and local runs deselect them wholesale
    # (``-m "not slow"``) while still collecting the suite.
    for item in items:
        item.add_marker(pytest.mark.slow)

from repro.harness import class_stride, epoch_cycles, instructions_per_app, mixes_per_class
from repro.sim import large_system, small_system
from repro.workloads import make_mix, make_mixes

#: Hand-picked classes spanning the category space; used when the
#: REPRO_* env knobs do not request the full stride-sampled suite.
REPRESENTATIVE_CLASSES = ("sftn", "ssft", "fftn", "ttnn", "sfff", "ffnn", "sstt")


def scaled_small_system():
    return small_system(epoch_cycles=epoch_cycles(250_000))


def scaled_large_system():
    return large_system(epoch_cycles=epoch_cycles(250_000))


def scaled_instructions(default=600_000):
    return instructions_per_app(default)


def _env_suite_requested() -> bool:
    return "REPRO_MIXES_PER_CLASS" in os.environ or "REPRO_CLASS_STRIDE" in os.environ


def four_core_mixes(default_count=7):
    """Mix subset for 4-core figures (paper: 350 mixes).

    Defaults to one mix from each representative class; set
    REPRO_MIXES_PER_CLASS / REPRO_CLASS_STRIDE to sweep the real
    35-class suite instead.
    """
    if _env_suite_requested():
        return make_mixes(
            mixes_per_class=mixes_per_class(1),
            apps_per_slot=1,
            class_stride=class_stride(1),
        )
    return [make_mix(cls, 1) for cls in REPRESENTATIVE_CLASSES[:default_count]]


def thirty_two_core_mixes(default_count=1):
    """Mix subset for 32-core figures (paper: 350 mixes)."""
    if _env_suite_requested():
        return make_mixes(
            mixes_per_class=mixes_per_class(1),
            apps_per_slot=8,
            class_stride=class_stride(1),
        )
    return [
        make_mix(cls, 1, apps_per_slot=8)
        for cls in REPRESENTATIVE_CLASSES[:default_count]
    ]


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return runner
