"""Figure 9: sensitivity to the unmanaged region size (u = 5..30%).

Panel (a): throughput vs LRU for each u.
Panel (b): fraction of evictions forced from the managed region, with
the analytical worst-case marker (Section 4.3) for each u.
"""

from conftest import four_core_mixes, scaled_instructions, scaled_small_system

from repro.analysis import geo_mean, worst_case_pev
from repro.core import VantageConfig
from repro.harness import SimJob, run_jobs, save_results

U_SWEEP = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30)
R = 52


def test_fig9_unmanaged_region_sweep(run_once):
    config = scaled_small_system()
    instructions = scaled_instructions(600_000)
    mixes = four_core_mixes(default_count=2)

    def experiment():
        # One parallel batch: per-mix LRU baselines plus the whole
        # (u, mix) grid, via the vantage_config job override.
        jobs = [SimJob(mix, "lru-sa16", config, instructions) for mix in mixes]
        for u in U_SWEEP:
            vcfg = VantageConfig(unmanaged_fraction=u, a_max=0.5, slack=0.1)
            jobs.extend(
                SimJob(
                    mix, "vantage-z4/52", config, instructions, vantage_config=vcfg
                )
                for mix in mixes
            )
        outcomes = run_jobs(jobs)

        baselines = {
            mix.name: outcome.result.throughput
            for mix, outcome in zip(mixes, outcomes)
        }
        sweep = {}
        for i, u in enumerate(U_SWEEP):
            row = outcomes[(i + 1) * len(mixes) : (i + 2) * len(mixes)]
            rel = [
                outcome.result.throughput / baselines[mix.name]
                for mix, outcome in zip(mixes, row)
            ]
            managed_fracs = [outcome.managed_eviction_fraction for outcome in row]
            sweep[u] = {
                "geomean": geo_mean(rel),
                "managed_eviction_fracs": managed_fracs,
                "worst_case_model": worst_case_pev(u, R, a_max=0.5, slack=0.1),
            }
        return sweep

    sweep = run_once(experiment)

    print()
    print(f"Figure 9: unmanaged-region sweep ({len(mixes)} mixes)")
    print(
        f"{'u':>6s} {'geomean thr':>12s} {'max managed-ev frac':>20s} "
        f"{'model worst case':>18s}"
    )
    for u, row in sweep.items():
        print(
            f"{u:>6.2f} {row['geomean']:>12.3f} "
            f"{max(row['managed_eviction_fracs']):>20.4f} "
            f"{row['worst_case_model']:>18.4f}"
        )
    save_results("fig09", {str(u): row for u, row in sweep.items()})

    # Shape: bigger u -> fewer forced evictions from the managed region.
    fracs = [max(sweep[u]["managed_eviction_fracs"]) for u in U_SWEEP]
    assert fracs[-1] <= fracs[0] + 0.005
    # Workloads respect the analytical worst case (with transient slack,
    # as in the paper's Fig 9b discussion).
    for u in U_SWEEP[2:]:
        row = sweep[u]
        assert max(row["managed_eviction_fracs"]) <= max(
            row["worst_case_model"] * 2.0, 0.02
        )
    # Throughput is only mildly sensitive to u (paper: 5% works best).
    geos = [sweep[u]["geomean"] for u in U_SWEEP]
    assert max(geos) - min(geos) < 0.12
