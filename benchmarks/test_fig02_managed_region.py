"""Figure 2: demotion distributions in the managed region (u = 0.3).

Panel (b): demoting *exactly one* line per eviction (Equation 2).
Panel (c): demoting one line per eviction *on average* through an
aperture (Equation 3).  Both are validated by Monte Carlo, and the
aperture panel additionally against the real Vantage controller
running on the idealised random-candidates array -- the ablation that
justifies Vantage's demote-on-average design.
"""

import random

from repro.analysis import (
    aperture_demotion_cdf,
    attach_demotion_monitor,
    empirical_cdf,
    equilibrium_aperture,
    forced_demotion_cdf,
    PriorityMonitor,
)
from repro.arrays import RandomCandidatesArray
from repro.core import VantageCache, VantageConfig
from repro.harness import format_curve_table, save_results

U = 0.3
R_VALUES = (16, 32, 64)
XS = [i / 20 for i in range(21)]


def monte_carlo_forced(r, u=U, trials=30_000, seed=0):
    """Draw R uniform candidate priorities; demote the worst managed one."""
    rng = random.Random(seed)
    samples = []
    for _ in range(trials):
        managed = [rng.random() for _ in range(r) if rng.random() >= u]
        if managed:
            samples.append(max(managed))
    return empirical_cdf(samples, XS)


def vantage_demotion_quantiles(r=16, num_lines=2048, seed=0):
    """Demotion priorities from the real controller (one partition)."""
    array = RandomCandidatesArray(num_lines, candidates_per_miss=r, seed=seed)
    cache = VantageCache(array, 1, VantageConfig(unmanaged_fraction=U))
    cache.set_allocations([cache.allocation_total])
    monitor = PriorityMonitor(sample_size=96, seed=seed + 1)
    attach_demotion_monitor(cache, monitor)
    rng = random.Random(seed + 2)
    for _ in range(30_000):
        cache.access(rng.randrange(6000))
    return empirical_cdf(monitor.quantiles, XS)


def test_fig2_managed_region_demotions(run_once):
    def experiment():
        forced = {f"R={r}": [forced_demotion_cdf(x, r, U) for x in XS] for r in R_VALUES}
        averaged = {}
        for r in R_VALUES:
            a = equilibrium_aperture(r, 1 - U)
            averaged[f"R={r}"] = [aperture_demotion_cdf(x, a) for x in XS]
        mc = {"R=16 (MC)": monte_carlo_forced(16)}
        controller = {"R=16 (Vantage)": vantage_demotion_quantiles(16)}
        return forced, averaged, mc, controller

    forced, averaged, mc, controller = run_once(experiment)

    print()
    print(
        format_curve_table(
            "Figure 2b: demotion CDF, exactly one demotion per eviction (Eq 2)",
            XS,
            forced,
            x_label="demote prio",
        )
    )
    print(
        format_curve_table(
            "Figure 2c: demotion CDF, one demotion per eviction on average (Eq 3)",
            XS,
            averaged,
            x_label="demote prio",
        )
    )
    print(
        format_curve_table(
            "Validation: Monte-Carlo (forced) and real controller (averaged)",
            XS,
            {**mc, **controller},
            x_label="demote prio",
        )
    )
    save_results(
        "fig02",
        {"xs": XS, "forced": forced, "averaged": averaged, "mc": mc, "controller": controller},
    )

    # The paper's Fig 2b-vs-2c claim: averaging concentrates demotions
    # far closer to priority 1.0.
    for r in R_VALUES:
        assert averaged[f"R={r}"][18] <= forced[f"R={r}"][18]
        a = equilibrium_aperture(r, 1 - U)
        # Aperture demotions never touch lines below 1 - A.
        cutoff_index = int((1 - a) * 20)
        assert averaged[f"R={r}"][max(cutoff_index - 1, 0)] == 0.0
    # Monte Carlo matches Equation 2.
    for x, got in zip(XS, mc["R=16 (MC)"]):
        assert abs(got - forced_demotion_cdf(x, 16, U)) < 0.05
    # The controller's demotions stay in the top ages of the partition.
    vn = controller["R=16 (Vantage)"]
    assert vn[12] < 0.35  # few demotions below priority 0.6
