"""Figure 5: unmanaged-region sizing (Section 4.3).

Left panel: u as a function of A_max at P_ev = 1e-2.
Right panel: u as a function of P_ev at A_max = 0.4.
Both for R = 16 and R = 52 candidates, slack = 0.1.
"""

from repro.analysis import required_unmanaged_fraction
from repro.harness import format_curve_table, save_results

SLACK = 0.1
AMAX_SWEEP = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
PEV_SWEEP = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0]


def test_fig5_unmanaged_region_sizing(run_once):
    def experiment():
        left = {
            f"R={r}": [
                required_unmanaged_fraction(r, a_max=a, slack=SLACK, pev=1e-2)
                for a in AMAX_SWEEP
            ]
            for r in (16, 52)
        }
        right = {
            f"R={r}": [
                required_unmanaged_fraction(r, a_max=0.4, slack=SLACK, pev=p)
                for p in PEV_SWEEP
            ]
            for r in (16, 52)
        }
        return left, right

    left, right = run_once(experiment)

    print()
    print(
        format_curve_table(
            "Figure 5a: unmanaged fraction u vs A_max (Pev = 1e-2, slack = 0.1)",
            AMAX_SWEEP,
            left,
            x_label="A_max",
        )
    )
    print(
        format_curve_table(
            "Figure 5b: unmanaged fraction u vs Pev (A_max = 0.4, slack = 0.1)",
            PEV_SWEEP,
            right,
            x_label="Pev",
        )
    )
    save_results(
        "fig05",
        {"amax_sweep": AMAX_SWEEP, "pev_sweep": PEV_SWEEP, "left": left, "right": right},
    )

    # Paper's quoted points: R=52, A_max=0.4 -> 13% (Pev=1e-2), 21% (1e-4).
    assert abs(right["R=52"][PEV_SWEEP.index(1e-2)] - 0.13) < 0.01
    assert abs(right["R=52"][PEV_SWEEP.index(1e-4)] - 0.21) < 0.01
    # Shape: u shrinks with A_max and with R, grows as Pev tightens.
    for r in (16, 52):
        assert left[f"R={r}"] == sorted(left[f"R={r}"], reverse=True)
        assert right[f"R={r}"] == sorted(right[f"R={r}"], reverse=True)
    assert all(u52 < u16 for u16, u52 in zip(left["R=16"], left["R=52"]))
