"""Figure 6: 4-core throughput under UCP, normalised to LRU-SA16.

Panel (a): distribution of relative throughput over the mix suite for
Vantage-Z4/52, WayPart-SA16 and PIPP-SA16 (paper: 350 mixes; default
here: one mix from every 5th class -- scale with REPRO_MIXES_PER_CLASS
/ REPRO_CLASS_STRIDE / REPRO_INSTRUCTIONS).

Panel (b): per-mix bars for a few named mixes, including the
unpartitioned Z4/52 zcache that separates "zcache effect" from
"partitioning effect".
"""

from conftest import four_core_mixes, scaled_instructions, scaled_small_system

from repro.harness import (
    SimJob,
    distribution_row,
    format_distribution_table,
    relative_throughputs,
    run_jobs,
    save_results,
)

SCHEMES = ["vantage-z4/52", "waypart-sa16", "pipp-sa16"]
BASELINE = "lru-sa16"
FIG6B_EXTRA = "lru-z4/52"  # unpartitioned zcache reference


def test_fig6a_throughput_distribution(run_once):
    config = scaled_small_system()
    instructions = scaled_instructions()
    mixes = four_core_mixes()

    def experiment():
        return relative_throughputs(mixes, SCHEMES, BASELINE, config, instructions)

    results = run_once(experiment)

    rows = [distribution_row(s, results[s]) for s in SCHEMES]
    print()
    print(
        format_distribution_table(
            rows,
            f"Figure 6a: 4-core throughput vs {BASELINE} "
            f"({len(mixes)} mixes, {instructions} instrs/app)",
        )
    )
    per_mix = {s: dict(zip([m.name for m in mixes], results[s])) for s in SCHEMES}
    save_results("fig06a", {"rows": rows, "per_mix": per_mix})

    vantage = next(r for r in rows if r["scheme"] == "vantage-z4/52")
    # Paper shape: Vantage improves the clear majority of mixes and
    # never degrades badly, while the rivals degrade many mixes.  (On
    # a handful of mixes PIPP can out-improve Vantage -- the paper's
    # own Fig 6b shows such cases -- so the robust claim is about the
    # degradation side of the distribution, not a strict geomean win.)
    assert vantage["geomean"] > 0.99
    assert vantage["worst"] > 0.9
    for rival in ("waypart-sa16", "pipp-sa16"):
        row = next(r for r in rows if r["scheme"] == rival)
        assert vantage["geomean"] >= row["geomean"] - 0.025
        assert vantage["worst"] >= row["worst"] - 0.01
        assert vantage["degraded_frac"] <= row["degraded_frac"] + 0.01


def test_fig6b_selected_mixes(run_once):
    config = scaled_small_system()
    instructions = scaled_instructions()
    # One mix per headline class from the paper's Fig 6b.
    from repro.workloads import make_mix

    selected = [make_mix(cls, 1) for cls in ("sftn", "ttnn", "sssf")]

    def experiment():
        # All (mix, scheme) pairs -- baseline included -- as one
        # parallel batch.
        columns = [BASELINE, FIG6B_EXTRA] + SCHEMES
        jobs = [
            SimJob(mix, scheme, config, instructions)
            for mix in selected
            for scheme in columns
        ]
        outcomes = run_jobs(jobs)
        table = {}
        width = len(columns)
        for m, mix in enumerate(selected):
            row_outcomes = outcomes[m * width : (m + 1) * width]
            base = row_outcomes[0].result.throughput
            table[mix.name] = {
                scheme: outcome.result.throughput / base
                for scheme, outcome in zip(columns[1:], row_outcomes[1:])
            }
        return table

    table = run_once(experiment)

    print()
    print("Figure 6b: per-mix throughput vs lru-sa16")
    header = f"{'mix':8s} " + " ".join(f"{s:>16s}" for s in [FIG6B_EXTRA] + SCHEMES)
    print(header)
    for mix_name, row in table.items():
        cells = " ".join(f"{row[s]:>16.3f}" for s in [FIG6B_EXTRA] + SCHEMES)
        print(f"{mix_name:8s} {cells}")
    save_results("fig06b", table)

    for row in table.values():
        assert all(v > 0 for v in row.values())
