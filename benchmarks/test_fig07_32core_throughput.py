"""Figure 7: 32-core throughput, normalised to LRU-SA64.

The paper's headline scalability result: with 32 partitions,
way-partitioning and PIPP degrade most workloads even on a 64-way
cache, while Vantage keeps delivering its 4-core-level gains from a
4-way zcache (16x fewer ways).

Default scale: two 32-core mixes (REPRO_CLASS_STRIDE picks classes);
the paper runs 350.
"""

from conftest import scaled_instructions, scaled_large_system, thirty_two_core_mixes

from repro.harness import (
    distribution_row,
    format_distribution_table,
    relative_throughputs,
    save_results,
)

SCHEMES = ["vantage-z4/52", "waypart-sa64", "pipp-sa64"]
BASELINE = "lru-sa64"


def test_fig7_32core_throughput(run_once):
    config = scaled_large_system()
    instructions = scaled_instructions(150_000)
    mixes = thirty_two_core_mixes()

    def experiment():
        return relative_throughputs(mixes, SCHEMES, BASELINE, config, instructions)

    results = run_once(experiment)

    rows = [distribution_row(s, results[s]) for s in SCHEMES]
    print()
    print(
        format_distribution_table(
            rows,
            f"Figure 7: 32-core throughput vs {BASELINE} "
            f"({len(mixes)} mixes, {instructions} instrs/app)",
        )
    )
    per_mix = {s: dict(zip([m.name for m in mixes], results[s])) for s in SCHEMES}
    save_results("fig07", {"rows": rows, "per_mix": per_mix})

    vantage = next(r for r in rows if r["scheme"] == "vantage-z4/52")
    waypart = next(r for r in rows if r["scheme"] == "waypart-sa64")
    # Scalability shape: Vantage with a 4-way zcache at least matches
    # the 64-way rivals at 32 partitions, without bad degradations.
    assert vantage["geomean"] >= waypart["geomean"] - 0.02
    assert vantage["worst"] > 0.8
