"""Tables 2 and 3: methodology tables, regenerated from code.

Table 2 prints the simulated CMP configurations; Table 3 re-runs the
paper's classification procedure (single-app MPKI sweep, 64 KB-8 MB)
over all 29 synthetic applications and checks each lands in its
declared category.  This is also the state-overhead checkpoint for
Section 4.3's hardware-cost claims.
"""

from repro.analysis import vantage_overheads
from repro.harness import mpki_curve, classify_curve, save_results
from repro.harness.classify import SWEEP_LINES
from repro.sim import large_system, small_system
from repro.workloads import APPS, CATEGORY_NAMES


def test_table2_system_configurations(run_once):
    def experiment():
        return small_system(), large_system(), vantage_overheads(num_partitions=32)

    small, large, overheads = run_once(experiment)
    print()
    print("Table 2: simulated CMP configurations")
    for name, cfg in (("4-core", small), ("32-core", large)):
        print(
            f"  {name}: {cfg.num_cores} cores, L1 {cfg.l1_bytes // 1024} KB "
            f"{cfg.l1_ways}-way, L2 {cfg.l2_bytes // (1024 * 1024)} MB x "
            f"{cfg.l2_banks} banks ({cfg.l2_hit_latency}-cycle hit), "
            f"mem {cfg.mem_latency} cycles, {cfg.mem_bandwidth_gbs} GB/s, "
            f"{cfg.freq_ghz} GHz"
        )
    print(
        f"  Vantage state overhead (8 MB, 32 partitions): "
        f"{overheads.overhead_fraction:.2%} "
        f"({overheads.partition_id_bits} tag bits, "
        f"{overheads.register_bits_per_partition} register bits/partition)"
    )
    assert large.num_cores == 32
    assert overheads.overhead_fraction < 0.016


def test_table3_workload_classification(run_once):
    def experiment():
        rows = {}
        for name, app in sorted(APPS.items()):
            curve = mpki_curve(app, accesses=40_000)
            rows[name] = {
                "category": app.category,
                "classified": classify_curve(curve),
                "curve": [round(v, 2) for v in curve],
            }
        return rows

    rows = run_once(experiment)
    print()
    print("Table 3: workload classification (MPKI sweep 64 KB - 8 MB)")
    sizes = "  ".join(f"{n * 64 // 1024:>6d}K" for n in SWEEP_LINES)
    print(f"  {'app':12s} {'cat':>4s} {'got':>4s}  {sizes}")
    mismatches = []
    for name, row in rows.items():
        curve = "  ".join(f"{v:>7.1f}" for v in row["curve"])
        print(f"  {name:12s} {row['category']:>4s} {row['classified']:>4s}  {curve}")
        if row["classified"] != row["category"]:
            mismatches.append(name)
    save_results("table3", rows)
    print(f"  categories: {CATEGORY_NAMES}")
    if mismatches:
        print(f"  MISMATCHES: {mismatches}")
    # Every app must land in its Table 3 category.
    assert not mismatches
