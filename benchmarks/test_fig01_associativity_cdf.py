"""Figure 1: associativity CDFs under the uniformity assumption.

Regenerates F_A(x) = x^R for R in {4, 8, 16, 64} (both panels of the
figure are the same curves at linear/log scale) and validates the
analytical curves against Monte-Carlo eviction priorities measured on
the idealised random-candidates cache.
"""

import random

from repro.analysis import associativity_cdf, empirical_cdf
from repro.arrays import RandomCandidatesArray
from repro.harness import format_curve_table, save_results
from repro.partitioning import BaselineCache
from repro.replacement import PerfectLRUPolicy

R_VALUES = (4, 8, 16, 64)
XS = [i / 20 for i in range(21)]


def empirical_eviction_cdf(r, num_lines=512, misses=4000, seed=0):
    array = RandomCandidatesArray(num_lines, candidates_per_miss=r, seed=seed)
    policy = PerfectLRUPolicy(num_lines)
    cache = BaselineCache(array, policy)
    samples = []

    def hook(slot, part):
        victim_age = policy.age_key(slot)
        ages = sorted(policy.age_key(s) for s, _ in array.contents())
        younger = sum(1 for a in ages if a <= victim_age)
        samples.append(younger / len(ages))

    cache.eviction_hook = hook
    rng = random.Random(seed + 1)
    count = 0
    while count < misses + num_lines:
        cache.access(rng.randrange(1 << 40))
        count += 1
    return empirical_cdf(samples, XS)


def test_fig1_associativity_cdfs(run_once):
    def experiment():
        analytic = {f"R={r}": [associativity_cdf(x, r) for x in XS] for r in R_VALUES}
        empirical = {f"R={r} (MC)": empirical_eviction_cdf(r) for r in (8, 16)}
        return analytic, empirical

    analytic, empirical = run_once(experiment)

    print()
    print(
        format_curve_table(
            "Figure 1: associativity CDF F_A(x) = x^R (analytical)",
            XS,
            analytic,
            x_label="evict prio",
        )
    )
    print(
        format_curve_table(
            "Figure 1 (validation): Monte-Carlo eviction priorities on the "
            "random-candidates cache",
            XS,
            empirical,
            x_label="evict prio",
        )
    )
    save_results("fig01", {"xs": XS, "analytic": analytic, "empirical": empirical})

    # Shape checks: the curves are CDFs and skew right with R.
    for r in R_VALUES:
        curve = analytic[f"R={r}"]
        assert curve[0] == 0.0 and curve[-1] == 1.0
        assert curve == sorted(curve)
    assert analytic["R=64"][18] < analytic["R=4"][18]
    # Monte Carlo matches the model.
    for r in (8, 16):
        for x, got in zip(XS, empirical[f"R={r} (MC)"]):
            assert abs(got - associativity_cdf(x, r)) < 0.06
