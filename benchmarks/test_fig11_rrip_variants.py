"""Figure 11: RRIP replacement variants vs Vantage.

SRRIP / DRRIP / TA-DRRIP (unpartitioned, on the Z4/52 zcache) against
Vantage-LRU and Vantage-DRRIP, all normalised to LRU-SA16.  The
paper's ordering: Vantage-DRRIP >= Vantage-LRU > TA-DRRIP > DRRIP.
"""

from conftest import four_core_mixes, scaled_instructions, scaled_small_system

from repro.analysis import geo_mean
from repro.harness import relative_throughputs, save_results

SCHEMES = [
    "srrip-z4/52",
    "drrip-z4/52",
    "ta-drrip-z4/52",
    "vantage-z4/52",
    "vantage-drrip-z4/52",
]
BASELINE = "lru-sa16"


def test_fig11_rrip_variants(run_once):
    config = scaled_small_system()
    instructions = scaled_instructions(600_000)
    mixes = four_core_mixes(default_count=2)

    def experiment():
        return relative_throughputs(mixes, SCHEMES, BASELINE, config, instructions)

    results = run_once(experiment)

    print()
    print(f"Figure 11: replacement policies and Vantage ({len(mixes)} mixes)")
    geos = {}
    print(f"{'scheme':>22s}{'geomean':>10s} {'worst':>8s} {'best':>8s}")
    for scheme in SCHEMES:
        rel = results[scheme]
        geos[scheme] = geo_mean(rel)
        print(f"{scheme:>22s}{geos[scheme]:>10.3f} {min(rel):>8.3f} {max(rel):>8.3f}")
    save_results(
        "fig11", {s: {"per_mix": results[s], "geomean": geos[s]} for s in SCHEMES}
    )

    # Paper shape: partitioning beats pure replacement-policy fixes.
    best_rrip = max(geos["srrip-z4/52"], geos["drrip-z4/52"], geos["ta-drrip-z4/52"])
    assert geos["vantage-z4/52"] >= best_rrip - 0.02
    assert geos["vantage-drrip-z4/52"] >= geos["vantage-z4/52"] - 0.05
