"""Table 1: qualitative comparison of partitioning schemes.

The matrix is generated from the capability metadata attached to the
scheme implementations, so the printed table stays tied to the code.
"""

from repro.harness import save_results
from repro.partitioning import TABLE1_ROWS, format_table1


def test_table1_scheme_matrix(run_once):
    text = run_once(format_table1)
    print()
    print("Table 1: classification of partitioning schemes")
    print(text)
    save_results(
        "table1",
        {row.name: vars(row) for row in TABLE1_ROWS},
    )
    assert "Vantage" in text
    assert len(TABLE1_ROWS) == 5
