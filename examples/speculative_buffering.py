"""Speculative-data buffering: dynamic partitions for TM/TLS.

Section 1 lists transactional memory and thread-level speculation as
Vantage use cases: speculative lines buffered in the cache *must not*
be evicted by non-speculative traffic, or the transaction aborts.
Partitions are cheap to create and delete (Section 3.4), so a runtime
can open a pinned partition per transaction and drain it at commit.

This example opens a speculative partition while a memory-hungry
thread runs alongside, checks that every speculative line survives to
commit, then deletes the partition and shows its capacity draining
back.

Run:  python examples/speculative_buffering.py
"""

import random

from repro import VantageCache, VantageConfig, ZCacheArray

CACHE_LINES = 8_192
MAIN, SPEC = 0, 1
TX_FOOTPRINT = 1_500


def main():
    array = ZCacheArray(CACHE_LINES, num_ways=4, candidates_per_miss=52, seed=11)
    cache = VantageCache(array, 2, VantageConfig(unmanaged_fraction=0.1))
    rng = random.Random(3)

    # Phase 1: no transaction running; the main thread owns everything.
    cache.set_allocations([cache.allocation_total, 0])
    for _ in range(60_000):
        cache.access((MAIN << 40) | rng.randrange(30_000), MAIN)
    print(f"before transaction: sizes={cache.partition_sizes()}")

    # Phase 2: a transaction begins -- open a partition sized to its
    # write-set and fill it with speculative lines.
    cache.resize_partition(MAIN, cache.allocation_total - 2_000)
    cache.resize_partition(SPEC, 2_000)
    spec_lines = [(SPEC << 40) | n for n in range(TX_FOOTPRINT)]
    for addr in spec_lines:
        cache.access(addr, SPEC)

    # The main thread keeps thrashing while the transaction runs.
    for _ in range(60_000):
        cache.access((MAIN << 40) | rng.randrange(30_000), MAIN)

    survived = sum(1 for a in spec_lines if array.lookup(a) is not None)
    print(f"during transaction: sizes={cache.partition_sizes()}")
    print(f"speculative lines surviving to commit: {survived}/{TX_FOOTPRINT} "
          f"({survived / TX_FOOTPRINT:.1%})")

    # Phase 3: commit -- delete the partition; its lines demote into the
    # unmanaged region and the capacity flows back to the main thread.
    cache.delete_partition(SPEC)
    cache.resize_partition(MAIN, cache.allocation_total)
    for _ in range(50_000):
        cache.access((MAIN << 40) | rng.randrange(30_000), MAIN)
    print(f"after commit: sizes={cache.partition_sizes()} "
          f"(speculative partition drained: "
          f"{cache.partition_is_drained(SPEC, residual_lines=150)})")


if __name__ == "__main__":
    main()
