"""Design-space explorer: size the unmanaged region from the models.

Vantage's analytical models (Section 4.3) let a cache architect pick
the unmanaged-region size *before* running any simulation: choose the
array (R candidates), a maximum aperture, and an isolation target
(worst-case probability of a forced eviction from the managed
region), and the closed form gives u.  This script sweeps the space
and then verifies one design point empirically.

Run:  python examples/design_explorer.py
"""

import random

from repro import VantageCache, VantageConfig, ZCacheArray
from repro.analysis import (
    required_unmanaged_fraction,
    slack_outgrowth,
    worst_case_borrowed,
)

SLACK = 0.1


def sweep():
    print("unmanaged-region fraction u(R, A_max, Pev), slack = 0.1")
    print(f"{'array':>8s} {'R':>4s} {'A_max':>6s} "
          + "".join(f"{p:>12g}" for p in (1e-1, 1e-2, 1e-3, 1e-4)))
    for label, r in (("Z4/16", 16), ("Z4/52", 52), ("SA64", 64)):
        for a_max in (0.3, 0.5):
            cells = "".join(
                f"{required_unmanaged_fraction(r, a_max, SLACK, pev):>12.3f}"
                for pev in (1e-1, 1e-2, 1e-3, 1e-4)
            )
            print(f"{label:>8s} {r:>4d} {a_max:>6.1f} {cells}")
    print(f"\nbudget breakdown for Z4/52, A_max=0.5: "
          f"MSS borrowing {worst_case_borrowed(0.5, 52):.3f}, "
          f"feedback slack {slack_outgrowth(SLACK, 0.5, 52):.4f}")


def verify(r=52, pev=1e-2, a_max=0.5, num_lines=16_384):
    u = required_unmanaged_fraction(r, a_max, SLACK, pev)
    print(f"\nempirical check: R={r}, A_max={a_max}, target Pev={pev:g} "
          f"-> u={u:.3f}")
    array = ZCacheArray(num_lines, 4, candidates_per_miss=r, seed=3)
    cache = VantageCache(
        array, 4, VantageConfig(unmanaged_fraction=u, a_max=a_max, slack=SLACK)
    )
    rng = random.Random(0)
    working_sets = [2_000, 5_000, 9_000, 100_000]
    for _ in range(400_000):
        p = rng.randrange(4)
        cache.access((p << 40) | rng.randrange(working_sets[p]), p)
    print(f"measured managed-eviction fraction: "
          f"{cache.managed_eviction_fraction():.2e} (target {pev:g})")
    print(f"partition sizes: {cache.partition_sizes()} "
          f"(targets {cache.target})")


if __name__ == "__main__":
    sweep()
    verify()
