"""QoS isolation: protect a latency-critical working set from a
streaming co-runner.

Section 1 motivates partitioning with QoS and security isolation: a
cache-timing side channel or a noisy neighbour both rely on being able
to evict another thread's lines.  This example pins a victim's working
set with a static Vantage allocation and shows that a streaming
aggressor cannot displace it, while under shared LRU the same
aggressor wipes the victim out.

Run:  python examples/qos_isolation.py
"""

import random

from repro import BaselineCache, VantageCache, VantageConfig, ZCacheArray
from repro.replacement import CoarseLRUPolicy

CACHE_LINES = 16_384  # 1 MB
VICTIM, AGGRESSOR = 0, 1
VICTIM_WS = 6_000


def run_scenario(partitioned: bool) -> tuple[float, int]:
    """Returns (victim hit rate under attack, resident victim lines)."""
    array = ZCacheArray(CACHE_LINES, num_ways=4, candidates_per_miss=52, seed=7)
    if partitioned:
        cache = VantageCache(array, 2, VantageConfig(unmanaged_fraction=0.1))
        # QoS contract: the victim owns 7000 lines, no matter what.
        cache.set_allocations([7_000, 7_745])
    else:
        cache = BaselineCache(array, CoarseLRUPolicy(CACHE_LINES), num_partitions=2)

    rng = random.Random(1)
    victim_lines = [(VICTIM << 40) | n for n in range(VICTIM_WS)]

    # Victim warms its working set.
    for addr in victim_lines * 2:
        cache.access(addr, VICTIM)

    # Attack phase: the aggressor streams 10x the cache size while the
    # victim touches its set only occasionally (1 in 50 accesses).
    hits = lookups = 0
    for n in range(200_000):
        cache.access((AGGRESSOR << 40) | n, AGGRESSOR)
        if n % 50 == 0:
            addr = rng.choice(victim_lines)
            lookups += 1
            if cache.access(addr, VICTIM):
                hits += 1

    resident = sum(1 for a in victim_lines if array.lookup(a) is not None)
    return hits / lookups, resident


def main():
    print(f"victim working set: {VICTIM_WS} lines; aggressor: streaming "
          f"200k distinct lines through a {CACHE_LINES}-line cache\n")
    for label, partitioned in (("shared LRU", False), ("Vantage QoS", True)):
        hit_rate, resident = run_scenario(partitioned)
        print(f"{label:12s} victim hit rate under attack: {hit_rate:6.1%}   "
              f"resident working set: {resident}/{VICTIM_WS}")
    print("\nVantage keeps the victim's lines pinned: the aggressor's "
          "insertions are matched by demotions of its own lines, so the "
          "victim's partition is never the interference sink.")


if __name__ == "__main__":
    main()
