"""Full-system run: a 4-core CMP with UCP-driven Vantage partitioning.

Reproduces the paper's evaluation pipeline end to end on one mix:
synthetic SPEC-like traces -> in-order cores -> shared L2 under three
schemes (unpartitioned LRU, way-partitioning, Vantage) -> UMON-DSS
utility monitoring -> UCP Lookahead reallocations every epoch.

Run:  python examples/ucp_multicore.py
"""

from repro.harness import run_mix
from repro.sim import small_system
from repro.workloads import make_mix

INSTRUCTIONS = 600_000
SCHEMES = ("lru-sa16", "waypart-sa16", "pipp-sa16", "vantage-z4/52")


def main():
    config = small_system(epoch_cycles=250_000)
    mix = make_mix("stfn", 1)
    print(f"mix {mix.name}: "
          + ", ".join(f"core{i}={a.name}({a.category})" for i, a in enumerate(mix.apps)))
    print(f"L2: {config.l2_bytes // (1024 * 1024)} MB, UCP epoch "
          f"{config.epoch_cycles} cycles, {INSTRUCTIONS} instructions/core\n")

    baseline = None
    print(f"{'scheme':>16s} {'throughput':>11s} {'vs LRU':>8s}   per-core IPC")
    for scheme in SCHEMES:
        run = run_mix(mix, scheme, config, INSTRUCTIONS, seed=3)
        thr = run.result.throughput
        if baseline is None:
            baseline = thr
        ipcs = " ".join(f"{c.ipc:5.3f}" for c in run.result.cores)
        print(f"{scheme:>16s} {thr:>11.3f} {thr / baseline:>8.3f}   {ipcs}")

    print("\nVantage partitions at line granularity from a 4-way zcache; "
          "way-partitioning pays for isolation with associativity, and "
          "PIPP only approximates the UCP targets.")


if __name__ == "__main__":
    main()
