"""Quickstart: partition a zcache with Vantage and watch it enforce
fine-grain allocations.

Builds the paper's headline configuration -- a 4-way zcache with 52
replacement candidates (Z4/52), 5 % unmanaged region -- carves it into
four partitions with line-granularity targets, and drives it with four
synthetic threads of very different behaviour.

Run:  python examples/quickstart.py
"""

import random

from repro import VantageCache, VantageConfig, ZCacheArray

CACHE_LINES = 32_768  # 2 MB of 64-byte lines
NUM_PARTITIONS = 4


def main():
    array = ZCacheArray(CACHE_LINES, num_ways=4, candidates_per_miss=52, seed=1)
    config = VantageConfig(unmanaged_fraction=0.05, a_max=0.5, slack=0.1)
    cache = VantageCache(array, NUM_PARTITIONS, config)

    # Line-granularity targets -- impossible with way-partitioning.
    targets = [2_000, 5_500, 9_000, 14_630]
    cache.set_allocations(targets)
    print(f"managed region: {cache.allocation_total} lines "
          f"({config.unmanaged_fraction:.0%} unmanaged)")
    print(f"targets: {targets}")

    # Four threads: a small hot loop, two mid-size working sets, and a
    # streaming thread that would wreck everyone under shared LRU.
    working_sets = [3_000, 9_000, 15_000, 400_000]
    rng = random.Random(42)
    for access in range(400_000):
        part = rng.randrange(NUM_PARTITIONS)
        addr = (part << 40) | rng.randrange(working_sets[part])
        cache.access(addr, part)
        if (access + 1) % 100_000 == 0:
            print(f"after {access + 1:>7d} accesses: sizes={cache.partition_sizes()} "
                  f"unmanaged={cache.unmanaged_size}")

    print()
    print(f"{'partition':>10s}{'target':>8s}{'actual':>8s}{'miss rate':>11s}"
          f"{'demotions':>11s}{'promotions':>12s}")
    for p in range(NUM_PARTITIONS):
        print(f"{p:>10d}{targets[p]:>8d}{cache.actual_size[p]:>8d}"
              f"{cache.stats.miss_rate(p):>11.3f}{cache.demotions[p]:>11d}"
              f"{cache.promotions[p]:>12d}")
    print(f"\nforced evictions from managed region: "
          f"{cache.managed_eviction_fraction():.4%} "
          f"(the strict-isolation metric; sized by Pev in Section 4.3)")


if __name__ == "__main__":
    main()
