"""Tests for the Table 3 application roster."""

import pytest

from repro.workloads import (
    APPS,
    CATEGORIES,
    FITTING,
    FRIENDLY,
    INSENSITIVE,
    STREAMING,
    make_app,
)


class TestRoster:
    def test_29_apps(self):
        assert len(APPS) == 29

    def test_category_counts_match_table3(self):
        assert len(CATEGORIES[INSENSITIVE]) == 14
        assert len(CATEGORIES[FRIENDLY]) == 6
        assert len(CATEGORIES[FITTING]) == 5
        assert len(CATEGORIES[STREAMING]) == 4

    def test_table3_membership_spot_checks(self):
        assert APPS["mcf"].category == STREAMING
        assert APPS["libquantum"].category == STREAMING
        assert APPS["soplex"].category == FITTING
        assert APPS["omnetpp"].category == FITTING
        assert APPS["gcc"].category == FRIENDLY
        assert APPS["astar"].category == FRIENDLY
        assert APPS["perlbench"].category == INSENSITIVE
        assert APPS["povray"].category == INSENSITIVE

    def test_make_app(self):
        assert make_app("gcc").name == "gcc"
        with pytest.raises(ValueError):
            make_app("doom")

    def test_parameters_vary_within_category(self):
        friendly = [APPS[n] for n in CATEGORIES[FRIENDLY]]
        assert len({a.ws_lines for a in friendly}) > 3
        assert len({a.mean_gap for a in friendly}) > 3


class TestTraceFactories:
    @pytest.mark.parametrize("name", sorted(APPS))
    def test_every_app_produces_a_trace(self, name):
        factory = APPS[name].trace_factory(base=1 << 30, seed=1)
        gen = factory()
        for _ in range(50):
            gap, addr = next(gen)
            assert gap >= 0
            assert addr >= 1 << 30

    def test_factories_restartable(self):
        factory = APPS["soplex"].trace_factory(base=0, seed=2)
        first = [next(factory()) for _ in range(1)]
        second = [next(factory()) for _ in range(1)]
        assert first == second
