"""Tests that the synthetic apps land in their intended categories
under the paper's own classification procedure (MPKI sweep).

The full 29-app sweep runs in the Table 3 benchmark; here one
representative per category keeps the unit suite fast.
"""

import pytest

from repro.harness import classify_app, classify_curve, mpki_curve
from repro.workloads import APPS


class TestClassifyCurve:
    def test_insensitive_low_mpki(self):
        assert classify_curve([4.0, 3.0, 2.0, 1.0, 1.0, 1.0]) == "n"

    def test_streaming_flat_high(self):
        assert classify_curve([60.0, 60.0, 59.0, 58.0, 58.0, 57.0]) == "s"

    def test_fitting_knee_past_1mb(self):
        assert classify_curve([45.0, 44.0, 43.0, 42.0, 2.0, 2.0]) == "t"

    def test_friendly_gradual(self):
        assert classify_curve([40.0, 32.0, 24.0, 16.0, 10.0, 6.0]) == "f"


@pytest.mark.parametrize(
    "name",
    ["povray", "gcc", "soplex", "libquantum"],
)
def test_representative_apps_classify_correctly(name):
    app = APPS[name]
    assert classify_app(app, accesses=40_000) == app.category


def test_mpki_curve_monotone_for_friendly():
    curve = mpki_curve(APPS["bzip2"], accesses=40_000)
    # Within noise, more capacity never hurts a cache-friendly app.
    for a, b in zip(curve, curve[1:]):
        assert b <= a * 1.1 + 0.5
