"""Tests for multiprogrammed mix construction."""

from repro.workloads import APPS, Mix, make_mix, make_mixes, mix_classes


class TestClasses:
    def test_35_classes(self):
        classes = mix_classes()
        assert len(classes) == 35
        assert len(set(classes)) == 35

    def test_class_letter_order(self):
        # Sorted by the paper's naming order (s, f, t, n).
        assert "sftn" in mix_classes()
        for cls in mix_classes():
            order = {"s": 0, "f": 1, "t": 2, "n": 3}
            keys = [order[c] for c in cls]
            assert keys == sorted(keys)

    def test_extreme_classes_present(self):
        classes = mix_classes()
        assert "ssss" in classes
        assert "nnnn" in classes


class TestMakeMix:
    def test_four_core_mix(self):
        mix = make_mix("sftn", 1)
        assert isinstance(mix, Mix)
        assert mix.num_cores == 4
        assert mix.name == "sftn1"
        cats = [app.category for app in mix.apps]
        assert cats == ["s", "f", "t", "n"]

    def test_32_core_mix(self):
        mix = make_mix("sftn", 2, apps_per_slot=8)
        assert mix.num_cores == 32
        cats = [app.category for app in mix.apps]
        assert cats == ["s"] * 8 + ["f"] * 8 + ["t"] * 8 + ["n"] * 8

    def test_deterministic_without_hash_salt(self):
        """Mixes must be identical across processes (no hash())."""
        a = make_mix("sstt", 3, seed=1)
        b = make_mix("sstt", 3, seed=1)
        assert [x.name for x in a.apps] == [y.name for y in b.apps]

    def test_different_indices_differ(self):
        names = {
            tuple(app.name for app in make_mix("ffnn", i).apps) for i in range(1, 8)
        }
        assert len(names) > 3

    def test_trace_factories_disjoint_address_spaces(self):
        mix = make_mix("ssss", 1)
        factories = mix.trace_factories(seed=0)
        firsts = []
        for f in factories:
            _, addr = next(f())
            firsts.append(addr >> 44)
        assert firsts == [0, 1, 2, 3]


class TestSuite:
    def test_full_suite_350(self):
        mixes = make_mixes(mixes_per_class=10)
        assert len(mixes) == 350

    def test_scaled_suite(self):
        mixes = make_mixes(mixes_per_class=1, class_stride=5)
        assert len(mixes) == 7

    def test_apps_drawn_from_declared_category(self):
        for mix in make_mixes(mixes_per_class=2):
            for letter, app in zip(mix.class_letters, mix.apps):
                assert APPS[app.name].category == letter
