"""Tests for shared-region specs, generators and mixes."""

import pytest

from repro.workloads import (
    SharedRegionSpec,
    loop_stream,
    make_mix,
    make_shared_mix,
    migratory_stream,
    producer_consumer_stream,
    shared_table_stream,
)

SHARED_BASE = 1 << 40
LINES = 64


def take(gen, n):
    return [next(gen) for _ in range(n)]


def _private(base=0, seed=1):
    return loop_stream(1000, 0, base=base, seed=seed)


def _shared_addrs(pairs):
    return [a - SHARED_BASE for _, a in pairs if a >= SHARED_BASE]


class TestSharedRegionSpec:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown shared-region kind"):
            SharedRegionSpec(kind="broadcast", lines=64, fraction=0.2)

    def test_bad_fraction(self):
        with pytest.raises(ValueError, match="fraction"):
            SharedRegionSpec(kind="migratory", lines=64, fraction=1.5)

    def test_bad_lines(self):
        with pytest.raises(ValueError, match="line count"):
            SharedRegionSpec(kind="shared-table", lines=0, fraction=0.2)

    def test_trace_kind_distinct_from_private_kinds(self):
        spec = SharedRegionSpec(kind="producer-consumer", lines=64, fraction=0.2)
        assert spec.trace_kind == "pc-shared"


class TestProducerConsumer:
    def test_deterministic(self):
        def build():
            return producer_consumer_stream(
                _private(), SHARED_BASE, LINES, 0.5, core=1, num_cores=4,
                shared_seed=3, seed=1,
            )

        assert take(build(), 200) == take(build(), 200)

    def test_cores_sweep_same_ring_phase_shifted(self):
        """Every core walks the same ring; core c starts lines/cores
        further along, so trailing cores re-touch the leader's lines."""
        per_core = []
        for core in range(4):
            gen = producer_consumer_stream(
                _private(seed=core), SHARED_BASE, LINES, 1.0, core=core,
                num_cores=4, shared_seed=3, seed=core,
            )
            per_core.append(_shared_addrs(take(gen, 32)))
        for core, addrs in enumerate(per_core):
            start = core * LINES // 4
            assert addrs == [(start + i) % LINES for i in range(32)]

    def test_fraction_controls_redirection(self):
        gen = producer_consumer_stream(
            _private(), SHARED_BASE, LINES, 0.25, core=0, num_cores=4,
            shared_seed=3, seed=1,
        )
        pairs = take(gen, 4000)
        share = len(_shared_addrs(pairs)) / len(pairs)
        assert 0.2 < share < 0.3

    def test_gaps_come_from_private_stream(self):
        """Redirection substitutes the address only; timing is the
        private stream's."""
        private_pairs = take(_private(seed=9), 100)
        gen = producer_consumer_stream(
            iter(private_pairs), SHARED_BASE, LINES, 1.0, core=0,
            num_cores=4, shared_seed=3, seed=9,
        )
        pairs = take(gen, 100)
        assert [g for g, _ in pairs] == [g for g, _ in private_pairs]


class TestSharedTable:
    def test_same_hot_lines_on_every_core(self):
        """Popularity derives from the shared seed alone, so every
        core's most-touched table line is the same line."""
        hottest = []
        for core in range(3):
            gen = shared_table_stream(
                _private(seed=100 + core), SHARED_BASE, LINES, 1.0, 0.9,
                core=core, num_cores=3, shared_seed=5, seed=100 + core,
            )
            addrs = _shared_addrs(take(gen, 2000))
            counts = {}
            for a in addrs:
                counts[a] = counts.get(a, 0) + 1
            hottest.append(max(counts, key=counts.get))
        assert len(set(hottest)) == 1

    def test_addresses_within_region(self):
        gen = shared_table_stream(
            _private(), SHARED_BASE, LINES, 0.6, 0.9, core=0, num_cores=2,
            shared_seed=5, seed=1,
        )
        for addr in _shared_addrs(take(gen, 1000)):
            assert 0 <= addr < LINES


class TestMigratory:
    def test_only_window_owner_touches_region(self):
        """Outside its round-robin window a core never redirects."""
        window, cores = 50, 4
        for core in range(cores):
            gen = migratory_stream(
                _private(seed=core), SHARED_BASE, LINES, 0.25, window,
                core=core, num_cores=cores, shared_seed=7, seed=core,
            )
            pairs = take(gen, window * cores)
            for n, (_, addr) in enumerate(pairs):
                mine = (n // window) % cores == core
                if not mine:
                    assert addr < SHARED_BASE

    def test_sweep_position_persists_across_windows(self):
        window, cores = 10, 2
        gen = migratory_stream(
            _private(), SHARED_BASE, LINES, 0.5, window, core=0,
            num_cores=cores, shared_seed=7, seed=1,
        )
        addrs = _shared_addrs(take(gen, window * cores * 4))
        # Successive sweeps continue the walk instead of restarting.
        assert addrs == [i % LINES for i in range(len(addrs))]


class TestSharedMixes:
    SPEC = SharedRegionSpec(kind="producer-consumer", lines=256, fraction=0.3)

    def test_name_records_shape_and_fraction(self):
        mix = make_shared_mix("sftn", 1, self.SPEC)
        assert mix.name == "sftn1+producer-consumer@0.3"

    def test_same_apps_as_private_mix(self):
        private = make_mix("sftn", 1)
        shared = make_shared_mix("sftn", 1, self.SPEC)
        assert shared.apps == private.apps

    def test_factories_are_shared_kind_specs(self):
        mix = make_shared_mix("sftn", 1, self.SPEC)
        specs = mix.trace_factories(seed=0)
        assert all(s.kind == "pc-shared" for s in specs)
        # The shared region sits above every private address space.
        shared_base = mix.num_cores << 44
        assert all(s.params[2] == shared_base for s in specs)

    def test_trace_keys_never_collide(self):
        """Private vs shared variants of the same app, and the same
        shared app on different cores, compile to distinct chunks."""
        private = make_mix("sftn", 1).trace_factories(seed=0)
        shared = make_shared_mix("sftn", 1, self.SPEC).trace_factories(seed=0)
        other_fraction = make_shared_mix(
            "sftn",
            1,
            SharedRegionSpec(kind="producer-consumer", lines=256, fraction=0.5),
        ).trace_factories(seed=0)
        keys = [s.key(4096) for s in private + shared + other_fraction]
        assert len(set(keys)) == len(keys)

    def test_shared_generator_matches_spec_replay(self):
        """The TraceSpec round-trip reproduces the wrapped stream."""
        mix = make_shared_mix("sftn", 2, self.SPEC)
        spec = mix.trace_factories(seed=3)[1]
        assert take(spec(), 300) == take(spec.generator(), 300)
