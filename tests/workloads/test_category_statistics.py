"""Statistical properties of the workload categories, checked on the
generators directly (cheaper than full MPKI sweeps)."""

import statistics

from repro.workloads import APPS, CATEGORIES


def footprint_and_gap(app, accesses=6_000):
    gen = app.trace_factory(base=0, seed=9)()
    addrs = set()
    gaps = []
    for _ in range(accesses):
        gap, addr = next(gen)
        gaps.append(gap)
        addrs.add(addr)
    return len(addrs), statistics.mean(gaps)


class TestCategoryStatistics:
    def test_insensitive_apps_touch_tiny_footprints_rarely(self):
        for name in CATEGORIES["n"]:
            footprint, gap = footprint_and_gap(APPS[name])
            assert footprint <= 1024, name  # <= 64 KB
            assert gap > 150, name  # sparse L2 traffic

    def test_streaming_apps_never_reuse_within_window(self):
        for name in CATEGORIES["s"]:
            footprint, gap = footprint_and_gap(APPS[name])
            assert footprint == 6_000, name  # every access distinct
            assert gap < 25, name  # heavy traffic

    def test_fitting_footprints_near_capacity(self):
        for name in CATEGORIES["t"]:
            app = APPS[name]
            # Working sets sized to the knee region: 0.75-1.75 MB.
            assert 12_000 <= app.ws_lines <= 28_672, name

    def test_friendly_apps_reuse_heavily_over_large_sets(self):
        for name in CATEGORIES["f"]:
            footprint, gap = footprint_and_gap(APPS[name])
            # Large footprint, but far fewer distinct lines than
            # accesses (Zipf reuse).
            assert footprint > 2_000, name
            assert footprint < 5_800, name

    def test_mpki_ordering_between_categories(self):
        """Traffic intensity: streaming >> friendly/fitting >> insensitive."""
        def intensity(letter):
            gaps = [footprint_and_gap(APPS[n], 2_000)[1] for n in CATEGORIES[letter]]
            return statistics.mean(1.0 / (g + 1) for g in gaps)

        assert intensity("s") > intensity("f") > intensity("n")
