"""Tests for the synthetic address-stream generators."""

import statistics

import pytest

from repro.workloads import loop_stream, phased_stream, scan_stream, zipf_stream


def take(gen, n):
    return [next(gen) for _ in range(n)]


class TestZipf:
    def test_deterministic_by_seed(self):
        a = take(zipf_stream(1000, 1.0, 20, base=0, seed=5), 100)
        b = take(zipf_stream(1000, 1.0, 20, base=0, seed=5), 100)
        assert a == b

    def test_addresses_within_working_set(self):
        pairs = take(zipf_stream(500, 0.8, 10, base=1 << 20, seed=1), 2000)
        for _, addr in pairs:
            assert 1 << 20 <= addr < (1 << 20) + 500

    def test_gap_mean(self):
        pairs = take(zipf_stream(100, 1.0, 50, base=0, seed=2), 5000)
        mean = statistics.mean(g for g, _ in pairs)
        assert 40 < mean < 60

    def test_popularity_skew(self):
        """Higher alpha concentrates accesses on fewer lines."""

        def top_share(alpha):
            pairs = take(zipf_stream(1000, alpha, 1, base=0, seed=3), 8000)
            counts = {}
            for _, a in pairs:
                counts[a] = counts.get(a, 0) + 1
            top = sorted(counts.values(), reverse=True)[:10]
            return sum(top) / 8000

        assert top_share(1.2) > top_share(0.5)

    def test_rejects_empty_working_set(self):
        with pytest.raises(ValueError):
            next(zipf_stream(0, 1.0, 10, 0, 0))


class TestLoop:
    def test_sequential_cycle(self):
        pairs = take(loop_stream(5, 0, base=100, seed=0), 12)
        addrs = [a for _, a in pairs]
        assert addrs == [100, 101, 102, 103, 104] * 2 + [100, 101]

    def test_scan_is_a_long_loop(self):
        pairs = take(scan_stream(10_000, 5, base=0, seed=1), 100)
        addrs = [a for _, a in pairs]
        assert addrs == list(range(100))


class TestPhased:
    def test_alternates_phases(self):
        from functools import partial

        phase_a = partial(loop_stream, 4, 0)
        phase_b = partial(loop_stream, 4, 0)
        gen = phased_stream(phase_a, phase_b, phase_accesses=8, base=0, seed=0)
        pairs = take(gen, 24)
        addrs = [a for _, a in pairs]
        # First 8 from base region, next 8 from the offset region.
        assert all(a < (1 << 30) for a in addrs[:8])
        assert all(a >= (1 << 30) for a in addrs[8:16])
        assert all(a < (1 << 30) for a in addrs[16:24])

    def test_phases_resume_where_they_left_off(self):
        from functools import partial

        phase_a = partial(loop_stream, 10, 0)
        phase_b = partial(loop_stream, 10, 0)
        gen = phased_stream(phase_a, phase_b, phase_accesses=4, base=0, seed=0)
        pairs = take(gen, 16)
        a_addrs = [a for _, a in pairs[:4]] + [a for _, a in pairs[8:12]]
        assert a_addrs == [0, 1, 2, 3, 4, 5, 6, 7]
