"""Tests for the demotion-thresholds table (Fig 3c)."""

import pytest

from repro.core import build_threshold_table, lookup_threshold


class TestBuildTable:
    def test_matches_fig3c_example_exactly(self):
        """Paper example: target 1000, 10% slack, 4 entries, c=256,
        A_max=0.5 -> bounds 1000/1034/1067/1101, thresholds
        32/64/96/128."""
        table = build_threshold_table(
            1000, a_max=0.5, slack=0.1, entries=4, candidates_per_adjust=256
        )
        assert table == [(1000, 32), (1034, 64), (1067, 96), (1101, 128)]

    def test_last_entry_demands_full_aperture(self):
        table = build_threshold_table(2000, a_max=0.4, slack=0.1, entries=8)
        assert table[-1][1] == round(256 * 0.4)
        assert table[-1][0] == int(2000 * 1.1) + 1

    def test_thresholds_monotone(self):
        table = build_threshold_table(5000, a_max=0.5, slack=0.2, entries=8)
        bounds = [b for b, _ in table]
        dems = [d for _, d in table]
        assert bounds == sorted(bounds)
        assert dems == sorted(dems)

    def test_zero_target_single_full_row(self):
        table = build_threshold_table(0, a_max=0.5, slack=0.1)
        assert table == [(1, 128)]


class TestLookup:
    @pytest.fixture
    def table(self):
        return build_threshold_table(
            1000, a_max=0.5, slack=0.1, entries=4, candidates_per_adjust=256
        )

    def test_below_target_is_zero(self, table):
        assert lookup_threshold(table, 999) == 0

    def test_fig3c_ranges(self, table):
        assert lookup_threshold(table, 1000) == 32
        assert lookup_threshold(table, 1033) == 32
        assert lookup_threshold(table, 1034) == 64
        assert lookup_threshold(table, 1066) == 64
        assert lookup_threshold(table, 1067) == 96
        assert lookup_threshold(table, 1100) == 96
        assert lookup_threshold(table, 1101) == 128
        assert lookup_threshold(table, 50_000) == 128
