"""Tests for dynamic partition management (Section 3.4: partitions
are cheap to create, delete and resize)."""

import random

from repro.arrays import ZCacheArray
from repro.core import VantageCache, VantageConfig


def make_cache(seed=0):
    array = ZCacheArray(2048, 4, candidates_per_miss=52, seed=seed)
    return VantageCache(array, 3, VantageConfig(unmanaged_fraction=0.1))


def drive(cache, rng, accesses, parts, ws=3000):
    for _ in range(accesses):
        p = rng.choice(parts)
        cache.access((p << 32) | rng.randrange(ws), p)


class TestDynamicPartitions:
    def test_resize_partition_only_touches_one_target(self):
        cache = make_cache()
        cache.set_allocations([600, 600, 643])
        cache.resize_partition(1, 200)
        assert cache.target == [600, 200, 643]

    def test_delete_then_reuse_identifier(self):
        cache = make_cache()
        cache.set_allocations([600, 600, 643])
        rng = random.Random(0)
        drive(cache, rng, 30_000, [0, 1, 2])
        assert cache.actual_size[1] > 400

        cache.delete_partition(1)
        assert cache.target[1] == 0
        drive(cache, rng, 30_000, [0, 2])
        assert cache.partition_is_drained(1, residual_lines=80)

        # Reuse the ID for a "new" partition.
        cache.resize_partition(1, 400)
        drive(cache, rng, 30_000, [0, 1, 2])
        assert cache.actual_size[1] > 300

    def test_deleted_partition_space_goes_to_others(self):
        cache = make_cache()
        cache.set_allocations([900, 900, 43])
        rng = random.Random(1)
        drive(cache, rng, 30_000, [0, 1, 2])
        before = cache.actual_size[0]
        cache.delete_partition(1)
        cache.resize_partition(0, 1500)
        drive(cache, rng, 40_000, [0, 2])
        assert cache.actual_size[0] > before
