"""Flow-conservation tests on the Vantage controller.

Fig 2a's flow diagram: fills enter the managed region, demotions move
lines managed -> unmanaged, promotions move them back, evictions leave
from the unmanaged region (plus rare forced managed evictions).  Every
line in the cache must be accounted for by exactly these flows.
"""

import random

import pytest

from repro.arrays import ZCacheArray
from repro.core import UNMANAGED, VantageCache, VantageConfig


@pytest.fixture
def warmed_cache():
    array = ZCacheArray(2048, 4, candidates_per_miss=52, seed=3)
    cache = VantageCache(array, 3, VantageConfig(unmanaged_fraction=0.15))
    cache.set_allocations([500, 600, 641])
    rng = random.Random(7)
    for _ in range(60_000):
        p = rng.randrange(3)
        cache.access((p << 32) | rng.randrange(3000), p)
    return cache, rng


class TestFlowConservation:
    def test_region_population_balances_flows(self, warmed_cache):
        """unmanaged occupancy == demotions - promotions - unmanaged
        evictions (demoted-then-evicted-this-miss lines count as
        managed evictions, so they never enter the unmanaged pool
        permanently -- the identity holds on the running totals)."""
        cache, _ = warmed_cache
        inflow = sum(cache.demotions)
        outflow = sum(cache.promotions) + cache.evictions_unmanaged
        # Forced managed evictions may consume just-demoted lines;
        # each such line was counted as a demotion.
        slack = cache.evictions_managed
        assert 0 <= inflow - outflow - cache.unmanaged_size <= slack

    def test_managed_population_balances_flows(self, warmed_cache):
        cache, _ = warmed_cache
        st = cache.stats
        for p in range(3):
            inflow = st.misses[p] + cache.promotions[p]
            outflow = cache.demotions[p] + st.evictions[p]
            assert inflow - outflow == cache.actual_size[p]

    def test_total_occupancy_is_cache_capacity(self, warmed_cache):
        cache, _ = warmed_cache
        managed, unmanaged = cache.region_occupancy()
        assert managed + unmanaged == cache.array.occupancy() == 2048

    def test_eviction_preference_order(self, warmed_cache):
        """In steady state, nearly all evictions leave from the
        unmanaged region (Fig 2a's main outflow)."""
        cache, _ = warmed_cache
        total = cache.evictions_managed + cache.evictions_unmanaged
        assert cache.evictions_unmanaged > 0.9 * total


class TestLongRunStability:
    def test_timestamp_wraparound_does_not_break_sizes(self, warmed_cache):
        """8-bit timestamps wrap hundreds of times over a long run;
        the modulo arithmetic must keep demotions and sizes sane."""
        cache, rng = warmed_cache
        for _ in range(60_000):
            p = rng.randrange(3)
            cache.access((p << 32) | rng.randrange(3000), p)
        for p, target in enumerate(cache.target):
            assert cache.actual_size[p] <= target * 1.3 + 16
        assert 0 <= cache.unmanaged_size <= 2048
        # Line timestamps remain 8-bit.
        assert all(0 <= ts < 256 for ts in cache.line_ts)

    def test_unmanaged_census_matches_register(self, warmed_cache):
        cache, _ = warmed_cache
        census = sum(
            1
            for slot, _ in cache.array.contents()
            if cache.part_of[slot] == UNMANAGED
        )
        assert census == cache.unmanaged_size
