"""Tests for Vantage-DRRIP (Section 6.2)."""

import random

from repro.arrays import ZCacheArray
from repro.core import VantageConfig, VantageDRRIPCache
from repro.replacement.rrip import RRPV_MAX


def make_cache(num_lines=2048, parts=2, u=0.1, seed=0):
    array = ZCacheArray(num_lines, 4, candidates_per_miss=52, seed=seed)
    return VantageDRRIPCache(array, parts, VantageConfig(unmanaged_fraction=u), seed=seed)


def drive(cache, rng, accesses, working_sets):
    for _ in range(accesses):
        p = rng.randrange(len(working_sets))
        cache.access((p << 32) | rng.randrange(working_sets[p]), p)


class TestSizeControl:
    def test_sizes_converge_like_lru_vantage(self):
        cache = make_cache()
        cache.set_allocations([600, 1243])
        rng = random.Random(0)
        drive(cache, rng, 60_000, [4000, 4000])
        assert abs(cache.actual_size[0] - 600) < 130
        assert abs(cache.actual_size[1] - 1243) < 260

    def test_setpoint_rrpv_within_bounds(self):
        cache = make_cache()
        rng = random.Random(1)
        drive(cache, rng, 40_000, [4000, 4000])
        for p in range(2):
            assert 1 <= cache.setpoint_rrpv[p] <= RRPV_MAX + 1


class TestRRIPSemantics:
    def test_hits_reset_rrpv(self):
        cache = make_cache()
        cache.access(42, 0)
        cache.access(42, 0)
        slot = cache.array.lookup(42)
        assert cache.rrpv[slot] == 0

    def test_insertions_use_srrip_or_brrip_values(self):
        cache = make_cache()
        rng = random.Random(2)
        for n in range(500):
            cache.access((0 << 32) | n, 0)
        values = {
            cache.rrpv[slot]
            for slot, _ in cache.array.contents()
            if cache.part_of[slot] == 0
        }
        assert values <= {RRPV_MAX - 1, RRPV_MAX, 0}

    def test_rrpv_moves_with_relocations(self):
        cache = make_cache(num_lines=512)
        rng = random.Random(3)
        drive(cache, rng, 20_000, [1500, 1500])
        # Any hot (recently hit) line must carry rrpv 0 wherever it sits.
        probe = (0 << 32) | 7
        cache.access(probe, 0)  # may miss: installs
        cache.access(probe, 0)  # definite hit: rrpv reset
        slot = cache.array.lookup(probe)
        assert cache.rrpv[slot] == 0

    def test_streaming_partition_lines_demoted_quickly(self):
        """BRRIP-style insertions at max RRPV make a thrashing
        partition's lines instantly demotable: its footprint stays
        pinned at target."""
        cache = make_cache(parts=2, u=0.1)
        cache.set_allocations([1200, 643])
        rng = random.Random(4)
        for _ in range(60_000):
            if rng.random() < 0.5:
                cache.access((0 << 32) | rng.randrange(1100), 0)
            else:
                cache.access((1 << 32) | rng.randrange(200_000), 1)
        assert cache.actual_size[1] <= 643 * 1.3
        assert cache.actual_size[0] >= 1050


class TestDuelling:
    def test_psel_counters_per_partition(self):
        cache = make_cache()
        rng = random.Random(5)
        drive(cache, rng, 30_000, [4000, 200_000])
        assert len(cache.psel) == 2
        # Both duels saw votes (leaders exist in both streams).
        assert any(p != 512 for p in cache.psel)
