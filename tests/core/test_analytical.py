"""Tests for the idealised (exact-aperture) Vantage controller."""

import random

from repro.arrays import RandomCandidatesArray, ZCacheArray
from repro.core import AnalyticalVantageCache, VantageCache, VantageConfig


def drive(cache, rng, accesses, working_sets):
    for _ in range(accesses):
        p = rng.randrange(len(working_sets))
        cache.access((p << 32) | rng.randrange(working_sets[p]), p)


class TestAnalyticalController:
    def test_sizes_converge(self):
        array = ZCacheArray(2048, 4, candidates_per_miss=52, seed=0)
        cache = AnalyticalVantageCache(array, 2, VantageConfig(unmanaged_fraction=0.1))
        cache.set_allocations([700, 1143])
        rng = random.Random(0)
        drive(cache, rng, 50_000, [4000, 4000])
        assert abs(cache.actual_size[0] - 700) < 120
        assert abs(cache.actual_size[1] - 1143) < 200

    def test_histograms_stay_consistent(self):
        array = ZCacheArray(1024, 4, candidates_per_miss=16, seed=1)
        cache = AnalyticalVantageCache(array, 3, VantageConfig(unmanaged_fraction=0.15))
        rng = random.Random(1)
        drive(cache, rng, 30_000, [2000, 1000, 3000])
        for p in range(3):
            assert sum(cache._hist[p]) == cache.actual_size[p]
            assert all(count >= 0 for count in cache._hist[p])

    def test_matches_practical_controller(self):
        """Section 6.2: the practical setpoint controller performs the
        same as perfect apertures.  Check sizes and miss rates agree."""
        results = []
        for cls in (VantageCache, AnalyticalVantageCache):
            array = ZCacheArray(2048, 4, candidates_per_miss=52, seed=2)
            cache = cls(array, 2, VantageConfig(unmanaged_fraction=0.1))
            cache.set_allocations([800, 1043])
            rng = random.Random(2)
            drive(cache, rng, 60_000, [3000, 5000])
            results.append(
                (list(cache.actual_size), [cache.stats.miss_rate(p) for p in range(2)])
            )
        (sizes_a, mr_a), (sizes_b, mr_b) = results
        for p in range(2):
            assert abs(sizes_a[p] - sizes_b[p]) < 0.12 * max(sizes_a[p], 1)
            assert abs(mr_a[p] - mr_b[p]) < 0.05

    def test_runs_on_random_candidates_array(self):
        """The second 'unrealistic configuration' of Section 6.2."""
        array = RandomCandidatesArray(1024, candidates_per_miss=52, seed=3)
        cache = VantageCache(array, 2, VantageConfig(unmanaged_fraction=0.1))
        cache.set_allocations([400, 521])
        rng = random.Random(3)
        drive(cache, rng, 40_000, [2000, 2000])
        assert abs(cache.actual_size[0] - 400) < 90
        assert abs(cache.actual_size[1] - 521) < 110
