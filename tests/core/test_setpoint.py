"""Regression tests for setpoint-based demotions (Section 4.2/4.3).

The paper states opposite adjustment directions in Sections 4.2 and
4.3; DESIGN.md documents why the 4.3 direction (too many demotions =>
widen the keep window) is the stable one.  These tests pin that
direction by checking the feedback loop actually converges: the
per-window demotion count settles around the threshold-table value.
"""

import random

from repro.arrays import ZCacheArray
from repro.core import VantageCache, VantageConfig
from repro.core.cache import TS_MOD


def steady_state_cache(seed=0):
    array = ZCacheArray(2048, 4, candidates_per_miss=52, seed=seed)
    cache = VantageCache(array, 2, VantageConfig(unmanaged_fraction=0.1))
    cache.set_allocations([900, 943])
    rng = random.Random(seed)
    for _ in range(50_000):
        p = rng.randrange(2)
        cache.access((p << 32) | rng.randrange(4000), p)
    return cache, rng


class TestFeedbackDirection:
    def test_keep_width_settles_strictly_inside_range(self):
        """If the sign were flipped, the width would rail at 0 or 255."""
        cache, _ = steady_state_cache()
        for p in range(2):
            assert 0 < cache.keep_width[p] < TS_MOD - 1

    def test_demotion_rate_matches_churn(self):
        """Steady state requires demotions ~= insertions - evictions
        from each partition (sizes constant <=> flows balance)."""
        cache, rng = steady_state_cache()
        base_dem = list(cache.demotions)
        base_ins = list(cache.stats.misses)
        for _ in range(20_000):
            p = rng.randrange(2)
            cache.access((p << 32) | rng.randrange(4000), p)
        for p in range(2):
            demoted = cache.demotions[p] - base_dem[p]
            inserted = cache.stats.misses[p] - base_ins[p]
            assert inserted > 500
            # Each insertion must be balanced by ~one demotion.
            assert 0.8 < demoted / inserted < 1.2

    def test_sizes_stay_pinned_across_long_run(self):
        cache, rng = steady_state_cache()
        excursions = []
        for _ in range(40):
            for _ in range(1000):
                p = rng.randrange(2)
                cache.access((p << 32) | rng.randrange(4000), p)
            excursions.append(abs(cache.actual_size[0] - 900))
        assert max(excursions) < 140


class TestSetpointMechanics:
    def test_setpoint_tracks_timestamp_advances(self):
        """CurrentTS bumps must not change the keep width (the
        setpoint moves with the timestamp, Fig 3b)."""
        cache, rng = steady_state_cache()
        width_before = list(cache.keep_width)
        # Hits only: timestamps advance, no replacements, no feedback.
        from repro.core import UNMANAGED

        resident = [
            [addr for _, addr in cache.array.contents() if cache.part_of[cache.array.lookup(addr)] == p]
            for p in range(2)
        ]
        ticked = [False, False]
        for _ in range(6000):
            p = rng.randrange(2)
            ts = cache.current_ts[p]
            cache.access(rng.choice(resident[p]), p)
            if cache.current_ts[p] != ts:
                ticked[p] = True
        assert all(ticked), "timestamps should have advanced"
        assert cache.keep_width == width_before

    def test_candidate_counters_wrap_at_c(self):
        cache, _ = steady_state_cache()
        c = cache.config.candidates_per_adjust
        for p in range(2):
            assert 0 <= cache.cands_seen[p] < c
            assert 0 <= cache.cands_demoted[p] <= c
