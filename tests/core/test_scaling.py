"""Scalability tests: Vantage's guarantees must be independent of the
partition count (the paper's core scalability claim)."""

import random

from repro.arrays import ZCacheArray
from repro.core import VantageCache, VantageConfig


def run_partitions(num_partitions, accesses=60_000, seed=0):
    array = ZCacheArray(4096, 4, candidates_per_miss=52, seed=seed)
    cache = VantageCache(array, num_partitions, VantageConfig(unmanaged_fraction=0.1))
    rng = random.Random(seed)
    for _ in range(accesses):
        p = rng.randrange(num_partitions)
        cache.access((p << 32) | rng.randrange(2_000), p)
    return cache


class TestManyPartitions:
    def test_32_partitions_track_equal_targets(self):
        cache = run_partitions(32)
        per_part = cache.allocation_total // 32
        for p in range(32):
            assert abs(cache.actual_size[p] - per_part) < 0.5 * per_part + 16

    def test_managed_eviction_fraction_stable_across_counts(self):
        """The unmanaged-region budget does not depend on P."""
        fractions = {}
        for parts in (2, 8, 32):
            cache = run_partitions(parts, seed=1)
            fractions[parts] = cache.managed_eviction_fraction()
        # Same u, same R: roughly the same forced-eviction rate, with
        # no blow-up as partitions scale 16x.
        assert fractions[32] < max(fractions[2] * 4, 0.05)

    def test_heterogeneous_targets_at_scale(self):
        array = ZCacheArray(8192, 4, candidates_per_miss=52, seed=2)
        cache = VantageCache(array, 16, VantageConfig(unmanaged_fraction=0.1))
        targets = [100 + 50 * p for p in range(16)]  # 100..850 lines
        # Sum = 7600 > managed? managed = 7373. Scale down.
        total = sum(targets)
        targets = [t * cache.allocation_total // total for t in targets]
        cache.set_allocations(targets)
        rng = random.Random(3)
        for _ in range(120_000):
            p = rng.randrange(16)
            cache.access((p << 32) | rng.randrange(3_000), p)
        for p in range(16):
            if targets[p] > 100:
                assert abs(cache.actual_size[p] - targets[p]) < 0.45 * targets[p]


class TestFineGrainAtScale:
    def test_tiny_partitions_reach_minimum_stable_size(self):
        """Hundreds-of-lines partitions are meaningful (the scheme's
        fine-grain selling point)."""
        array = ZCacheArray(4096, 4, candidates_per_miss=52, seed=4)
        cache = VantageCache(array, 8, VantageConfig(unmanaged_fraction=0.15))
        targets = [64] * 4 + [800] * 4
        cache.set_allocations(targets)
        rng = random.Random(5)
        for _ in range(80_000):
            p = rng.randrange(8)
            ws = 200 if p < 4 else 2_000
            cache.access((p << 32) | rng.randrange(ws), p)
        for p in range(4):
            # Small partitions stay small -- bounded by MSS, far from
            # a way-sized quantum (512 lines for an 8-way split).
            assert cache.actual_size[p] < 400
        for p in range(4, 8):
            assert cache.actual_size[p] > 550
