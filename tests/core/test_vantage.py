"""Behavioural tests for the Vantage controller.

These pin the paper's claims at unit scale: sizes converge to targets
and never undershoot, partitions borrow from the unmanaged region
instead of each other, forced managed evictions stay below the model's
worst case, high-churn partitions settle at their minimum stable size,
and deleted partitions drain.
"""

import random

import pytest

from repro.analysis.sizing import minimum_stable_size, worst_case_pev
from repro.arrays import SetAssociativeArray, ZCacheArray
from repro.core import UNMANAGED, VantageCache, VantageConfig


def make_cache(num_lines=2048, parts=4, u=0.1, r=52, seed=0, a_max=0.5):
    array = ZCacheArray(num_lines, 4, candidates_per_miss=r, seed=seed)
    cfg = VantageConfig(unmanaged_fraction=u, a_max=a_max, slack=0.1)
    return VantageCache(array, parts, cfg)


def drive(cache, rng, accesses, working_sets, parts=None):
    """Random accesses: partition p draws from `working_sets[p]` lines."""
    parts = parts if parts is not None else list(range(len(working_sets)))
    num = len(parts)
    for _ in range(accesses):
        i = rng.randrange(num)
        p = parts[i]
        cache.access((p << 32) | rng.randrange(working_sets[i]), p)


class TestSizeEnforcement:
    def test_sizes_converge_to_targets(self):
        cache = make_cache()
        targets = [200, 400, 600, 643]
        cache.set_allocations(targets)
        rng = random.Random(0)
        drive(cache, rng, 60_000, [4000, 4000, 4000, 4000])
        for p, target in enumerate(targets):
            size = cache.actual_size[p]
            # Within the feedback slack plus a small margin.
            assert size <= target * 1.25 + 8, f"partition {p} overgrown: {size}"
            assert size >= target * 0.85 - 8, f"partition {p} starved: {size}"

    def test_never_undershoots_with_demand(self):
        """A partition with demand never sits below target (Fig 8b:
        'in Vantage the partition is never under its target')."""
        cache = make_cache()
        targets = [300, 500, 500, 543]
        cache.set_allocations(targets)
        rng = random.Random(1)
        drive(cache, rng, 40_000, [4000] * 4)
        for _ in range(20):
            drive(cache, rng, 2000, [4000] * 4)
            for p, target in enumerate(targets):
                assert cache.actual_size[p] >= target * 0.9

    def test_accounting_matches_tags(self):
        """ActualSize registers must equal the per-slot tag census."""
        cache = make_cache(num_lines=1024, parts=3)
        cache.set_allocations([300, 300, 322])
        rng = random.Random(2)
        drive(cache, rng, 30_000, [2000, 1500, 2500])
        census = [0] * 3
        unmanaged = 0
        for slot, _ in cache.array.contents():
            owner = cache.part_of[slot]
            if owner == UNMANAGED:
                unmanaged += 1
            else:
                census[owner] += 1
        assert census == cache.actual_size
        assert unmanaged == cache.unmanaged_size

    def test_fine_grain_targets(self):
        """Targets at line granularity are honoured, not rounded to
        way-sized chunks."""
        cache = make_cache(num_lines=4096, parts=2, u=0.1)
        cache.set_allocations([1111, 2575])
        rng = random.Random(3)
        drive(cache, rng, 60_000, [8000, 8000])
        assert abs(cache.actual_size[0] - 1111) < 120
        assert abs(cache.actual_size[1] - 2575) < 270


class TestIsolation:
    def test_streaming_neighbour_cannot_shrink_partition(self):
        """Churn-based management: partition 0's working set stays
        resident no matter how hard partition 1 thrashes."""
        cache = make_cache(num_lines=2048, parts=2, u=0.1)
        cache.set_allocations([800, 1043])
        rng = random.Random(4)
        # Partition 0 warms a working set smaller than its target.
        ws0 = [(0 << 32) | a for a in range(700)]
        for addr in ws0 * 3:
            cache.access(addr, 0)
        # Partition 1 streams 30k distinct lines.
        for n in range(30_000):
            cache.access((1 << 32) | n, 1)
        # Touch ws0 again: it must still be essentially all resident.
        hits = sum(1 for addr in ws0 if cache.array.lookup(addr) is not None)
        assert hits >= 0.97 * len(ws0)

    def test_borrowing_comes_from_unmanaged_region(self):
        """Overgrowth beyond targets is bounded by the slack +
        MSS borrowing model, not taken from other partitions."""
        cache = make_cache(num_lines=2048, parts=2, u=0.15, a_max=0.4)
        cache.set_allocations([850, 10])  # partition 1: tiny target, huge churn
        rng = random.Random(5)
        for _ in range(40_000):
            if rng.random() < 0.5:
                cache.access((0 << 32) | rng.randrange(820), 0)
            else:
                cache.access((1 << 32) | rng.randrange(100_000), 1)
        # Partition 0 keeps its full allocation.
        assert cache.actual_size[0] >= 820 * 0.97
        # Partition 1 stabilises near its minimum stable size.
        total = sum(cache.actual_size) / 2048
        mss = minimum_stable_size(1.0, total, a_max=0.4, r=52, m=0.85) * 2048
        assert cache.actual_size[1] <= mss * 1.6 + 32


class TestManagedEvictions:
    def test_fraction_respects_model_bound(self):
        cache = make_cache(num_lines=4096, parts=4, u=0.15, a_max=0.5)
        rng = random.Random(6)
        drive(cache, rng, 80_000, [4000, 3000, 2000, 8000])
        bound = worst_case_pev(0.15, 52, a_max=0.5, slack=0.1)
        assert cache.managed_eviction_fraction() <= bound * 1.5 + 0.01

    def test_larger_unmanaged_region_reduces_forced_evictions(self):
        fractions = []
        for u in (0.05, 0.25):
            cache = make_cache(num_lines=4096, parts=4, u=u)
            rng = random.Random(7)
            drive(cache, rng, 60_000, [4000, 3000, 2000, 8000])
            fractions.append(cache.managed_eviction_fraction())
        assert fractions[1] < fractions[0]


class TestDynamics:
    def test_resize_transfers_capacity(self):
        cache = make_cache(num_lines=2048, parts=2, u=0.1)
        cache.set_allocations([1500, 343])
        rng = random.Random(8)
        drive(cache, rng, 30_000, [4000, 4000])
        assert cache.actual_size[0] > 1300
        cache.set_allocations([343, 1500])
        drive(cache, rng, 40_000, [4000, 4000])
        assert cache.actual_size[0] < 550
        assert cache.actual_size[1] > 1300

    def test_deleting_partition_drains_it(self):
        cache = make_cache(num_lines=2048, parts=2, u=0.1)
        cache.set_allocations([900, 943])
        rng = random.Random(9)
        drive(cache, rng, 30_000, [4000, 4000])
        cache.set_allocations([0, 1843])
        # Only partition 1 accesses from now on.
        drive(cache, rng, 40_000, [4000, 4000], parts=[1, 1])
        assert cache.actual_size[0] < 150
        assert cache.actual_size[1] > 1500

    def test_promotions_rejoin_partition(self):
        cache = make_cache(num_lines=1024, parts=2, u=0.2)
        cache.set_allocations([400, 419])
        rng = random.Random(10)
        drive(cache, rng, 20_000, [1000, 3000])
        assert sum(cache.promotions) > 0
        # Accounting still consistent after promotions.
        census = [0, 0]
        for slot, _ in cache.array.contents():
            owner = cache.part_of[slot]
            if owner != UNMANAGED:
                census[owner] += 1
        assert census == cache.actual_size


class TestOtherArrays:
    def test_works_on_set_associative(self):
        array = SetAssociativeArray(2048, 16, hashed=True, seed=0)
        cache = VantageCache(array, 2, VantageConfig(unmanaged_fraction=0.1))
        cache.set_allocations([600, 1243])
        rng = random.Random(11)
        drive(cache, rng, 40_000, [4000, 4000])
        assert abs(cache.actual_size[0] - 600) < 120
        assert abs(cache.actual_size[1] - 1243) < 220

    def test_allocation_total_is_managed_region(self):
        cache = make_cache(num_lines=2048, u=0.25)
        assert cache.allocation_total == 1536


class TestValidation:
    def test_targets_cannot_exceed_managed_region(self):
        cache = make_cache(num_lines=1024, parts=2, u=0.1)
        with pytest.raises(ValueError):
            cache.set_allocations([800, 800])

    def test_negative_targets_rejected(self):
        cache = make_cache(parts=2)
        with pytest.raises(ValueError):
            cache.set_allocations([-1, 100])

    def test_vector_length_checked(self):
        cache = make_cache(parts=2)
        with pytest.raises(ValueError):
            cache.set_allocations([100])
