"""Tests for VantageConfig and its isolation-driven sizing."""

import pytest

from repro.core import VantageConfig


class TestValidation:
    def test_defaults_are_the_papers(self):
        cfg = VantageConfig()
        assert cfg.unmanaged_fraction == 0.05
        assert cfg.a_max == 0.5
        assert cfg.slack == 0.1
        assert cfg.threshold_entries == 8
        assert cfg.candidates_per_adjust == 256

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"unmanaged_fraction": 0.0},
            {"unmanaged_fraction": 1.0},
            {"a_max": 0.0},
            {"a_max": 1.5},
            {"slack": 0.0},
            {"threshold_entries": 1},
            {"candidates_per_adjust": 4},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            VantageConfig(**kwargs)


class TestSizing:
    def test_for_isolation_matches_formula(self):
        """Section 4.3: R=52, A_max=0.4, Pev=1e-2 needs ~13% unmanaged."""
        cfg = VantageConfig.for_isolation(52, target_pev=1e-2, a_max=0.4)
        assert cfg.unmanaged_fraction == pytest.approx(0.1377, abs=0.005)

    def test_stronger_isolation_needs_more_space(self):
        weak = VantageConfig.for_isolation(52, target_pev=1e-2, a_max=0.4)
        strong = VantageConfig.for_isolation(52, target_pev=1e-4, a_max=0.4)
        assert strong.unmanaged_fraction > weak.unmanaged_fraction
        assert strong.unmanaged_fraction == pytest.approx(0.215, abs=0.01)

    def test_managed_lines(self):
        cfg = VantageConfig(unmanaged_fraction=0.25)
        assert cfg.managed_lines(1024) == 768

    def test_more_candidates_need_less_unmanaged(self):
        r16 = VantageConfig.for_isolation(16, target_pev=1e-2)
        r52 = VantageConfig.for_isolation(52, target_pev=1e-2)
        assert r52.unmanaged_fraction < r16.unmanaged_fraction
