"""Fixtures for the federation tests (helpers in fedutil.py)."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from fedutil import DaemonProc, GatewayHarness


@pytest.fixture
def fed_env(tmp_path, monkeypatch):
    """Isolated env: the test process (and the in-thread gateway) use
    a fresh cache dir; fleet/daemon knobs are cleared."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "gateway-cache"))
    for knob in ("REPRO_SERVICE_ADDR", "REPRO_FED_GATEWAY",
                 "REPRO_TRACE_SHM", "REPRO_GATEWAY_SOCKET",
                 "REPRO_SERVICE_SOCKET"):
        monkeypatch.delenv(knob, raising=False)
    return tmp_path


@pytest.fixture
def fleet(fed_env):
    """Two live daemon subprocesses behind an in-thread gateway."""
    nodes = [DaemonProc(fed_env, f"node{i}") for i in range(2)]
    gateway = None
    try:
        for node in nodes:
            node.wait_ready()
        gateway = GatewayHarness(fed_env, [n.addr for n in nodes])
        yield SimpleNamespace(gateway=gateway, nodes=nodes, tmp=fed_env)
    finally:
        if gateway is not None:
            gateway.stop()
        for node in nodes:
            node.stop()
