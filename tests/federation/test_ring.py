"""Rendezvous-ring and membership unit tests (no sockets)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.federation import HashRing, Membership, NodeInfo, parse_node
from repro.federation.ring import ALIVE, DEAD, UNKNOWN
from repro.service import protocol


def _members(n: int, fail_threshold: int = 2) -> Membership:
    return Membership(
        [
            NodeInfo(name=f"node{i}", addr=("127.0.0.1", 7000 + i))
            for i in range(n)
        ],
        fail_threshold=fail_threshold,
    )


class TestHashRing:
    def test_preference_is_a_deterministic_permutation(self):
        ring = HashRing(["node0", "node1", "node2"])
        for key in ("a", "b", "deadbeef" * 8):
            order = ring.preference(key)
            assert sorted(order) == ["node0", "node1", "node2"]
            assert order == ring.preference(key)

    def test_route_honors_routable_set(self):
        ring = HashRing(["node0", "node1"])
        key = "somejobkey"
        best = ring.preference(key)[0]
        other = ring.preference(key)[1]
        assert ring.route(key, {"node0", "node1"}) == best
        assert ring.route(key, {other}) == other
        assert ring.route(key, set()) is None

    def test_keys_spread_over_nodes(self):
        """Over many keys, every node gets a meaningful share -- the
        property that makes the gateway a load balancer at all."""
        ring = HashRing([f"node{i}" for i in range(4)])
        counts = {name: 0 for name in ring.names}
        for i in range(2000):
            counts[ring.preference(f"key{i}")[0]] += 1
        for name, count in counts.items():
            assert count > 2000 / 4 / 2, (name, counts)

    def test_removing_a_node_only_remaps_its_keys(self):
        """Rendezvous stability: keys not placed on the removed node
        keep their placement."""
        ring = HashRing(["node0", "node1", "node2"])
        keys = [f"key{i}" for i in range(500)]
        full = {k: ring.route(k, {"node0", "node1", "node2"}) for k in keys}
        without = {k: ring.route(k, {"node0", "node1"}) for k in keys}
        for k in keys:
            if full[k] != "node2":
                assert without[k] == full[k]

    def test_rejects_empty_and_duplicate_names(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a", "a"])


class TestMembership:
    def test_fail_threshold_transitions(self):
        members = _members(2, fail_threshold=2)
        assert members.node("node0").state == UNKNOWN
        assert not members.note_failure("node0")
        assert members.node("node0").state == UNKNOWN  # 1 < threshold
        assert members.note_failure("node0")  # crossed into dead
        assert members.node("node0").state == DEAD
        assert not members.note_failure("node0")  # already dead

    def test_mark_alive_resets_failures(self):
        members = _members(1)
        members.note_failure("node0")
        members.mark_alive("node0", {"queue_depth": 3})
        node = members.node("node0")
        assert node.state == ALIVE
        assert node.failures == 0
        assert node.summary["queue_depth"] == 3
        assert members.alive() == 1

    def test_fatal_failure_kills_immediately(self):
        """A mid-job connection loss is conclusive: no second probe
        needed before the ring stops routing new work there."""
        members = _members(2, fail_threshold=5)
        assert members.note_failure("node1", fatal=True)
        assert members.node("node1").state == DEAD
        assert members.dead() == 1

    def test_route_skips_dead_and_excluded(self):
        members = _members(3)
        key = "jobkey"
        order = members.ring.preference(key)
        assert members.route(key) == order[0]
        members.note_failure(order[0], fatal=True)
        assert members.route(key) == order[1]
        assert members.route(key, exclude={order[1]}) == order[2]

    def test_route_falls_back_to_excluded_before_giving_up(self):
        members = _members(2)
        key = "jobkey"
        survivor = members.ring.preference(key)[0]
        dead = members.ring.preference(key)[1]
        members.note_failure(dead, fatal=True)
        # Everything routable is excluded: retrying the survivor beats
        # failing the job.
        assert members.route(key, exclude={survivor}) == survivor

    def test_route_none_only_when_all_dead(self):
        members = _members(2)
        members.note_failure("node0", fatal=True)
        members.note_failure("node1", fatal=True)
        assert members.route("anything") is None

    def test_rows_describe_every_node(self):
        members = _members(2)
        rows = members.rows()
        assert [r["name"] for r in rows] == ["node0", "node1"]
        assert all(r["state"] == UNKNOWN for r in rows)


class TestParseNode:
    def test_tcp_specs(self):
        assert parse_node("127.0.0.1:7070") == ("127.0.0.1", 7070)
        assert parse_node("[::1]:7070") == ("::1", 7070)

    def test_path_specs(self):
        assert parse_node("/tmp/node.sock") == Path("/tmp/node.sock")
        assert parse_node("results/node.sock") == Path("results/node.sock")
        assert parse_node("plainname") == Path("plainname")

    def test_bad_specs_raise_one_line_errors(self):
        for bad in ("", "host:nan", "host:0"):
            with pytest.raises(protocol.ProtocolError) as err:
                parse_node(bad)
            assert "\n" not in str(err.value)


class TestNodeInfo:
    def test_addr_text_brackets_ipv6(self):
        assert NodeInfo("n", ("::1", 9)).addr_text() == "[::1]:9"
        assert NodeInfo("n", ("127.0.0.1", 9)).addr_text() == "127.0.0.1:9"
        assert NodeInfo("n", Path("/x.sock")).addr_text() == "/x.sock"

    def test_unknown_nodes_are_routable(self):
        node = NodeInfo("n", ("127.0.0.1", 9))
        assert node.routable
        node.state = DEAD
        assert not node.routable
