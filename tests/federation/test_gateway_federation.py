"""End-to-end federation: a gateway fronting two real daemon
subprocesses, with the acceptance guarantees under test:

- a multi-mix multi-scheme sweep submitted through the gateway is
  bitwise-identical to serial ``run_mix``, with work spread over both
  nodes;
- resubmitting the sweep from a fresh client is served from the
  gateway's read-through cache (cross-node result federation), >= 90%
  of slots;
- concurrent duplicate submissions from independent clients coalesce
  (``dedupe_hits``);
- ``run_jobs`` with ``REPRO_FED_GATEWAY`` fans a sweep out through the
  gateway, and falls back to the local pool when no gateway answers;
- the ``federation`` stats group follows the PR-2 tree schema.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.service import ServiceError

from fedutil import INSTRUCTIONS, make_jobs, serial_results

SCHEMES = ("lru-sa16", "vantage-z4/52")


class TestFederatedSweep:
    def test_sweep_parity_spread_resubmit_and_stats(self, fleet):
        gateway = fleet.gateway.gateway
        jobs = make_jobs(mixes=6, schemes=SCHEMES)  # 12 distinct jobs
        expected = serial_results(jobs)

        with fleet.gateway.client() as fed:
            batch = fed.submit_batch(jobs).raise_on_error()
        assert [o.result for o in batch.outcomes] == expected
        assert not any(batch.cached), "fresh sweep must not be cached"

        # The ring spread the sweep over both nodes.
        routed = {n.name: n.routed for n in gateway.membership.nodes()}
        assert all(count > 0 for count in routed.values()), routed
        assert sum(routed.values()) == len(jobs)
        assert gateway.completed == len(jobs)
        assert gateway.failed == 0

        # Resubmission from a *different* client: the gateway's
        # read-through cache federates results computed on either
        # node, so >= 90% (here: all) of the slots are cache hits.
        with fleet.gateway.client() as fed:
            again = fed.submit_batch(jobs).raise_on_error()
        assert [o.result for o in again.outcomes] == expected
        assert sum(again.cached) >= 0.9 * len(jobs)
        assert gateway.cache_hits >= 0.9 * len(jobs)
        # No new simulations were routed for the resubmission.
        assert sum(n.routed for n in gateway.membership.nodes()) == len(jobs)

        # The federation stats group: PR-2 tree shape, JSON-stable,
        # with live per-node health rows.
        with fleet.gateway.client() as fed:
            tree = fed.stats()
            summary = fed.federation_status()
            rows = fed.node_rows()
        assert json.loads(json.dumps(tree)) == tree
        stats = tree["federation"]
        assert stats["routed"] == len(jobs)
        assert stats["cache_hits"] >= 0.9 * len(jobs)
        assert stats["failover_requeues"] == 0
        assert stats["ring"]["nodes"] == 2
        assert stats["ring"]["alive"] == 2
        assert stats["ring"]["dead"] == 0
        for name in ("node0", "node1"):
            node_stats = stats["nodes"][name]
            assert node_stats["alive"] is True
            assert node_stats["queue_depth"] >= 0  # health probe ran
        assert summary["role"] == "gateway"
        assert [r["name"] for r in rows] == ["node0", "node1"]
        assert all(r["state"] == "alive" for r in rows)

    def test_stats_tree_names_follow_schema(self, fed_env):
        """Every federation stat name passes the telemetry tree's
        naming rule and schema walk -- without any live nodes."""
        from repro.federation import FederationGateway, GatewayConfig

        gateway = FederationGateway(
            GatewayConfig(
                socket_path=fed_env / "g.sock",
                nodes=["127.0.0.1:1", "127.0.0.1:2"],
            )
        )
        rows = gateway.stats_tree().schema()
        names = [name for name, _, _ in rows]
        assert "federation.routed" in names
        assert "federation.dedupe_hits" in names
        assert "federation.failover_requeues" in names
        assert "federation.ring.alive" in names
        assert "federation.nodes.node0.queue_depth" in names
        assert "federation.nodes.node1.workers_alive" in names


class TestDedupe:
    def test_concurrent_duplicates_from_two_clients_coalesce(self, fleet):
        """Two independent clients submit the identical fresh job at
        once: one simulation runs, the second submission coalesces on
        the gateway (dedupe) -- and both get the serial result."""
        gateway = fleet.gateway.gateway
        job = make_jobs(mixes=1, schemes=("srrip-sa16",),
                        instructions=600_000)[0]
        results = {}

        def submit(idx):
            with fleet.gateway.client() as fed:
                results[idx] = fed.submit(job)

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert sorted(results) == [0, 1]
        assert results[0].result == results[1].result
        expected = serial_results([job])[0]
        assert results[0].result == expected
        # The overlap window is the whole simulation, so the second
        # submission coalesced instead of simulating again.
        assert gateway.dedupe_hits >= 1
        assert gateway.routed == 1


class TestHarnessFanOut:
    def test_run_jobs_routes_through_gateway(self, fleet, monkeypatch):
        from repro.harness import parallel

        monkeypatch.setenv(
            "REPRO_FED_GATEWAY", str(fleet.gateway.config.socket_path)
        )
        jobs = make_jobs(mixes=2, schemes=SCHEMES)
        expected = serial_results(jobs)
        before = parallel.FED_JOBS
        outcomes = parallel.run_jobs(jobs)
        assert [o.result for o in outcomes] == expected
        assert parallel.FED_JOBS - before == len(jobs)
        assert fleet.gateway.gateway.completed == len(jobs)

    def test_run_jobs_falls_back_when_gateway_unreachable(
        self, fed_env, monkeypatch
    ):
        from fedutil import free_port
        from repro.harness import parallel

        monkeypatch.setenv(
            "REPRO_FED_GATEWAY", f"127.0.0.1:{free_port()}"
        )
        jobs = make_jobs(mixes=1, schemes=("lru-sa16",))
        expected = serial_results(jobs)
        before = parallel.FED_FALLBACKS
        outcomes = parallel.run_jobs(jobs, workers=1)
        assert [o.result for o in outcomes] == expected
        assert parallel.FED_FALLBACKS - before == len(jobs)


class TestCliVerbs:
    def test_fed_submit_and_fed_status(self, fleet, capsys):
        from repro.cli import main

        gateway_spec = str(fleet.gateway.config.socket_path)
        code = main([
            "fed-submit", "--gateway", gateway_spec,
            "--mixes", "2", "--schemes", ",".join(SCHEMES),
            "--instructions", str(INSTRUCTIONS),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "4 job(s)" in out
        assert "done: 4/4 ok" in out

        code = main(["fed-status", "--gateway", gateway_spec])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "node0" in out and "node1" in out
        assert "alive" in out

    def test_fed_status_unreachable_gateway_is_one_line_error(
        self, fed_env, capsys
    ):
        from repro.cli import main

        code = main([
            "fed-status", "--gateway", str(fed_env / "nonexistent.sock"),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert out.startswith("error:")

    def test_bad_gateway_addr_is_one_line_error(self, fed_env, capsys):
        from repro.cli import main

        code = main(["fed-status", "--gateway", "::1:99999x"])
        out = capsys.readouterr().out
        assert code == 1
        assert out.startswith("error:")
        assert "\n" not in out.strip()
