"""Shared helpers for the federation tests.

A *fleet* is the real thing end to end: two daemon subprocesses
(``python -m repro serve --tcp``) with private results caches, fronted
by a :class:`~repro.federation.FederationGateway` running on a
background thread of the test process (so assertions can read its
counters and membership directly).  Daemons are launched in their own
process groups so a SIGKILL in the failover tests takes their forked
workers down too -- no leaked processes.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.federation import FederatedClient, FederationGateway, GatewayConfig
from repro.service import ServiceError

SRC = Path(__file__).resolve().parents[2] / "src"

#: Short enough for quick sweeps, long enough to simulate something.
INSTRUCTIONS = 6_000


def free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def make_jobs(mixes: int, schemes, instructions: int = INSTRUCTIONS):
    """The mix x scheme sweep grid the federation tests share."""
    from repro.harness import SimJob
    from repro.sim import small_system
    from repro.workloads import make_mix

    config = small_system()
    return [
        SimJob(make_mix("sftn", index), scheme, config, instructions, seed=0)
        for index in range(1, mixes + 1)
        for scheme in schemes
    ]


def serial_results(jobs):
    """Ground truth: each job's serial run_mix result, job order."""
    from repro.harness import run_mix

    return [
        run_mix(
            job.mix, job.scheme, job.config, job.instructions, seed=job.seed
        ).result
        for job in jobs
    ]


class DaemonProc:
    """One experiment daemon as a real subprocess on loopback TCP."""

    def __init__(self, tmp_path: Path, name: str, workers: int = 1):
        self.name = name
        self.port = free_port()
        self.addr = f"127.0.0.1:{self.port}"
        self.socket_path = tmp_path / f"{name}.sock"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        # Each node gets a *private* results cache: cross-node result
        # federation must come from the gateway's read-through cache,
        # not from the nodes accidentally sharing a directory.
        env["REPRO_CACHE_DIR"] = str(tmp_path / f"{name}-cache")
        for knob in ("REPRO_SERVICE_ADDR", "REPRO_FED_GATEWAY",
                     "REPRO_TRACE_SHM", "REPRO_GATEWAY_SOCKET"):
            env.pop(knob, None)
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--socket", str(self.socket_path),
                "--tcp", self.addr,
                "--workers", str(workers),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            start_new_session=True,  # SIGKILL the group, workers too
        )

    def wait_ready(self, timeout: float = 60.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                out = self.proc.stdout.read().decode(errors="replace")
                raise RuntimeError(f"{self.name} died at startup:\n{out}")
            try:
                with socket.create_connection(
                    ("127.0.0.1", self.port), timeout=1
                ):
                    return
            except OSError:
                time.sleep(0.05)
        raise RuntimeError(f"{self.name} never listened on {self.addr}")

    def kill(self) -> None:
        """SIGKILL the daemon *and its workers* (whole process group)."""
        if self.proc.poll() is None:
            with_group = getattr(os, "killpg", None)
            if with_group:
                try:
                    os.killpg(os.getpgid(self.proc.pid), signal.SIGKILL)
                except (OSError, ProcessLookupError):
                    self.proc.kill()
            else:
                self.proc.kill()
        self.proc.wait(timeout=30)
        self.proc.stdout.close()

    def stop(self) -> None:
        if self.proc.poll() is None:
            try:
                from repro.service import ServiceClient

                with ServiceClient(
                    tcp=("127.0.0.1", self.port), timeout=10, retries=0
                ) as svc:
                    svc.shutdown()
                self.proc.wait(timeout=30)
            except (OSError, ServiceError, subprocess.TimeoutExpired):
                pass
        self.kill()


class GatewayHarness:
    """A gateway on a background thread's event loop, with its
    internals (membership, counters) visible to assertions."""

    def __init__(self, tmp_path: Path, node_addrs: list[str], **overrides):
        config = dict(
            socket_path=tmp_path / "gateway.sock",
            nodes=list(node_addrs),
            health_interval=0.2,
            connect_timeout=10.0,
        )
        config.update(overrides)
        self.config = GatewayConfig(**config)
        self.gateway: FederationGateway | None = None
        self._started = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._started.wait(timeout=60), "gateway failed to start"

    def _run(self):
        async def main():
            self.gateway = FederationGateway(self.config)
            await self.gateway.start()
            self._started.set()
            try:
                await self.gateway._shutdown.wait()
            finally:
                await self.gateway.stop()

        asyncio.run(main())

    def client(self, **kwargs) -> FederatedClient:
        return FederatedClient(self.config.socket_path, **kwargs).connect()

    def stop(self):
        if self.thread.is_alive():
            try:
                with self.client() as fed:
                    fed.shutdown()
            except (OSError, ServiceError):
                self.gateway.request_shutdown()
            self.thread.join(timeout=60)
        assert not self.thread.is_alive(), "gateway thread failed to exit"
