"""Gateway failover: SIGKILL one of two daemons mid-sweep.

The acceptance guarantee under test: the sweep still completes, every
outcome is bitwise-identical to serial ``run_mix``, the gateway's
``failover_requeues`` counter shows jobs were rerouted, the dead node
is marked dead in the membership table -- and a resubmission of the
same sweep is served from the gateway's cache even though one of the
nodes that computed it no longer exists.
"""

from __future__ import annotations

import threading
import time

import pytest

from fedutil import make_jobs, serial_results

#: Long enough per job that the kill lands while the sweep is still
#: in flight on both nodes, short enough to keep the test quick.
KILL_INSTRUCTIONS = 300_000

SCHEMES = ("lru-sa16", "vantage-z4/52")


def _wait(predicate, timeout: float, what: str) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {what}"
        time.sleep(0.02)


class TestFailover:
    def test_sigkilled_node_mid_sweep_fails_over_bitwise_identical(
        self, fleet
    ):
        gateway = fleet.gateway.gateway
        jobs = make_jobs(
            mixes=5, schemes=SCHEMES, instructions=KILL_INSTRUCTIONS
        )  # 10 jobs, hash-spread over both nodes

        batch_box = {}

        def run_sweep():
            with fleet.gateway.client() as fed:
                batch_box["batch"] = fed.submit_batch(jobs)

        sweep = threading.Thread(target=run_sweep)
        sweep.start()

        # Wait until the whole sweep is forwarded and both nodes are
        # actually working, then SIGKILL the busier node's process
        # group (daemon and its workers).
        _wait(
            lambda: gateway.routed >= len(jobs)
            and all(n.in_flight > 0 for n in gateway.membership.nodes()),
            timeout=120,
            what="the sweep to be in flight on both nodes",
        )
        nodes = gateway.membership.nodes()
        victim = max(nodes, key=lambda n: n.in_flight)
        victim_index = int(victim.name.removeprefix("node"))
        victim_share = victim.in_flight
        assert victim_share > 0
        fleet.nodes[victim_index].kill()

        sweep.join(timeout=600)
        assert not sweep.is_alive(), "sweep never completed after the kill"
        batch = batch_box["batch"].raise_on_error()

        # Bitwise parity with serial run_mix, despite the failover.
        expected = serial_results(jobs)
        assert [o.result for o in batch.outcomes] == expected

        # The kill was observed: jobs in flight on the victim were
        # requeued to the survivor, and the membership table shows
        # one dead node.
        assert gateway.failover_requeues > 0
        assert gateway.membership.dead() == 1
        assert gateway.membership.node(victim.name).state == "dead"
        assert gateway.completed == len(jobs)
        assert gateway.failed == 0

        # Results computed on the dead node federated into the
        # gateway's cache: resubmitting the sweep needs no node that
        # no longer exists.
        with fleet.gateway.client() as fed:
            again = fed.submit_batch(jobs).raise_on_error()
        assert [o.result for o in again.outcomes] == expected
        assert sum(again.cached) == len(jobs)

        # No leaked processes: the victim's whole process group is
        # gone (DaemonProc.kill SIGKILLs the group; poll confirms).
        assert fleet.nodes[victim_index].proc.poll() is not None

    def test_all_nodes_dead_fails_jobs_cleanly(self, fed_env):
        """With every node dead the gateway fails submissions with a
        clear error instead of hanging."""
        from fedutil import GatewayHarness, free_port
        from repro.service import ServiceError

        harness = GatewayHarness(
            fed_env,
            [f"127.0.0.1:{free_port()}", f"127.0.0.1:{free_port()}"],
            fail_threshold=1,
            max_retries=1,
        )
        try:
            job = make_jobs(mixes=1, schemes=("lru-sa16",))[0]
            gateway = harness.gateway
            _deadline = time.monotonic() + 60
            while gateway.membership.dead() < 2:
                assert time.monotonic() < _deadline
                time.sleep(0.02)
            with harness.client() as fed:
                with pytest.raises(ServiceError, match="no live"):
                    fed.submit(job)
        finally:
            harness.stop()
