"""The shared-memory trace fabric (``REPRO_TRACE_SHM=1``).

Contracts under test, from :mod:`repro.traces.shm`'s docstring:

- a published chunk attaches bitwise-identical to the private
  ``array('q')`` lane, in this process and in a fresh one;
- publishing is first-creator-wins and idempotent;
- a torn segment (publisher died mid-copy, seal word never written)
  is *never* served, the scavenger removes it, and the consumer falls
  back to compiling -- same for segments orphaned by a SIGKILLed
  publisher;
- owners unlink their names at exit (no leaks after a clean close
  *or* a hard kill plus one scavenge);
- the store's shm layer sits between the in-process LRU and disk, and
  its counters (``shm_hits`` et al.) observe real traffic.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from array import array
from pathlib import Path

import pytest

from repro.traces import TraceStore, shm
from repro.traces.shm import SEGMENT_PREFIX, SharedChunkPool, segment_name
from repro.workloads import APPS

pytestmark = pytest.mark.skipif(
    shm.shm_dir() is None, reason="no /dev/shm on this platform"
)

#: Keys in tests use this marker so cleanup can never collide with a
#: concurrent real sweep on the same host.
KEY = "feedc0de" * 8


@pytest.fixture(autouse=True)
def _shm_env(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_SHM", "1")
    monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
    pool = shm.reset_pool()
    yield
    pool = shm.get_pool()
    pool.close(unlink=True)
    leaked = [
        p
        for p in shm.shm_dir().glob(SEGMENT_PREFIX + "*")
        if KEY[:20] in p.name
    ]
    for p in leaked:
        p.unlink(missing_ok=True)
    assert not leaked, f"test leaked segments: {[p.name for p in leaked]}"


def _chunk(pairs: int = 8, seed: int = 1) -> array:
    buf = array("q")
    for i in range(pairs):
        buf.append((seed * 31 + i) % 7 + 1)  # gap
        buf.append((seed << 20) + 64 * i)  # addr
    return buf


def _subprocess(code: str, check: bool = True) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_TRACE_SHM"] = "1"
    proc = subprocess.run(
        [sys.executable, "-c", textwrap.dedent(code)],
        capture_output=True,
        text=True,
        env=env,
    )
    if check:
        assert proc.returncode == 0, proc.stderr
    return proc


# -- publish / attach ---------------------------------------------------


def test_publish_attach_round_trip_bitwise():
    pool = shm.get_pool()
    buf = _chunk(16)
    view, fresh = pool.publish(KEY, 0, buf, 16)
    assert fresh
    assert isinstance(view, memoryview) and view.format == "q"
    assert view.tolist() == buf.tolist()
    assert bytes(view) == bytes(memoryview(buf))

    other = SharedChunkPool()
    attached = other.attach(KEY, 0, 16)
    assert attached is not None
    assert bytes(attached) == bytes(memoryview(buf))
    other.close(unlink=False)


def test_publish_is_idempotent_and_attach_counts():
    pool = shm.get_pool()
    buf = _chunk(4)
    _, first = pool.publish(KEY, 1, buf, 4)
    view, again = pool.publish(KEY, 1, buf, 4)
    assert first and not again
    assert view.tolist() == buf.tolist()
    assert pool.publishes == 1
    assert pool.is_published(KEY, 1)


def test_attach_misses_cleanly():
    pool = shm.get_pool()
    assert pool.attach("0" * 64, 0, 8) is None
    buf = _chunk(8)
    pool.publish(KEY, 2, buf, 8)
    fresh = SharedChunkPool()
    # Wrong geometry for the key is a miss, not a wrong answer.
    assert fresh.attach(KEY, 2, 16) is None
    assert fresh.attach(KEY, 2, 4) is None


def test_attach_survives_publisher_unlink():
    """POSIX semantics: unlinking removes the name, not live maps."""
    pool = shm.get_pool()
    buf = _chunk(8)
    pool.publish(KEY, 3, buf, 8)
    reader = SharedChunkPool()
    view = reader.attach(KEY, 3, 8)
    assert pool.unlink_owned() == 1
    assert view.tolist() == buf.tolist()  # mapping still valid
    fresh = SharedChunkPool()
    assert fresh.attach(KEY, 3, 8) is None  # new attaches miss
    reader.close(unlink=False)


def test_fresh_process_attaches_by_name():
    pool = shm.get_pool()
    buf = _chunk(8, seed=9)
    pool.publish(KEY, 4, buf, 8)
    proc = _subprocess(
        f"""
        from repro.traces import shm
        view = shm.get_pool().attach({KEY!r}, 4, 8)
        assert view is not None
        print(view.tolist())
        """
    )
    assert proc.stdout.strip() == str(buf.tolist())
    assert proc.stderr.strip() == ""  # no tracker/finalizer noise


# -- torn segments and the scavenger ------------------------------------


def _spawn_torn_publisher() -> None:
    """A process that dies mid-publish: segment created and payload
    half-written, seal word never set."""
    _subprocess(
        f"""
        import os, struct
        from repro.traces import shm
        path = shm.shm_dir() / shm.segment_name({KEY!r}, 5)
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o600)
        os.ftruncate(fd, shm.HEADER_BYTES + 8 * 16)
        os.write(fd, struct.pack(
            "<8q", shm.SEGMENT_MAGIC, shm.SEGMENT_VERSION, 8, 16,
            os.getpid(), 0, 0, 0))
        os.close(fd)
        os._exit(0)  # dies before sealing: a torn segment
        """
    )


def test_torn_segment_never_served_and_scavenged():
    _spawn_torn_publisher()
    name = segment_name(KEY, 5)
    assert (shm.shm_dir() / name).exists()
    pool = shm.get_pool()
    assert pool.attach(KEY, 5, 8) is None  # unsealed: refused
    assert SharedChunkPool.scavenge() >= 1
    assert not (shm.shm_dir() / name).exists()


def test_job_falls_back_to_compile_past_torn_segment(monkeypatch):
    """A consumer that misses on a torn segment still gets its chunk
    (from the compile layer) and counts the fabric miss."""
    spec = APPS["mcf"].trace_spec(base=0, seed=3)
    store = TraceStore(chunk_pairs=32)
    key = store.key_of(spec)
    # Torn segment squatting on the real chunk's name.
    path = shm.shm_dir() / segment_name(key, 0)
    path.write_bytes(b"\0" * (shm.HEADER_BYTES + 8 * 64))
    try:
        chunk = store.get_chunk(spec, 0)
        assert store.shm_misses == 1
        assert store.shm_hits == 0
        assert store.compiles == 1
        assert list(chunk) == list(TraceStore(chunk_pairs=32).get_chunk(spec, 0))
    finally:
        path.unlink(missing_ok=True)


def test_scavenge_reclaims_sigkilled_publisher():
    """The acceptance scenario: a publisher SIGKILLed mid-run leaves
    sealed segments behind; one scavenge removes them all."""
    proc_code = f"""
        import os, sys, time
        from array import array
        from repro.traces import shm
        pool = shm.get_pool()
        buf = array("q", range(32))
        pool.publish({KEY!r}, 6, buf, 16)
        pool.publish({KEY!r}, 7, buf, 16)
        print("published", flush=True)
        time.sleep(60)
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    env["REPRO_TRACE_SHM"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-c", textwrap.dedent(proc_code)],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        assert proc.stdout.readline().strip() == "published"
        names = [segment_name(KEY, 6), segment_name(KEY, 7)]
        assert all((shm.shm_dir() / n).exists() for n in names)
        # Publisher alive: scavenge must not touch its segments.
        SharedChunkPool.scavenge()
        assert all((shm.shm_dir() / n).exists() for n in names)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()
        assert SharedChunkPool.scavenge() >= 2
        assert not any((shm.shm_dir() / n).exists() for n in names)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def test_owner_atexit_unlinks_no_leaks():
    proc = _subprocess(
        f"""
        from array import array
        from repro.traces import shm
        pool = shm.get_pool()
        pool.publish({KEY!r}, 8, array("q", range(16)), 8)
        assert (shm.shm_dir() / shm.segment_name({KEY!r}, 8)).exists()
        """
    )
    assert proc.stderr.strip() == ""
    assert not (shm.shm_dir() / segment_name(KEY, 8)).exists()


def test_forked_worker_exit_does_not_unlink(monkeypatch):
    """The atexit hook is pid-guarded: a forked child inheriting the
    owner's registry must not unlink the parent's segments."""
    pool = shm.get_pool()
    pool.publish(KEY, 9, _chunk(8), 8)
    pid = os.fork()
    if pid == 0:
        # Child: exercise the cleanup path directly, then vanish.
        try:
            pool._atexit_cleanup()
        finally:
            os._exit(0)
    os.waitpid(pid, 0)
    assert (shm.shm_dir() / segment_name(KEY, 9)).exists()
    fresh = SharedChunkPool()
    assert fresh.attach(KEY, 9, 8) is not None
    fresh.close(unlink=False)


# -- store integration --------------------------------------------------


def test_store_layers_mem_then_shm_then_compile():
    spec = APPS["soplex"].trace_spec(base=1 << 44, seed=7)
    owner = TraceStore(chunk_pairs=64)
    baseline = list(owner.get_chunk(spec, 0))
    created = owner.publish_prefix(spec, 1, max_chunks=1)
    assert created == 1 and owner.shm_publishes == 1

    reader = TraceStore(chunk_pairs=64)
    chunk = reader.get_chunk(spec, 0)
    assert isinstance(chunk, memoryview)
    assert list(chunk) == baseline
    assert (reader.shm_hits, reader.compiles) == (1, 0)
    assert reader.shm_bytes == 64 * 2 * 8
    # Second read is a memory hit on the remembered view.
    reader.get_chunk(spec, 0)
    assert (reader.mem_hits, reader.shm_hits) == (1, 1)


def test_publish_prefix_pops_private_copies():
    """Published chunks leave the owner's LRU, so forked workers that
    inherit the store observe ``shm_hits``, not inherited arrays."""
    spec = APPS["milc"].trace_spec(base=0, seed=2)
    store = TraceStore(chunk_pairs=64)
    store.get_chunk(spec, 0)
    key = store.key_of(spec)
    assert (key, 0) in store._chunks
    store.publish_prefix(spec, 1, max_chunks=2)
    assert (key, 0) not in store._chunks
    view = store.get_chunk(spec, 0)
    assert isinstance(view, memoryview)
    assert store.shm_hits == 1


def test_publish_prefix_horizon_and_cap():
    spec = APPS["mcf"].trace_spec(base=0, seed=4)
    store = TraceStore(chunk_pairs=16)
    # max_chunks caps the prefix regardless of the target.
    assert store.publish_prefix(spec, 10**9, max_chunks=3) == 3
    # Re-publishing covers the same prefix without creating segments.
    assert store.publish_prefix(spec, 10**9, max_chunks=3) == 0
    # A tiny target publishes a single chunk (slack rounds up to one).
    other = APPS["mcf"].trace_spec(base=1 << 44, seed=4)
    assert store.publish_prefix(other, 1, slack=1.0, max_chunks=64) == 1


def test_shm_disabled_is_invisible(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_SHM", "0")
    spec = APPS["astar"].trace_spec(base=0, seed=1)
    store = TraceStore(chunk_pairs=32)
    chunk = store.get_chunk(spec, 0)
    assert isinstance(chunk, array)
    assert store.publish_prefix(spec, 10**9) == 0
    assert store.shm_hits == store.shm_misses == store.shm_publishes == 0


def test_attachment_lru_is_bounded(monkeypatch):
    monkeypatch.setattr(shm, "MAX_ATTACHED", 4)
    pool = shm.get_pool()
    buf = _chunk(4)
    for index in range(8):
        pool.publish(KEY, 10 + index, buf, 4)
    reader = SharedChunkPool()
    for index in range(8):
        view = reader.attach(KEY, 10 + index, 4)
        view.release()  # reader done with it: evictable
    assert sum(1 for s in reader._segments.values() if not s.owned) <= 4
    # Evicted attachments transparently re-attach.
    assert reader.attach(KEY, 10, 4).tolist() == buf.tolist()
    reader.close(unlink=False)


def test_host_segments_lists_fabric_state():
    pool = shm.get_pool()
    pool.publish(KEY, 18, _chunk(8), 8)
    rows = [r for r in SharedChunkPool.host_segments() if KEY[:20] in r["name"]]
    assert len(rows) == 1
    row = rows[0]
    assert row["sealed"] and row["publisher_alive"]
    assert row["pid"] == os.getpid()
    assert row["chunk_pairs"] == 8
    assert row["bytes"] == shm.HEADER_BYTES + 16 * 8
    assert row["attached"] >= 1
