"""Batched trace pipeline: chunk/generator parity and store layers.

The contract under test: for every one of the 29 synthetic apps, the
chunk pipeline is a pure re-encoding of the generator stream -- the
``(gap, addr)`` sequence read through chunks is *exactly* the
generator output for the same base and seed, across chunk boundaries,
phase boundaries, LRU evictions and disk round-trips.
"""

from __future__ import annotations

import json
from array import array

import pytest

from repro.traces import (
    TraceSpec,
    TraceStore,
    compile_chunk,
    generator_fingerprint,
)
from repro.workloads import APPS


def _pairs_via_chunks(store: TraceStore, spec: TraceSpec, count: int):
    """Read ``count`` pairs through the store's chunk cursor."""
    pairs = []
    index = 0
    while len(pairs) < count:
        buf = store.chunk_list(spec, index)
        for pos in range(0, len(buf), 2):
            pairs.append((buf[pos], buf[pos + 1]))
            if len(pairs) == count:
                break
        index += 1
    return pairs


def _pairs_via_generator(spec: TraceSpec, count: int):
    gen = spec.generator()
    return [next(gen) for _ in range(count)]


@pytest.mark.parametrize("name", sorted(APPS))
def test_chunk_pipeline_matches_generator_for_every_app(name):
    """First N pairs via chunks == generator output, same seed, with
    chunks small enough that every app crosses chunk boundaries."""
    app = APPS[name]
    store = TraceStore(chunk_pairs=256, max_chunks=64)
    spec = app.trace_spec(base=3 << 44, seed=11)
    count = 1_000
    assert _pairs_via_chunks(store, spec, count) == _pairs_via_generator(
        spec, count
    )


@pytest.mark.parametrize(
    "name", [a.name for a in APPS.values() if a.kind == "phased-loop"]
)
def test_phase_boundaries_preserved(name):
    """Phased apps must switch phases at exactly the same access as
    the generator path, including the resume of phase-local state."""
    app = APPS[name]
    store = TraceStore(chunk_pairs=4_096, max_chunks=64)
    spec = app.trace_spec(base=1 << 44, seed=5)
    count = 2 * app.phase_accesses + 500  # spans a full A/B/A cycle
    assert _pairs_via_chunks(store, spec, count) == _pairs_via_generator(
        spec, count
    )


def test_chunks_are_flat_int64_buffers():
    spec = APPS["mcf"].trace_spec(base=0, seed=1)
    store = TraceStore(chunk_pairs=128)
    chunk = store.get_chunk(spec, 0)
    assert isinstance(chunk, array) and chunk.typecode == "q"
    assert len(chunk) == 256
    gen = spec.generator()
    for pos in range(0, 256, 2):
        gap, addr = next(gen)
        assert (chunk[pos], chunk[pos + 1]) == (gap, addr)


def test_compile_chunk_rejects_finite_streams():
    with pytest.raises(ValueError, match="infinite"):
        compile_chunk(iter([(1, 2), (3, 4)]), 8)


def test_random_chunk_access_after_eviction_is_consistent():
    """A request behind an evicted producer restarts the generator and
    still produces identical chunks."""
    spec = APPS["soplex"].trace_spec(base=0, seed=7)
    store = TraceStore(chunk_pairs=64, max_chunks=2)  # aggressive LRU
    third = list(store.get_chunk(spec, 3))
    first = list(store.get_chunk(spec, 0))  # behind the producer: recompile
    again = list(store.get_chunk(spec, 3))
    assert again == third
    fresh = TraceStore(chunk_pairs=64)
    assert list(fresh.get_chunk(spec, 0)) == first
    assert store.evictions > 0


def test_lru_bounds_memory():
    spec = APPS["mcf"].trace_spec(base=0, seed=2)
    store = TraceStore(chunk_pairs=32, max_chunks=3)
    for index in range(8):
        store.get_chunk(spec, index)
    assert len(store._chunks) <= 3
    assert store.evictions == 5


def test_key_memo_is_bounded(monkeypatch):
    """The spec->key memo flushes instead of growing forever (the
    experiment daemon's workers are resident processes), and a flushed
    memo recomputes identical keys."""
    from repro.traces import store as store_mod

    monkeypatch.setattr(store_mod, "MAX_KEY_MEMO", 4)
    store = TraceStore(chunk_pairs=32)
    app = APPS["mcf"]
    specs = [app.trace_spec(base=0, seed=seed) for seed in range(10)]
    keys = [store.key_of(spec) for spec in specs]
    assert len(store._keys) <= 4
    assert [store.key_of(spec) for spec in specs] == keys


def test_key_covers_identity_and_generator_source():
    app = APPS["gcc"]
    spec = app.trace_spec(base=1 << 44, seed=3)
    same = app.trace_spec(base=1 << 44, seed=3)
    assert spec.key(64) == same.key(64)
    different = [
        app.trace_spec(base=1 << 44, seed=4).key(64),
        app.trace_spec(base=2 << 44, seed=3).key(64),
        spec.key(128),
        APPS["bzip2"].trace_spec(base=1 << 44, seed=3).key(64),
    ]
    assert spec.key(64) not in different
    assert len(set(different)) == len(different)
    # The generator-source fingerprint is folded into the key.
    assert generator_fingerprint("zipf") != generator_fingerprint("loop")


def test_disk_layer_round_trip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    spec = APPS["lbm"].trace_spec(base=0, seed=9)
    writer = TraceStore(chunk_pairs=64)
    compiled = list(writer.get_chunk(spec, 1))
    assert writer.bytes_written > 0
    reader = TraceStore(chunk_pairs=64)  # fresh store: memory is cold
    assert list(reader.get_chunk(spec, 1)) == compiled
    assert reader.disk_hits == 1
    assert reader.compiles == 0


def test_disk_meta_and_list_and_purge(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    store = TraceStore(chunk_pairs=64)
    store.get_chunk(APPS["milc"].trace_spec(base=0, seed=1), 0)
    store.get_chunk(APPS["astar"].trace_spec(base=1 << 44, seed=1), 0)
    rows = TraceStore.list_disk()
    assert {row["name"] for row in rows} == {"milc", "astar"}
    for row in rows:
        assert row["chunks"] == 1
        assert row["bytes"] == 64 * 2 * 8
    meta_files = list((tmp_path / "traces").rglob("meta.json"))
    assert len(meta_files) == 2
    meta = json.loads(meta_files[0].read_text())
    assert {"name", "kind", "params", "base", "seed", "chunk_pairs"} <= set(meta)
    assert TraceStore.purge_disk() == 2
    assert TraceStore.list_disk() == []


def test_meta_records_byte_order(tmp_path, monkeypatch):
    import sys

    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    store = TraceStore(chunk_pairs=64)
    store.get_chunk(APPS["mcf"].trace_spec(base=0, seed=1), 0)
    meta = json.loads(next((tmp_path / "traces").rglob("meta.json")).read_text())
    assert meta["byte_order"] == sys.byteorder


def test_cross_endian_cache_is_refused(tmp_path, monkeypatch):
    """Chunk files are native-order; a cache directory written on a
    host of the other endianness must fail loudly on load *and* on
    store, never deserialize byte-swapped traces."""
    import sys

    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    spec = APPS["lbm"].trace_spec(base=0, seed=9)
    writer = TraceStore(chunk_pairs=64)
    writer.get_chunk(spec, 0)

    meta_path = next((tmp_path / "traces").rglob("meta.json"))
    meta = json.loads(meta_path.read_text())
    foreign = "big" if sys.byteorder == "little" else "little"
    meta["byte_order"] = foreign
    meta_path.write_text(json.dumps(meta))

    reader = TraceStore(chunk_pairs=64)
    with pytest.raises(RuntimeError, match=f"{foreign}-endian"):
        reader.get_chunk(spec, 0)
    with pytest.raises(RuntimeError, match=f"{foreign}-endian"):
        reader.get_chunk(spec, 1)  # the write path refuses too

    # Legacy directories (meta without the field) stay loadable: they
    # were written by this host's lineage and are native by
    # construction.
    del meta["byte_order"]
    meta_path.write_text(json.dumps(meta))
    legacy = TraceStore(chunk_pairs=64)
    assert list(legacy.get_chunk(spec, 0)) == list(writer.get_chunk(spec, 0))
    assert legacy.disk_hits == 1


def test_disk_layer_off_without_env(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
    store = TraceStore(chunk_pairs=64)
    store.get_chunk(APPS["mcf"].trace_spec(base=0, seed=0), 0)
    assert store.bytes_written == 0
    assert TraceStore.disk_dir() is None


def test_truncated_disk_chunk_is_dropped(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    spec = APPS["mcf"].trace_spec(base=0, seed=0)
    writer = TraceStore(chunk_pairs=64)
    good = list(writer.get_chunk(spec, 0))
    chunk_file = next((tmp_path / "traces").rglob("*.i64"))
    chunk_file.write_bytes(chunk_file.read_bytes()[:100])  # torn write
    reader = TraceStore(chunk_pairs=64)
    assert list(reader.get_chunk(spec, 0)) == good  # recompiled
    assert reader.disk_hits == 0
    assert reader.compiles == 1


def test_trace_spec_is_a_trace_factory():
    """Specs double as zero-arg factories (the reference event loop
    and any legacy caller just call them)."""
    spec = APPS["perlbench"].trace_spec(base=0, seed=0)
    gen = spec()
    assert next(gen) == next(spec.generator())


def test_mix_factories_are_specs():
    from repro.workloads import make_mix

    mix = make_mix("sftn", 1)
    factories = mix.trace_factories(seed=0)
    assert all(isinstance(f, TraceSpec) for f in factories)
    bases = {f.base for f in factories}
    assert len(bases) == mix.num_cores  # disjoint address spaces
