"""Cross-scheme checks on the shared cache surface: stats accounting,
footprint tracking and allocation-unit metadata."""

import random

import pytest

from repro.arrays import SetAssociativeArray, ZCacheArray
from repro.core import VantageCache, VantageConfig
from repro.partitioning import (
    BaselineCache,
    PIPPCache,
    SelectiveAllocationCache,
    WayPartitionedCache,
)
from repro.replacement import make_policy


def all_caches(num_lines=256, parts=2):
    sa = lambda: SetAssociativeArray(num_lines, 8, hashed=True, seed=0)
    z = lambda: ZCacheArray(num_lines, 4, candidates_per_miss=16, seed=0)
    return [
        BaselineCache(sa(), make_policy("lru", num_lines), parts),
        WayPartitionedCache(sa(), parts),
        PIPPCache(sa(), parts),
        SelectiveAllocationCache(sa(), parts),
        VantageCache(z(), parts, VantageConfig(unmanaged_fraction=0.15)),
    ]


@pytest.mark.parametrize("cache", all_caches(), ids=lambda c: type(c).__name__)
class TestSharedSurface:
    def test_accesses_equal_hits_plus_misses(self, cache):
        rng = random.Random(0)
        for _ in range(5000):
            p = rng.randrange(2)
            cache.access((p << 30) | rng.randrange(300), p)
        st = cache.stats
        for p in range(2):
            assert st.accesses[p] == st.hits[p] + st.misses[p]
        assert st.total_accesses == 5000

    def test_footprints_never_exceed_capacity(self, cache):
        rng = random.Random(1)
        for _ in range(5000):
            p = rng.randrange(2)
            cache.access((p << 30) | rng.randrange(500), p)
        assert sum(cache.partition_sizes()) <= cache.num_lines

    def test_allocation_metadata_exposed(self, cache):
        assert cache.allocation_unit in ("lines", "ways", "probability/1024")
        assert cache.allocation_total > 0


class TestFootprintCensus:
    @pytest.mark.parametrize("cache", all_caches(), ids=lambda c: type(c).__name__)
    def test_part_of_census_matches_sizes(self, cache):
        """part_of[] is the ground truth for footprints in every
        scheme except Vantage, whose unmanaged lines leave their
        partition (checked separately in tests/core)."""
        rng = random.Random(2)
        for _ in range(4000):
            p = rng.randrange(2)
            cache.access((p << 30) | rng.randrange(400), p)
        if isinstance(cache, VantageCache):
            return
        census = [0, 0]
        for slot, _ in cache.array.contents():
            owner = cache.part_of[slot]
            census[owner] += 1
        assert census == cache.partition_sizes()
