"""Tests for the unpartitioned baseline cache."""

import random

import pytest

from repro.arrays import SetAssociativeArray, ZCacheArray
from repro.partitioning import BaselineCache
from repro.replacement import CoarseLRUPolicy, PerfectLRUPolicy, make_policy


def make_cache(num_lines=64, ways=4, policy="perfect-lru"):
    array = SetAssociativeArray(num_lines, ways, hashed=False)
    return BaselineCache(array, make_policy(policy, num_lines))


class TestAccessPath:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.access(5) is False
        assert cache.access(5) is True
        assert cache.stats.hits[0] == 1
        assert cache.stats.misses[0] == 1

    def test_lru_eviction_order_within_set(self):
        cache = make_cache(num_lines=16, ways=4)
        # Addresses 0, 4, 8, 12, 16 all map to set 0 (unhashed).
        for addr in (0, 4, 8, 12):
            cache.access(addr)
        cache.access(0)  # refresh 0; LRU is now 4
        cache.access(16)  # set is full: evicts 4
        assert cache.access(0) is True
        assert cache.access(4) is False

    def test_working_set_within_capacity_all_hits(self):
        cache = make_cache(num_lines=64, ways=4)
        for addr in range(64):
            cache.access(addr)
        hits = sum(1 for addr in range(64) if cache.access(addr))
        assert hits == 64

    def test_partition_footprints_tracked(self):
        cache = BaselineCache(
            SetAssociativeArray(64, 4, hashed=False),
            PerfectLRUPolicy(64),
            num_partitions=2,
        )
        for addr in range(10):
            cache.access(addr, part=0)
        for addr in range(100, 105):
            cache.access(addr, part=1)
        assert cache.partition_size(0) == 10
        assert cache.partition_size(1) == 5

    def test_eviction_hook_fires_with_owner(self):
        cache = make_cache(num_lines=16, ways=4)
        events = []
        cache.eviction_hook = lambda slot, part: events.append((slot, part))
        for addr in (0, 4, 8, 12, 16):  # one eviction in set 0
            cache.access(addr)
        assert len(events) == 1
        assert events[0][1] == 0

    def test_miss_rate(self):
        cache = make_cache()
        for addr in range(8):
            cache.access(addr)
        for addr in range(8):
            cache.access(addr)
        assert cache.stats.miss_rate() == pytest.approx(0.5)

    def test_reset_stats(self):
        cache = make_cache()
        cache.access(1)
        cache.reset_stats()
        assert cache.stats.total_accesses == 0


class TestOnZCache:
    def test_fill_and_steady_state(self):
        array = ZCacheArray(256, 4, candidates_per_miss=16, seed=0)
        cache = BaselineCache(array, CoarseLRUPolicy(256))
        rng = random.Random(0)
        for _ in range(5000):
            cache.access(rng.randrange(512))
        assert array.occupancy() == 256
        # LRU on a zcache with R=16 must retain a hot working set.
        for addr in range(1000, 1032):
            cache.access(addr)
        for _ in range(200):
            cache.access(1000 + rng.randrange(32))
        hot_hits = sum(1 for a in range(1000, 1032) if cache.access(a))
        assert hot_hits >= 30

    def test_policy_metadata_follows_relocations(self):
        array = ZCacheArray(64, 4, candidates_per_miss=16, seed=1)
        policy = PerfectLRUPolicy(64)
        cache = BaselineCache(array, policy)
        rng = random.Random(1)
        for _ in range(1000):
            cache.access(rng.randrange(128))
        # Age keys of resident lines must be distinct (perfect LRU) --
        # relocation bugs would duplicate or zero them.
        keys = [policy.state[slot] for slot, _ in array.contents()]
        assert len(keys) == len(set(keys))


class TestValidation:
    def test_policy_size_mismatch(self):
        array = SetAssociativeArray(64, 4, hashed=False)
        with pytest.raises(ValueError):
            BaselineCache(array, PerfectLRUPolicy(32))

    def test_allocations_are_accepted_but_ignored(self):
        cache = make_cache()
        cache.set_allocations([64])
        with pytest.raises(ValueError):
            cache.set_allocations([1, 2])

    def test_positive_partitions_required(self):
        array = SetAssociativeArray(64, 4, hashed=False)
        with pytest.raises(ValueError):
            BaselineCache(array, PerfectLRUPolicy(64), num_partitions=0)
