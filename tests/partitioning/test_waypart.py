"""Tests for way-partitioning: strict isolation, coarse sizing, lazy resize."""

import random

import pytest

from repro.arrays import SetAssociativeArray, SkewAssociativeArray
from repro.partitioning import WayPartitionedCache


def make_cache(num_lines=64, ways=4, parts=2):
    array = SetAssociativeArray(num_lines, ways, hashed=False)
    return WayPartitionedCache(array, parts)


class TestAllocation:
    def test_initial_even_split(self):
        cache = make_cache(ways=4, parts=2)
        assert len(cache.ways_of(0)) == 2
        assert len(cache.ways_of(1)) == 2

    def test_uneven_partition_count(self):
        cache = make_cache(num_lines=64, ways=4, parts=3)
        counts = [len(cache.ways_of(p)) for p in range(3)]
        assert sorted(counts) == [1, 1, 2]

    def test_set_allocations(self):
        cache = make_cache(ways=4, parts=2)
        cache.set_allocations([3, 1])
        assert len(cache.ways_of(0)) == 3
        assert len(cache.ways_of(1)) == 1

    def test_allocations_must_sum_to_ways(self):
        cache = make_cache(ways=4, parts=2)
        with pytest.raises(ValueError):
            cache.set_allocations([3, 2])

    def test_every_partition_needs_a_way(self):
        cache = make_cache(ways=4, parts=2)
        with pytest.raises(ValueError):
            cache.set_allocations([4, 0])

    def test_more_partitions_than_ways_rejected(self):
        array = SetAssociativeArray(64, 4, hashed=False)
        with pytest.raises(ValueError):
            WayPartitionedCache(array, 5)

    def test_requires_set_associative_array(self):
        with pytest.raises(TypeError):
            WayPartitionedCache(SkewAssociativeArray(64, 4), 2)


class TestIsolation:
    def test_partitions_install_only_in_their_ways(self):
        cache = make_cache(num_lines=64, ways=4, parts=2)
        rng = random.Random(0)
        for _ in range(2000):
            part = rng.randrange(2)
            cache.access((part << 20) | rng.randrange(64), part)
        owner = cache._way_owner
        for slot, addr in cache.array.contents():
            way = slot % 4
            assert owner[way] == cache.part_of[slot]

    def test_streaming_partition_cannot_displace_neighbor(self):
        """Strict isolation: partition 1's thrashing never evicts
        partition 0's lines (the scheme's headline guarantee)."""
        cache = make_cache(num_lines=64, ways=4, parts=2)
        victim_ws = [(0 << 20) | a for a in range(30)]
        for addr in victim_ws:
            cache.access(addr, 0)
        resident_before = {a for a in victim_ws if cache.array.lookup(a) is not None}
        for n in range(10_000):
            cache.access((1 << 20) | n, 1)
        still_resident = {a for a in resident_before if cache.array.lookup(a) is not None}
        assert still_resident == resident_before

    def test_partition_capacity_bounded_by_ways(self):
        cache = make_cache(num_lines=64, ways=4, parts=2)
        cache.set_allocations([1, 3])
        for n in range(5000):
            cache.access((0 << 20) | n % 200, 0)
        # Partition 0 owns 1 way = 16 lines at most.
        assert cache.partition_size(0) <= 16


class TestLazyResize:
    def test_reallocated_ways_converge_lazily(self):
        """After a resize, the new owner's misses evict the old
        owner's lines way by way (Fig 8a's slow convergence)."""
        cache = make_cache(num_lines=64, ways=4, parts=2)
        cache.set_allocations([3, 1])
        rng = random.Random(1)
        for _ in range(3000):
            cache.access((0 << 20) | rng.randrange(100), 0)
        size_before = cache.partition_size(0)
        assert size_before > 16
        cache.set_allocations([1, 3])
        # Immediately after the resize nothing has moved.
        assert cache.partition_size(0) == size_before
        for n in range(5000):
            cache.access((1 << 20) | n % 200, 1)
        # Partition 1's misses have reclaimed its new ways.
        assert cache.partition_size(0) <= 16
        assert cache.partition_size(1) > 16

    def test_stats_attribute_interference_to_victim(self):
        cache = make_cache(num_lines=64, ways=4, parts=2)
        cache.set_allocations([3, 1])
        for addr in range(48):
            cache.access((0 << 20) | addr, 0)
        cache.set_allocations([1, 3])
        for n in range(1000):
            cache.access((1 << 20) | n, 1)
        # Evictions of partition 0's lines are charged to partition 0.
        assert cache.stats.evictions[0] > 0
