"""Tests for selective cache allocation (CQoS-style)."""

import random

import pytest

from repro.arrays import SetAssociativeArray
from repro.partitioning import SelectiveAllocationCache


def make_cache(num_lines=256, parts=2, seed=0):
    array = SetAssociativeArray(num_lines, 4, hashed=True, seed=seed)
    return SelectiveAllocationCache(array, parts, seed=seed)


class TestSelectiveAllocation:
    def test_probability_one_always_inserts(self):
        cache = make_cache()
        cache.set_allocations([1024, 1024])
        for addr in range(50):
            cache.access(addr, 0)
        assert cache.bypasses[0] == 0
        assert cache.partition_size(0) == 50

    def test_probability_zero_never_inserts(self):
        cache = make_cache()
        cache.set_allocations([0, 1024])
        for addr in range(100):
            cache.access(addr, 0)
        assert cache.partition_size(0) == 0
        assert cache.bypasses[0] == 100

    def test_throttling_shrinks_footprint(self):
        rng = random.Random(0)
        sizes = {}
        for prob in (1024, 128):
            cache = make_cache(num_lines=256, seed=1)
            cache.set_allocations([prob, 1024])
            for _ in range(20_000):
                part = rng.randrange(2)
                cache.access((part << 30) | rng.randrange(400), part)
            sizes[prob] = cache.partition_size(0)
        assert sizes[128] < sizes[1024]

    def test_no_strict_size_guarantee(self):
        """The Table 1 contrast: even a throttled partition can keep
        growing -- there is no target size at all."""
        cache = make_cache(num_lines=256)
        cache.set_allocations([512, 1024])
        for addr in range(2000):
            cache.access(addr, 0)  # only partition 0 runs
        # With no competition it takes over the cache despite p=0.5.
        assert cache.partition_size(0) > 200

    def test_bypassed_misses_still_counted(self):
        cache = make_cache()
        cache.set_allocations([0, 1024])
        cache.access(1, 0)
        cache.access(1, 0)
        assert cache.stats.misses[0] == 2

    def test_validation(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.set_allocations([2048, 0])
        with pytest.raises(ValueError):
            cache.set_allocations([512])
