"""Tests for the Table 1 capability matrix."""

from repro.partitioning import TABLE1_COLUMNS, TABLE1_ROWS, format_table1


class TestTable1:
    def test_five_schemes(self):
        assert len(TABLE1_ROWS) == 5
        names = [row.name for row in TABLE1_ROWS]
        assert names[-1] == "Vantage"
        assert any("Way-partitioning" in n for n in names)
        assert any("Page coloring" in n for n in names)

    def test_vantage_row_matches_paper(self):
        vantage = TABLE1_ROWS[-1]
        assert vantage.scalable_fine_grain == "Yes"
        assert vantage.maintains_associativity == "Yes"
        assert vantage.efficient_resizing == "Yes"
        assert vantage.strict_sizes_isolation == "Yes"
        assert vantage.independent_of_replacement == "Yes"
        assert vantage.hardware_cost == "Low"
        assert vantage.partitions_whole_cache == "No (most)"

    def test_way_partitioning_loses_associativity(self):
        waypart = next(r for r in TABLE1_ROWS if "Way-partitioning" in r.name)
        assert waypart.maintains_associativity == "No"
        assert waypart.scalable_fine_grain == "No"

    def test_policy_based_schemes_lack_strict_isolation(self):
        policy_based = next(r for r in TABLE1_ROWS if "policy-based" in r.name)
        assert policy_based.strict_sizes_isolation == "No"
        assert policy_based.independent_of_replacement == "No"

    def test_render_contains_all_cells(self):
        text = format_table1()
        for column in TABLE1_COLUMNS:
            assert column in text
        for row in TABLE1_ROWS:
            assert row.name in text
        # Header + separator + 5 scheme rows.
        assert len(text.splitlines()) == 7
