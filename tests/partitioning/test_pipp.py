"""Tests for PIPP: insertion positions, probabilistic promotion,
stream detection, and chain integrity."""

import random

import pytest

from repro.arrays import SetAssociativeArray, SkewAssociativeArray
from repro.partitioning import PIPPCache
from repro.partitioning.pipp import STREAM_WAYS, THETA_M


def make_cache(num_lines=64, ways=8, parts=2, **kwargs):
    array = SetAssociativeArray(num_lines, ways, hashed=False)
    return PIPPCache(array, parts, **kwargs)


class TestInsertion:
    def test_insertion_position_equals_allocated_ways(self):
        cache = make_cache(ways=8, parts=2)
        cache.set_allocations([6, 2])
        assert cache.insertion_position(0) == 6
        assert cache.insertion_position(1) == 2

    def test_streaming_partition_inserts_near_lru(self):
        cache = make_cache(ways=8, parts=2)
        cache.set_allocations([6, 2])
        cache.streaming[1] = True
        assert cache.insertion_position(1) == STREAM_WAYS

    def test_small_allocation_evicted_first(self):
        """Lines of a 1-way partition sit at the LRU end and get
        evicted before a high-insertion partition's lines."""
        cache = make_cache(num_lines=32, ways=8, parts=2)
        cache.set_allocations([7, 1])
        # Fill set 0 alternating; partition 1's lines insert at pos 1.
        addrs0 = [(0 << 20) | (a * 4) for a in range(6)]
        addrs1 = [(1 << 20) | (a * 4) for a in range(6)]
        for a0, a1 in zip(addrs0, addrs1):
            cache.access(a0, 0)
            cache.access(a1, 1)
        # Set 0 overflowed: the survivors should be mostly partition 0's.
        assert cache.partition_size(0) > cache.partition_size(1)


class TestPromotion:
    def test_hit_promotes_at_most_one_position(self):
        cache = make_cache(num_lines=32, ways=8, parts=2, p_prom=1.0)
        lines = [(0 << 20) | (a * 4) for a in range(4)]
        for a in lines:
            cache.access(a, 0)
        chain = cache._chains[0]
        target = lines[0]
        slot = cache.array.lookup(target)
        pos_before = cache._pos_of[slot]
        cache.access(target, 0)
        assert cache._pos_of[slot] == min(pos_before + 1, len(chain) - 1)

    def test_zero_probability_never_promotes(self):
        cache = make_cache(num_lines=32, ways=8, parts=2, p_prom=0.0)
        lines = [(0 << 20) | (a * 4) for a in range(4)]
        for a in lines:
            cache.access(a, 0)
        slot = cache.array.lookup(lines[0])
        pos_before = cache._pos_of[slot]
        for _ in range(20):
            cache.access(lines[0], 0)
        assert cache._pos_of[slot] == pos_before

    def test_promotion_probability_honours_streaming(self):
        cache = make_cache(parts=2, p_prom=0.75, p_stream=1 / 128)
        cache.streaming[1] = True
        assert cache.promotion_probability(0) == 0.75
        assert cache.promotion_probability(1) == 1 / 128


class TestStreamDetection:
    def test_high_miss_rate_classified_streaming(self):
        cache = make_cache(num_lines=64, ways=8, parts=2)
        for n in range(1000):
            cache.access((1 << 20) | n, 1)  # never reuses: 100% misses
        for n in range(1000):
            cache.access((0 << 20) | (n % 8), 0)  # tiny hot set
        cache.reclassify_streams()
        assert cache.streaming[1] is True
        assert cache.streaming[0] is False

    def test_window_resets_each_classification(self):
        cache = make_cache(parts=2)
        for n in range(200):
            cache.access((1 << 20) | n, 1)
        cache.reclassify_streams()
        assert cache.streaming[1]
        # New window: now the app reuses heavily and is declassified.
        for _ in range(30):
            for n in range(8):
                cache.access((1 << 20) | n, 1)
        cache.reclassify_streams()
        assert not cache.streaming[1]

    def test_threshold_is_the_papers(self):
        assert THETA_M == pytest.approx(0.125)


class TestChainIntegrity:
    def test_chains_track_occupied_slots(self):
        cache = make_cache(num_lines=64, ways=8, parts=2, seed=3)
        rng = random.Random(0)
        for _ in range(3000):
            part = rng.randrange(2)
            cache.access((part << 20) | rng.randrange(128), part)
        for set_index, chain in enumerate(cache._chains):
            slots = set(cache.array.set_slots(set_index))
            occupied = {s for s in slots if cache.array.addr_at(s) is not None}
            assert set(chain) == occupied
            for pos, slot in enumerate(chain):
                assert cache._pos_of[slot] == pos

    def test_approximate_size_control(self):
        """PIPP only approximates targets (Fig 8c): sizes move in the
        right direction but need not match."""
        cache = make_cache(num_lines=512, ways=8, parts=2, seed=1)
        cache.set_allocations([6, 2])
        rng = random.Random(2)
        for _ in range(20_000):
            part = rng.randrange(2)
            cache.access((part << 20) | rng.randrange(1024), part)
        assert cache.partition_size(0) > cache.partition_size(1)


class TestValidation:
    def test_requires_set_associative(self):
        with pytest.raises(TypeError):
            PIPPCache(SkewAssociativeArray(64, 4), 2)

    def test_way_floor(self):
        cache = make_cache(parts=2)
        with pytest.raises(ValueError):
            cache.set_allocations([8, 0])
