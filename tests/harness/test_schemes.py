"""Tests for the scheme/array factory."""

import pytest

from repro.arrays import (
    RandomCandidatesArray,
    SetAssociativeArray,
    SkewAssociativeArray,
    ZCacheArray,
)
from repro.core import AnalyticalVantageCache, VantageCache, VantageDRRIPCache
from repro.harness import build_array, build_cache, default_vantage_config
from repro.partitioning import BaselineCache, PIPPCache, WayPartitionedCache


class TestBuildArray:
    def test_set_associative(self):
        array = build_array("sa16", 1024)
        assert isinstance(array, SetAssociativeArray)
        assert array.num_ways == 16
        assert array.hashed

    def test_zcache(self):
        array = build_array("z4/52", 1024)
        assert isinstance(array, ZCacheArray)
        assert array.num_ways == 4
        assert array.candidates_per_miss == 52

    def test_skew(self):
        array = build_array("skew4", 1024)
        assert isinstance(array, SkewAssociativeArray)

    def test_random_candidates(self):
        array = build_array("rc52", 1024)
        assert isinstance(array, RandomCandidatesArray)
        assert array.candidates_per_miss == 52

    def test_unknown(self):
        with pytest.raises(ValueError):
            build_array("tcam8", 1024)


class TestBuildCache:
    @pytest.mark.parametrize(
        "scheme,cls",
        [
            ("lru-sa16", BaselineCache),
            ("drrip-z4/52", BaselineCache),
            ("ta-drrip-z4/16", BaselineCache),
            ("waypart-sa16", WayPartitionedCache),
            ("pipp-sa16", PIPPCache),
            ("vantage-z4/52", VantageCache),
            ("vantage-sa64", VantageCache),
            ("vantage-drrip-z4/52", VantageDRRIPCache),
            ("vantage-analytical-z4/52", AnalyticalVantageCache),
            ("vantage-rc52", VantageCache),
        ],
    )
    def test_known_schemes(self, scheme, cls):
        cache = build_cache(scheme, 1024, 4)
        assert type(cache) is cls
        assert cache.num_partitions == 4

    def test_vantage_drrip_not_plain_vantage(self):
        cache = build_cache("vantage-drrip-z4/52", 1024, 2)
        assert isinstance(cache, VantageDRRIPCache)

    def test_default_unmanaged_fractions(self):
        z52 = build_cache("vantage-z4/52", 1024, 2)
        z16 = build_cache("vantage-z4/16", 1024, 2)
        assert z52.config.unmanaged_fraction == pytest.approx(0.05)
        assert z16.config.unmanaged_fraction == pytest.approx(0.10)

    def test_default_config_matches_array(self):
        assert default_vantage_config(build_array("sa64", 1024)).unmanaged_fraction == 0.05
        assert default_vantage_config(build_array("sa16", 1024)).unmanaged_fraction == 0.10

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            build_cache("colouring-sa16", 1024, 2)
