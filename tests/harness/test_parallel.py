"""Determinism of the parallel harness and the results cache.

The guarantees under test:

- ``run_jobs`` over worker processes is bitwise-identical to running
  each job serially through ``run_mix``;
- a cache hit returns the same outcome as a fresh simulation;
- duplicate jobs (and a baseline repeated inside a scheme list) are
  simulated only once.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import SimJob, relative_throughputs, run_jobs, run_mix
from repro.harness import results_cache
from repro.sim import small_system
from repro.workloads import make_mix

INSTRUCTIONS = 8_000
SCHEMES = ("vantage-z4/16", "lru-sa16")


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_RESULTS_CACHE", raising=False)
    return tmp_path / "cache"


def _jobs():
    config = small_system()
    mixes = [make_mix("sftn", 1), make_mix("ttnn", 1)]
    return [
        SimJob(mix, scheme, config, INSTRUCTIONS, seed=3)
        for mix in mixes
        for scheme in SCHEMES
    ]


def test_parallel_matches_serial_bitwise(cache_dir):
    jobs = _jobs()
    parallel = run_jobs(jobs, workers=2, use_cache=False)
    for job, outcome in zip(jobs, parallel):
        serial = run_mix(
            job.mix, job.scheme, job.config, job.instructions, seed=job.seed
        ).result
        assert outcome.result == serial


def test_cache_hit_equals_fresh_run(cache_dir):
    jobs = _jobs()
    fresh = run_jobs(jobs, workers=1)
    assert cache_dir.exists()  # entries were written
    hits = run_jobs(jobs, workers=1)
    for a, b in zip(fresh, hits):
        assert a.result == b.result


def test_cache_can_be_disabled(cache_dir, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_CACHE", "0")
    run_jobs(_jobs()[:1], workers=1)
    assert not cache_dir.exists()


def test_duplicate_jobs_simulated_once(cache_dir):
    job = _jobs()[0]
    outcomes = run_jobs([job, job, job], workers=1, use_cache=True)
    assert len(outcomes) == 3
    assert outcomes[0].result == outcomes[1].result == outcomes[2].result
    entries = [p for p in cache_dir.rglob("*.pkl")]
    assert len(entries) == 1


def test_job_key_distinguishes_inputs():
    config = small_system()
    mix = make_mix("sftn", 1)
    base = SimJob(mix, "lru-sa16", config, INSTRUCTIONS, seed=0)
    assert results_cache.job_key(base) == results_cache.job_key(
        SimJob(mix, "lru-sa16", config, INSTRUCTIONS, seed=0)
    )
    variants = [
        SimJob(mix, "vantage-z4/16", config, INSTRUCTIONS, seed=0),
        SimJob(mix, "lru-sa16", config, INSTRUCTIONS, seed=1),
        SimJob(mix, "lru-sa16", config, INSTRUCTIONS + 1, seed=0),
        SimJob(make_mix("ttnn", 1), "lru-sa16", config, INSTRUCTIONS, seed=0),
    ]
    keys = {results_cache.job_key(v) for v in variants}
    assert results_cache.job_key(base) not in keys
    assert len(keys) == len(variants)


def test_relative_throughputs_reuses_baseline(cache_dir):
    """A baseline that is also a scheme is simulated once and its
    column normalises to exactly 1.0."""
    config = small_system()
    mixes = [make_mix("sftn", 1)]
    rel = relative_throughputs(
        mixes, ["lru-sa16", "vantage-z4/16"], "lru-sa16", config, INSTRUCTIONS
    )
    assert rel["lru-sa16"] == [1.0]
    entries = [p for p in cache_dir.rglob("*.pkl")]
    assert len(entries) == 2  # baseline + vantage, not 3


def test_default_workers_env(monkeypatch):
    from repro.harness import default_workers

    monkeypatch.setenv("REPRO_WORKERS", "5")
    assert default_workers() == 5
    monkeypatch.delenv("REPRO_WORKERS")
    assert default_workers() >= 1


def test_pool_chunksize_preserves_job_order(cache_dir):
    """``run_jobs`` batches pool dispatches when jobs outnumber
    workers 4:1 (computed chunksize > 1); ``pool.map`` must still
    return outcomes in job order."""
    config = small_system()
    mixes = [make_mix(cls, 1) for cls in ("sftn", "ttnn", "stnn")]
    # 18 distinct pending jobs over 2 workers -> chunksize 2.
    jobs = [
        SimJob(mix, scheme, config, 2_000, seed=seed)
        for seed in (1, 2, 3)
        for scheme in SCHEMES
        for mix in mixes
    ]
    assert max(1, len(jobs) // (2 * 4)) > 1
    pooled = run_jobs(jobs, workers=2, use_cache=False)
    for job, outcome in zip(jobs, pooled):
        serial = run_mix(
            job.mix, job.scheme, job.config, job.instructions, seed=job.seed
        ).result
        assert outcome.result == serial


def test_worker_pool_used_when_requested(cache_dir):
    """Multi-worker path (ProcessPoolExecutor) agrees with inline."""
    if os.cpu_count() is None:
        pytest.skip("cpu_count unavailable")
    jobs = _jobs()[:2]
    pooled = run_jobs(jobs, workers=2, use_cache=False)
    inline = run_jobs(jobs, workers=1, use_cache=False)
    for a, b in zip(pooled, inline):
        assert a.result == b.result
