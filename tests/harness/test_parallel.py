"""Determinism of the parallel harness and the results cache.

The guarantees under test:

- ``run_jobs`` over worker processes is bitwise-identical to running
  each job serially through ``run_mix``;
- a cache hit returns the same outcome as a fresh simulation;
- duplicate jobs (and a baseline repeated inside a scheme list) are
  simulated only once.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import SimJob, relative_throughputs, run_jobs, run_mix
from repro.harness import results_cache
from repro.sim import small_system
from repro.workloads import make_mix

INSTRUCTIONS = 8_000
SCHEMES = ("vantage-z4/16", "lru-sa16")


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_RESULTS_CACHE", raising=False)
    return tmp_path / "cache"


def _jobs():
    config = small_system()
    mixes = [make_mix("sftn", 1), make_mix("ttnn", 1)]
    return [
        SimJob(mix, scheme, config, INSTRUCTIONS, seed=3)
        for mix in mixes
        for scheme in SCHEMES
    ]


def test_parallel_matches_serial_bitwise(cache_dir):
    jobs = _jobs()
    parallel = run_jobs(jobs, workers=2, use_cache=False)
    for job, outcome in zip(jobs, parallel):
        serial = run_mix(
            job.mix, job.scheme, job.config, job.instructions, seed=job.seed
        ).result
        assert outcome.result == serial


def test_cache_hit_equals_fresh_run(cache_dir):
    jobs = _jobs()
    fresh = run_jobs(jobs, workers=1)
    assert cache_dir.exists()  # entries were written
    hits = run_jobs(jobs, workers=1)
    for a, b in zip(fresh, hits):
        assert a.result == b.result


def test_cache_can_be_disabled(cache_dir, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_CACHE", "0")
    run_jobs(_jobs()[:1], workers=1)
    assert not cache_dir.exists()


def test_duplicate_jobs_simulated_once(cache_dir):
    job = _jobs()[0]
    outcomes = run_jobs([job, job, job], workers=1, use_cache=True)
    assert len(outcomes) == 3
    assert outcomes[0].result == outcomes[1].result == outcomes[2].result
    entries = [p for p in cache_dir.rglob("*.pkl")]
    assert len(entries) == 1


def test_job_key_distinguishes_inputs():
    config = small_system()
    mix = make_mix("sftn", 1)
    base = SimJob(mix, "lru-sa16", config, INSTRUCTIONS, seed=0)
    assert results_cache.job_key(base) == results_cache.job_key(
        SimJob(mix, "lru-sa16", config, INSTRUCTIONS, seed=0)
    )
    variants = [
        SimJob(mix, "vantage-z4/16", config, INSTRUCTIONS, seed=0),
        SimJob(mix, "lru-sa16", config, INSTRUCTIONS, seed=1),
        SimJob(mix, "lru-sa16", config, INSTRUCTIONS + 1, seed=0),
        SimJob(make_mix("ttnn", 1), "lru-sa16", config, INSTRUCTIONS, seed=0),
    ]
    keys = {results_cache.job_key(v) for v in variants}
    assert results_cache.job_key(base) not in keys
    assert len(keys) == len(variants)


def test_relative_throughputs_reuses_baseline(cache_dir):
    """A baseline that is also a scheme is simulated once and its
    column normalises to exactly 1.0."""
    config = small_system()
    mixes = [make_mix("sftn", 1)]
    rel = relative_throughputs(
        mixes, ["lru-sa16", "vantage-z4/16"], "lru-sa16", config, INSTRUCTIONS
    )
    assert rel["lru-sa16"] == [1.0]
    entries = [p for p in cache_dir.rglob("*.pkl")]
    assert len(entries) == 2  # baseline + vantage, not 3


def test_default_workers_env(monkeypatch):
    from repro.harness import default_workers

    monkeypatch.setenv("REPRO_WORKERS", "5")
    assert default_workers() == 5
    monkeypatch.delenv("REPRO_WORKERS")
    assert default_workers() >= 1


def test_pool_chunksize_preserves_job_order(cache_dir):
    """``run_jobs`` batches pool dispatches when jobs outnumber
    workers 4:1 (computed chunksize > 1); ``pool.map`` must still
    return outcomes in job order."""
    config = small_system()
    mixes = [make_mix(cls, 1) for cls in ("sftn", "ttnn", "stnn")]
    # 18 distinct pending jobs over 2 workers -> chunksize 2.
    jobs = [
        SimJob(mix, scheme, config, 2_000, seed=seed)
        for seed in (1, 2, 3)
        for scheme in SCHEMES
        for mix in mixes
    ]
    assert max(1, len(jobs) // (2 * 4)) > 1
    pooled = run_jobs(jobs, workers=2, use_cache=False)
    for job, outcome in zip(jobs, pooled):
        serial = run_mix(
            job.mix, job.scheme, job.config, job.instructions, seed=job.seed
        ).result
        assert outcome.result == serial


def test_worker_pool_used_when_requested(cache_dir):
    """Multi-worker path (ProcessPoolExecutor) agrees with inline."""
    if os.cpu_count() is None:
        pytest.skip("cpu_count unavailable")
    jobs = _jobs()[:2]
    pooled = run_jobs(jobs, workers=2, use_cache=False)
    inline = run_jobs(jobs, workers=1, use_cache=False)
    for a, b in zip(pooled, inline):
        assert a.result == b.result


# -- crash robustness and dedupe ordering (service-era satellites) -----

import signal
from types import SimpleNamespace

from concurrent.futures.process import BrokenProcessPool

_CRASH_SEED = 9999


def _crashy_execute(job):
    """First execution of the poisoned job SIGKILLs its worker.

    A flag file (inherited through the environment by forked pool
    workers) makes the crash happen exactly once, so the retry pass
    completes normally.
    """
    from repro.harness import parallel

    flag = os.environ.get("REPRO_TEST_CRASH_FLAG")
    if job.seed == _CRASH_SEED and flag and not os.path.exists(flag):
        with open(flag, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return parallel._execute(job)


def test_worker_crash_resubmits_unfinished_jobs(
    cache_dir, monkeypatch, tmp_path
):
    """A worker dying mid-sweep loses only unfinished jobs: the sweep
    retries them on a fresh pool and every outcome is still identical
    to a serial run."""
    from repro.harness import parallel

    flag = tmp_path / "crashed-once"
    monkeypatch.setenv("REPRO_TEST_CRASH_FLAG", str(flag))
    monkeypatch.setattr(parallel, "execute_job", _crashy_execute)
    config = small_system()
    mix = make_mix("sftn", 1)
    jobs = [
        SimJob(mix, "lru-sa16", config, 4_000, seed=seed)
        for seed in (_CRASH_SEED, 5, 6, 7)
    ]
    failures_before = parallel.POOL_FAILURES
    retried_before = parallel.JOBS_RETRIED
    outcomes = run_jobs(jobs, workers=2, use_cache=False)
    assert flag.exists()  # the crash really happened
    assert parallel.POOL_FAILURES == failures_before + 1
    assert parallel.JOBS_RETRIED > retried_before
    for job, outcome in zip(jobs, outcomes):
        serial = run_mix(
            job.mix, job.scheme, job.config, job.instructions, seed=job.seed
        ).result
        assert outcome.result == serial


def test_inline_fallback_after_repeated_pool_failures(cache_dir, monkeypatch):
    """A host that keeps killing pools still finishes the sweep: after
    MAX_POOL_FAILURES losses the leftovers run inline."""
    from repro.harness import parallel

    class AlwaysBrokenPool:
        def __init__(self, max_workers=None, initializer=None):
            pass

        def map(self, fn, iterable, chunksize=1):
            raise BrokenProcessPool("synthetic pool loss")

        def shutdown(self, wait=True, cancel_futures=False):
            pass

    monkeypatch.setattr(parallel, "ProcessPoolExecutor", AlwaysBrokenPool)
    jobs = _jobs()[:2]
    failures_before = parallel.POOL_FAILURES
    outcomes = run_jobs(jobs, workers=2, use_cache=False)
    assert parallel.POOL_FAILURES == failures_before + parallel.MAX_POOL_FAILURES
    for job, outcome in zip(jobs, outcomes):
        serial = run_mix(
            job.mix, job.scheme, job.config, job.instructions, seed=job.seed
        ).result
        assert outcome.result == serial


def test_uncached_dedupe_preserves_submission_order(cache_dir, monkeypatch):
    """With use_cache=False, interleaved duplicates still coalesce to
    one execution each and outcomes come back in submission order."""
    from repro.harness import parallel

    executed = []

    def fake_execute(job):
        executed.append(job.seed)
        return SimpleNamespace(wall_time_s=None, marker=job.seed)

    monkeypatch.setattr(parallel, "execute_job", fake_execute)
    config = small_system()
    mix = make_mix("sftn", 1)
    seeds = [1, 2, 1, 3, 2, 1]
    jobs = [
        SimJob(mix, "lru-sa16", config, INSTRUCTIONS, seed=s) for s in seeds
    ]
    outcomes = run_jobs(jobs, workers=1, use_cache=False)
    assert [o.marker for o in outcomes] == seeds
    assert executed == [1, 2, 3]  # one execution per unique job
    assert outcomes[0] is outcomes[2] is outcomes[5]  # shared outcome
    assert not cache_dir.exists()  # nothing persisted


def test_uncached_pooled_run_matches_serial(cache_dir):
    """The real multi-worker path with use_cache=False (previously
    only the cached path was parity-tested)."""
    jobs = _jobs()
    pooled = run_jobs(jobs + jobs[:2], workers=2, use_cache=False)
    for job, outcome in zip(jobs + jobs[:2], pooled):
        serial = run_mix(
            job.mix, job.scheme, job.config, job.instructions, seed=job.seed
        ).result
        assert outcome.result == serial
    assert not cache_dir.exists()


def test_corrupt_cache_entry_is_dropped_and_counted(cache_dir):
    """A torn or unpicklable cache file is a miss, not an error: the
    bad entry is deleted, counted, and the sweep re-simulates."""
    job = _jobs()[0]
    key = results_cache.job_key(job)
    path = results_cache._entry_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"\x80\x04 torn garbage, not a pickle")
    corrupt_before = results_cache.CORRUPT
    assert results_cache.load(key) is None
    assert results_cache.CORRUPT == corrupt_before + 1
    assert not path.exists()
    assert results_cache.counters()["corrupt_entries"] >= 1
    # The sweep recovers transparently and re-stores a good entry.
    outcomes = run_jobs([job], workers=1)
    serial = run_mix(
        job.mix, job.scheme, job.config, job.instructions, seed=job.seed
    ).result
    assert outcomes[0].result == serial
    assert results_cache.load(key).result == serial


def test_worker_init_ignores_sigint():
    """Pool workers must leave SIGINT to the parent (no traceback
    spray on Ctrl-C)."""
    from repro.harness import parallel

    previous = signal.getsignal(signal.SIGINT)
    try:
        parallel.worker_init()
        assert signal.getsignal(signal.SIGINT) == signal.SIG_IGN
    finally:
        signal.signal(signal.SIGINT, previous)
