"""Golden-stats regression tests.

Each pinned scheme runs the same fixed mix/seed/instruction budget and
its *entire* exported stats tree is compared against a checked-in JSON
snapshot in ``tests/golden/``.  Any change to simulation behaviour, to
the stats schema, or to counter semantics shows up as a diff here.

Regenerating (after an intentional change)::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/harness/test_golden_stats.py

then review the JSON diff like any other code change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import telemetry
from repro.harness.env import require_bitwise
from repro.harness.runner import run_mix
from repro.sim import small_system
from repro.workloads import SharedRegionSpec, make_mix, make_shared_mix

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

#: Pinned run: do not change without regenerating every golden file.
MIX_CLASS = "sftn"
MIX_INDEX = 1
SEED = 0
INSTRUCTIONS = 8_000

#: ``vantage-analytical-z4/52`` pins the Section 6.2 model tree the
#: fast-forward layer extrapolates with (histogram recompute counters
#: included); any drift in the model now shows up here, not just in
#: the Sec 6.2 validation benchmark.
SCHEMES = [
    "vantage-z4/52",
    "waypart-sa16",
    "pipp-sa64",
    "drrip-z4/16",
    "vantage-analytical-z4/52",
]

#: Pinned shared-region overlay for the reuse-aware golden tree.
SHARED_SPEC = SharedRegionSpec(kind="shared-table", lines=512, fraction=0.35)


def _golden_path(scheme: str) -> Path:
    return GOLDEN_DIR / f"stats_{scheme.replace('/', '_')}.json"


def _run_snapshot(scheme: str, shared: bool = False) -> dict:
    require_bitwise("a golden-stats snapshot run")
    prev = telemetry.enabled()
    try:
        telemetry.set_enabled(True)
        config = small_system()
        if shared:
            mix = make_shared_mix(MIX_CLASS, MIX_INDEX, SHARED_SPEC)
        else:
            mix = make_mix(MIX_CLASS, MIX_INDEX)
        run = run_mix(mix, scheme, config, INSTRUCTIONS, seed=SEED)
    finally:
        telemetry.set_enabled(prev)
    # Round-trip through JSON so the comparison sees exactly what the
    # export writes (tuples become lists, keys become strings).
    return json.loads(json.dumps(run.stats()))


@pytest.mark.parametrize("scheme", SCHEMES)
def test_stats_tree_matches_golden(scheme):
    snapshot = _run_snapshot(scheme)
    path = _golden_path(scheme)
    if os.environ.get("REPRO_REGEN_GOLDEN") == "1":
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    golden = json.loads(path.read_text())
    assert snapshot == golden, (
        f"stats tree for {scheme} diverged from {path.name}; if the "
        f"change is intentional, regenerate with REPRO_REGEN_GOLDEN=1"
    )


def test_reuse_aware_stats_tree_matches_golden():
    """The reuse-aware scheme on the pinned shared mix: covers the
    sharing stats group, the shared-hit counters and the reuse-aware
    policy's classification telemetry in one snapshot."""
    scheme = "reuse-aware-z4/52"
    snapshot = _run_snapshot(scheme, shared=True)
    sharing = snapshot["cache"]["sharing"]
    assert sharing["policy"] == "migrate-to-requester"
    assert sum(sharing["shared_hits"]) > 0
    path = _golden_path(scheme)
    if os.environ.get("REPRO_REGEN_GOLDEN") == "1":
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    golden = json.loads(path.read_text())
    assert snapshot == golden, (
        f"stats tree for {scheme} diverged from {path.name}; if the "
        f"change is intentional, regenerate with REPRO_REGEN_GOLDEN=1"
    )


def test_golden_trees_have_stable_roots():
    """The top-level schema is shared: every partitioned golden tree
    has cache/array/sim/policy roots, baselines all but policy."""
    for scheme in SCHEMES:
        golden = json.loads(_golden_path(scheme).read_text())
        expected = {"cache", "array", "sim"}
        if scheme != "drrip-z4/16":
            expected.add("policy")
        assert set(golden) == expected, scheme


def test_snapshot_is_deterministic():
    """Two runs of the pinned configuration export identical trees."""
    a = _run_snapshot(SCHEMES[0])
    b = _run_snapshot(SCHEMES[0])
    assert a == b
