"""Tests for the plugin registry and the registry-backed factories."""

import pytest

from repro.harness.schemes import (
    ARRAYS,
    SCHEMES,
    build_array,
    scheme_fingerprint,
    scheme_partitioned,
    split_scheme,
)
from repro.registry import Registry


class TestRegistry:
    def _make(self):
        reg = Registry("thing")

        @reg.register("alpha", description="first", flavour="a")
        def build_alpha():
            return "alpha"

        @reg.register("alpha-beta", description="second")
        def build_alpha_beta():
            return "alpha-beta"

        return reg

    def test_get_and_metadata(self):
        reg = self._make()
        entry = reg.get("alpha")
        assert entry.builder() == "alpha"
        assert entry.description == "first"
        assert entry.metadata == {"flavour": "a"}

    def test_get_unknown_lists_registered(self):
        reg = self._make()
        with pytest.raises(ValueError, match="alpha, alpha-beta"):
            reg.get("gamma")

    def test_duplicate_rejected_unless_replace(self):
        reg = self._make()
        with pytest.raises(ValueError, match="already registered"):

            @reg.register("alpha")
            def again():
                pass

        @reg.register("alpha", replace=True)
        def override():
            return "override"

        assert reg.get("alpha").builder() == "override"

    def test_match_prefix_longest_wins(self):
        reg = self._make()
        entry, rest = reg.match_prefix("alpha-beta-z4/52", sep="-")
        assert entry.name == "alpha-beta"
        assert rest == "z4/52"
        entry, rest = reg.match_prefix("alpha-sa16", sep="-")
        assert entry.name == "alpha"
        assert rest == "sa16"

    def test_match_prefix_requires_separator_and_remainder(self):
        reg = self._make()
        assert reg.match_prefix("alpha", sep="-") is None
        assert reg.match_prefix("alpha-", sep="-") is None
        assert reg.match_prefix("alphasa16", sep="-") is None

    def test_introspection(self):
        reg = self._make()
        assert reg.names() == ["alpha", "alpha-beta"]
        assert "alpha" in reg
        assert len(reg) == 2

    def test_fingerprints_distinguish_entries(self):
        reg = self._make()
        fp_a = reg.get("alpha").fingerprint()
        fp_b = reg.get("alpha-beta").fingerprint()
        assert fp_a != fp_b
        # Stable across calls.
        assert fp_a == reg.get("alpha").fingerprint()
        # Combined digest differs from per-entry digests.
        assert reg.fingerprint("alpha") not in (fp_a, fp_b)


class TestMalformedTokens:
    """No silent defaults: every malformed token raises ValueError
    naming the offending token."""

    @pytest.mark.parametrize(
        "token",
        ["z4/", "z/52", "z/", "sa", "sax", "sa0", "sa-4", "z4/0", "zx/52",
         "skew", "rc", "rc0"],
    )
    def test_malformed_raises_naming_token(self, token):
        with pytest.raises(ValueError, match=repr(token)):
            build_array(token, 1024)

    def test_unknown_kind_lists_registered(self):
        with pytest.raises(ValueError, match="rc, sa, skew, z"):
            build_array("tcam8", 1024)

    def test_bare_z4_uses_documented_default(self):
        array = build_array("z4", 1024)
        assert array.candidates_per_miss == 52


class TestSchemeRegistry:
    def test_all_paper_schemes_registered(self):
        for name in ("vantage", "vantage-drrip", "vantage-analytical",
                     "waypart", "pipp", "lru", "drrip", "ta-drrip"):
            assert name in SCHEMES

    def test_split_scheme_composed_names(self):
        entry, array = split_scheme("vantage-drrip-z4/52")
        assert entry.name == "vantage-drrip"
        assert array == "z4/52"
        entry, array = split_scheme("ta-drrip-sa16")
        assert entry.name == "ta-drrip"
        assert array == "sa16"

    def test_split_scheme_unknown(self):
        with pytest.raises(ValueError, match="colouring"):
            split_scheme("colouring-sa16")

    @pytest.mark.parametrize(
        "scheme,expected",
        [
            ("vantage-z4/52", True),
            ("waypart-sa16", True),
            ("pipp-sa64", True),
            ("lru-sa16", False),
            ("drrip-z4/16", False),
        ],
    )
    def test_scheme_partitioned(self, scheme, expected):
        assert scheme_partitioned(scheme) is expected

    def test_every_scheme_has_partitioned_metadata(self):
        for entry in SCHEMES.entries():
            assert "partitioned" in entry.metadata

    def test_array_registry_covers_tokens(self):
        assert ARRAYS.names() == ["rc", "sa", "skew", "z"]


class TestSchemeFingerprint:
    def test_stable_and_scheme_specific(self):
        fp = scheme_fingerprint("vantage-z4/52")
        assert fp == scheme_fingerprint("vantage-z4/52")
        assert len(fp) == 32
        assert fp != scheme_fingerprint("vantage-drrip-z4/52")
        # Same scheme on a different array kind differs too.
        assert fp != scheme_fingerprint("vantage-sa16")

    def test_same_kind_different_params_share_fingerprint(self):
        # The fingerprint covers construction *code*; parameters are
        # already part of the job key.
        assert scheme_fingerprint("vantage-z4/52") == scheme_fingerprint(
            "vantage-z4/16"
        )

    def test_unknown_array_raises(self):
        with pytest.raises(ValueError, match="tcam8"):
            scheme_fingerprint("vantage-tcam8")


class TestCacheKeyFingerprint:
    def test_job_key_depends_on_registry_fingerprint(self, monkeypatch):
        from repro.harness import results_cache
        from repro.harness.parallel import SimJob
        from repro.sim import small_system
        from repro.workloads import make_mix

        job = SimJob(make_mix("sftn", 1), "vantage-z4/52", small_system(), 1000)
        key_before = results_cache.job_key(job)
        assert key_before == results_cache.job_key(job)

        monkeypatch.setattr(
            "repro.harness.schemes.scheme_fingerprint",
            lambda scheme: "0" * 32,
        )
        assert results_cache.job_key(job) != key_before
