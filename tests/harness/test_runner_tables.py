"""Tests for the mix runner, env scaling, and table formatting."""

import json

import pytest

from repro.harness import (
    build_cache,
    build_policy,
    distribution_row,
    env_int,
    format_curve_table,
    format_distribution_table,
    run_mix,
    save_results,
)
from repro.sim import SystemConfig
from repro.workloads import make_mix


def tiny_4core(**overrides):
    params = dict(
        num_cores=4,
        l2_bytes=256 * 64,
        l2_banks=1,
        mem_bandwidth_gbs=32.0,
        epoch_cycles=20_000,
    )
    params.update(overrides)
    return SystemConfig(**params)


class TestRunMix:
    def test_baseline_runs_without_policy(self):
        mix = make_mix("sftn", 1)
        run = run_mix(mix, "lru-sa16", tiny_4core(), instructions=20_000)
        assert run.system.policy is None
        assert run.result.throughput > 0

    def test_partitioned_scheme_gets_ucp(self):
        mix = make_mix("sftn", 1)
        run = run_mix(mix, "vantage-z4/16", tiny_4core(), instructions=20_000)
        assert run.system.policy is not None
        # UCP installed non-default targets at some point.
        assert sum(run.cache.target) <= run.cache.allocation_total

    def test_size_series_capture(self):
        mix = make_mix("ttnn", 1)
        run = run_mix(
            mix,
            "vantage-z4/16",
            tiny_4core(),
            instructions=20_000,
            size_sample_cycles=10_000,
        )
        assert run.size_series is not None
        assert len(run.size_series.times) > 2

    def test_core_count_mismatch_rejected(self):
        mix = make_mix("sftn", 1, apps_per_slot=2)  # 8 apps
        with pytest.raises(ValueError):
            run_mix(mix, "lru-sa16", tiny_4core(), instructions=1000)


class TestBuildPolicy:
    def test_way_scheme_gets_way_units(self):
        config = tiny_4core()
        cache = build_cache("waypart-sa16", config.l2_lines, 4)
        policy = build_policy(cache, config)
        assert policy.total_units == 16
        assert policy.granularity is None

    def test_vantage_gets_line_granularity(self):
        config = tiny_4core()
        cache = build_cache("vantage-z4/52", config.l2_lines, 4)
        policy = build_policy(cache, config)
        assert policy.granularity == 256
        assert policy.total_units == cache.allocation_total


class TestEnv:
    def test_env_int_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FOO", raising=False)
        assert env_int("REPRO_FOO", 7) == 7

    def test_env_int_parse(self, monkeypatch):
        monkeypatch.setenv("REPRO_FOO", "123")
        assert env_int("REPRO_FOO", 7) == 123

    def test_env_int_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_FOO", "abc")
        with pytest.raises(ValueError):
            env_int("REPRO_FOO", 7)


class TestTables:
    def test_distribution_row(self):
        row = distribution_row("vantage", [1.1, 0.9, 1.3])
        assert row["scheme"] == "vantage"
        assert row["improved_frac"] == pytest.approx(2 / 3)
        assert row["degraded_frac"] == pytest.approx(1 / 3)
        assert row["best"] == 1.3
        assert row["worst"] == 0.9

    def test_format_distribution_table(self):
        rows = [distribution_row("a", [1.0, 1.2]), distribution_row("b", [0.8])]
        text = format_distribution_table(rows, "Figure X")
        assert "Figure X" in text
        assert "a" in text and "b" in text

    def test_format_curve_table(self):
        text = format_curve_table(
            "Fig 5", [0.1, 0.2], {"R=16": [1.0, 2.0], "R=52": [3.0, 4.0]}, x_label="Amax"
        )
        assert "Fig 5" in text
        assert "R=16" in text
        assert "0.2" in text

    def test_save_results(self, tmp_path, monkeypatch):
        import repro.harness.tables as tables

        monkeypatch.setattr(tables, "RESULTS_DIR", tmp_path)
        path = tables.save_results("unit", {"x": 1})
        assert json.loads(path.read_text()) == {"x": 1}
