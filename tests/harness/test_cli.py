"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["run-mix"])
        assert args.scheme == "vantage-z4/52"
        assert args.system == "small"


class TestCommands:
    def test_list_apps(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out
        assert "thrashing/streaming" in out

    def test_size_unmanaged(self, capsys):
        assert main(["size-unmanaged", "-r", "52", "--pev", "1e-2", "--a-max", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "u = 0.138" in out

    def test_overheads(self, capsys):
        assert main(["overheads"]) == 0
        out = capsys.readouterr().out
        assert "partition-ID tag bits: 6" in out

    def test_classify_unknown_app(self, capsys):
        assert main(["classify", "doom"]) == 1

    def test_classify_known_app(self, capsys):
        assert main(["classify", "libquantum", "--accesses", "15000"]) == 0
        out = capsys.readouterr().out
        assert "classified as" in out

    def test_run_mix_small(self, capsys):
        code = main(
            [
                "run-mix",
                "--mix-class",
                "ssnn",
                "--scheme",
                "vantage-z4/16",
                "--instructions",
                "60000",
                "--epoch-cycles",
                "30000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "managed-eviction fraction" in out

    def test_run_mix_stats_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "stats.json"
        code = main(
            [
                "run-mix",
                "--instructions",
                "20000",
                "--stats-json",
                str(path),
            ]
        )
        assert code == 0
        stats = json.loads(path.read_text())
        assert {"cache", "array", "sim", "policy"} <= set(stats)
        assert sum(stats["cache"]["accesses"]) > 0


class TestBenchCompare:
    """``repro bench --compare`` gates on speedup regressions.

    ``run_bench`` is stubbed: these tests pin the exit-code contract
    and the fail-fast baseline parse, not the timing harness itself
    (which ``test_bench.py`` covers)."""

    REPORT = {
        "smoke": False,
        "kernels": [{"scheme": "vantage-z4/52", "speedup": 9.0}],
        "batch": {"scheme": "vantage-z4/52", "speedup": 2.0},
    }

    def _stub_bench(self, monkeypatch):
        import repro.harness.bench as bench

        monkeypatch.setattr(bench, "run_bench", lambda **kw: dict(self.REPORT))

    def _baseline(self, tmp_path, speedup):
        import json

        path = tmp_path / "BENCH_base.json"
        path.write_text(
            json.dumps(
                {
                    "smoke": False,
                    "kernels": [
                        {"scheme": "vantage-z4/52", "speedup": speedup}
                    ],
                    "batch": {"scheme": "vantage-z4/52", "speedup": 2.0},
                }
            )
        )
        return str(path)

    def test_regression_exits_nonzero(self, capsys, monkeypatch, tmp_path):
        self._stub_bench(monkeypatch)
        baseline = self._baseline(tmp_path, speedup=20.0)
        assert main(["bench", "--smoke", "--compare", baseline]) == 1
        assert "speedup regressions" in capsys.readouterr().out

    def test_no_regression_exits_zero(self, capsys, monkeypatch, tmp_path):
        self._stub_bench(monkeypatch)
        baseline = self._baseline(tmp_path, speedup=9.0)
        assert main(["bench", "--smoke", "--compare", baseline]) == 0
        assert "no speedup regressions" in capsys.readouterr().out

    def test_bad_baseline_fails_before_bench_runs(self, monkeypatch, tmp_path):
        import pytest as _pytest

        import repro.harness.bench as bench

        def _boom(**kw):
            raise AssertionError("bench must not run when the baseline is unreadable")

        monkeypatch.setattr(bench, "run_bench", _boom)
        with _pytest.raises(FileNotFoundError):
            main(["bench", "--compare", str(tmp_path / "missing.json")])

    def test_schemes_table(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "vantage" in out
        assert "partitioned" in out
        assert "baseline" in out
        assert "zcache" in out

    def test_schemes_list_bare_names(self, capsys):
        assert main(["schemes", "--list"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert "vantage" in lines
        assert "vantage-drrip" in lines
        assert "lru" in lines
        # Bare names only: one token per line, no descriptions.
        assert all(" " not in line for line in lines)

    def test_schemes_fingerprints(self, capsys):
        assert main(["schemes", "--fingerprints"]) == 0
        out = capsys.readouterr().out
        assert "[" in out


class TestInterrupts:
    """Ctrl-C and SIGTERM exit with distinct codes, no tracebacks."""

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        from repro import cli

        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "list-apps", boom)
        assert main(["list-apps"]) == cli.EXIT_SIGINT
        assert "interrupted" in capsys.readouterr().out

    def test_sigterm_exits_143(self, monkeypatch):
        import os
        import signal

        from repro import cli

        def term_self(args):
            import time

            os.kill(os.getpid(), signal.SIGTERM)
            time.sleep(5)  # never elapses: the handler raises first
            return 0

        monkeypatch.setitem(cli._COMMANDS, "list-apps", term_self)
        with pytest.raises(SystemExit) as exc:
            main(["list-apps"])
        assert exc.value.code == cli.EXIT_SIGTERM

    def test_sigterm_handler_restored(self):
        import signal

        before = signal.getsignal(signal.SIGTERM)
        main(["size-unmanaged"])
        assert signal.getsignal(signal.SIGTERM) == before


class TestServiceVerbs:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.queue_size == 256
        assert args.max_retries == 2
        assert args.job_timeout is None
        assert not args.no_cache

    def test_submit_parser_mirrors_run_mix(self):
        args = build_parser().parse_args(["submit", "--scheme", "lru-sa16"])
        assert args.scheme == "lru-sa16"
        assert args.instructions == 400_000
        assert args.priority == 0

    def test_svc_stats_refuses_when_no_daemon(self, tmp_path):
        code_error = None
        try:
            code_error = main(
                ["svc-stats", "--socket", str(tmp_path / "absent.sock")]
            )
        except (ConnectionRefusedError, FileNotFoundError):
            code_error = "raised"
        assert code_error == "raised"
