"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["run-mix"])
        assert args.scheme == "vantage-z4/52"
        assert args.system == "small"


class TestCommands:
    def test_list_apps(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out
        assert "thrashing/streaming" in out

    def test_size_unmanaged(self, capsys):
        assert main(["size-unmanaged", "-r", "52", "--pev", "1e-2", "--a-max", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "u = 0.138" in out

    def test_overheads(self, capsys):
        assert main(["overheads"]) == 0
        out = capsys.readouterr().out
        assert "partition-ID tag bits: 6" in out

    def test_classify_unknown_app(self, capsys):
        assert main(["classify", "doom"]) == 1

    def test_classify_known_app(self, capsys):
        assert main(["classify", "libquantum", "--accesses", "15000"]) == 0
        out = capsys.readouterr().out
        assert "classified as" in out

    def test_run_mix_small(self, capsys):
        code = main(
            [
                "run-mix",
                "--mix-class",
                "ssnn",
                "--scheme",
                "vantage-z4/16",
                "--instructions",
                "60000",
                "--epoch-cycles",
                "30000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "managed-eviction fraction" in out

    def test_run_mix_stats_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "stats.json"
        code = main(
            [
                "run-mix",
                "--instructions",
                "20000",
                "--stats-json",
                str(path),
            ]
        )
        assert code == 0
        stats = json.loads(path.read_text())
        assert {"cache", "array", "sim", "policy"} <= set(stats)
        assert sum(stats["cache"]["accesses"]) > 0


class TestBenchCompare:
    """``repro bench --compare`` gates on speedup regressions.

    ``run_bench`` is stubbed: these tests pin the exit-code contract
    and the fail-fast baseline parse, not the timing harness itself
    (which ``test_bench.py`` covers)."""

    REPORT = {
        "smoke": False,
        "kernels": [{"scheme": "vantage-z4/52", "speedup": 9.0}],
        "batch": {"scheme": "vantage-z4/52", "speedup": 2.0},
    }

    def _stub_bench(self, monkeypatch):
        import repro.harness.bench as bench

        monkeypatch.setattr(bench, "run_bench", lambda **kw: dict(self.REPORT))

    def _baseline(self, tmp_path, speedup):
        import json

        path = tmp_path / "BENCH_base.json"
        path.write_text(
            json.dumps(
                {
                    "smoke": False,
                    "kernels": [
                        {"scheme": "vantage-z4/52", "speedup": speedup}
                    ],
                    "batch": {"scheme": "vantage-z4/52", "speedup": 2.0},
                }
            )
        )
        return str(path)

    def test_regression_exits_nonzero(self, capsys, monkeypatch, tmp_path):
        self._stub_bench(monkeypatch)
        baseline = self._baseline(tmp_path, speedup=20.0)
        assert main(["bench", "--smoke", "--compare", baseline]) == 1
        assert "speedup regressions" in capsys.readouterr().out

    def test_no_regression_exits_zero(self, capsys, monkeypatch, tmp_path):
        self._stub_bench(monkeypatch)
        baseline = self._baseline(tmp_path, speedup=9.0)
        assert main(["bench", "--smoke", "--compare", baseline]) == 0
        assert "no speedup regressions" in capsys.readouterr().out

    def test_bad_baseline_fails_before_bench_runs(self, monkeypatch, tmp_path):
        import pytest as _pytest

        import repro.harness.bench as bench

        def _boom(**kw):
            raise AssertionError("bench must not run when the baseline is unreadable")

        monkeypatch.setattr(bench, "run_bench", _boom)
        with _pytest.raises(FileNotFoundError):
            main(["bench", "--compare", str(tmp_path / "missing.json")])

    def test_schemes_table(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "vantage" in out
        assert "partitioned" in out
        assert "baseline" in out
        assert "zcache" in out

    def test_schemes_list_bare_names(self, capsys):
        assert main(["schemes", "--list"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert "vantage" in lines
        assert "vantage-drrip" in lines
        assert "lru" in lines
        # Bare names only: one token per line, no descriptions.
        assert all(" " not in line for line in lines)

    def test_schemes_fingerprints(self, capsys):
        assert main(["schemes", "--fingerprints"]) == 0
        out = capsys.readouterr().out
        assert "[" in out


class TestUnknownNames:
    """Misspelled mix/scheme names exit 1 with a hint, no traceback."""

    def test_run_mix_unknown_scheme(self, capsys):
        assert main(["run-mix", "--scheme", "vantge-z4/52"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("error: unknown scheme")
        assert "did you mean" in out
        assert "vantage" in out

    def test_run_mix_unknown_mix_class(self, capsys):
        assert main(["run-mix", "--mix-class", "sftm"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("error:")
        assert "close matches" in out
        assert "sftn" in out

    def test_submit_unknown_scheme_fails_before_connecting(self, capsys):
        # No daemon is running; a pre-validation failure must exit
        # before the client ever tries the socket.
        assert main(["submit", "--scheme", "vantge-z4/52"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("error: unknown scheme")
        assert "did you mean" in out


class TestBenchHistory:
    """``repro bench --history`` appends runs and gates against the
    best recent entry.  ``run_bench`` is stubbed as in
    ``TestBenchCompare``; ``update_history`` itself runs for real."""

    def _stub_bench(self, monkeypatch, speedup=9.0):
        import repro.harness.bench as bench

        report = {
            "tag": "local",
            "smoke": False,
            "kernels": [
                {
                    "scheme": "vantage-z4/52",
                    "partitioned": True,
                    "instructions": 1000,
                    "optimized_s": 1.0,
                    "reference_s": speedup,
                    "speedup": speedup,
                }
            ],
            "batch": {
                "scheme": "vantage-z4/52",
                "speedup": 2.0,
                "batch_on_s": 0.5,
                "batch_off_s": 1.0,
            },
        }
        monkeypatch.setattr(bench, "run_bench", lambda **kw: dict(report))

    def _entries(self, path):
        import json

        return json.loads(path.read_text())

    def test_first_run_seeds_the_history(self, capsys, monkeypatch, tmp_path):
        self._stub_bench(monkeypatch)
        history = tmp_path / "history.json"
        assert main(["bench", "--smoke", "--history", str(history)]) == 0
        assert "appended to" in capsys.readouterr().out
        entries = self._entries(history)
        assert len(entries) == 1
        assert entries[0]["kernels"][0]["speedup"] == 9.0
        # Entries are slimmed: raw timings kept, peak-memory and
        # identical flags dropped.
        assert "identical" not in entries[0]["kernels"][0]

    def test_steady_speedup_accumulates(self, capsys, monkeypatch, tmp_path):
        self._stub_bench(monkeypatch)
        history = tmp_path / "history.json"
        for _ in range(3):
            assert main(["bench", "--smoke", "--history", str(history)]) == 0
        assert len(self._entries(history)) == 3

    def test_regression_vs_best_of_window_exits_nonzero(
        self, capsys, monkeypatch, tmp_path
    ):
        history = tmp_path / "history.json"
        self._stub_bench(monkeypatch, speedup=9.0)
        assert main(["bench", "--smoke", "--history", str(history)]) == 0
        capsys.readouterr()
        self._stub_bench(monkeypatch, speedup=5.0)
        assert main(["bench", "--smoke", "--history", str(history)]) == 1
        out = capsys.readouterr().out
        assert "speedup regressions vs best of last 1" in out
        # The slow run is still recorded.
        assert len(self._entries(history)) == 2

    def test_smoke_entries_are_recorded_but_never_compared(
        self, monkeypatch, tmp_path
    ):
        import json

        history = tmp_path / "history.json"
        history.write_text(
            json.dumps(
                [
                    {
                        "tag": "ci",
                        "smoke": True,
                        "kernels": [
                            {"scheme": "vantage-z4/52", "speedup": 99.0}
                        ],
                    }
                ]
            )
        )
        self._stub_bench(monkeypatch, speedup=5.0)
        # The only prior entry is a smoke run: no baseline, no gate.
        assert main(["bench", "--smoke", "--history", str(history)]) == 0
        assert len(self._entries(history)) == 2

    def test_window_forgives_old_peaks(self, monkeypatch, tmp_path):
        import json

        history = tmp_path / "history.json"
        # One ancient fast run followed by five slow ones: the fast
        # run has aged out of the 5-entry window, so a matching slow
        # run passes.
        entries = [
            {
                "tag": "old",
                "smoke": False,
                "kernels": [{"scheme": "vantage-z4/52", "speedup": 50.0}],
            }
        ]
        entries += [
            {
                "tag": f"run{i}",
                "smoke": False,
                "kernels": [{"scheme": "vantage-z4/52", "speedup": 5.0}],
            }
            for i in range(5)
        ]
        history.write_text(json.dumps(entries))
        self._stub_bench(monkeypatch, speedup=5.0)
        assert main(["bench", "--smoke", "--history", str(history)]) == 0

    def test_corrupt_history_fails_before_bench_runs(
        self, capsys, monkeypatch, tmp_path
    ):
        import repro.harness.bench as bench

        def _boom(**kw):
            raise AssertionError(
                "bench must not run when the history is unreadable"
            )

        monkeypatch.setattr(bench, "run_bench", _boom)
        history = tmp_path / "history.json"
        history.write_text('{"not": "a list"}')
        assert main(["bench", "--history", str(history)]) == 1
        assert "not a bench history" in capsys.readouterr().out


class TestInterrupts:
    """Ctrl-C and SIGTERM exit with distinct codes, no tracebacks."""

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        from repro import cli

        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "list-apps", boom)
        assert main(["list-apps"]) == cli.EXIT_SIGINT
        assert "interrupted" in capsys.readouterr().out

    def test_sigterm_exits_143(self, monkeypatch):
        import os
        import signal

        from repro import cli

        def term_self(args):
            import time

            os.kill(os.getpid(), signal.SIGTERM)
            time.sleep(5)  # never elapses: the handler raises first
            return 0

        monkeypatch.setitem(cli._COMMANDS, "list-apps", term_self)
        with pytest.raises(SystemExit) as exc:
            main(["list-apps"])
        assert exc.value.code == cli.EXIT_SIGTERM

    def test_sigterm_handler_restored(self):
        import signal

        before = signal.getsignal(signal.SIGTERM)
        main(["size-unmanaged"])
        assert signal.getsignal(signal.SIGTERM) == before


class TestServiceVerbs:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.queue_size == 256
        assert args.max_retries == 2
        assert args.job_timeout is None
        assert not args.no_cache

    def test_submit_parser_mirrors_run_mix(self):
        args = build_parser().parse_args(["submit", "--scheme", "lru-sa16"])
        assert args.scheme == "lru-sa16"
        assert args.instructions == 400_000
        assert args.priority == 0

    def test_svc_stats_refuses_when_no_daemon(self, tmp_path):
        code_error = None
        try:
            code_error = main(
                ["svc-stats", "--socket", str(tmp_path / "absent.sock")]
            )
        except (ConnectionRefusedError, FileNotFoundError):
            code_error = "raised"
        assert code_error == "raised"


class TestAddressValidation:
    def test_bad_tcp_flag_is_one_line_error_exit_1(self, capsys):
        code = main(["svc-stats", "--tcp", "nonsense"])
        out = capsys.readouterr().out
        assert code == 1
        assert out.startswith("error:")
        assert "--tcp" in out
        assert "\n" not in out.strip()

    def test_bad_service_addr_env_is_one_line_error_exit_1(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_SERVICE_ADDR", "::1:7070")
        monkeypatch.delenv("REPRO_SERVICE_SOCKET", raising=False)
        code = main(["svc-stats"])
        out = capsys.readouterr().out
        assert code == 1
        assert out.startswith("error:")
        assert "REPRO_SERVICE_ADDR" in out
        assert "[host]:port" in out  # the bracket hint for bare IPv6

    def test_bracketed_ipv6_tcp_flag_parses(self):
        args = build_parser().parse_args(["serve", "--tcp", "[::1]:7070"])
        from repro.cli import _tcp_arg

        assert _tcp_arg(args.tcp) == ("::1", 7070)

    def test_gateway_parser_defaults(self):
        args = build_parser().parse_args(
            ["gateway", "--node", "127.0.0.1:7071", "--node", "127.0.0.1:7072"]
        )
        assert args.node == ["127.0.0.1:7071", "127.0.0.1:7072"]
        assert args.fail_threshold == 2
        assert args.per_node_inflight == 8
        assert args.max_retries == 2
        assert not args.no_cache

    def test_fed_submit_parser_defaults(self):
        args = build_parser().parse_args(["fed-submit"])
        assert args.mixes == 1
        assert args.schemes == "vantage-z4/52"
        assert args.gateway is None
