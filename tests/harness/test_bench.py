"""Tests for the pinned micro-benchmark harness.

The timing numbers themselves are host-dependent and not asserted;
what is pinned here is the bench's *coverage*: the run must cross at
least one repartitioning epoch (so the allocation path is inside the
measured kernel), report the peak-memory footprint of both kernel
implementations, and hold the optimized == reference identity.
"""

from repro.harness.bench import (
    BENCH_EPOCH_CYCLES,
    SMOKE_INSTRUCTIONS,
    _run_once,
    bench_kernel,
)


class TestEpochCoverage:
    def test_smoke_run_crosses_a_repartitioning_epoch(self):
        _, result, _, policy = _run_once(
            "vantage-z4/52", True, SMOKE_INSTRUCTIONS, False
        )
        # Even the smoke run must outlast BENCH_EPOCH_CYCLES, or the
        # bench silently stops covering UMON read-out + Lookahead +
        # set_allocations.
        assert result.total_cycles > BENCH_EPOCH_CYCLES
        assert policy is not None
        assert policy.last_allocation, (
            "pinned bench crossed no epoch: last_allocation is empty"
        )
        assert all(units >= 0 for units in policy.last_allocation)

    def test_reference_run_repartitions_identically(self):
        _, opt_result, _, opt_policy = _run_once(
            "vantage-z4/52", True, SMOKE_INSTRUCTIONS, False
        )
        _, ref_result, _, ref_policy = _run_once(
            "vantage-z4/52", True, SMOKE_INSTRUCTIONS, True
        )
        assert opt_result == ref_result
        assert opt_policy.last_allocation == ref_policy.last_allocation


class TestBenchKernelReport:
    def test_row_reports_identity_memory_and_allocation(self):
        row = bench_kernel("vantage-z4/52", True, SMOKE_INSTRUCTIONS, 1)
        assert row["identical"] is True
        assert row["partitioned"] is True
        assert row["last_allocation"], "headline row must record an allocation"
        # tracemalloc peaks for both sides, in KiB.
        assert row["optimized_peak_kib"] > 0
        assert row["reference_peak_kib"] > 0

    def test_unpartitioned_row_has_no_allocation(self):
        row = bench_kernel("lru-sa16", False, 4_000, 1)
        assert row["identical"] is True
        assert row["partitioned"] is False
        assert row["last_allocation"] is None
