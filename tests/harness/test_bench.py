"""Tests for the pinned micro-benchmark harness.

The timing numbers themselves are host-dependent and not asserted;
what is pinned here is the bench's *coverage*: the run must cross at
least one repartitioning epoch (so the allocation path is inside the
measured kernel), report the peak-memory footprint of both kernel
implementations, and hold the optimized == reference identity.
"""

from repro.harness.bench import (
    BENCH_EPOCH_CYCLES,
    SMOKE_INSTRUCTIONS,
    _run_once,
    bench_kernel,
    compare_reports,
    update_history,
)


class TestEpochCoverage:
    def test_smoke_run_crosses_a_repartitioning_epoch(self):
        _, result, _, policy = _run_once(
            "vantage-z4/52", True, SMOKE_INSTRUCTIONS, False
        )
        # Even the smoke run must outlast BENCH_EPOCH_CYCLES, or the
        # bench silently stops covering UMON read-out + Lookahead +
        # set_allocations.
        assert result.total_cycles > BENCH_EPOCH_CYCLES
        assert policy is not None
        assert policy.last_allocation, (
            "pinned bench crossed no epoch: last_allocation is empty"
        )
        assert all(units >= 0 for units in policy.last_allocation)

    def test_reference_run_repartitions_identically(self):
        _, opt_result, _, opt_policy = _run_once(
            "vantage-z4/52", True, SMOKE_INSTRUCTIONS, False
        )
        _, ref_result, _, ref_policy = _run_once(
            "vantage-z4/52", True, SMOKE_INSTRUCTIONS, True
        )
        assert opt_result == ref_result
        assert opt_policy.last_allocation == ref_policy.last_allocation


class TestBenchKernelReport:
    def test_row_reports_identity_memory_and_allocation(self):
        row = bench_kernel("vantage-z4/52", True, SMOKE_INSTRUCTIONS, 1)
        assert row["identical"] is True
        assert row["partitioned"] is True
        assert row["last_allocation"], "headline row must record an allocation"
        # tracemalloc peaks for both sides, in KiB.
        assert row["optimized_peak_kib"] > 0
        assert row["reference_peak_kib"] > 0

    def test_unpartitioned_row_has_no_allocation(self):
        row = bench_kernel("lru-sa16", False, 4_000, 1)
        assert row["identical"] is True
        assert row["partitioned"] is False
        assert row["last_allocation"] is None


def _report(**overrides):
    """A minimal bench report with healthy speedups."""
    report = {
        "smoke": False,
        "kernels": [
            {"scheme": "vantage-z4/52", "speedup": 9.0},
            {"scheme": "lru-sa16", "speedup": 12.0},
        ],
        "batch": {"scheme": "vantage-z4/52", "speedup": 2.0},
    }
    report.update(overrides)
    return report


class TestCompareReports:
    def test_no_regressions_when_equal(self):
        assert compare_reports(_report(), _report()) == []

    def test_within_tolerance_passes(self):
        current = _report(
            kernels=[{"scheme": "vantage-z4/52", "speedup": 8.2}]
        )
        # 8.2 > 9.0 * 0.9 -- inside the 10% band.
        assert compare_reports(current, _report()) == []

    def test_kernel_regression_detected(self):
        current = _report(
            kernels=[{"scheme": "vantage-z4/52", "speedup": 7.0}]
        )
        regressions = compare_reports(current, _report())
        assert len(regressions) == 1
        assert "vantage-z4/52" in regressions[0]

    def test_batch_layer_regression_detected(self):
        current = _report(batch={"scheme": "vantage-z4/52", "speedup": 1.0})
        regressions = compare_reports(current, _report())
        assert len(regressions) == 1
        assert "batch layer" in regressions[0]

    def test_smoke_baseline_is_skipped(self):
        current = _report(
            kernels=[{"scheme": "vantage-z4/52", "speedup": 0.1}]
        )
        assert compare_reports(current, _report(smoke=True)) == []

    def test_unknown_kernels_are_ignored(self):
        current = _report(
            kernels=[{"scheme": "brand-new-scheme", "speedup": 0.1}]
        )
        assert compare_reports(current, _report()) == []

    def test_tolerance_is_configurable(self):
        current = _report(
            kernels=[{"scheme": "vantage-z4/52", "speedup": 8.2}]
        )
        assert compare_reports(current, _report(), tolerance=0.05)


class TestUpdateHistory:
    def _history(self, tmp_path):
        return tmp_path / "history.json"

    def _load(self, path):
        import json

        return json.loads(path.read_text())

    def test_first_entry_has_no_baseline(self, tmp_path):
        path = self._history(tmp_path)
        regressions, compared = update_history(_report(), path)
        assert (regressions, compared) == ([], 0)
        assert len(self._load(path)) == 1

    def test_gates_against_best_of_window(self, tmp_path):
        path = self._history(tmp_path)
        # Two prior runs: one fast, one slow.  The gate must use the
        # fast one, so a middling current run regresses.
        update_history(_report(), path)
        update_history(
            _report(kernels=[{"scheme": "vantage-z4/52", "speedup": 4.0}]),
            path,
        )
        current = _report(
            kernels=[{"scheme": "vantage-z4/52", "speedup": 7.0}]
        )
        regressions, compared = update_history(current, path)
        assert compared == 2
        assert len(regressions) == 1
        assert "vantage-z4/52" in regressions[0]
        # Appended despite the regression.
        assert len(self._load(path)) == 3

    def test_window_limits_the_baseline(self, tmp_path):
        path = self._history(tmp_path)
        update_history(_report(), path)  # the only fast run
        slow = _report(kernels=[{"scheme": "vantage-z4/52", "speedup": 4.0}])
        for _ in range(3):
            update_history(slow, path)
        # window=3 excludes the fast first entry: 4.0 passes.
        regressions, compared = update_history(dict(slow), path, window=3)
        assert (regressions, compared) == ([], 3)

    def test_smoke_runs_recorded_but_not_gated(self, tmp_path):
        path = self._history(tmp_path)
        update_history(_report(), path)
        smoke = _report(
            smoke=True,
            kernels=[{"scheme": "vantage-z4/52", "speedup": 0.1}],
        )
        # A smoke report is never compared...
        assert update_history(smoke, path) == ([], 0)
        # ...and never becomes part of anyone's baseline.
        regressions, compared = update_history(_report(), path)
        assert (regressions, compared) == ([], 1)
        assert [e["smoke"] for e in self._load(path)] == [False, True, False]

    def test_entries_are_slimmed(self, tmp_path):
        path = self._history(tmp_path)
        report = _report()
        report["kernels"][0]["identical"] = True
        report["kernels"][0]["optimized_peak_kib"] = 123.0
        report["batch"]["identical"] = True
        update_history(report, path)
        entry = self._load(path)[0]
        row = entry["kernels"][0]
        assert row["scheme"] == "vantage-z4/52"
        assert "identical" not in row
        assert "optimized_peak_kib" not in row
        assert "identical" not in entry["batch"]
        assert "unix_time" in entry

    def test_rejects_non_list_history(self, tmp_path):
        import pytest

        path = self._history(tmp_path)
        path.write_text('{"tag": "local"}')
        with pytest.raises(ValueError, match="bench history"):
            update_history(_report(), path)
