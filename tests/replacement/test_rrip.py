"""Tests for the RRIP family (SRRIP, BRRIP, DRRIP, TA-DRRIP)."""

from repro.arrays.base import Candidate
from repro.replacement import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy, TADRRIPPolicy
from repro.replacement.rrip import PSEL_MAX, RRPV_MAX


def cands(*slots):
    return [Candidate(s, 1000 + s, (s,), 0) for s in slots]


class TestSRRIP:
    def test_insert_at_long_interval(self):
        p = SRRIPPolicy(8)
        p.on_insert(0, 0, 0)
        assert p.state[0] == RRPV_MAX - 1

    def test_hit_promotes_to_zero(self):
        p = SRRIPPolicy(8)
        p.on_insert(0, 0, 0)
        p.on_hit(0, 0, 0)
        assert p.state[0] == 0

    def test_victim_is_max_rrpv(self):
        p = SRRIPPolicy(8)
        p.on_insert(0, 0, 0)
        p.on_insert(1, 0, 1)
        p.state[1] = RRPV_MAX
        assert p.select_victim(cands(0, 1)).slot == 1

    def test_aging_when_no_victim(self):
        p = SRRIPPolicy(8)
        p.on_insert(0, 0, 0)
        p.on_insert(1, 0, 1)
        p.on_hit(0, 0, 0)
        victim = p.select_victim(cands(0, 1))
        assert victim.slot == 1  # inserted line ages to max first
        # Aging must have bumped both candidates.
        assert p.state[0] > 0

    def test_scan_resistance(self):
        """A periodically reused line survives a scan indefinitely:
        scan lines insert one step from eviction, the reused line's
        RRPV keeps resetting to zero."""
        p = SRRIPPolicy(16)
        p.on_insert(0, 0, 0)
        survivals = 0
        for i, scan_slot in enumerate(range(1, 13)):
            if i % 2 == 0:
                p.on_hit(0, 0, 0)
            p.on_insert(scan_slot, 0, scan_slot)
            victim = p.select_victim(cands(0, scan_slot))
            if victim.slot != 0:
                survivals += 1
        assert survivals == 12

    def test_move_and_invalidate(self):
        p = SRRIPPolicy(8)
        p.on_insert(0, 0, 0)
        p.on_hit(0, 0, 0)
        p.on_move(0, 3)
        assert p.state[3] == 0
        p.on_invalidate(3)
        assert p.state[3] == 0


class TestBRRIP:
    def test_inserts_mostly_at_max(self):
        p = BRRIPPolicy(4096, seed=1)
        at_max = 0
        for slot in range(2000):
            p.on_insert(slot % 4096, 0, slot)
            if p.state[slot % 4096] == RRPV_MAX:
                at_max += 1
        # epsilon = 1/32: expect ~97% at max.
        assert at_max > 1800


class TestDRRIP:
    def test_psel_moves_on_leader_misses(self):
        p = DRRIPPolicy(64, seed=0)
        start = p.psel
        # Find an SRRIP-leader address and miss on it repeatedly.
        srrip_leader = next(a for a in range(100_000) if p._leader(a, 0) == "srrip")
        for _ in range(10):
            p.on_insert(0, 0, srrip_leader)
        assert p.psel > start

        brrip_leader = next(a for a in range(100_000) if p._leader(a, 0) == "brrip")
        for _ in range(25):
            p.on_insert(1, 0, brrip_leader)
        assert p.psel < start + 10

    def test_followers_track_psel(self):
        p = DRRIPPolicy(64, seed=0)
        follower = next(a for a in range(100_000) if p._leader(a, 0) is None)
        p.psel = 0  # SRRIP wins
        p.on_insert(0, 0, follower)
        assert p.state[0] == RRPV_MAX - 1
        p.psel = PSEL_MAX  # BRRIP wins
        brrip_values = set()
        for _ in range(50):
            p.on_insert(1, 0, follower)
            brrip_values.add(p.state[1])
        assert RRPV_MAX in brrip_values

    def test_psel_saturates(self):
        p = DRRIPPolicy(64, seed=0)
        p.psel = PSEL_MAX
        p._vote(0, +1)
        assert p.psel == PSEL_MAX
        p.psel = 0
        p._vote(0, -1)
        assert p.psel == 0


class TestTADRRIP:
    def test_per_thread_psel(self):
        p = TADRRIPPolicy(64, num_threads=4, seed=0)
        leader_t0 = next(a for a in range(100_000) if p._leader(a, 0) == "srrip")
        for _ in range(10):
            p.on_insert(0, 0, leader_t0)
        assert p.psel_per_thread[0] > PSEL_MAX // 2
        assert p.psel_per_thread[1] == PSEL_MAX // 2

    def test_leader_sets_differ_across_threads(self):
        p = TADRRIPPolicy(64, num_threads=4, seed=0)
        addr = next(a for a in range(100_000) if p._leader(a, 0) == "srrip")
        roles = {p._leader(addr, t) for t in range(4)}
        assert roles != {"srrip"}
