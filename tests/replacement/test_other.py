"""Tests for LFU and random replacement."""

from repro.arrays.base import Candidate
from repro.replacement import LFUPolicy, RandomPolicy
from repro.replacement.other import LFU_MAX


def cands(*slots):
    return [Candidate(s, 1000 + s, (s,), 0) for s in slots]


class TestLFU:
    def test_evicts_least_frequent(self):
        p = LFUPolicy(8)
        p.on_insert(0, 0, 0)
        p.on_insert(1, 0, 1)
        for _ in range(5):
            p.on_hit(0, 0, 0)
        assert p.select_victim(cands(0, 1)).slot == 1

    def test_counter_saturates(self):
        p = LFUPolicy(8)
        p.on_insert(0, 0, 0)
        for _ in range(LFU_MAX + 50):
            p.on_hit(0, 0, 0)
        assert p.state[0] == LFU_MAX

    def test_reinsert_resets_count(self):
        p = LFUPolicy(8)
        p.on_insert(0, 0, 0)
        for _ in range(5):
            p.on_hit(0, 0, 0)
        p.on_invalidate(0)
        p.on_insert(0, 0, 42)
        assert p.state[0] == 1

    def test_age_key_inverts_frequency(self):
        p = LFUPolicy(8)
        p.on_insert(0, 0, 0)
        p.on_insert(1, 0, 1)
        p.on_hit(1, 0, 1)
        assert p.age_key(0) > p.age_key(1)


class TestRandom:
    def test_only_occupied_candidates_chosen(self):
        p = RandomPolicy(8, seed=0)
        mixed = [Candidate(0, None, (0,), 0)] + cands(1, 2)
        for _ in range(50):
            assert p.select_victim(mixed).slot in (1, 2)

    def test_spread_over_candidates(self):
        p = RandomPolicy(8, seed=1)
        chosen = {p.select_victim(cands(0, 1, 2, 3)).slot for _ in range(200)}
        assert chosen == {0, 1, 2, 3}

    def test_deterministic_by_seed(self):
        a = RandomPolicy(8, seed=5)
        b = RandomPolicy(8, seed=5)
        picks_a = [a.select_victim(cands(0, 1, 2, 3)).slot for _ in range(20)]
        picks_b = [b.select_victim(cands(0, 1, 2, 3)).slot for _ in range(20)]
        assert picks_a == picks_b
