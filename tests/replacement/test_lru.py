"""Tests for coarse-timestamp and perfect LRU."""

import pytest

from repro.arrays.base import Candidate
from repro.replacement import CoarseLRUPolicy, PerfectLRUPolicy, make_policy
from repro.replacement.lru import TIMESTAMP_MOD


def cands(*slots):
    return [Candidate(s, 1000 + s, (s,), 0) for s in slots]


class TestPerfectLRU:
    def test_evicts_least_recently_used(self):
        p = PerfectLRUPolicy(8)
        for slot in (0, 1, 2, 3):
            p.on_insert(slot, 0, slot)
        p.on_hit(0, 0, 0)  # 1 is now the oldest
        victim = p.select_victim(cands(0, 1, 2, 3))
        assert victim.slot == 1

    def test_recency_order_full_chain(self):
        p = PerfectLRUPolicy(8)
        order = [3, 1, 0, 2]
        for slot in order:
            p.on_insert(slot, 0, slot)
        victims = []
        pool = set(order)
        while pool:
            v = p.select_victim(cands(*sorted(pool)))
            victims.append(v.slot)
            pool.discard(v.slot)
        assert victims == order

    def test_move_carries_state(self):
        p = PerfectLRUPolicy(8)
        p.on_insert(0, 0, 0)
        p.on_insert(1, 0, 1)
        p.on_move(0, 5)
        # Slot 5 now holds the oldest line.
        assert p.select_victim(cands(1, 5)).slot == 5

    def test_age_key_monotone(self):
        p = PerfectLRUPolicy(4)
        p.on_insert(0, 0, 0)
        p.on_insert(1, 0, 1)
        assert p.age_key(0) > p.age_key(1)


class TestCoarseLRU:
    def test_timestamp_granularity(self):
        p = CoarseLRUPolicy(32)  # granularity = 2 accesses per tick
        assert p.current_ts == 0
        p.on_insert(0, 0, 0)
        p.on_insert(1, 0, 1)
        assert p.current_ts == 1

    def test_evicts_oldest_timestamp(self):
        p = CoarseLRUPolicy(32)
        p.on_insert(0, 0, 0)
        for i in range(1, 8):
            p.on_insert(i, 0, i)
        assert p.select_victim(cands(0, 6, 7)).slot == 0

    def test_modulo_arithmetic_handles_wraparound(self):
        p = CoarseLRUPolicy(16)  # granularity 1: every access ticks
        p.on_insert(0, 0, 0)
        # Advance near the wrap point.
        for i in range(TIMESTAMP_MOD - 3):
            p.on_hit(0, 0, 0)
        p.on_insert(1, 0, 1)  # stamped just before wrap
        for _ in range(5):
            p.on_hit(1, 0, 1)  # stamped after wrap
        # Slot 0's stamp is much older in modulo distance.
        assert p.select_victim(cands(0, 1)).slot == 0

    def test_skips_empty_candidates(self):
        p = CoarseLRUPolicy(8)
        p.on_insert(1, 0, 1)
        mixed = [Candidate(0, None, (0,), 0), Candidate(1, 99, (1,), 0)]
        assert p.select_victim(mixed).slot == 1

    def test_invalidate_resets_state(self):
        p = CoarseLRUPolicy(8)
        p.on_insert(0, 0, 0)
        p.on_invalidate(0)
        assert p.state[0] == 0


class TestFactory:
    def test_make_policy_known_names(self):
        for name in ("lru", "perfect-lru", "srrip", "brrip", "drrip", "ta-drrip", "lfu", "random"):
            policy = make_policy(name, 16)
            assert policy.num_lines == 16
            assert policy.name == name

    def test_make_policy_unknown(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("mru", 16)

    def test_rejects_nonpositive_lines(self):
        with pytest.raises(ValueError):
            CoarseLRUPolicy(0)
