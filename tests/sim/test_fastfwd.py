"""Fast-forward layer unit and edge-case tests.

The accuracy contract (miss rates / allocations within 1% of the
exact path on the fig-6 sample) lives in
``tests/integration/test_fastfwd_accuracy.py``; this module covers the
:class:`~repro.sim.fastfwd.ConvergenceDetector` protocol, the
never-converges / abort edge cases (whose output must be *bitwise*
identical to ``REPRO_FASTFWD=0``), the cache state snapshot/restore
round-trip, and the honest-decline eligibility paths.
"""

from __future__ import annotations

import pytest

import repro.sim.fastfwd as fastfwd_mod
from repro.allocation.umon import UMonitor
from repro.harness.schemes import build_cache
from repro.harness.runner import run_mix
from repro.sim.configs import small_system
from repro.sim.fastfwd import ConvergenceDetector
from repro.workloads import SharedRegionSpec, make_mix, make_shared_mix

#: Pinned configuration for the identity runs: long enough to cross
#: several repartitioning epochs (the detector fires every epoch on
#: this mix at this scale -- asserted below), short enough for CI.
MIX = ("sftn", 1)
INSTRUCTIONS = 60_000
EPOCH_CYCLES = 150_000
SEED = 0

TARGETS = (100, 100, 100, 100)


def _window(miss=0.5, dem=0.1, aperture=0.2, n=10_000, parts=4):
    accesses = [n] * parts
    misses = [int(miss * n)] * parts
    demotions = [int(dem * n)] * parts
    apertures = [aperture] * parts
    return accesses, misses, demotions, apertures


class TestConvergenceDetector:
    def test_fires_after_k_stable_windows(self):
        det = ConvergenceDetector(4, tol=0.02, k=2)
        acc, miss, dem, ap = _window()
        assert det.observe(acc, miss, dem, ap, TARGETS) is False  # baseline
        assert det.observe(acc, miss, dem, ap, TARGETS) is False  # streak 1
        assert det.observe(acc, miss, dem, ap, TARGETS) is True  # streak 2
        assert det.streak == 2

    def test_rate_drift_breaks_streak(self):
        det = ConvergenceDetector(4, tol=0.02, k=2)
        acc, miss, dem, ap = _window(miss=0.5)
        det.observe(acc, miss, dem, ap, TARGETS)
        det.observe(acc, miss, dem, ap, TARGETS)
        # A 20-point miss-rate jump is far outside tol + noise at
        # 10k-access windows.
        acc2, miss2, dem2, ap2 = _window(miss=0.7)
        assert det.observe(acc2, miss2, dem2, ap2, TARGETS) is False
        assert det.streak == 0

    def test_aperture_drift_breaks_streak(self):
        det = ConvergenceDetector(4, tol=0.02, k=2)
        acc, miss, dem, ap = _window(aperture=0.2)
        det.observe(acc, miss, dem, ap, TARGETS)
        acc2, miss2, dem2, ap2 = _window(aperture=0.3)
        assert det.observe(acc2, miss2, dem2, ap2, TARGETS) is False

    def test_noise_allowance_scales_with_window_size(self):
        # At 50-access windows a few misses of jitter is binomial
        # noise, not drift: 0.40 vs 0.52 is within 2.5 pooled sigmas.
        det = ConvergenceDetector(1, tol=0.02, k=2)
        det.observe([50], [20], [5], [0.2], (100,))
        det.observe([50], [26], [5], [0.2], (100,))
        assert det.streak == 1
        # The same absolute gap at 10k-access windows is real drift.
        det2 = ConvergenceDetector(1, tol=0.02, k=2)
        det2.observe([10_000], [4_000], [1_000], [0.2], (100,))
        det2.observe([10_000], [5_200], [1_000], [0.2], (100,))
        assert det2.streak == 0

    def test_quiet_windows_compare_stable(self):
        det = ConvergenceDetector(1, tol=0.02, k=2, min_accesses=16)
        det.observe([3], [1], [0], [0.0], (100,))
        det.observe([2], [2], [0], [0.0], (100,))
        det.observe([1], [0], [0], [0.0], (100,))
        assert det.streak == 2

    def test_quiet_to_active_flip_breaks_streak(self):
        det = ConvergenceDetector(1, tol=0.02, k=2, min_accesses=16)
        det.observe([3], [1], [0], [0.0], (100,))
        det.observe([2], [1], [0], [0.0], (100,))
        assert det.streak == 1
        assert det.observe([500], [100], [10], [0.1], (100,)) is False
        assert det.streak == 0

    def test_target_change_resets_baseline(self):
        # Mid-epoch ``set_allocations`` moves every aperture: the
        # detector must drop its evidence and start over.
        det = ConvergenceDetector(4, tol=0.02, k=2)
        acc, miss, dem, ap = _window()
        det.observe(acc, miss, dem, ap, TARGETS)
        det.observe(acc, miss, dem, ap, TARGETS)
        assert det.streak == 1
        new_targets = (200, 50, 100, 50)
        assert det.observe(acc, miss, dem, ap, new_targets) is False
        assert det.streak == 0  # stable vs nothing: baseline window
        assert det.observe(acc, miss, dem, ap, new_targets) is False
        assert det.observe(acc, miss, dem, ap, new_targets) is True

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ConvergenceDetector(4, tol=0.0)
        with pytest.raises(ValueError):
            ConvergenceDetector(4, k=0)


def _run(use_fastfwd, fastfwd_tol=None, monkeypatch=None, instructions=INSTRUCTIONS):
    config = small_system(epoch_cycles=EPOCH_CYCLES)
    mix = make_mix(*MIX)
    return run_mix(
        mix,
        "vantage-z4/52",
        config,
        instructions,
        seed=SEED,
        use_fastfwd=use_fastfwd,
        fastfwd_tol=fastfwd_tol,
    )


def _identity_keys(run):
    """Everything a bitwise-identity assertion should compare: the
    run result, the full cache register/line state, and the final
    allocation."""
    return (
        run.result,
        run.cache.fastfwd_state(),
        list(run.cache.target),
        list(run.system.policy.last_allocation),
    )


def test_detection_only_is_bitwise_identical():
    """``REPRO_FASTFWD_TOL=0``: the detector and planner run (and log
    triggers) but every access is simulated exactly."""
    exact = _run(use_fastfwd=False)
    detect = _run(use_fastfwd=True, fastfwd_tol=0.0)
    ff = detect.system.fastfwd
    assert ff is not None and ff.enabled and ff.detect_only
    assert ff.triggers > 0, "detection-only mode never triggered"
    assert ff.skips == 0 and ff.skipped_accesses == 0
    assert ff.would_skip_accesses > 0
    assert 0.0 < ff.would_skip_fraction() < 1.0
    assert all(ev["action"] in ("detect", "abort") for ev in ff.events)
    assert _identity_keys(detect) == _identity_keys(exact)


def test_never_converging_run_is_bitwise_identical(monkeypatch):
    """A mix the detector never declares converged must ride the extra
    window stops without perturbing the simulation at all."""
    monkeypatch.setattr(
        ConvergenceDetector, "observe", lambda self, *args: False
    )
    exact = _run(use_fastfwd=False)
    never = _run(use_fastfwd=True)
    ff = never.system.fastfwd
    assert ff is not None and ff.enabled
    assert ff.windows > 0, "window stream never ran"
    assert ff.triggers == 0 and ff.skips == 0
    assert _identity_keys(never) == _identity_keys(exact)


def test_plan_rejection_aborts_to_exact_state(monkeypatch):
    """Every trigger whose plan fails validation (forced here via an
    impossible share-drift bound) must abort with *no* state mutated:
    the run stays bitwise-identical to the exact path."""
    monkeypatch.setattr(fastfwd_mod, "SHARE_DRIFT", -1.0)
    exact = _run(use_fastfwd=False)
    aborted = _run(use_fastfwd=True)
    ff = aborted.system.fastfwd
    assert ff is not None and ff.enabled
    assert ff.triggers > 0, "nothing triggered; the abort path never ran"
    assert ff.aborts == ff.triggers and ff.skips == 0
    assert all(ev["action"] == "abort" for ev in ff.events)
    assert all(ev["reason"] for ev in ff.events)
    assert _identity_keys(aborted) == _identity_keys(exact)


def test_fastfwd_state_roundtrip():
    """``fastfwd_state`` / ``fastfwd_restore``: mutate a live Vantage
    cache past a snapshot, restore, and the exported state is exactly
    the snapshot again (independent copies, no aliasing)."""
    cache = build_cache("vantage-z4/52", 2048, 4, seed=SEED)
    for addr in range(0, 3000, 3):
        cache.access(addr, addr % 4)
    before = cache.fastfwd_state()
    for addr in range(50_000, 53_000, 3):
        cache.access(addr, addr % 4)
    assert cache.fastfwd_state() != before
    cache.fastfwd_restore(before)
    after = cache.fastfwd_state()
    assert after == before
    # Independent copies: mutating the snapshot must not touch the
    # cache.
    before["accesses"][0] += 1
    assert cache.fastfwd_state() == after


def test_umon_model_advance():
    mon = UMonitor(num_ways=4, model_sets=64, sampled_sets=8, seed=0)
    base_acc = mon.accesses
    base_hits = list(mon.hits)
    mon.model_advance(120, [5, 3])
    assert mon.accesses == base_acc + 120
    assert mon.hits[0] == base_hits[0] + 5
    assert mon.hits[1] == base_hits[1] + 3
    mon.model_advance(0, ())
    assert mon.accesses == base_acc + 120
    with pytest.raises(ValueError):
        mon.model_advance(-1, ())


def test_umon_prime_sample_cache_matches_access():
    """Bulk priming is pure cache warming: identical classification
    entries to access-driven first touches, no counter or stack
    movement, and the same result through the small-batch scalar
    path."""
    kwargs = dict(num_ways=4, model_sets=256, sampled_sets=64, seed=3)
    addrs = [(1 << 33) + 977 * k for k in range(300)] + list(range(50))
    primed = UMonitor(**kwargs)
    primed.prime_sample_cache(addrs)
    walked = UMonitor(**kwargs)
    for addr in addrs:
        walked.access(addr)
    assert primed._sample_cache == walked._sample_cache
    assert primed.accesses == 0
    assert primed.hits == [0, 0, 0, 0]
    assert not primed._stacks
    # Small batches take the scalar path; entries still match.
    scalar = UMonitor(**kwargs)
    scalar.prime_sample_cache(addrs[:8])
    for addr in addrs[:8]:
        assert scalar._sample_cache[addr] == walked._sample_cache[addr]
    # Re-priming decided addresses is a no-op.
    primed.prime_sample_cache(addrs)
    assert primed._sample_cache == walked._sample_cache


def test_declines_shared_hit_policy():
    config = small_system(epoch_cycles=EPOCH_CYCLES)
    spec = SharedRegionSpec(kind="shared-table", lines=512, fraction=0.3)
    mix = make_shared_mix(*MIX, spec)
    run = run_mix(
        mix,
        "reuse-aware-z4/52",
        config,
        8_000,
        seed=SEED,
        use_fastfwd=True,
    )
    ff = run.system.fastfwd
    assert ff is not None and not ff.enabled
    assert ff.decline_reason
    assert ff.skips == 0


def test_declines_unpartitioned_baseline():
    config = small_system(epoch_cycles=EPOCH_CYCLES)
    run = run_mix(
        make_mix(*MIX),
        "lru-sa16",
        config,
        8_000,
        seed=SEED,
        use_fastfwd=True,
    )
    ff = run.system.fastfwd
    assert ff is not None and not ff.enabled
    assert "model" in ff.decline_reason
