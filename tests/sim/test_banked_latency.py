"""Tests for latency composition in the system model (Table 2 terms)."""

import pytest

from repro.sim import SystemConfig, large_system, small_system


class TestLatencyComposition:
    def test_l2_hit_latency_is_l1_to_l2_plus_bank(self):
        cfg = large_system()
        assert cfg.l2_hit_latency == cfg.l1_to_l2_latency + cfg.l2_bank_latency

    def test_memory_bandwidth_conversion(self):
        # 32 GB/s at 2 GHz = 16 bytes per cycle.
        assert large_system().mem_bytes_per_cycle == pytest.approx(16.0)
        # 4 GB/s at 2 GHz = 2 bytes per cycle.
        assert small_system().mem_bytes_per_cycle == pytest.approx(2.0)

    def test_custom_frequency_scales_bandwidth(self):
        cfg = SystemConfig(
            num_cores=1,
            l2_bytes=1024 * 64,
            l2_banks=1,
            mem_bandwidth_gbs=8.0,
            freq_ghz=1.0,
        )
        assert cfg.mem_bytes_per_cycle == pytest.approx(8.0)

    def test_l2_lines_accounting(self):
        assert small_system().l2_lines == 32_768
        assert large_system().l2_lines == 131_072
