"""Tests for the CMP simulation loop."""

import pytest

from repro.allocation import StaticPolicy
from repro.analysis import SizeTimeSeries
from repro.arrays import SetAssociativeArray
from repro.core import VantageCache, VantageConfig
from repro.partitioning import BaselineCache
from repro.replacement import make_policy
from repro.sim import CMPSystem, SystemConfig


def tiny_config(cores=2, **overrides):
    params = dict(
        num_cores=cores,
        l2_bytes=64 * 64,  # 64 lines
        l2_banks=1,
        mem_bandwidth_gbs=32.0,
        epoch_cycles=10_000,
    )
    params.update(overrides)
    return SystemConfig(**params)


def constant_trace(gap, addrs):
    """Factory producing an infinite looping trace."""

    def factory():
        def gen():
            while True:
                for a in addrs:
                    yield gap, a

        return gen()

    return factory


def build_baseline(config):
    array = SetAssociativeArray(config.l2_lines, 4, hashed=False)
    return BaselineCache(array, make_policy("lru", config.l2_lines), config.num_cores)


class TestTimingMath:
    def test_all_hits_ipc(self):
        """One L2 hit every `gap`+1 instructions costs hit_latency."""
        config = tiny_config(cores=1)
        cache = build_baseline(config)
        system = CMPSystem(cache, [constant_trace(9, [1, 2])], config)
        result = system.run(10_000)
        # Steady state: 10 instructions + 12 cycles per event.
        assert result.cores[0].ipc == pytest.approx(10 / 22, rel=0.05)

    def test_misses_cost_memory_latency(self):
        config = tiny_config(cores=1)
        cache = build_baseline(config)

        def factory():
            def gen():
                addr = 0
                while True:
                    addr += 1  # never reuse: always misses
                    yield 9, addr

            return gen()

        system = CMPSystem(cache, [factory], config)
        result = system.run(5_000)
        # 10 instructions + 12 + 200 + queueing per event.
        assert result.cores[0].ipc == pytest.approx(10 / 222, rel=0.10)

    def test_ipc_measured_at_target_crossing(self):
        """A fast core's IPC must not be polluted by cycles it spends
        waiting for slow cores to finish."""
        config = tiny_config(cores=2)
        cache = build_baseline(config)
        fast = constant_trace(9, [1])
        slow_factory = constant_trace(0, list(range(100, 2000)))
        system = CMPSystem(cache, [fast, slow_factory], config)
        result = system.run(2_000)
        assert result.cores[0].instructions == pytest.approx(2_000, abs=20)
        assert result.cores[0].ipc > 0.4


class TestDeterminism:
    def test_same_seed_same_result(self):
        def run_once():
            config = tiny_config(cores=2)
            cache = build_baseline(config)
            system = CMPSystem(
                cache,
                [constant_trace(3, [1, 2, 3]), constant_trace(2, list(range(50, 130)))],
                config,
            )
            return system.run(3_000).throughput

        assert run_once() == run_once()


class TestEpochs:
    def test_policy_invoked_each_epoch(self):
        config = tiny_config(cores=2, epoch_cycles=1_000)

        calls = []

        class CountingPolicy(StaticPolicy):
            def allocate(self):
                calls.append(1)
                return super().allocate()

        array = SetAssociativeArray(config.l2_lines, 4, hashed=True, seed=0)
        cache = VantageCache(array, 2, VantageConfig(unmanaged_fraction=0.2))
        policy = CountingPolicy([25, 26])
        system = CMPSystem(
            cache,
            [constant_trace(3, [1, 2, 3]), constant_trace(3, list(range(50, 100)))],
            config,
            policy=policy,
        )
        system.run(5_000)
        assert len(calls) >= 3
        assert cache.target == [25, 26]

    def test_size_series_sampled(self):
        config = tiny_config(cores=2, epoch_cycles=2_000)
        array = SetAssociativeArray(config.l2_lines, 4, hashed=True, seed=0)
        cache = VantageCache(array, 2, VantageConfig(unmanaged_fraction=0.2))
        series = SizeTimeSeries(2)
        system = CMPSystem(
            cache,
            [constant_trace(3, [1, 2, 3]), constant_trace(3, list(range(50, 100)))],
            config,
            policy=StaticPolicy([25, 26]),
            size_series=series,
            size_sample_cycles=1_000,
        )
        system.run(5_000)
        assert len(series.times) >= 4
        assert series.times == sorted(series.times)


class TestL1Path:
    def test_l1_filters_hot_lines(self):
        config = tiny_config(cores=1)
        cache = build_baseline(config)
        system = CMPSystem(cache, [constant_trace(0, [1, 2, 3])], config, use_l1=True)
        system.run(3_000)
        # After three compulsory L1 misses, everything hits in L1.
        assert cache.stats.total_accesses <= 10


class TestValidation:
    def test_trace_count_must_match_cores(self):
        config = tiny_config(cores=2)
        cache = build_baseline(config)
        with pytest.raises(ValueError):
            CMPSystem(cache, [constant_trace(1, [1])], config)

    def test_empty_trace_raises_naming_the_core(self):
        """A factory whose iterator yields nothing must surface as a
        ValueError naming the offending core, not a bare StopIteration
        swallowed (or propagated) by the event loop."""
        config = tiny_config(cores=2)
        cache = build_baseline(config)
        system = CMPSystem(
            cache, [constant_trace(3, [1, 2]), lambda: iter(())], config
        )
        with pytest.raises(ValueError, match="core 1"):
            system.run(1_000)

    def test_empty_trace_raises_in_reference_loop_too(self):
        from repro.sim.reference import reference_run

        config = tiny_config(cores=2)
        cache = build_baseline(config)
        system = CMPSystem(
            cache, [lambda: iter(()), constant_trace(3, [1, 2])], config
        )
        with pytest.raises(ValueError, match="core 0"):
            reference_run(system, 1_000)

    def test_exhausted_trace_mid_segment_on_batch_path(self, monkeypatch):
        """A chunked trace that ends mid-run surfaces through the batch
        kernel's refill return (reason 2) as the same core-naming
        ValueError the generator cursor raises -- never a bare
        StopIteration or an anonymous compile error."""
        from repro.traces import TraceSpec
        from repro.traces.store import reset_store

        class FiniteSpec(TraceSpec):
            """Stream ends after exactly one 64-pair chunk, so the
            first refill succeeds and the second -- requested from
            inside a batched segment -- hits the exhausted stream."""

            def generator(self):
                return ((0, i & 7) for i in range(64))

        monkeypatch.setenv("REPRO_TRACE_CHUNK_PAIRS", "64")
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        monkeypatch.delenv("REPRO_TRACE_CHUNKS", raising=False)
        reset_store()
        try:
            config = tiny_config(cores=2)
            cache = build_baseline(config)
            peer = TraceSpec(
                name="finite-test-peer", kind="scan", params=(8, 1),
                base=0, seed=1,
            )
            finite = FiniteSpec(
                name="finite-test", kind="scan", params=(8, 1),
                base=1 << 20, seed=424243,
            )
            system = CMPSystem(cache, [peer, finite], config)
            with pytest.raises(ValueError, match="core 1"):
                system.run(100_000)
            # The failure must have come out of the batch path, not a
            # silent fallback to the generator cursor.
            assert system.batch_kind == "python"
            assert system.batch_calls > 0
        finally:
            monkeypatch.undo()
            reset_store()
