"""The optimized kernels are pure strength reductions: every
simulation must produce results identical to the reference
(pre-optimization) implementations in :mod:`repro.sim.reference`.
"""

from __future__ import annotations

import pytest

from repro.arrays.base import CacheArray
from repro.arrays.set_assoc import SetAssociativeArray
from repro.arrays.skew import SkewAssociativeArray
from repro.arrays.zcache import ZCacheArray
from repro.harness.env import require_bitwise
from repro.harness import build_policy
from repro.harness.schemes import build_cache
from repro.sim import CMPSystem, small_system
from repro.sim.reference import (
    as_reference_cache,
    as_reference_policy,
    reference_run,
)
from repro.workloads import make_mix

@pytest.fixture(autouse=True)
def _bitwise_guard():
    """The reference-parity suite pins exact simulation; a stray
    ``REPRO_FASTFWD=1`` in the environment must fail loudly, not
    produce baffling diffs."""
    require_bitwise("the reference-parity suite")


INSTRUCTIONS = 12_000


def _simulate(
    scheme: str,
    partitioned: bool,
    reference: bool,
    use_chunks: bool | None = None,
):
    config = small_system()
    mix = make_mix("sftn", 1)
    cache = build_cache(scheme, config.l2_lines, config.num_cores, seed=0)
    policy = build_policy(cache, config, 0) if partitioned else None
    if reference:
        as_reference_cache(cache)
        if policy is not None:
            as_reference_policy(policy)
    system = CMPSystem(
        cache, mix.trace_factories(0), config, policy=policy, use_chunks=use_chunks
    )
    if reference:
        return reference_run(system, INSTRUCTIONS)
    return system.run(INSTRUCTIONS)


@pytest.mark.parametrize(
    "scheme,partitioned",
    [
        ("vantage-z4/52", True),
        ("vantage-z4/16", True),
        ("vantage-sa16", True),
        ("lru-sa16", False),
        ("lru-z4/52", False),
    ],
)
def test_reference_and_optimized_results_identical(scheme, partitioned):
    optimized = _simulate(scheme, partitioned, reference=False)
    reference = _simulate(scheme, partitioned, reference=True)
    assert optimized == reference


@pytest.mark.parametrize(
    "scheme,partitioned",
    [("vantage-z4/52", True), ("lru-sa16", False)],
)
def test_chunk_and_generator_feeds_identical(scheme, partitioned):
    """The chunk-cursor feed is a pure re-encoding of the generator
    feed: same events in the same order, so bitwise-equal results --
    and both equal the reference event loop."""
    chunked = _simulate(scheme, partitioned, reference=False, use_chunks=True)
    generated = _simulate(scheme, partitioned, reference=False, use_chunks=False)
    reference = _simulate(scheme, partitioned, reference=True)
    assert chunked == generated
    assert chunked == reference


def test_chunk_feed_cold_and_warm_disk_cache_identical(tmp_path, monkeypatch):
    """Compiling chunks, reading them back from disk, and skipping the
    disk entirely must all replay the same simulation."""
    from repro.traces import get_store, reset_store

    monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
    reset_store()
    no_disk = _simulate("vantage-z4/52", True, reference=False, use_chunks=True)

    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    reset_store()
    cold = _simulate("vantage-z4/52", True, reference=False, use_chunks=True)
    assert get_store().bytes_written > 0  # the cold run populated disk

    reset_store()  # fresh memory: the warm run must come from disk
    warm = _simulate("vantage-z4/52", True, reference=False, use_chunks=True)
    assert get_store().disk_hits > 0
    assert get_store().compiles == 0

    reset_store()
    monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
    assert cold == no_disk
    assert warm == no_disk


def _walk_parity(array: CacheArray, addrs: list[int]) -> None:
    """candidate_slots/make_candidate must reproduce candidates()
    exactly: same slots, same discovery order, same paths -- up to the
    early stop at the first empty candidate."""
    for addr in addrs:
        full = array.candidates(addr)
        fast = array.candidate_slots(addr)
        if fast is None:
            continue
        slots, parents, has_empty = fast
        slots = list(slots)
        assert slots == [c.slot for c in full[: len(slots)]]
        if has_empty:
            assert array.addr_at(slots[-1]) is None
        rebuilt = [
            array.make_candidate(slots, parents, i) for i in range(len(slots))
        ]
        assert rebuilt == full[: len(slots)]
        if not has_empty:
            assert len(slots) == len(full)
        # Install into the chosen victim exactly as a cache would, so
        # the parity check sweeps over changing occupancy.
        victim = rebuilt[-1]
        array.install(addr, victim)


def _fill_addrs(n: int, seed: int = 9) -> list[int]:
    import random

    rng = random.Random(seed)
    return [rng.randrange(1 << 30) for _ in range(n)]


@pytest.mark.parametrize(
    "factory",
    [
        lambda: ZCacheArray(256, num_ways=4, candidates_per_miss=16, seed=1),
        lambda: ZCacheArray(128, num_ways=4, candidates_per_miss=52, seed=2),
        lambda: SkewAssociativeArray(256, num_ways=4, seed=3),
        lambda: SetAssociativeArray(256, num_ways=16, seed=4),
    ],
)
def test_candidate_walk_parity_cold_to_full(factory):
    """Parity from an empty array through total occupancy, which
    drives the zcache walk through its careful mode (empty stops) and
    its full-array mode (_WalkLevels path reconstruction)."""
    array = factory()
    addrs = [a for a in _fill_addrs(3 * array.num_lines) if array.lookup(a) is None]
    # Dedup preserving order; install changes membership as we go, so
    # re-check inside the loop instead.
    seen = set()
    unique = [a for a in addrs if not (a in seen or seen.add(a))]
    installed = 0
    for addr in unique:
        if array.lookup(addr) is not None:
            continue
        _walk_parity(array, [addr])
        installed += 1
    assert installed > array.num_lines  # reached and exercised full mode
    assert len(array._slot_of) == array.num_lines


def test_zcache_full_mode_paths_are_valid():
    """In full-array mode every reconstructed path must be a real
    relocation chain: consecutive slots linked by the resident line's
    alternative positions."""
    array = ZCacheArray(64, num_ways=4, candidates_per_miss=16, seed=5)
    addrs = _fill_addrs(400, seed=6)
    for addr in addrs:
        if array.lookup(addr) is not None:
            continue
        fast = array.candidate_slots(addr)
        slots, parents, has_empty = fast
        slots = list(slots)
        for i in range(len(slots)):
            cand = array.make_candidate(slots, parents, i)
            assert cand.slot == slots[i]
            for parent, child in zip(cand.path, cand.path[1:]):
                line = array.addr_at(parent)
                assert line is not None
                assert child in array.positions(line)
        victim = array.make_candidate(slots, parents, len(slots) - 1)
        array.install(addr, victim)
