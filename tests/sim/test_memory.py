"""Tests for the bandwidth-limited memory model."""

import pytest

from repro.sim import MemoryModel


class TestMemoryModel:
    def test_zero_load_latency(self):
        mem = MemoryModel(num_controllers=4, latency=200, bytes_per_cycle=16)
        assert mem.request(0, now=0.0) == pytest.approx(200.0)

    def test_service_time_math(self):
        # 16 B/cycle over 4 controllers -> 4 B/cycle each -> 16 cycles/line.
        mem = MemoryModel(num_controllers=4, latency=200, bytes_per_cycle=16)
        assert mem.service_cycles == pytest.approx(16.0)

    def test_back_to_back_requests_queue(self):
        mem = MemoryModel(num_controllers=1, latency=100, bytes_per_cycle=16, line_bytes=64)
        first = mem.request(0, now=0.0)
        second = mem.request(0, now=0.0)
        assert first == pytest.approx(100.0)
        assert second == pytest.approx(100.0 + mem.service_cycles)

    def test_requests_spread_over_controllers(self):
        mem = MemoryModel(num_controllers=2, latency=100, bytes_per_cycle=16)
        a = mem.request(0, now=0.0)  # controller 0
        b = mem.request(1, now=0.0)  # controller 1: no queueing
        assert a == b == pytest.approx(100.0)

    def test_idle_gap_drains_queue(self):
        mem = MemoryModel(num_controllers=1, latency=100, bytes_per_cycle=16)
        mem.request(0, now=0.0)
        later = mem.request(0, now=1_000.0)
        assert later == pytest.approx(100.0)

    def test_queue_statistics(self):
        mem = MemoryModel(num_controllers=1, latency=100, bytes_per_cycle=16)
        mem.request(0, 0.0)
        mem.request(0, 0.0)
        assert mem.requests == 2
        assert mem.mean_queue_cycles > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryModel(num_controllers=0)
        with pytest.raises(ValueError):
            MemoryModel(bytes_per_cycle=0)
