"""Tests for the Table 2 system configurations."""

import pytest

from repro.sim import large_system, small_system


class TestTable2:
    def test_large_system_matches_table2(self):
        cfg = large_system()
        assert cfg.num_cores == 32
        assert cfg.l2_bytes == 8 * 1024 * 1024
        assert cfg.l2_banks == 4
        assert cfg.l1_bytes == 32 * 1024
        assert cfg.l1_ways == 4
        assert cfg.l1_to_l2_latency == 4
        assert cfg.l2_bank_latency == 8
        assert cfg.mem_latency == 200
        assert cfg.mem_bandwidth_gbs == 32.0
        assert cfg.mem_controllers == 4
        assert cfg.freq_ghz == 2.0
        assert cfg.epoch_cycles == 5_000_000

    def test_small_system(self):
        cfg = small_system()
        assert cfg.num_cores == 4
        assert cfg.l2_bytes == 2 * 1024 * 1024
        assert cfg.l2_banks == 1
        assert cfg.mem_bandwidth_gbs == 4.0

    def test_derived_quantities(self):
        cfg = large_system()
        assert cfg.l2_lines == 131_072
        assert cfg.l2_hit_latency == 12
        assert cfg.mem_bytes_per_cycle == pytest.approx(16.0)

    def test_overrides(self):
        cfg = small_system(epoch_cycles=100_000)
        assert cfg.epoch_cycles == 100_000
        assert cfg.num_cores == 4
