"""Tests for the private L1 model."""

import pytest

from repro.sim import L1Cache


class TestL1:
    def test_geometry_32kb_4way(self):
        l1 = L1Cache()
        assert l1.num_sets == 128
        assert l1.num_ways == 4

    def test_hit_after_miss(self):
        l1 = L1Cache()
        assert l1.access(5) is False
        assert l1.access(5) is True
        assert l1.miss_rate == pytest.approx(0.5)

    def test_lru_within_set(self):
        l1 = L1Cache(size_bytes=4 * 64 * 2, num_ways=4, line_bytes=64)  # 2 sets
        # Addresses 0,2,4,6,8 all map to set 0.
        for addr in (0, 2, 4, 6):
            l1.access(addr)
        l1.access(0)
        l1.access(8)  # evicts 2 (LRU)
        assert l1.access(0) is True
        assert l1.access(2) is False

    def test_capacity_filtering(self):
        l1 = L1Cache()
        for addr in range(512):  # exactly fills 32 KB
            l1.access(addr)
        hits = sum(1 for addr in range(512) if l1.access(addr))
        assert hits == 512

    def test_validation(self):
        with pytest.raises(ValueError):
            L1Cache(size_bytes=100, num_ways=3)
