"""End-to-end integration: full-stack mixes exercising the paper's
qualitative claims at reduced scale.

These runs use a 512-line L2 (32 KB) with proportionally shrunk
working sets so each test stays in the hundreds of milliseconds while
still driving UCP, the schemes and the CMP loop together.
"""

import pytest

from repro.analysis import SizeTimeSeries
from repro.harness import run_mix
from repro.sim import CMPSystem, SystemConfig
from repro.workloads import AppSpec


def tiny_config(**overrides):
    params = dict(
        num_cores=4,
        l2_bytes=512 * 64,
        l2_banks=1,
        mem_bandwidth_gbs=32.0,
        epoch_cycles=30_000,
    )
    params.update(overrides)
    return SystemConfig(**params)


def tiny_app(name, category, kind, ws, gap, **kw):
    return AppSpec(name=name, category=category, kind=kind, ws_lines=ws, mean_gap=gap, **kw)


class TinyMix:
    """A hand-built mix with working sets scaled to the tiny L2."""

    def __init__(self, apps):
        self.name = "tiny"
        self.apps = tuple(apps)
        self.num_cores = len(apps)

    def trace_factories(self, seed=0):
        return [
            app.trace_factory(base=core << 44, seed=seed * 100 + core)
            for core, app in enumerate(self.apps)
        ]


@pytest.fixture
def partition_friendly_mix():
    """One streamer, one fitting loop, one friendly zipf, one tiny app:
    the kind of mix partitioning is supposed to win on."""
    return TinyMix(
        [
            tiny_app("stream", "s", "scan", 8192, 10),
            tiny_app("fit", "t", "loop", 280, 14),
            tiny_app("friendly", "f", "zipf", 600, 12, alpha=0.9),
            tiny_app("small", "n", "zipf", 16, 60, alpha=1.1),
        ]
    )


class TestSchemeComparison:
    def test_vantage_beats_unpartitioned_lru(self, partition_friendly_mix):
        config = tiny_config()
        base = run_mix(partition_friendly_mix, "lru-sa16", config, 150_000, seed=3)
        vantage = run_mix(partition_friendly_mix, "vantage-z4/52", config, 150_000, seed=3)
        assert vantage.result.throughput > base.result.throughput * 1.02

    def test_all_schemes_complete_and_report(self, partition_friendly_mix):
        config = tiny_config()
        for scheme in ("waypart-sa16", "pipp-sa16", "vantage-drrip-z4/52"):
            run = run_mix(partition_friendly_mix, scheme, config, 60_000, seed=3)
            assert run.result.throughput > 0
            assert len(run.result.l2_miss_rates) == 4


class TestVantageDynamicsInSystem:
    def test_targets_tracked_under_ucp(self, partition_friendly_mix):
        config = tiny_config()
        run = run_mix(
            partition_friendly_mix,
            "vantage-z4/52",
            config,
            200_000,
            seed=4,
            size_sample_cycles=30_000,
        )
        series = run.size_series
        # After warmup, actual sizes track targets from above:
        # undershoot beyond noise would break the paper's guarantee.
        cache = run.cache
        for p in range(4):
            if cache.target[p] > 40:
                tail_t = series.targets[p][-3:]
                tail_a = series.actuals[p][-3:]
                for t, a in zip(tail_t, tail_a):
                    assert a >= t - max(12, 0.3 * t)

    def test_unmanaged_region_stays_bounded(self, partition_friendly_mix):
        config = tiny_config()
        run = run_mix(partition_friendly_mix, "vantage-z4/52", config, 150_000, seed=5)
        cache = run.cache
        managed, unmanaged = cache.region_occupancy()
        assert managed + unmanaged <= 512
        # Unmanaged region: nominal 5% plus borrowing, still far from
        # taking over the cache.
        assert unmanaged < 0.35 * 512
