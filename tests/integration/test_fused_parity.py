"""Randomized cross-path parity for the fused access kernels.

Every cache scheme runs through up to three per-access paths:

* the fused kernel (``REPRO_FUSED`` unset, the default),
* the object path (``REPRO_FUSED=0``: Candidate lists and
  ``select_victim``), and
* -- where a reference twin exists -- the pre-optimization reference
  implementation from :mod:`repro.sim.reference`.

The fused kernels are strength reductions, not behaviour changes, so
all paths must produce bitwise-identical :class:`SystemResult`s and
(for the two optimized paths, which share the telemetry spine)
identical stats trees.  Combinations of scheme, mix and seed are drawn
from a seeded RNG: the point is cross-path identity on inputs nobody
hand-picked, with the golden-stats suite pinning the hand-picked ones.
"""

import random

import pytest

from repro.harness.env import require_bitwise
from repro.harness.runner import build_policy, run_mix
from repro.harness.schemes import build_cache, scheme_partitioned
from repro.sim import CMPSystem
from repro.sim.configs import small_system
from repro.sim.reference import (
    REFERENCE_CACHE_CLASSES,
    as_reference_cache,
    as_reference_policy,
    reference_run,
)
from repro.workloads import make_mix
from repro.workloads.mixes import mix_classes


@pytest.fixture(autouse=True)
def _bitwise_guard():
    """The fused-parity suite pins exact simulation; a stray
    ``REPRO_FASTFWD=1`` in the environment must fail loudly, not
    produce baffling diffs."""
    require_bitwise("the fused-parity suite")


INSTRUCTIONS = 6_000

#: Short repartitioning epoch so partitioned combos cross at least one
#: epoch boundary, exercising ``set_allocations`` under the fused
#: kernels.  PIPP is excluded from the short epoch: its 64 allocation
#: ways exceed the small system's 16-way UMONs, a pre-existing harness
#: limitation that trips only when a repartition actually fires (its
#: ``set_allocations`` is covered by the direct test below instead).
EPOCH_CYCLES = 150_000

SCHEMES = [
    "vantage-z4/52",
    "vantage-sa16",
    "drrip-z4/16",
    "lru-sa16",
    "lru-z4/52",
    "srrip-z4/52",
    "waypart-sa16",
    "pipp-sa64",
]


def _draw_combos():
    rng = random.Random(0x5EED5)
    classes = mix_classes()
    return [
        (scheme, rng.choice(classes), rng.randrange(4), rng.randrange(1000))
        for scheme in SCHEMES
    ]


COMBOS = _draw_combos()


def _config(scheme: str):
    if scheme_partitioned(scheme) and not scheme.startswith("pipp"):
        return small_system(epoch_cycles=EPOCH_CYCLES)
    return small_system()


@pytest.mark.parametrize("scheme,mix_class,mix_index,seed", COMBOS)
def test_fused_matches_object_path(monkeypatch, scheme, mix_class, mix_index, seed):
    mix = make_mix(mix_class, mix_index)
    config = _config(scheme)

    monkeypatch.delenv("REPRO_FUSED", raising=False)
    fused = run_mix(mix, scheme, config, INSTRUCTIONS, seed=seed)
    assert fused.cache.fused, f"{scheme}: no fused kernel installed"

    monkeypatch.setenv("REPRO_FUSED", "0")
    plain = run_mix(mix, scheme, config, INSTRUCTIONS, seed=seed)
    assert not plain.cache.fused

    assert fused.result == plain.result
    assert fused.stats() == plain.stats()


@pytest.mark.parametrize(
    "scheme,mix_class,mix_index,seed",
    [c for c in COMBOS if type(
        build_cache(c[0], small_system().l2_lines, 4, seed=0)
    ) in REFERENCE_CACHE_CLASSES],
)
def test_fused_matches_reference(monkeypatch, scheme, mix_class, mix_index, seed):
    mix = make_mix(mix_class, mix_index)
    config = _config(scheme)

    monkeypatch.delenv("REPRO_FUSED", raising=False)
    fused = run_mix(mix, scheme, config, INSTRUCTIONS, seed=seed)

    cache = build_cache(scheme, config.l2_lines, config.num_cores, seed=seed)
    partitioned = scheme_partitioned(scheme)
    policy = build_policy(cache, config, seed) if partitioned else None
    as_reference_cache(cache)
    if policy is not None:
        as_reference_policy(policy)
    system = CMPSystem(cache, mix.trace_factories(seed), config, policy=policy)
    reference = reference_run(system, INSTRUCTIONS)

    assert fused.result == reference


def _valid_units(cache):
    """A deliberately skewed but valid allocation for the cache."""
    total = cache.allocation_total
    parts = len(cache.stats.accesses)
    units = [total // (2 * parts)] * parts
    units[0] += total - sum(units)
    return units


def _drive(cache, seed: int, accesses: int = 6_000):
    """Random accesses with a mid-stream repartition (and, for PIPP, a
    streaming reclassification), returning the full observable state."""
    rng = random.Random(seed)
    hits = 0
    for i in range(accesses):
        addr = rng.randrange(2_500)
        part = rng.randrange(4)
        hits += cache.access(addr, part)
        if i == accesses // 3:
            cache.set_allocations(_valid_units(cache))
            if hasattr(cache, "reclassify_streams"):
                cache.reclassify_streams()
    return {
        "hits": hits,
        "tags": list(cache.array._tags),
        "slot_of": dict(cache.array._slot_of),
        "part_of": list(cache.part_of),
        "accesses": list(cache.stats.accesses),
        "cache_hits": list(cache.stats.hits),
        "misses": list(cache.stats.misses),
        "evictions": list(cache.stats.evictions),
    }


@pytest.mark.parametrize("scheme", ["pipp-sa64", "waypart-sa16"])
@pytest.mark.parametrize("seed", [3, 41])
def test_set_allocations_under_fused_kernel(monkeypatch, scheme, seed):
    """Mid-stream ``set_allocations`` (and PIPP stream reclassification)
    must behave identically whether or not the fused kernel is active:
    the kernels capture the per-partition registers as closure cells,
    so reallocation must mutate them in place."""
    monkeypatch.delenv("REPRO_FUSED", raising=False)
    cache = build_cache(scheme, 1024, 4, seed=seed)
    assert cache.fused
    fused_state = _drive(cache, seed)

    monkeypatch.setenv("REPRO_FUSED", "0")
    cache = build_cache(scheme, 1024, 4, seed=seed)
    assert not cache.fused
    assert _drive(cache, seed) == fused_state
