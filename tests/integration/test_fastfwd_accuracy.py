"""Fast-forward accuracy contract on a fig-6 mix sample.

The tentpole's promise: with ``REPRO_FASTFWD=1``, per-partition miss
rates and final Lookahead allocations stay within 1% of the exact
path while a nonzero fraction of accesses is skipped.  This suite
enforces exactly that on a sample of the fig-6 4-core mixes (the
pinned headline mix plus two more classes), at the bench's epoch
scale so every run crosses many repartitioning epochs.

Bitwise-identity guarantees (never-converges, detection-only, abort
paths) live in ``tests/sim/test_fastfwd.py``; this module is about
the *approximate* mode being honestly close.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import run_mix
from repro.sim.configs import small_system
from repro.workloads import make_mix

INSTRUCTIONS = 120_000
EPOCH_CYCLES = 150_000
SEED = 0

#: Fig-6 sample: the pinned bench mix plus two other classes covering
#: different working-set mixes (saturating/thrashing/friendly blends).
MIX_SAMPLE = [("sftn", 1), ("ssff", 1), ("ttnn", 1)]

MISS_RATE_TOL = 0.01
ALLOC_TOL = 0.01


def _pair(mix_class: str, mix_index: int):
    config = small_system(epoch_cycles=EPOCH_CYCLES)
    mix = make_mix(mix_class, mix_index)
    exact = run_mix(
        mix,
        "vantage-z4/52",
        config,
        INSTRUCTIONS,
        seed=SEED,
        use_fastfwd=False,
    )
    fast = run_mix(
        mix,
        "vantage-z4/52",
        config,
        INSTRUCTIONS,
        seed=SEED,
        use_fastfwd=True,
    )
    return exact, fast


@pytest.mark.parametrize("mix_class,mix_index", MIX_SAMPLE)
def test_fastfwd_within_one_percent(mix_class, mix_index):
    exact, fast = _pair(mix_class, mix_index)
    ff = fast.system.fastfwd
    assert ff is not None and ff.enabled, ff and ff.decline_reason

    # The layer must have actually engaged: a zero skipped fraction
    # would make the accuracy assertions vacuous.
    assert ff.skips > 0, f"no skips on {mix_class}{mix_index} " f"({ff.aborts} aborts)"
    assert ff.skipped_fraction() > 0.0

    worst = max(
        abs(a - b)
        for a, b in zip(fast.result.l2_miss_rates, exact.result.l2_miss_rates)
    )
    assert worst <= MISS_RATE_TOL, (
        f"{mix_class}{mix_index}: worst per-core miss-rate delta {worst:.4f} "
        f"exceeds {MISS_RATE_TOL}"
    )

    total_units = exact.cache.allocation_total
    exact_alloc = exact.system.policy.last_allocation
    fast_alloc = fast.system.policy.last_allocation
    assert exact_alloc and fast_alloc
    alloc_delta = max(
        abs(a - b) for a, b in zip(fast_alloc, exact_alloc)
    ) / total_units
    assert alloc_delta <= ALLOC_TOL, (
        f"{mix_class}{mix_index}: final allocation delta "
        f"{alloc_delta:.4f} of capacity exceeds {ALLOC_TOL}"
    )


def test_fastfwd_env_knobs(monkeypatch):
    """``REPRO_FASTFWD=1`` in the environment (the knob CI and users
    set) engages the layer through the default ``use_fastfwd=None``
    plumbing, and ``REPRO_FASTFWD_TOL=0`` selects detection-only."""
    monkeypatch.setenv("REPRO_FASTFWD", "1")
    config = small_system(epoch_cycles=EPOCH_CYCLES)
    mix = make_mix("sftn", 1)
    run = run_mix(mix, "vantage-z4/52", config, 30_000, seed=SEED)
    ff = run.system.fastfwd
    assert ff is not None and ff.enabled and not ff.detect_only
    assert ff.skips > 0

    monkeypatch.setenv("REPRO_FASTFWD_TOL", "0")
    run2 = run_mix(mix, "vantage-z4/52", config, 30_000, seed=SEED)
    ff2 = run2.system.fastfwd
    assert ff2 is not None and ff2.enabled and ff2.detect_only
    assert ff2.skips == 0 and ff2.would_skip_accesses > 0
