"""Cross-path parity on shared-address mixes.

Shared-region workloads are the one place where an access's requesting
core and the line's owning partition diverge, which activates code that
is dormant on every multiprogrammed mix: the per-line ``touched_by``
bitmask, the on-shared-hit policies (keep-owner / migrate-to-requester
/ promote-to-shared), Vantage's unmanaged parking for promoted lines,
and the reuse-aware UCP stack.  All of it is replicated across the
object, fused and batch execution paths, so the same flag-cube
guarantee that covers private mixes must hold here:

* randomized ``REPRO_BATCH`` x ``REPRO_FUSED`` x ``REPRO_TRACE_CHUNKS``
  x ``REPRO_NUMPY`` points on the ``reuse-aware`` scheme, for every
  sharing shape,
* every shared-hit policy on every scheme family, object vs fused vs
  batch,
* the vectorized lane declining (not engaging incorrectly) when
  shared-hit bookkeeping is on.
"""

import random

import pytest

from repro import telemetry
from repro.arrays import SetAssociativeArray, ZCacheArray
from repro.core import VantageCache
from repro.harness.env import require_bitwise
from repro.harness.runner import run_mix
from repro.harness.schemes import default_vantage_config
from repro.partitioning import BaselineCache, PIPPCache, WayPartitionedCache
from repro.replacement import make_policy
from repro.sim import CMPSystem
from repro.sim.configs import small_system
from repro.workloads import SharedRegionSpec, make_shared_mix

@pytest.fixture(autouse=True)
def _bitwise_guard():
    """The shared-parity suite pins exact simulation; a stray
    ``REPRO_FASTFWD=1`` in the environment must fail loudly, not
    produce baffling diffs."""
    require_bitwise("the shared-parity suite")


INSTRUCTIONS = 6_000

#: Short epoch so the reuse-aware policy actually repartitions mid-run
#: (splitting batched segments at service boundaries).
EPOCH_CYCLES = 20_000

FLAG_NAMES = ("REPRO_BATCH", "REPRO_FUSED", "REPRO_TRACE_CHUNKS", "REPRO_NUMPY")

KINDS = ("producer-consumer", "shared-table", "migratory")


def _clear_flags(monkeypatch):
    for name in FLAG_NAMES:
        monkeypatch.delenv(name, raising=False)


def _shared_spec(kind, fraction=0.3):
    # A short ownership window: the default 2000 per-core accesses
    # exceeds what a 6000-instruction run issues, so migratory lines
    # would never change hands.
    return SharedRegionSpec(kind=kind, lines=512, fraction=fraction, window=100)


def _strip_chunks(stats):
    stats.get("sim", {}).pop("trace_chunks", None)
    return stats


# -- reuse-aware scheme through the full harness ------------------------


def _draw_flag_combos():
    """Random points in the flag cube per sharing shape; the draw is
    seeded so failures reproduce."""
    rng = random.Random(0x5AAED)
    combos = []
    for kind in KINDS:
        for _ in range(3):
            flags = {name: rng.choice(("0", "1")) for name in FLAG_NAMES}
            combos.append((kind, rng.randrange(1000), tuple(sorted(flags.items()))))
    return combos


@pytest.mark.parametrize("kind,seed,flags", _draw_flag_combos())
def test_reuse_aware_flag_cube(monkeypatch, kind, seed, flags):
    """Every flag-cube point is the same simulation on shared mixes."""
    mix = make_shared_mix("sftn", 1, _shared_spec(kind))
    config = small_system(epoch_cycles=EPOCH_CYCLES)

    _clear_flags(monkeypatch)
    baseline = run_mix(mix, "reuse-aware-z4/52", config, INSTRUCTIONS, seed=seed)
    # The mix must genuinely exercise the shared-hit machinery,
    # otherwise this parametrization proves nothing.
    assert sum(baseline.cache.shared_hits) > 0

    for name, value in flags:
        monkeypatch.setenv(name, value)
    variant = run_mix(mix, "reuse-aware-z4/52", config, INSTRUCTIONS, seed=seed)

    assert variant.result == baseline.result
    assert _strip_chunks(variant.stats()) == _strip_chunks(baseline.stats())


def test_reuse_aware_classification_is_live(monkeypatch):
    """The reuse-aware policy must classify sampled shared reuse (not
    silently degenerate to plain UCP) and migrate ownership."""
    mix = make_shared_mix("sftn", 1, _shared_spec("shared-table", fraction=0.35))
    config = small_system(epoch_cycles=EPOCH_CYCLES)

    _clear_flags(monkeypatch)
    out = run_mix(mix, "reuse-aware-z4/52", config, INSTRUCTIONS, seed=0)
    policy = out.system.policy
    assert sum(policy.shared_observed) > 0
    assert sum(m.shared_accesses for m in policy.monitors) > 0
    assert sum(out.cache.shared_moves) > 0
    sharing = out.stats()["cache"]["sharing"]
    assert sharing["multi_touched_lines"] > 0


def test_existing_schemes_ignore_shared_mixes(monkeypatch):
    """A non-sharing scheme on a shared mix keeps the machinery off:
    no sharing stats group, no shared counters, batch kernels engaged."""
    mix = make_shared_mix("sftn", 1, _shared_spec("producer-consumer"))
    config = small_system()

    _clear_flags(monkeypatch)
    out = run_mix(mix, "vantage-z4/52", config, INSTRUCTIONS, seed=3)
    assert out.cache._shared_code == 0
    assert sum(out.cache.shared_hits) == 0
    assert "sharing" not in out.stats()["cache"]
    assert out.system.batch_calls > 0


# -- every shared-hit policy on every scheme family ---------------------

FAMILIES = ("vantage", "waypart", "pipp", "lru")
POLICIES = ("keep-owner", "migrate-to-requester", "promote-to-shared")


def _build_shared_cache(family, policy_name, lines, cores, seed):
    if family == "vantage":
        array = ZCacheArray(lines, num_ways=4, candidates_per_miss=52, seed=seed)
        return VantageCache(
            array, cores, default_vantage_config(array), shared_policy=policy_name
        )
    array = SetAssociativeArray(lines, 16, hashed=True, seed=seed)
    if family == "waypart":
        return WayPartitionedCache(array, cores, shared_policy=policy_name)
    if family == "pipp":
        return PIPPCache(array, cores, seed=seed, shared_policy=policy_name)
    return BaselineCache(
        array, make_policy("lru", lines), cores, shared_policy=policy_name
    )


def _run_direct(family, policy_name, flags, monkeypatch, seed):
    _clear_flags(monkeypatch)
    for name, value in flags.items():
        monkeypatch.setenv(name, value)
    config = small_system()
    # The shared table makes the same lines hot on every core, so
    # cross-core re-touches are guaranteed even in a short run.
    mix = make_shared_mix("sftn", 2, _shared_spec("shared-table", fraction=0.35))
    cache = _build_shared_cache(
        family, policy_name, config.l2_lines, config.num_cores, seed
    )
    system = CMPSystem(cache, mix.trace_factories(seed), config)
    tree = telemetry.system_tree(cache=cache, system=system, policy=None)
    result = system.run(INSTRUCTIONS)
    return result, _strip_chunks(tree.snapshot()), cache


@pytest.mark.parametrize("policy_name", POLICIES)
@pytest.mark.parametrize("family", FAMILIES)
def test_shared_policy_paths_agree(monkeypatch, family, policy_name):
    """Object vs fused vs batch, for each (scheme family, policy)."""
    object_path = {"REPRO_FUSED": "0", "REPRO_BATCH": "0"}
    base_result, base_stats, base_cache = _run_direct(
        family, policy_name, object_path, monkeypatch, seed=9
    )
    assert sum(base_cache.shared_hits) > 0
    if policy_name == "migrate-to-requester":
        assert sum(base_cache.shared_moves) > 0

    for flags in ({"REPRO_BATCH": "0"}, {}):
        result, stats, _cache = _run_direct(
            family, policy_name, flags, monkeypatch, seed=9
        )
        assert result == base_result
        assert stats == base_stats


def test_promote_to_shared_parks_in_unmanaged(monkeypatch):
    """Vantage's promote-to-shared moves reused shared lines into the
    unmanaged region instead of flipping ownership."""
    _clear_flags(monkeypatch)
    result, stats, cache = _run_direct(
        "vantage", "promote-to-shared", {}, monkeypatch, seed=9
    )
    assert sum(cache.shared_moves) > 0
    # Parked lines are no longer charged to any partition.
    assert cache.unmanaged_size > 0


# -- the vectorized lane declines under sharing -------------------------

numpy = pytest.importorskip("numpy")


def test_numpy_lane_declines_when_sharing(monkeypatch):
    """Single-core sa-LRU is inside the vectorized envelope, but the
    lane does not vectorize ``touched_by`` stamps: with a shared-hit
    policy configured it must fall back to the scalar batch kernel."""
    config = small_system(num_cores=1)
    mix = make_shared_mix("sftn", 1, _shared_spec("producer-consumer"))
    lines = config.l2_lines

    _clear_flags(monkeypatch)
    monkeypatch.setenv("REPRO_NUMPY", "1")
    cache = BaselineCache(
        SetAssociativeArray(lines, 16, hashed=True, seed=3),
        make_policy("lru", lines),
        1,
        shared_policy="keep-owner",
    )
    system = CMPSystem(cache, [mix.trace_factories(7)[0]], config)
    system.run(INSTRUCTIONS)
    assert system.batch_kind == "python"
