"""Cross-path parity for the batch access kernel layer.

The batch kernels (``REPRO_BATCH``, on by default) run whole segments
of compiled trace chunks inside one closure call, returning to the
event loop only at epoch/sample boundaries, chunk refills, and run
completion.  They are strength reductions over the fused single-access
path, which is itself a strength reduction over the object path -- so
every flag combination must produce bitwise-identical results:

* ``REPRO_BATCH`` on/off across every scheme family,
* randomized combinations of ``REPRO_BATCH`` x ``REPRO_FUSED`` x
  ``REPRO_TRACE_CHUNKS`` x ``REPRO_NUMPY``,
* mid-run ``set_allocations`` (epoch repartitions land *between*
  batched segments: the kernel parks at the service boundary and the
  loop re-enters it),
* the heap scheduler path (``num_cores > 8``), which has its own run
  continuation,
* the optional vectorized lane (``REPRO_NUMPY=1``) inside and outside
  its support envelope.
"""

import random

import pytest

from repro.arrays.set_assoc import SetAssociativeArray
from repro.allocation.static import StaticPolicy
from repro.harness.env import require_bitwise
from repro.harness.runner import build_cache, run_mix
from repro.harness.schemes import scheme_partitioned
from repro.partitioning.base_cache import BaselineCache
from repro.replacement.lru import PerfectLRUPolicy
from repro.sim import CMPSystem
from repro.sim.configs import small_system
from repro.workloads import make_mix
from repro.workloads.mixes import Mix, mix_classes

@pytest.fixture(autouse=True)
def _bitwise_guard():
    """The batch-parity suite pins exact simulation; a stray
    ``REPRO_FASTFWD=1`` in the environment must fail loudly, not
    produce baffling diffs."""
    require_bitwise("the batch-parity suite")


INSTRUCTIONS = 6_000

#: Short epoch so partitioned schemes repartition mid-run, splitting
#: batched segments at service boundaries (reason-1 returns).
EPOCH_CYCLES = 20_000

SCHEMES = [
    "vantage-z4/52",
    "vantage-sa16",
    "drrip-z4/16",
    "lru-sa16",
    "lru-z4/52",
    "srrip-z4/52",
    "waypart-sa16",
    "pipp-sa64",
]

FLAG_NAMES = ("REPRO_BATCH", "REPRO_FUSED", "REPRO_TRACE_CHUNKS", "REPRO_NUMPY")


def _clear_flags(monkeypatch):
    for name in FLAG_NAMES:
        monkeypatch.delenv(name, raising=False)


def _config(scheme: str, **overrides):
    if scheme_partitioned(scheme) and not scheme.startswith("pipp"):
        return small_system(epoch_cycles=EPOCH_CYCLES, **overrides)
    return small_system(**overrides)


def _draw_combos():
    rng = random.Random(0xBA7C4)
    classes = mix_classes()
    return [
        (scheme, rng.choice(classes), rng.randrange(4), rng.randrange(1000))
        for scheme in SCHEMES
    ]


COMBOS = _draw_combos()


@pytest.mark.parametrize("scheme,mix_class,mix_index,seed", COMBOS)
def test_batch_matches_single_access(monkeypatch, scheme, mix_class, mix_index, seed):
    """Whole-segment dispatch vs the per-access loop, every scheme."""
    mix = make_mix(mix_class, mix_index)
    config = _config(scheme)

    _clear_flags(monkeypatch)
    batched = run_mix(mix, scheme, config, INSTRUCTIONS, seed=seed)
    assert batched.system.batch_kind == "python"
    assert batched.system.batch_calls > 0

    monkeypatch.setenv("REPRO_BATCH", "0")
    plain = run_mix(mix, scheme, config, INSTRUCTIONS, seed=seed)
    assert plain.system.batch_kind is None
    assert plain.system.batch_calls == 0

    assert batched.result == plain.result
    assert batched.stats() == plain.stats()


def _draw_flag_combos():
    """Random points in the flag cube, baseline excluded; the draw is
    seeded so failures reproduce."""
    rng = random.Random(0xF1A65)
    classes = mix_classes()
    combos = []
    for scheme in ("lru-sa16", "vantage-z4/52", "waypart-sa16"):
        for _ in range(3):
            flags = {name: rng.choice(("0", "1")) for name in FLAG_NAMES}
            combos.append(
                (
                    scheme,
                    rng.choice(classes),
                    rng.randrange(1000),
                    tuple(sorted(flags.items())),
                )
            )
    return combos


@pytest.mark.parametrize("scheme,mix_class,seed,flags", _draw_flag_combos())
def test_random_flag_combinations(monkeypatch, scheme, mix_class, seed, flags):
    """Every point in the REPRO_BATCH x REPRO_FUSED x
    REPRO_TRACE_CHUNKS x REPRO_NUMPY cube is the same simulation."""
    mix = make_mix(mix_class, 1)
    config = _config(scheme)

    _clear_flags(monkeypatch)
    baseline = run_mix(mix, scheme, config, INSTRUCTIONS, seed=seed)

    for name, value in flags:
        monkeypatch.setenv(name, value)
    variant = run_mix(mix, scheme, config, INSTRUCTIONS, seed=seed)

    assert variant.result == baseline.result
    expected = baseline.stats()
    actual = variant.stats()
    # Feed telemetry, not simulation output: chunk counts are zero by
    # construction when REPRO_TRACE_CHUNKS=0 disables the chunk feed.
    expected["sim"].pop("trace_chunks", None)
    actual["sim"].pop("trace_chunks", None)
    assert actual == expected


@pytest.mark.parametrize("scheme", ["waypart-sa16", "vantage-sa16"])
def test_set_allocations_mid_batch_segment(monkeypatch, scheme):
    """Epoch repartitions fire *during* a batched run: the kernel must
    park at the service boundary, let ``set_allocations`` mutate the
    partition registers it captured as closure cells, and resume
    bitwise-identically to the per-access loop."""
    mix = make_mix("nftt", 2)
    config = _config(scheme)

    _clear_flags(monkeypatch)
    batched = run_mix(mix, scheme, config, INSTRUCTIONS, seed=11)
    # At least one service boundary split the run into multiple
    # kernel entries -- otherwise this test exercises nothing.
    assert batched.system.batch_calls >= 2

    monkeypatch.setenv("REPRO_BATCH", "0")
    plain = run_mix(mix, scheme, config, INSTRUCTIONS, seed=11)

    assert batched.result == plain.result
    assert batched.stats() == plain.stats()


@pytest.mark.parametrize("scheme", ["lru-sa16", "vantage-z4/52"])
def test_heap_scheduler_batch_parity(monkeypatch, scheme):
    """The heap scheduler (num_cores > 8) drives the same batch
    kernels through the ``(t, cid)`` heap instead of the two-minimum
    scan; both selection orders and the heap-path run continuation
    must agree with the per-access loop."""
    mix = make_mix("nfts", 1, apps_per_slot=3)  # 12 cores
    assert mix.num_cores == 12
    config = _config(scheme, num_cores=12)

    _clear_flags(monkeypatch)
    batched = run_mix(mix, scheme, config, INSTRUCTIONS, seed=5)
    assert batched.system.batch_calls > 0

    monkeypatch.setenv("REPRO_BATCH", "0")
    plain = run_mix(mix, scheme, config, INSTRUCTIONS, seed=5)

    assert batched.result == plain.result
    assert batched.stats() == plain.stats()


# -- the vectorized lane (REPRO_NUMPY=1) --------------------------------

numpy = pytest.importorskip("numpy")

NUMPY_INSTRUCTIONS = 60_000


def _solo_mix():
    m = make_mix("nftt", 1)
    return Mix(name="solo", class_letters="n", apps=(m.apps[0],))


def test_numpy_lane_matches_python_lane(monkeypatch):
    """Single-core sa-LRU is inside the vectorized envelope; the lane
    must engage (``batch_kind == "numpy"``) and agree bitwise."""
    mix = _solo_mix()
    config = small_system(num_cores=1)

    _clear_flags(monkeypatch)
    python = run_mix(mix, "lru-sa16", config, NUMPY_INSTRUCTIONS, seed=7)
    assert python.system.batch_kind == "python"

    monkeypatch.setenv("REPRO_NUMPY", "1")
    vector = run_mix(mix, "lru-sa16", config, NUMPY_INSTRUCTIONS, seed=7)
    assert vector.system.batch_kind == "numpy"

    assert vector.result == python.result
    assert vector.stats() == python.stats()


def test_numpy_lane_declines_multicore(monkeypatch):
    """Outside the envelope (multiple cores) the lane must fall back
    to the scalar batch kernel, not engage incorrectly."""
    mix = make_mix("nftt", 1)
    config = small_system()

    _clear_flags(monkeypatch)
    monkeypatch.setenv("REPRO_NUMPY", "1")
    r = run_mix(mix, "lru-sa16", config, INSTRUCTIONS, seed=3)
    assert r.system.batch_kind == "python"


def _numpy_state(cache):
    return {
        "tags": list(cache.array._tags),
        "state": list(cache.policy.state),
        "accesses": list(cache.stats.accesses),
        "hits": list(cache.stats.hits),
        "misses": list(cache.stats.misses),
        "evictions": list(cache.stats.evictions),
    }


def test_numpy_lane_perfect_lru(monkeypatch):
    """PerfectLRUPolicy (monotone clock) drives the second stamp
    column of the vectorized kernel."""
    config = small_system(num_cores=1)
    mix = _solo_mix()
    lines = config.l2_lines

    def run(numpy_on):
        monkeypatch.setenv("REPRO_NUMPY", "1" if numpy_on else "0")
        cache = BaselineCache(
            SetAssociativeArray(lines, 16, seed=3), PerfectLRUPolicy(lines)
        )
        system = CMPSystem(
            cache, [mix.apps[0].trace_factory(base=0, seed=7000)], config
        )
        result = system.run(NUMPY_INSTRUCTIONS)
        return result, _numpy_state(cache), system.batch_kind

    scalar_result, scalar_state, _ = run(False)
    vector_result, vector_state, kind = run(True)
    assert kind == "numpy"
    assert vector_result == scalar_result
    assert vector_state == scalar_state


def test_numpy_lane_waypart_static(monkeypatch):
    """Way-partitioned caches with a static allocation policy stay
    inside the envelope (no-op ``observe`` is dropped)."""
    config = small_system(num_cores=1)
    mix = _solo_mix()

    def run(numpy_on):
        monkeypatch.setenv("REPRO_NUMPY", "1" if numpy_on else "0")
        cache = build_cache("waypart-sa16", config.l2_lines, 1, seed=7)
        system = CMPSystem(
            cache,
            [mix.apps[0].trace_factory(base=0, seed=7000)],
            config,
            policy=StaticPolicy([16]),
        )
        result = system.run(NUMPY_INSTRUCTIONS)
        return result, _numpy_state(cache), system.batch_kind

    scalar_result, scalar_state, _ = run(False)
    vector_result, vector_state, kind = run(True)
    assert kind == "numpy"
    assert vector_result == scalar_result
    assert vector_state == scalar_state
