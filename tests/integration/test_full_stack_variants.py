"""Integration variants: L1-filtered traces, PIPP at 64 ways,
Vantage-DRRIP in the full system, and the RRIP UMON + UCP pairing."""

import pytest

from repro.allocation import RRIPMonitor, UCPPolicy
from repro.harness import run_mix
from repro.sim import CMPSystem, SystemConfig
from repro.workloads import AppSpec


def tiny_config(cores=4, **overrides):
    params = dict(
        num_cores=cores,
        l2_bytes=512 * 64,
        l2_banks=1,
        mem_bandwidth_gbs=32.0,
        epoch_cycles=30_000,
    )
    params.update(overrides)
    return SystemConfig(**params)


class TinyMix:
    def __init__(self, apps):
        self.name = "tiny"
        self.apps = tuple(apps)
        self.num_cores = len(apps)

    def trace_factories(self, seed=0):
        return [
            app.trace_factory(base=core << 44, seed=seed * 100 + core)
            for core, app in enumerate(self.apps)
        ]


def mixed_mix():
    return TinyMix(
        [
            AppSpec("stream", "s", "scan", 8192, 8),
            AppSpec("fit", "t", "loop", 300, 10),
            AppSpec("friendly", "f", "zipf", 700, 9, alpha=0.9),
            AppSpec("small", "n", "zipf", 24, 40, alpha=1.1),
        ]
    )


class TestL1Path:
    def test_l1_filtering_reduces_l2_traffic(self):
        config = tiny_config()
        mix = mixed_mix()
        no_l1 = run_mix(mix, "lru-sa16", config, 60_000, seed=1, use_l1=False)
        with_l1 = run_mix(mix, "lru-sa16", config, 60_000, seed=1, use_l1=True)
        assert (
            with_l1.cache.stats.total_accesses < no_l1.cache.stats.total_accesses
        )

    def test_vantage_works_behind_l1(self):
        config = tiny_config()
        run = run_mix(mixed_mix(), "vantage-z4/52", config, 80_000, seed=2, use_l1=True)
        assert run.result.throughput > 0
        managed, unmanaged = run.cache.region_occupancy()
        assert managed + unmanaged <= config.l2_lines


class TestSchemeVariantsInSystem:
    @pytest.mark.parametrize(
        "scheme", ["pipp-sa8", "waypart-sa8", "vantage-drrip-z4/16", "vantage-sa16"]
    )
    def test_variants_run_clean(self, scheme):
        config = tiny_config()
        run = run_mix(mixed_mix(), scheme, config, 50_000, seed=3)
        assert run.result.throughput > 0
        sizes = run.cache.partition_sizes()
        assert sum(sizes) <= config.l2_lines


class TestRRIPMonitorWithUCP:
    def test_rrip_monitors_drive_lookahead(self):
        """RRIPMonitor is interface-compatible with UCPPolicy."""
        monitors = [RRIPMonitor(8, 64, sampled_sets=8, seed=i) for i in range(2)]
        policy = UCPPolicy(monitors, total_units=8, min_units=1)
        for rep in range(60):
            for a in range(5):
                policy.observe(0, a)
        for n in range(300):
            policy.observe(1, 10_000 + n)
        alloc = policy.allocate()
        assert sum(alloc) == 8
        assert alloc[0] >= alloc[1]
        # Policy selection is exposed per monitor.
        assert monitors[0].best_policy() in ("srrip", "brrip")
