"""Cross-path parity for the shared-memory trace fabric.

``REPRO_TRACE_SHM=1`` swaps the chunk *transport* -- workers map the
publisher's segments zero-copy instead of compiling private
``array('q')`` buffers -- and must never change a simulation: every
result here is required to be bitwise-identical with the fabric on
and off, across the ``REPRO_BATCH`` x ``REPRO_FUSED`` flag cube, and
through a real two-worker ``run_jobs`` fan-out (the publish phase,
the forked attaches, and the owner's unlink at the end).
"""

from __future__ import annotations

import random

import pytest

from repro import traces
from repro.harness import SimJob, run_jobs
from repro.harness.env import require_bitwise
from repro.harness.runner import run_mix
from repro.traces import shm
from repro.sim.configs import small_system
from repro.workloads import make_mix
from repro.workloads.mixes import mix_classes

pytestmark = pytest.mark.skipif(
    shm.shm_dir() is None, reason="no /dev/shm on this platform"
)

INSTRUCTIONS = 6_000
EPOCH_CYCLES = 20_000

FLAG_NAMES = ("REPRO_BATCH", "REPRO_FUSED")


@pytest.fixture(autouse=True)
def _fabric_isolation(monkeypatch):
    """Pin exact simulation, detach from any ambient caches, and tear
    the process-wide pool/store down so no segment leaks past a test."""
    require_bitwise("the shm-parity suite")
    for name in ("REPRO_TRACE_CACHE", "REPRO_RESULTS_CACHE", "REPRO_CACHE_DIR"):
        monkeypatch.delenv(name, raising=False)
    yield
    shm.get_pool().close(unlink=True)
    traces.reset_store()
    shm.reset_pool()


def _draw_combos():
    """Random points in the flag cube (seeded draw: failures repro)."""
    rng = random.Random(0x5421)
    classes = mix_classes()
    combos = []
    for scheme in ("lru-sa16", "vantage-z4/52", "drrip-z4/16"):
        for _ in range(2):
            flags = tuple(
                sorted((name, rng.choice(("0", "1"))) for name in FLAG_NAMES)
            )
            combos.append(
                (scheme, rng.choice(classes), rng.randrange(1000), flags)
            )
    return combos


@pytest.mark.parametrize("scheme,mix_class,seed,flags", _draw_combos())
def test_shm_lane_matches_private_lane(monkeypatch, scheme, mix_class, seed, flags):
    """Owner publishes, a fresh store attaches, and the simulation is
    bitwise-identical to the private-array lane under the same flags."""
    mix = make_mix(mix_class, 1)
    config = small_system(epoch_cycles=EPOCH_CYCLES)
    for name, value in flags:
        monkeypatch.setenv(name, value)

    monkeypatch.setenv("REPRO_TRACE_SHM", "0")
    traces.reset_store()
    baseline = run_mix(mix, scheme, config, INSTRUCTIONS, seed=seed)

    monkeypatch.setenv("REPRO_TRACE_SHM", "1")
    shm.reset_pool()
    owner = traces.reset_store()
    for spec in mix.trace_factories(seed):
        assert owner.publish_prefix(spec, INSTRUCTIONS) > 0

    consumer = traces.reset_store()  # cold store: must go through shm
    variant = run_mix(mix, scheme, config, INSTRUCTIONS, seed=seed)
    assert consumer.shm_hits > 0
    assert consumer.compiles == 0

    assert variant.result == baseline.result
    assert variant.stats() == baseline.stats()


def test_run_jobs_two_worker_fanout_parity(monkeypatch):
    """The full batch path: ``run_jobs`` publishes, forked workers
    attach (``shm_hits`` in their counters), outcomes are identical to
    the serial no-shm run, and the owner's segments are unlinked by
    the pool teardown."""
    jobs = [
        SimJob(
            make_mix("sftn", 1),
            scheme,
            small_system(epoch_cycles=EPOCH_CYCLES),
            INSTRUCTIONS,
            seed=3,
        )
        for scheme in ("lru-sa16", "srrip-sa16", "drrip-z4/16")
    ]

    monkeypatch.setenv("REPRO_TRACE_SHM", "0")
    traces.reset_store()
    serial = run_jobs(jobs, workers=1, use_cache=False)

    monkeypatch.setenv("REPRO_TRACE_SHM", "1")
    shm.reset_pool()
    traces.reset_store()
    fanned = run_jobs(jobs, workers=2, use_cache=False)

    assert [o.result for o in fanned] == [o.result for o in serial]
    assert [o.size_series for o in fanned] == [o.size_series for o in serial]
    worker_hits = [o.trace_counters["shm_hits"] for o in fanned if o.trace_counters]
    assert max(worker_hits) > 0, "no worker attached a shared segment"

    owned = shm.get_pool().owned_names()
    assert owned, "run_jobs parent published nothing"
    shm.get_pool().close(unlink=True)
    leftovers = [
        p.name
        for p in shm.shm_dir().glob(shm.SEGMENT_PREFIX + "*")
        if p.name in owned
    ]
    assert not leftovers


def test_publish_phase_skipped_when_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_SHM", "0")
    from repro.harness.parallel import publish_traces

    jobs = [
        SimJob(make_mix("sftn", 1), "lru-sa16", small_system(), 2000, seed=1)
    ]
    assert publish_traces(jobs) == 0
    assert shm.get_pool().owned_names() == []
