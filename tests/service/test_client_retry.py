"""Client-side transient-failure discipline.

A fake daemon (plain socket servers on loopback) stands in for the
real one so the tests can script exactly when connections are refused,
reset or served -- the behaviors under test are the client's bounded
retry loop, its exponential backoff, and the structured version-
mismatch surface, none of which need a simulation.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.service import ServiceClient, ServiceError, protocol


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class FakeDaemon:
    """Accept loop whose per-connection behavior is a scripted list:
    ``"reset"`` closes immediately, a list of dicts serves replies."""

    def __init__(self, script):
        self.script = list(script)
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self.connections = 0
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        while self.script:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            self.connections += 1
            behavior = self.script.pop(0)
            with conn:
                if behavior == "reset":
                    conn.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_LINGER,
                        struct.pack("ii", 1, 0),  # close() sends RST
                    )
                    continue
                fh = conn.makefile("rwb")
                for reply in behavior:
                    fh.readline()
                    fh.write(protocol.encode(dict(reply)))
                    fh.flush()

    def close(self):
        self.sock.close()
        self.thread.join(timeout=10)


@pytest.fixture
def fast_client():
    def make(port, **kwargs):
        kwargs.setdefault("retries", 3)
        kwargs.setdefault("backoff", 0.001)
        kwargs.setdefault("timeout", 10)
        return ServiceClient(tcp=("127.0.0.1", port), **kwargs)

    return make


class TestConnectRetry:
    def test_refused_connect_retries_then_raises(self, fast_client):
        port = _free_port()  # nothing listens here
        client = fast_client(port, retries=2)
        with pytest.raises(ConnectionRefusedError):
            client.connect()
        assert client.connect_attempts == 3  # 1 try + 2 retries

    def test_connect_succeeds_once_daemon_appears(self, fast_client):
        """The daemon starts listening between attempts 1 and 2 --
        a restart blip the retry loop must absorb."""
        port = _free_port()
        client = fast_client(port, retries=4, backoff=0.05)

        def serve_on_port():
            sock = socket.socket()
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", port))
            sock.listen(1)
            conn, _ = sock.accept()
            with conn:
                fh = conn.makefile("rwb")
                fh.readline()
                fh.write(protocol.encode({"op": "pong"}))
                fh.flush()
            sock.close()

        timer = threading.Timer(0.15, serve_on_port)
        timer.start()
        try:
            assert client.ping()
        finally:
            timer.cancel()
            client.close()
        assert client.connect_attempts >= 2

    def test_retries_zero_fails_immediately(self, fast_client):
        client = fast_client(_free_port(), retries=0)
        with pytest.raises(ConnectionRefusedError):
            client.connect()
        assert client.connect_attempts == 1

    def test_backoff_grows_and_is_jittered(self, fast_client, monkeypatch):
        delays = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", delays.append
        )
        client = fast_client(_free_port(), retries=3, backoff=0.1)
        with pytest.raises(ConnectionRefusedError):
            client.connect()
        assert len(delays) == 3
        # Full jitter keeps each delay within [0.5x, 1.5x] of the
        # exponential schedule 0.1, 0.2, 0.4.
        for delay, base in zip(delays, (0.1, 0.2, 0.4)):
            assert 0.5 * base <= delay <= 1.5 * base


class TestRequestRetry:
    def test_submit_retries_through_a_reset_connection(self, fast_client):
        ticket = {
            "op": "submitted",
            "id": 1,
            "state": "queued",
            "deduped": False,
            "cached": False,
        }
        daemon = FakeDaemon(["reset", [ticket]])
        try:
            client = fast_client(daemon.port)
            reply = client.submit("job-payload", wait=False)
            client.close()
        finally:
            daemon.close()
        assert reply["id"] == 1
        assert daemon.connections == 2

    def test_submit_gives_up_after_bounded_retries(self, fast_client):
        daemon = FakeDaemon(["reset"] * 3)
        try:
            client = fast_client(daemon.port, retries=2)
            with pytest.raises((ServiceError, OSError)):
                client.submit("job-payload", wait=False)
            client.close()
        finally:
            daemon.close()
        assert daemon.connections == 3


class TestVersionSurface:
    def test_structured_version_error_names_both_sides(self, fast_client):
        reply = {
            "op": "error",
            "error": "protocol version mismatch",
            "code": "version_mismatch",
            "client_version": 1,
            "server_version": 2,
        }
        daemon = FakeDaemon([[reply]])
        try:
            client = fast_client(daemon.port, retries=0)
            with pytest.raises(ServiceError) as err:
                client.ping()
            client.close()
        finally:
            daemon.close()
        text = str(err.value)
        assert "1" in text and "2" in text and "upgrade" in text

    def test_daemon_speaking_other_version_is_not_retried(self, fast_client):
        """A v2 daemon's replies fail decode as VersionMismatch; the
        client must surface both versions, not retry forever."""
        v2_pong = {"op": "pong", "v": 2}
        daemon = FakeDaemon([[v2_pong]])
        try:
            client = fast_client(daemon.port, retries=0)
            with pytest.raises(ServiceError) as err:
                client.ping()
            client.close()
        finally:
            daemon.close()
        text = str(err.value)
        assert "2" in text
        assert str(protocol.PROTOCOL_VERSION) in text
        assert daemon.connections == 1
