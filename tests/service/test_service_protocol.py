"""Wire-format guarantees of the daemon protocol."""

from __future__ import annotations

import json

import pytest

from repro.service import protocol


class TestFraming:
    def test_encode_stamps_version_and_newline(self):
        line = protocol.encode({"op": "ping"})
        assert line.endswith(b"\n")
        msg = json.loads(line)
        assert msg["v"] == protocol.PROTOCOL_VERSION
        assert msg["op"] == "ping"

    def test_roundtrip(self):
        msg = protocol.decode(protocol.encode({"op": "status", "id": 7}))
        assert msg["op"] == "status"
        assert msg["id"] == 7

    def test_rejects_bad_json(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"not json\n")

    def test_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"[1,2,3]\n")

    def test_rejects_version_mismatch(self):
        line = json.dumps({"v": 999, "op": "ping"}).encode() + b"\n"
        with pytest.raises(protocol.ProtocolError, match="version"):
            protocol.decode(line)

    def test_rejects_missing_op(self):
        line = json.dumps({"v": protocol.PROTOCOL_VERSION}).encode() + b"\n"
        with pytest.raises(protocol.ProtocolError, match="op"):
            protocol.decode(line)

    def test_line_cap(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 64)
        with pytest.raises(protocol.ProtocolError):
            protocol.encode({"op": "submit", "job": "x" * 100})
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"{" + b"x" * 100)


class TestPayloads:
    def test_pack_unpack_roundtrip(self):
        from repro.harness import SimJob
        from repro.sim import small_system
        from repro.workloads import make_mix

        job = SimJob(make_mix("sftn", 1), "lru-sa16", small_system(), 4000)
        packed = protocol.pack(job)
        assert isinstance(packed, str)
        assert protocol.unpack(packed) == job

    def test_unpack_garbage_raises_protocol_error(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.unpack("!!!not-base64-pickle!!!")


class TestParseAddr:
    def test_plain_host_port(self):
        assert protocol.parse_addr("127.0.0.1:7070") == ("127.0.0.1", 7070)
        assert protocol.parse_addr("example.com:80") == ("example.com", 80)

    def test_bracketed_ipv6(self):
        assert protocol.parse_addr("[::1]:7070") == ("::1", 7070)
        assert protocol.parse_addr("[fe80::2]:1") == ("fe80::2", 1)

    def test_bare_ipv6_rejected_with_bracket_hint(self):
        with pytest.raises(protocol.ProtocolError, match=r"\[host\]:port"):
            protocol.parse_addr("::1:7070")

    def test_missing_port(self):
        with pytest.raises(protocol.ProtocolError, match="host:port"):
            protocol.parse_addr("nonsense")

    def test_empty_host(self):
        with pytest.raises(protocol.ProtocolError, match="empty host"):
            protocol.parse_addr(":7070")

    def test_non_integer_port(self):
        with pytest.raises(protocol.ProtocolError, match="not an integer"):
            protocol.parse_addr("localhost:http")

    def test_port_out_of_range(self):
        with pytest.raises(protocol.ProtocolError, match="1..65535"):
            protocol.parse_addr("localhost:0")
        with pytest.raises(protocol.ProtocolError, match="1..65535"):
            protocol.parse_addr("localhost:70000")

    def test_errors_name_the_offending_knob(self):
        with pytest.raises(protocol.ProtocolError, match="REPRO_SERVICE_ADDR"):
            protocol.parse_addr("nonsense", what="REPRO_SERVICE_ADDR")

    def test_errors_are_one_line(self):
        for bad in ("x", ":1", "::1:2", "h:no", "h:0", "[::1]7070"):
            with pytest.raises(protocol.ProtocolError) as err:
                protocol.parse_addr(bad)
            assert "\n" not in str(err.value)


class TestVersionMismatch:
    def test_decode_carries_both_versions(self):
        line = json.dumps({"v": 0, "op": "ping"}).encode() + b"\n"
        with pytest.raises(protocol.VersionMismatch) as err:
            protocol.decode(line)
        assert err.value.peer_version == 0
        assert err.value.our_version == protocol.PROTOCOL_VERSION

    def test_version_mismatch_is_a_protocol_error(self):
        assert issubclass(protocol.VersionMismatch, protocol.ProtocolError)

    def test_message_names_both_versions(self):
        exc = protocol.VersionMismatch(2)
        assert "2" in str(exc)
        assert str(protocol.PROTOCOL_VERSION) in str(exc)


class TestEndpoints:
    def test_default_socket_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_SOCKET", "/tmp/x.sock")
        assert str(protocol.default_socket()) == "/tmp/x.sock"

    def test_default_socket_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_SOCKET", raising=False)
        assert protocol.default_socket().name == "service.sock"

    def test_tcp_addr_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_ADDR", "127.0.0.1:7070")
        assert protocol.tcp_addr() == ("127.0.0.1", 7070)
        monkeypatch.setenv("REPRO_SERVICE_ADDR", "nonsense")
        with pytest.raises(protocol.ProtocolError):
            protocol.tcp_addr()
        monkeypatch.delenv("REPRO_SERVICE_ADDR")
        assert protocol.tcp_addr() is None
