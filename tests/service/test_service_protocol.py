"""Wire-format guarantees of the daemon protocol."""

from __future__ import annotations

import json

import pytest

from repro.service import protocol


class TestFraming:
    def test_encode_stamps_version_and_newline(self):
        line = protocol.encode({"op": "ping"})
        assert line.endswith(b"\n")
        msg = json.loads(line)
        assert msg["v"] == protocol.PROTOCOL_VERSION
        assert msg["op"] == "ping"

    def test_roundtrip(self):
        msg = protocol.decode(protocol.encode({"op": "status", "id": 7}))
        assert msg["op"] == "status"
        assert msg["id"] == 7

    def test_rejects_bad_json(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"not json\n")

    def test_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"[1,2,3]\n")

    def test_rejects_version_mismatch(self):
        line = json.dumps({"v": 999, "op": "ping"}).encode() + b"\n"
        with pytest.raises(protocol.ProtocolError, match="version"):
            protocol.decode(line)

    def test_rejects_missing_op(self):
        line = json.dumps({"v": protocol.PROTOCOL_VERSION}).encode() + b"\n"
        with pytest.raises(protocol.ProtocolError, match="op"):
            protocol.decode(line)

    def test_line_cap(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 64)
        with pytest.raises(protocol.ProtocolError):
            protocol.encode({"op": "submit", "job": "x" * 100})
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"{" + b"x" * 100)


class TestPayloads:
    def test_pack_unpack_roundtrip(self):
        from repro.harness import SimJob
        from repro.sim import small_system
        from repro.workloads import make_mix

        job = SimJob(make_mix("sftn", 1), "lru-sa16", small_system(), 4000)
        packed = protocol.pack(job)
        assert isinstance(packed, str)
        assert protocol.unpack(packed) == job

    def test_unpack_garbage_raises_protocol_error(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.unpack("!!!not-base64-pickle!!!")


class TestEndpoints:
    def test_default_socket_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_SOCKET", "/tmp/x.sock")
        assert str(protocol.default_socket()) == "/tmp/x.sock"

    def test_default_socket_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_SOCKET", raising=False)
        assert protocol.default_socket().name == "service.sock"

    def test_tcp_addr_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_ADDR", "127.0.0.1:7070")
        assert protocol.tcp_addr() == ("127.0.0.1", 7070)
        monkeypatch.setenv("REPRO_SERVICE_ADDR", "nonsense")
        with pytest.raises(protocol.ProtocolError):
            protocol.tcp_addr()
        monkeypatch.delenv("REPRO_SERVICE_ADDR")
        assert protocol.tcp_addr() is None
