"""End-to-end daemon tests: a real asyncio server on a real Unix
socket, real forked workers, real client sockets.

The acceptance guarantees under test:

- an outcome returned by ``ServiceClient.submit`` is bitwise-identical
  to a serial ``run_mix`` with the same inputs;
- SIGKILLing a worker mid-job retries the job transparently (the
  client still gets the identical result) while other clients keep
  being served;
- duplicate submissions from concurrent clients coalesce onto one
  simulation (``dedupe_hits`` == 1) and the ``stats`` op exports the
  PR-2 stats-tree JSON shape.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.harness import SimJob, run_mix
from repro.service import (
    ExperimentDaemon,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service import protocol
from repro.sim import small_system
from repro.workloads import make_mix

INSTRUCTIONS = 6_000
#: Long enough that a SIGKILL lands mid-simulation on any host.
LONG_INSTRUCTIONS = 1_500_000


def _job(seed: int = 0, instructions: int = INSTRUCTIONS) -> SimJob:
    return SimJob(
        make_mix("sftn", 1),
        "lru-sa16",
        small_system(),
        instructions,
        seed=seed,
    )


class DaemonHarness:
    """A daemon running on a background thread's event loop."""

    def __init__(self, tmp_path, workers: int, queue_size: int = 16):
        self.socket_path = tmp_path / "svc.sock"
        self.config = ServiceConfig(
            socket_path=self.socket_path,
            tcp=None,
            workers=workers,
            queue_size=queue_size,
        )
        self.daemon: ExperimentDaemon | None = None
        self._started = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._started.wait(timeout=30), "daemon failed to start"
        deadline = time.monotonic() + 30
        while not self.socket_path.exists():
            assert time.monotonic() < deadline, "socket never appeared"
            time.sleep(0.01)

    def _run(self):
        async def main():
            self.daemon = ExperimentDaemon(self.config)
            await self.daemon.start()
            self._started.set()
            try:
                await self.daemon._shutdown.wait()
            finally:
                await self.daemon.stop()

        asyncio.run(main())

    def client(self) -> ServiceClient:
        return ServiceClient(socket_path=self.socket_path).connect()

    def stop(self):
        if self.thread.is_alive():
            try:
                with self.client() as svc:
                    svc.shutdown()
            except (OSError, ServiceError):
                pass
            self.thread.join(timeout=30)
        assert not self.thread.is_alive(), "daemon thread failed to exit"


@pytest.fixture
def svc_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_RESULTS_CACHE", raising=False)
    monkeypatch.delenv("REPRO_SERVICE_ADDR", raising=False)
    return tmp_path


@pytest.fixture
def daemon(svc_env):
    harness = DaemonHarness(svc_env, workers=2)
    yield harness
    harness.stop()


@pytest.fixture
def single_worker_daemon(svc_env):
    harness = DaemonHarness(svc_env, workers=1, queue_size=4)
    yield harness
    harness.stop()


class TestResults:
    def test_submit_is_bitwise_identical_to_serial_run_mix(self, daemon):
        job = _job(seed=3)
        with daemon.client() as svc:
            outcome = svc.submit(job)
        serial = run_mix(
            job.mix, job.scheme, job.config, job.instructions, seed=job.seed
        )
        assert outcome.result == serial.result
        fraction = None
        if hasattr(serial.cache, "managed_eviction_fraction"):
            fraction = serial.cache.managed_eviction_fraction()
        assert outcome.managed_eviction_fraction == fraction

    def test_shared_mix_job_round_trips_through_daemon(self, daemon):
        """Shared-region mixes (and the reuse-aware scheme) survive the
        pickle across the worker fork and dedupe/cache keying: the
        daemon's outcome is bitwise-identical to a serial run."""
        from repro.workloads import SharedRegionSpec, make_shared_mix

        spec = SharedRegionSpec(
            kind="producer-consumer", lines=512, fraction=0.3
        )
        job = SimJob(
            make_shared_mix("sftn", 1, spec),
            "reuse-aware-z4/52",
            small_system(),
            INSTRUCTIONS,
            seed=5,
        )
        with daemon.client() as svc:
            outcome = svc.submit(job)
        serial = run_mix(
            job.mix, job.scheme, job.config, job.instructions, seed=job.seed
        )
        assert outcome.result == serial.result

    def test_second_submission_served_from_results_cache(self, daemon):
        job = _job(seed=4)
        with daemon.client() as svc:
            first = svc.submit(job)
            ticket = svc.submit(job, wait=False)
            second = svc.submit(job)
            tree = svc.stats()
        assert ticket["cached"] is True
        assert first.result == second.result
        assert tree["service"]["queue"]["cache_hits"] >= 2

    def test_ping_status_and_unknown_op(self, daemon):
        with daemon.client() as svc:
            assert svc.ping()
            summary = svc.status()
            assert summary["workers_alive"] == 2
            assert summary["queue_depth"] == 0
            with pytest.raises(ServiceError, match="unknown op"):
                svc._request({"op": "frobnicate"}, "ok")


class TestConcurrentClients:
    def test_duplicate_submissions_coalesce_once(self, single_worker_daemon):
        """Two clients submit the identical job while the single
        worker is busy with a blocker: exactly one simulation runs
        and the dedupe counter reads 1."""
        daemon = single_worker_daemon
        blocker = _job(seed=1, instructions=600_000)
        dup = _job(seed=2)
        with daemon.client() as svc:
            svc.submit(blocker, wait=False)

        results: dict[int, object] = {}

        def submit_from_own_client(idx: int):
            with daemon.client() as svc:
                results[idx] = svc.submit(dup)

        threads = [
            threading.Thread(target=submit_from_own_client, args=(i,))
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert sorted(results) == [0, 1]
        serial = run_mix(
            dup.mix, dup.scheme, dup.config, dup.instructions, seed=dup.seed
        ).result
        assert results[0].result == serial
        assert results[1].result == serial
        with daemon.client() as svc:
            tree = svc.stats()
        queue_stats = tree["service"]["queue"]
        assert queue_stats["dedupe_hits"] == 1
        assert queue_stats["submitted"] == 2  # blocker + one dup entry


class TestWorkerSupervision:
    def test_sigkilled_worker_is_retried_and_queue_keeps_serving(
        self, single_worker_daemon
    ):
        daemon = single_worker_daemon
        victim_job = _job(seed=7, instructions=LONG_INSTRUCTIONS)
        with daemon.client() as svc:
            ticket = svc.submit(victim_job, wait=False)
            job_id = ticket["id"]
            deadline = time.monotonic() + 60
            while svc.status(job_id)["state"] != protocol.RUNNING:
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.02)

        time.sleep(0.2)  # let the simulation get properly underway
        pool = daemon.daemon.pool
        victims = [w.pid for w in pool._slots.values() if w is not None]
        assert victims
        os.kill(victims[0], signal.SIGKILL)

        # While the daemon respawns and re-runs the victim job, a
        # second client keeps getting served.
        with daemon.client() as svc:
            other = svc.submit(_job(seed=8))
        serial_other = run_mix(
            _job(seed=8).mix,
            "lru-sa16",
            small_system(),
            INSTRUCTIONS,
            seed=8,
        ).result
        assert other.result == serial_other

        # The victim job must still complete with the identical result.
        with daemon.client() as svc:
            final = None
            for event in svc.watch(job_id, timeout=300):
                final = event
            assert final["state"] == protocol.DONE
            assert final["retries"] >= 1
            # Dedupe lets us fetch the outcome: resubmitting the same
            # job is now a results-cache hit, not a new simulation.
            outcome = svc.submit(victim_job)
            tree = svc.stats()
        serial = run_mix(
            victim_job.mix,
            victim_job.scheme,
            victim_job.config,
            victim_job.instructions,
            seed=victim_job.seed,
        ).result
        assert outcome.result == serial
        workers = tree["service"]["workers"]
        assert workers["restarts"] >= 1
        assert workers["retries"] >= 1


class TestBackpressureAndCancel:
    def test_queue_full_is_reported_not_fatal(self, svc_env):
        daemon = DaemonHarness(svc_env, workers=1, queue_size=1)
        try:
            with daemon.client() as svc:
                svc.submit(_job(seed=1, instructions=300_000), wait=False)
                deadline = time.monotonic() + 60
                while daemon.daemon.queue.in_flight() == 0:
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                svc.submit(_job(seed=2), wait=False)  # fills the queue
                with pytest.raises(ServiceError, match="queue_full"):
                    svc.submit(_job(seed=3), wait=False)
                # The connection survives backpressure.
                assert svc.ping()
        finally:
            daemon.stop()

    def test_cancel_queued_job(self, single_worker_daemon):
        daemon = single_worker_daemon
        with daemon.client() as svc:
            svc.submit(_job(seed=1, instructions=300_000), wait=False)
            ticket = svc.submit(_job(seed=2), wait=False)
            svc.cancel(ticket["id"])
            status = svc.status(ticket["id"])
            assert status["state"] == protocol.CANCELLED
            with pytest.raises(ServiceError):
                svc.cancel(ticket["id"])  # already terminal


class TestProtocolRobustness:
    def test_garbage_line_gets_error_reply_and_connection_survives(
        self, daemon
    ):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(30)
        sock.connect(str(daemon.socket_path))
        fh = sock.makefile("rwb")
        fh.write(b"this is not json\n")
        fh.flush()
        reply = json.loads(fh.readline())
        assert reply["op"] == "error"
        fh.write(protocol.encode({"op": "ping"}))
        fh.flush()
        assert json.loads(fh.readline())["op"] == "pong"
        sock.close()

    def test_version_mismatch_rejected(self, daemon):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(30)
        sock.connect(str(daemon.socket_path))
        fh = sock.makefile("rwb")
        fh.write(json.dumps({"v": 999, "op": "ping"}).encode() + b"\n")
        fh.flush()
        reply = json.loads(fh.readline())
        assert reply["op"] == "error"
        assert "version" in reply["error"]
        sock.close()


class TestStatsTree:
    def test_stats_op_exports_telemetry_tree_schema(self, daemon):
        job = _job(seed=11)
        with daemon.client() as svc:
            svc.submit(job)
            tree = svc.stats()
        # Same JSON shape as `repro run-mix --stats-json`: nested
        # groups of plain values, JSON-round-trippable.
        assert json.loads(json.dumps(tree)) == tree
        service = tree["service"]
        for key in ("uptime_s", "connections_total", "queue", "workers"):
            assert key in service
        queue_stats = service["queue"]
        assert queue_stats["completed"] >= 1
        assert queue_stats["depth"] == 0
        workers = service["workers"]
        assert workers["configured"] == 2
        # Distribution leaves carry the PR-2 summary shape.
        wall = workers["job_wall_time"]
        assert {"count", "total", "mean", "min", "max"} <= set(wall)
        assert wall["count"] >= 1
        # Workers piggyback their trace-store counters.
        assert workers["trace_store"].get("compiles", 0) >= 0
        # The harness group mirrors the batch schema roots.
        assert "results_cache" in tree["harness"]

    def test_stats_tree_names_follow_schema(self, svc_env):
        """Every service stat name passes the tree's [a-z0-9_] rule
        and the schema walk (the golden-format contract)."""

        async def scenario():
            daemon = ExperimentDaemon(
                ServiceConfig(
                    socket_path=svc_env / "x.sock", tcp=None, workers=1
                )
            )
            rows = daemon.stats_tree().schema()
            names = [name for name, _, _ in rows]
            assert "service.queue.depth" in names
            assert "service.queue.dedupe_hits" in names
            assert "service.workers.job_wall_time" in names
            assert "harness.results_cache.corrupt_entries" in names
            # register_stats into a fresh group must not collide.
            from repro.telemetry import StatGroup

            daemon.register_stats(StatGroup("service"))

        asyncio.run(scenario())


@pytest.fixture
def shm_daemon(svc_env, monkeypatch):
    """A daemon with the shared-memory trace fabric on.  The env flag
    must be set -- and the process-global trace store reset -- before
    the harness starts: resident workers fork at ``pool.start()``, so
    they inherit both, and a store warmed by earlier tests would serve
    the job's chunks as ``mem_hits`` instead of attaching segments."""
    from repro import traces
    from repro.traces import shm

    if shm.shm_dir() is None:
        pytest.skip("no /dev/shm on this platform")
    monkeypatch.setenv("REPRO_TRACE_SHM", "1")
    shm.reset_pool()
    traces.reset_store()
    harness = DaemonHarness(svc_env, workers=2)
    yield harness
    harness.stop()
    shm.get_pool().close(unlink=True)


class TestSharedMemoryFabric:
    def test_daemon_publishes_workers_attach_shutdown_unlinks(
        self, shm_daemon, monkeypatch
    ):
        """The resident-service side of ``REPRO_TRACE_SHM``: submit
        publishes the job's traces, the worker attaches them
        (``shm_hits`` in its piggybacked counters), the outcome is
        bitwise-identical to a serial no-shm run, and a clean daemon
        shutdown unlinks every segment the server published."""
        from repro.traces import shm

        before = {p.name for p in shm.shm_dir().glob(shm.SEGMENT_PREFIX + "*")}
        job = _job(seed=8)
        with shm_daemon.client() as svc:
            outcome = svc.submit(job)
        published = {
            p.name for p in shm.shm_dir().glob(shm.SEGMENT_PREFIX + "*")
        } - before
        assert published, "daemon did not publish the job's traces"
        assert outcome.trace_counters["shm_hits"] > 0

        with monkeypatch.context() as m:
            m.setenv("REPRO_TRACE_SHM", "0")
            serial = run_mix(
                job.mix, job.scheme, job.config, job.instructions, seed=job.seed
            )
        assert outcome.result == serial.result

        shm_daemon.stop()
        leftovers = {
            p.name for p in shm.shm_dir().glob(shm.SEGMENT_PREFIX + "*")
        } & published
        assert not leftovers, f"daemon shutdown leaked {sorted(leftovers)}"


class TestBatchSubmit:
    def test_batch_outcomes_bitwise_identical_and_slot_aligned(self, daemon):
        """One submit_batch carrying fresh, duplicate and cached slots:
        every outcome equals its serial run_mix, and the cached/deduped
        vectors are slot-aligned."""
        warm = _job(seed=21)
        with daemon.client() as svc:
            svc.submit(warm)  # slot 3's result is now in the cache
            jobs = [_job(seed=22), _job(seed=23), _job(seed=22), warm]
            batch = svc.submit_batch(jobs).raise_on_error()
        assert len(batch.outcomes) == 4
        for job, outcome in zip(jobs, batch.outcomes):
            serial = run_mix(
                job.mix, job.scheme, job.config, job.instructions,
                seed=job.seed,
            )
            assert outcome.result == serial.result
        # Slot 2 duplicates slot 0: it coalesced onto slot 0's entry
        # (or, if slot 0 finished first, onto its cached result).
        assert batch.deduped[2] or batch.cached[2]
        assert not batch.deduped[0] and not batch.cached[0]
        # Slot 3 was simulated before the batch.
        assert batch.cached[3]
        with daemon.client() as svc:
            tree = svc.stats()
        queue_stats = tree["service"]["queue"]
        assert queue_stats["batches"] >= 1
        assert queue_stats["batch_jobs"] >= 4

    def test_batch_rejects_non_job_slot(self, daemon):
        with daemon.client() as svc:
            with pytest.raises(ServiceError, match="slot 1"):
                svc.submit_batch([_job(seed=24), "not a job"])
            # The connection survives the rejection.
            assert svc.ping()


class TestVersionedPeers:
    @pytest.mark.parametrize("peer_version", [0, 2])
    def test_wrong_version_peer_gets_structured_error(
        self, daemon, peer_version
    ):
        """A v0 or v2 peer against the v1 daemon: the error reply is
        structured (code + both versions), not just prose."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(30)
        sock.connect(str(daemon.socket_path))
        fh = sock.makefile("rwb")
        fh.write(
            json.dumps({"v": peer_version, "op": "ping"}).encode() + b"\n"
        )
        fh.flush()
        reply = json.loads(fh.readline())
        assert reply["op"] == "error"
        assert reply["code"] == "version_mismatch"
        assert reply["client_version"] == peer_version
        assert reply["server_version"] == protocol.PROTOCOL_VERSION
        assert "version" in reply["error"]
        # The daemon keeps serving correctly-versioned requests on
        # the same connection.
        fh.write(protocol.encode({"op": "ping"}))
        fh.flush()
        assert json.loads(fh.readline())["op"] == "pong"
        sock.close()
