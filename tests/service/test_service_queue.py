"""JobQueue semantics: dedupe, priority order, backpressure, cancel.

Entries hold asyncio futures, so every scenario runs inside
``asyncio.run`` even when nothing is awaited -- mirroring how the
daemon drives the queue.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.harness import SimJob
from repro.service import JobQueue, QueueClosed, QueueFull, protocol
from repro.sim import small_system
from repro.workloads import make_mix


def _job(seed: int = 0, instructions: int = 4000) -> SimJob:
    return SimJob(
        make_mix("sftn", 1), "lru-sa16", small_system(), instructions, seed=seed
    )


def run(coro):
    return asyncio.run(coro)


class TestSubmit:
    def test_distinct_jobs_enqueue(self):
        async def scenario():
            q = JobQueue(maxsize=8)
            a, da = q.submit(_job(seed=1))
            b, db = q.submit(_job(seed=2))
            assert (da, db) == (False, False)
            assert a.id != b.id
            assert q.depth() == 2
            assert q.submitted == 2

        run(scenario())

    def test_identical_jobs_coalesce(self):
        async def scenario():
            q = JobQueue(maxsize=8)
            a, _ = q.submit(_job(seed=1))
            b, deduped = q.submit(_job(seed=1))
            assert deduped is True
            assert b is a
            assert a.refs == 2
            assert q.depth() == 1
            assert q.dedupe_hits == 1

        run(scenario())

    def test_dedupe_spans_running_state(self):
        async def scenario():
            q = JobQueue(maxsize=8)
            a, _ = q.submit(_job(seed=1))
            entry = await q.next()
            q.mark_running(entry)
            b, deduped = q.submit(_job(seed=1))
            assert deduped and b is a
            # ... but not terminal states: a finished job is done, a
            # resubmission is new work (the results cache covers it).
            q.mark_done(entry, outcome=object())
            c, deduped = q.submit(_job(seed=1))
            assert not deduped and c is not a

        run(scenario())

    def test_backpressure(self):
        async def scenario():
            q = JobQueue(maxsize=2)
            q.submit(_job(seed=1))
            q.submit(_job(seed=2))
            with pytest.raises(QueueFull):
                q.submit(_job(seed=3))
            assert q.rejected == 1

        run(scenario())


class TestOrdering:
    def test_priority_then_fifo(self):
        async def scenario():
            q = JobQueue(maxsize=8)
            low, _ = q.submit(_job(seed=1), priority=5)
            first, _ = q.submit(_job(seed=2), priority=0)
            second, _ = q.submit(_job(seed=3), priority=0)
            order = [await q.next() for _ in range(3)]
            assert [e.id for e in order] == [first.id, second.id, low.id]

        run(scenario())

    def test_requeue_jumps_to_front_of_class(self):
        async def scenario():
            q = JobQueue(maxsize=8)
            crashed, _ = q.submit(_job(seed=1))
            q.submit(_job(seed=2))
            entry = await q.next()
            assert entry is crashed
            q.mark_running(entry)
            q.requeue(entry)
            assert entry.retries == 1
            assert (await q.next()) is crashed

        run(scenario())

    def test_next_waits_for_work(self):
        async def scenario():
            q = JobQueue(maxsize=8)

            async def feed():
                await asyncio.sleep(0.01)
                q.submit(_job(seed=9))

            task = asyncio.create_task(feed())
            entry = await asyncio.wait_for(q.next(), timeout=2)
            await task
            assert entry.job.seed == 9

        run(scenario())


class TestLifecycle:
    def test_cancel_queued(self):
        async def scenario():
            q = JobQueue(maxsize=8)
            entry, _ = q.submit(_job(seed=1))
            q.cancel(entry.id)
            assert entry.state == protocol.CANCELLED
            assert q.depth() == 0
            # Lazy heap deletion: next() must skip the corpse.
            q.submit(_job(seed=2))
            nxt = await q.next()
            assert nxt.job.seed == 2

        run(scenario())

    def test_cancel_running_refuses(self):
        async def scenario():
            q = JobQueue(maxsize=8)
            entry, _ = q.submit(_job(seed=1))
            q.mark_running(await q.next())
            with pytest.raises(ValueError):
                q.cancel(entry.id)
            with pytest.raises(KeyError):
                q.cancel(10_000)

        run(scenario())

    def test_close_cancels_queued_and_stops_next(self):
        async def scenario():
            q = JobQueue(maxsize=8)
            entry, _ = q.submit(_job(seed=1))
            dropped = q.close()
            assert dropped == [entry]
            assert entry.state == protocol.CANCELLED
            with pytest.raises(QueueClosed):
                await q.next()
            with pytest.raises(QueueClosed):
                q.submit(_job(seed=2))

        run(scenario())

    def test_watchers_see_transitions(self):
        async def scenario():
            q = JobQueue(maxsize=8)
            entry, _ = q.submit(_job(seed=1))
            events: asyncio.Queue = asyncio.Queue()
            entry.watchers.append(events)
            q.mark_running(await q.next())
            q.mark_done(entry, outcome="payload")
            states = [events.get_nowait()["state"] for _ in range(2)]
            assert states == [protocol.RUNNING, protocol.DONE]
            assert await entry.future == "payload"

        run(scenario())

    def test_failed_entry_resolves_future(self):
        async def scenario():
            q = JobQueue(maxsize=8)
            entry, _ = q.submit(_job(seed=1))
            q.mark_running(await q.next())
            q.mark_failed(entry, "worker exploded")
            with pytest.raises(RuntimeError, match="worker exploded"):
                await entry.future
            assert q.failed == 1

        run(scenario())

    def test_history_prune_bounds_terminal_entries(self):
        async def scenario():
            q = JobQueue(maxsize=64, history=4)
            for seed in range(8):
                entry, _ = q.submit(_job(seed=seed))
                q.mark_running(await q.next())
                q.mark_done(entry, outcome=seed)
            assert len(q._entries) <= 5

        run(scenario())
