"""Tests for the hardware-cost arithmetic (Section 4.3, Fig 4)."""

import pytest

from repro.analysis import (
    partition_id_bits,
    register_bits_per_partition,
    vantage_overheads,
)


class TestPartitionIdBits:
    def test_paper_example_32_partitions(self):
        # 32 partitions + the unmanaged region = 33 IDs = 6 bits.
        assert partition_id_bits(32) == 6

    def test_small_counts(self):
        assert partition_id_bits(1) == 1
        assert partition_id_bits(3) == 2
        assert partition_id_bits(63) == 6
        assert partition_id_bits(64) == 7


class TestRegisterBits:
    def test_fig4_register_budget(self):
        """Fig 4's register list with an 8-entry table: 272 bits, which
        the paper rounds to 'about 256 bits'."""
        bits = register_bits_per_partition(threshold_entries=8)
        assert bits == 272
        assert abs(bits - 256) / 256 < 0.1


class TestTotalOverhead:
    def test_paper_headline_about_one_and_a_half_percent(self):
        """8 MB cache, 32 partitions, 4 banks.  Fig 4's own arithmetic
        gives 1.01% (tags) + ~0.05% (registers) ~= 1.1%; the abstract
        rounds this up to 'around 1.5%'."""
        o = vantage_overheads(
            cache_bytes=8 * 1024 * 1024, num_partitions=32, num_banks=4
        )
        assert 0.009 < o.overhead_fraction < 0.015

    def test_tag_share_about_one_percent(self):
        """Paper: 6 bits on a 64-bit tag + 64-byte line ~= 1.01%."""
        o = vantage_overheads(num_partitions=32)
        num_lines = 8 * 1024 * 1024 // 64
        tag_fraction = (num_lines * 6) / o.baseline_bits
        assert tag_fraction == pytest.approx(0.0101, abs=0.001)

    def test_register_share_below_half_percent(self):
        """Paper: 4 KB of registers for 32 partitions x 4 banks."""
        o = vantage_overheads(num_partitions=32, num_banks=4)
        register_bits = 4 * 32 * o.register_bits_per_partition
        assert register_bits / 8 / 1024 == pytest.approx(4.25, abs=0.5)  # ~4 KB
        assert register_bits / o.baseline_bits < 0.005

    def test_scales_with_partitions(self):
        small = vantage_overheads(num_partitions=8)
        large = vantage_overheads(num_partitions=64)
        assert large.total_extra_bits > small.total_extra_bits
        assert large.partition_id_bits == 7
