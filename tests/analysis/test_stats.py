"""Tests for measurement utilities (monitors, time series, metrics)."""

import random

import pytest

from repro.analysis import (
    PriorityMonitor,
    SizeTimeSeries,
    attach_demotion_monitor,
    attach_eviction_monitor,
    fraction_above,
    geo_mean,
)
from repro.arrays import ZCacheArray
from repro.core import VantageCache, VantageConfig
from repro.partitioning import BaselineCache
from repro.replacement import PerfectLRUPolicy


class TestMetrics:
    def test_geo_mean(self):
        assert geo_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geo_mean([1.0]) == 1.0

    def test_geo_mean_empty(self):
        with pytest.raises(ValueError):
            geo_mean([])

    def test_fraction_above(self):
        assert fraction_above([0.9, 1.1, 1.2], 1.0) == pytest.approx(2 / 3)
        assert fraction_above([], 1.0) == 0.0


class TestSizeTimeSeries:
    def test_sampling_and_undershoot(self):
        ts = SizeTimeSeries(2)
        ts.sample(0, [100, 200], [90, 210])
        ts.sample(10, [100, 200], [100, 195])
        assert ts.undershoot(0) == 10
        assert ts.undershoot(1) == 5
        assert ts.mean_abs_error(0) == pytest.approx(5.0)

    def test_empty_series(self):
        ts = SizeTimeSeries(1)
        assert ts.undershoot(0) == 0
        assert ts.mean_abs_error(0) == 0.0


class TestEvictionMonitor:
    def test_baseline_lru_evicts_old_lines(self):
        """On an unpartitioned LRU zcache with R=16, evictions must be
        heavily skewed toward the oldest lines."""
        array = ZCacheArray(512, 4, candidates_per_miss=16, seed=0)

        class _Cache(BaselineCache):
            def staleness(self, slot):
                return self.policy.age_key(slot)

        cache = _Cache(array, PerfectLRUPolicy(512))
        monitor = PriorityMonitor(sample_size=64, seed=1)
        attach_eviction_monitor(cache, monitor, per_partition=False)
        rng = random.Random(2)
        for _ in range(8000):
            cache.access(rng.randrange(1024))
        assert len(monitor.quantiles) > 1000
        median = sorted(monitor.quantiles)[len(monitor.quantiles) // 2]
        assert median > 0.85

    def test_vantage_demotion_monitor(self):
        """Vantage demotions land in the top quantiles of the
        partition's age distribution (the Fig 8 heat-map claim)."""
        array = ZCacheArray(2048, 4, candidates_per_miss=52, seed=1)
        cache = VantageCache(array, 2, VantageConfig(unmanaged_fraction=0.1))
        cache.set_allocations([900, 943])
        monitor = PriorityMonitor(sample_size=64, seed=3)
        attach_demotion_monitor(cache, monitor)
        rng = random.Random(4)
        for _ in range(50_000):
            p = rng.randrange(2)
            cache.access((p << 32) | rng.randrange(4000), p)
        assert len(monitor.quantiles) > 2000
        # Steady state: most demotions in the top third of ages.
        tail = sorted(monitor.quantiles)[len(monitor.quantiles) // 2 :]
        assert min(tail) > 0.6

    def test_monitor_partition_filter(self):
        m = PriorityMonitor()
        m.observe(0.5, 0)
        m.observe(0.9, 1)
        assert m.quantiles_for(0) == [0.5]
        assert m.cdf([1.0], part=1) == [1.0]
