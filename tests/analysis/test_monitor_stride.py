"""Tests for event-strided priority monitors."""

import random

from repro.analysis import PriorityMonitor, attach_demotion_monitor
from repro.arrays import ZCacheArray
from repro.core import VantageCache, VantageConfig


def run_with_stride(stride, accesses=30_000):
    array = ZCacheArray(1024, 4, candidates_per_miss=16, seed=0)
    cache = VantageCache(array, 2, VantageConfig(unmanaged_fraction=0.15))
    monitor = PriorityMonitor(sample_size=32, seed=1)
    attach_demotion_monitor(cache, monitor, stride=stride)
    rng = random.Random(2)
    for _ in range(accesses):
        p = rng.randrange(2)
        cache.access((p << 32) | rng.randrange(2000), p)
    return cache, monitor


class TestStride:
    def test_stride_subsamples_events(self):
        cache1, m1 = run_with_stride(1)
        cache8, m8 = run_with_stride(8)
        total_demotions = sum(cache8.demotions)
        assert total_demotions > 0
        # Strided monitor sees ~1/8th of the events (minus the ones
        # skipped for too-small in-scope samples).
        assert len(m8.quantiles) < len(m1.quantiles) / 4

    def test_strided_distribution_is_unbiased(self):
        _, m1 = run_with_stride(1)
        _, m8 = run_with_stride(8)
        median1 = sorted(m1.quantiles)[len(m1.quantiles) // 2]
        median8 = sorted(m8.quantiles)[len(m8.quantiles) // 2]
        assert abs(median1 - median8) < 0.12
