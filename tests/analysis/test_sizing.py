"""Tests for the sizing/stability models (Equations 4-9, Section 4.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    aperture,
    equilibrium_apertures,
    minimum_stable_size,
    required_unmanaged_fraction,
    slack_outgrowth,
    worst_case_borrowed,
    worst_case_pev,
)


class TestEquation7Aperture:
    def test_zero_at_or_below_target(self):
        assert aperture(900, 1000, 0.5, 0.1) == 0.0
        assert aperture(1000, 1000, 0.5, 0.1) == 0.0

    def test_linear_ramp(self):
        assert aperture(1050, 1000, 0.5, 0.1) == pytest.approx(0.25)

    def test_saturates_at_a_max(self):
        assert aperture(1101, 1000, 0.5, 0.1) == 0.5
        assert aperture(99_999, 1000, 0.5, 0.1) == 0.5

    def test_deleted_partition_full_aperture(self):
        assert aperture(50, 0, 0.5, 0.1) == 0.5
        assert aperture(0, 0, 0.5, 0.1) == 0.0


class TestEquation4:
    def test_paper_worked_example(self):
        """Section 3.4: 4 equal partitions, C1 = 2*C2, R=16, m=0.625
        -> A1 = 16%, A2..4 = 8%."""
        churns = [2.0, 1.0, 1.0, 1.0]
        sizes = [0.15625] * 4  # equal sizes summing to m
        apertures = equilibrium_apertures(churns, sizes, r=16, m=0.625)
        assert apertures[0] == pytest.approx(0.16)
        for a in apertures[1:]:
            assert a == pytest.approx(0.08)

    def test_uniform_case_matches_1_over_rm(self):
        apertures = equilibrium_apertures([1, 1], [0.45, 0.45], r=52, m=0.9)
        for a in apertures:
            assert a == pytest.approx(1 / (52 * 0.9))

    def test_zero_size_partition(self):
        apertures = equilibrium_apertures([1, 1], [0.9, 0.0], r=52, m=0.9)
        assert apertures[1] == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            equilibrium_apertures([1], [0.5, 0.5], 16, 0.7)


class TestStability:
    def test_minimum_stable_size_formula(self):
        mss = minimum_stable_size(1.0, 0.9, a_max=0.4, r=52, m=0.9)
        assert mss == pytest.approx(0.9 / (0.4 * 52 * 0.9))

    def test_worst_case_borrowed_approximation(self):
        approx = worst_case_borrowed(0.4, 52)
        assert approx == pytest.approx(1 / (0.4 * 52))
        exact = worst_case_borrowed(0.4, 52, m=0.9)
        assert exact == pytest.approx(1 / (0.4 * 52 - 1 / 0.9))
        assert exact > approx

    def test_paper_borrowing_example(self):
        """Section 3.4: R=52, A_max=0.4 -> extra 4.8% unmanaged."""
        assert worst_case_borrowed(0.4, 52) == pytest.approx(0.048, abs=0.001)

    def test_slack_outgrowth_example(self):
        """Section 4.1: R=52, slack=0.1, A_max=0.4 -> 0.48% of cache."""
        assert slack_outgrowth(0.1, 0.4, 52) == pytest.approx(0.0048, abs=1e-4)


class TestUnmanagedSizing:
    def test_paper_values_from_fig5(self):
        """Section 4.3: R=52, A_max=0.4 -> 13% for Pev=1e-2, 21% for 1e-4."""
        assert required_unmanaged_fraction(52, 0.4, 0.1, 1e-2) == pytest.approx(
            0.138, abs=0.005
        )
        assert required_unmanaged_fraction(52, 0.4, 0.1, 1e-4) == pytest.approx(
            0.215, abs=0.005
        )

    def test_monotonicity_in_r(self):
        u16 = required_unmanaged_fraction(16, 0.4, 0.1, 1e-2)
        u52 = required_unmanaged_fraction(52, 0.4, 0.1, 1e-2)
        assert u52 < u16

    def test_monotonicity_in_pev(self):
        loose = required_unmanaged_fraction(52, 0.4, 0.1, 1e-1)
        tight = required_unmanaged_fraction(52, 0.4, 0.1, 1e-6)
        assert tight > loose

    def test_rejects_bad_pev(self):
        with pytest.raises(ValueError):
            required_unmanaged_fraction(52, pev=0.0)
        with pytest.raises(ValueError):
            required_unmanaged_fraction(52, pev=2.0)

    @given(
        r=st.integers(min_value=8, max_value=128),
        pev=st.floats(min_value=1e-6, max_value=0.5),
    )
    @settings(max_examples=100)
    def test_roundtrip_with_worst_case_pev(self, r, pev):
        """worst_case_pev inverts required_unmanaged_fraction."""
        u = required_unmanaged_fraction(r, 0.5, 0.1, pev)
        if u < 1.0:
            recovered = worst_case_pev(u, r, 0.5, 0.1)
            assert recovered == pytest.approx(pev, rel=1e-6)

    def test_worst_case_pev_saturates_without_buffer(self):
        assert worst_case_pev(0.01, 52, a_max=0.5, slack=0.1) == 1.0
