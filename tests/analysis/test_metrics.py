"""Tests for multiprogrammed performance metrics."""

import pytest

from repro.analysis import (
    fairness,
    harmonic_mean_speedup,
    throughput,
    weighted_speedup,
)


class TestThroughput:
    def test_sum_of_ipcs(self):
        assert throughput([0.5, 0.7, 0.8]) == pytest.approx(2.0)


class TestWeightedSpeedup:
    def test_no_interference_equals_thread_count(self):
        assert weighted_speedup([0.5, 0.8], [0.5, 0.8]) == pytest.approx(2.0)

    def test_slowdowns_reduce_it(self):
        assert weighted_speedup([0.25, 0.8], [0.5, 0.8]) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_speedup([0.5], [0.5, 0.6])
        with pytest.raises(ValueError):
            weighted_speedup([], [])
        with pytest.raises(ValueError):
            weighted_speedup([0.0], [1.0])


class TestHarmonicMean:
    def test_equal_speedups(self):
        assert harmonic_mean_speedup([0.4, 0.4], [0.8, 0.8]) == pytest.approx(0.5)

    def test_penalises_imbalance(self):
        balanced = harmonic_mean_speedup([0.4, 0.4], [0.8, 0.8])
        skewed = harmonic_mean_speedup([0.7, 0.1], [0.8, 0.8])
        assert skewed < balanced


class TestFairness:
    def test_perfectly_fair(self):
        assert fairness([0.4, 0.2], [0.8, 0.4]) == pytest.approx(1.0)

    def test_unfair_below_one(self):
        assert fairness([0.8, 0.2], [0.8, 0.8]) == pytest.approx(0.25)
