"""Tests for the associativity models (Equations 1-3) including a
Monte-Carlo validation against the idealised random-candidates cache."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    aperture_demotion_cdf,
    associativity_cdf,
    binomial_in_managed,
    empirical_cdf,
    equilibrium_aperture,
    forced_demotion_cdf,
)


class TestEquation1:
    def test_known_values(self):
        # Paper: with R=64, FA(0.8) = 1e-6 (approximately 0.8^64).
        assert associativity_cdf(0.8, 64) == pytest.approx(0.8**64)
        assert 0.8**64 < 1.1e-6

    def test_boundaries(self):
        assert associativity_cdf(0.0, 16) == 0.0
        assert associativity_cdf(1.0, 16) == 1.0

    def test_more_candidates_skew_right(self):
        assert associativity_cdf(0.9, 64) < associativity_cdf(0.9, 4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            associativity_cdf(1.5, 4)

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=1, max_value=128))
    @settings(max_examples=100)
    def test_is_a_cdf(self, x, r):
        v = associativity_cdf(x, r)
        assert 0.0 <= v <= 1.0


class TestEquation2:
    def test_weights_renormalised(self):
        # At x = 1 the CDF must reach 1 exactly despite dropping the
        # i=0 and i=R corner terms.
        assert forced_demotion_cdf(1.0, 16, 0.3) == pytest.approx(1.0)

    def test_worse_than_aperture_demotions(self):
        """Fig 2b vs 2c: demoting exactly one per eviction demotes far
        younger lines than demoting one on average."""
        r, u = 16, 0.3
        a = equilibrium_aperture(r, 1 - u)
        x = 0.9
        assert forced_demotion_cdf(x, r, u) > aperture_demotion_cdf(x, a)

    def test_paper_fig2b_magnitude(self):
        """With R=16, u=0.3 the mixture has mean i = R(1-u) = 11.2, so
        F_M(0.9) ~= 0.9^11.2 ~= 0.31: a large share of forced
        demotions hit lines well below the aperture band.  (The prose
        quotes 60%, which Equation 2 itself does not support; the
        qualitative Fig 2b-vs-2c gap is what matters and is pinned in
        test_worse_than_aperture_demotions.)"""
        value = forced_demotion_cdf(0.9, 16, 0.3)
        assert 0.25 < value < 0.40

    def test_binomial_terms_sum_to_one(self):
        total = sum(binomial_in_managed(i, 16, 0.3) for i in range(17))
        assert total == pytest.approx(1.0)


class TestEquation3:
    def test_uniform_support(self):
        a = 0.1
        assert aperture_demotion_cdf(0.85, a) == 0.0
        assert aperture_demotion_cdf(0.95, a) == pytest.approx(0.5)
        assert aperture_demotion_cdf(1.0, a) == pytest.approx(1.0)

    def test_paper_fig2c_magnitude(self):
        """R=16, u=0.3: demoting on average only touches lines with
        priority > 0.9 (aperture ~= 1/(R*m) ~= 0.089)."""
        a = equilibrium_aperture(16, 0.7)
        assert a == pytest.approx(1 / (16 * 0.7))
        assert aperture_demotion_cdf(0.9, a) == 0.0

    def test_zero_aperture_degenerate(self):
        assert aperture_demotion_cdf(0.5, 0.0) == 0.0
        assert aperture_demotion_cdf(1.0, 0.0) == 1.0


class TestMonteCarlo:
    def test_random_candidates_eviction_matches_x_to_the_r(self):
        """Empirical eviction-priority CDF on the idealised array must
        match Equation 1 (this is Fig 1's underlying claim)."""
        from repro.arrays import RandomCandidatesArray
        from repro.partitioning import BaselineCache
        from repro.replacement import PerfectLRUPolicy

        r = 8
        array = RandomCandidatesArray(512, candidates_per_miss=r, seed=0)
        policy = PerfectLRUPolicy(512)
        cache = BaselineCache(array, policy)
        rng = random.Random(1)
        samples = []

        def hook(slot, part):
            victim_age = policy.age_key(slot)
            ages = [policy.age_key(s) for s, _ in array.contents()]
            younger = sum(1 for a in ages if a <= victim_age)
            samples.append(younger / len(ages))

        cache.eviction_hook = hook
        for n in range(6000):
            cache.access(rng.randrange(1 << 30))  # never reused: pure misses
        xs = [0.5, 0.7, 0.8, 0.9, 0.95]
        emp = empirical_cdf(samples, xs)
        for x, e in zip(xs, emp):
            assert e == pytest.approx(associativity_cdf(x, r), abs=0.05)


class TestEmpiricalCDF:
    def test_basic(self):
        samples = [0.1, 0.2, 0.3, 0.4]
        assert empirical_cdf(samples, [0.25]) == [0.5]

    def test_empty_samples(self):
        assert empirical_cdf([], [0.5, 1.0]) == [0.0, 0.0]

    def test_monotone(self):
        rng = random.Random(0)
        samples = [rng.random() for _ in range(100)]
        xs = [i / 20 for i in range(21)]
        cdf = empirical_cdf(samples, xs)
        assert cdf == sorted(cdf)
