"""Tests for the hierarchical stats tree (repro.telemetry.tree)."""

import json

import pytest

from repro import telemetry
from repro.telemetry import Distribution, IntervalSeries, StatGroup


class TestNames:
    @pytest.mark.parametrize("bad", ["Hits", "cache.hits", "l2-miss", "", "a b"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(ValueError, match="invalid"):
            StatGroup(bad)

    def test_valid_names(self):
        g = StatGroup("root")
        g.stat("hits_0", lambda: 0)
        g.group("per_partition_2")

    def test_duplicate_leaf_rejected(self):
        g = StatGroup("root")
        g.stat("hits", lambda: 0)
        with pytest.raises(ValueError, match="duplicate"):
            g.stat("hits", lambda: 1)

    def test_leaf_group_collision_rejected(self):
        g = StatGroup("root")
        g.stat("hits", lambda: 0)
        with pytest.raises(ValueError):
            g.group("hits")


class TestStat:
    def test_pull_based_reads_live_counter(self):
        counter = {"n": 0}
        g = StatGroup("root")
        g.stat("n", lambda: counter["n"])
        counter["n"] = 7
        assert g.snapshot() == {"n": 7}
        counter["n"] = 9
        assert g.snapshot() == {"n": 9}

    def test_group_is_get_or_create(self):
        g = StatGroup("root")
        a = g.group("cache")
        b = g.group("cache")
        assert a is b


class TestDistribution:
    def test_empty(self):
        d = Distribution("wall")
        assert d.value() == {
            "count": 0, "total": 0.0, "mean": 0.0, "min": None, "max": None,
        }

    def test_summary(self):
        d = Distribution("wall")
        for x in (2.0, 1.0, 4.0):
            d.record(x)
        v = d.value()
        assert v["count"] == 3
        assert v["total"] == pytest.approx(7.0)
        assert v["mean"] == pytest.approx(7.0 / 3)
        assert v["min"] == 1.0
        assert v["max"] == 4.0


class TestIntervalSeries:
    def test_samples(self):
        s = IntervalSeries("sizes")
        s.sample(0, [1, 2])
        s.sample(100, [3, 4])
        assert len(s) == 2
        assert s.value() == {"times": [0, 100], "values": [[1, 2], [3, 4]]}


class TestExport:
    def _tree(self):
        g = StatGroup("root")
        cache = g.group("cache", "front-end")
        cache.stat("hits", lambda: [1, 2], "per-partition hits")
        d = cache.distribution("lat", "latency")
        d.record(3.0)
        sim = g.group("sim")
        sim.stat("epochs", lambda: 5)
        return g

    def test_snapshot_nested(self):
        snap = self._tree().snapshot()
        assert snap["cache"]["hits"] == [1, 2]
        assert snap["cache"]["lat"]["count"] == 1
        assert snap["sim"]["epochs"] == 5

    def test_snapshot_preserves_registration_order(self):
        snap = self._tree().snapshot()
        assert list(snap) == ["cache", "sim"]
        assert list(snap["cache"]) == ["hits", "lat"]

    def test_flatten_dotted_names(self):
        flat = self._tree().flatten()
        assert flat["cache.hits"] == [1, 2]
        assert flat["sim.epochs"] == 5

    def test_schema_lists_all_leaves(self):
        rows = self._tree().schema()
        assert ("cache.hits", "stat", "per-partition hits") in rows
        assert ("cache.lat", "distribution", "latency") in rows
        assert ("sim.epochs", "stat", "") in rows

    def test_to_json_round_trips(self):
        g = self._tree()
        assert json.loads(g.to_json()) == g.snapshot()

    def test_dump(self, tmp_path):
        path = tmp_path / "stats.json"
        g = self._tree()
        g.dump(path)
        assert json.loads(path.read_text()) == g.snapshot()


class TestEnabledFlag:
    def test_set_enabled_round_trip(self):
        prev = telemetry.enabled()
        try:
            telemetry.set_enabled(False)
            assert not telemetry.enabled()
            telemetry.set_enabled(True)
            assert telemetry.enabled()
        finally:
            telemetry.set_enabled(prev)

    def test_disabled_array_skips_walk_counters(self):
        from repro.arrays import SetAssociativeArray

        prev = telemetry.enabled()
        try:
            telemetry.set_enabled(False)
            array = SetAssociativeArray(256, 4, seed=0)
            array.candidate_slots(12345)
            assert array.stat_walks == 0
            telemetry.set_enabled(True)
            array = SetAssociativeArray(256, 4, seed=0)
            array.candidate_slots(12345)
            assert array.stat_walks == 1
        finally:
            telemetry.set_enabled(prev)


class TestSystemTree:
    def test_groups_present_for_partitioned_run(self):
        from repro.harness import build_policy
        from repro.harness.schemes import build_cache
        from repro.sim import CMPSystem, small_system
        from repro.workloads import make_mix

        config = small_system()
        cache = build_cache("vantage-z4/52", config.l2_lines, config.num_cores)
        policy = build_policy(cache, config)
        system = CMPSystem(cache, make_mix("sftn", 1).trace_factories(0), config,
                           policy=policy)
        tree = telemetry.system_tree(cache=cache, system=system, policy=policy)
        snap = tree.snapshot()
        assert set(snap) == {"cache", "array", "sim", "policy"}
        assert "vantage" in snap["cache"]
        assert "walks" in snap["array"]
        assert "stall_cycles" in snap["sim"]
        assert "monitors" in snap["policy"]
