"""Tests for the zcache array: walk shape, relocation, invariants."""

import random

import pytest

from repro.arrays import SkewAssociativeArray, ZCacheArray


def fill(array, rng, count):
    """Warm the array with `count` distinct random addresses."""
    inserted = []
    addr = 0
    while len(inserted) < count:
        addr += rng.randrange(1, 5)
        if addr in array:
            continue
        cands = array.candidates(addr)
        empty = next((c for c in cands if c.addr is None), None)
        victim = empty if empty is not None else cands[0]
        if victim.addr is not None:
            inserted = [a for a in inserted if a != victim.addr]
        array.install(addr, victim)
        inserted.append(addr)
    return inserted


class TestWalk:
    def test_z4_52_yields_52_candidates_when_full(self):
        array = ZCacheArray(1024, num_ways=4, candidates_per_miss=52, seed=1)
        rng = random.Random(0)
        fill(array, rng, 1024)
        cands = array.candidates(999_999)
        assert len(cands) == 52
        assert all(c.addr is not None for c in cands)

    def test_first_level_is_direct_positions(self):
        array = ZCacheArray(1024, num_ways=4, candidates_per_miss=16, seed=1)
        cands = array.candidates(42)
        first = [c.slot for c in cands[:4]]
        assert set(first) <= set(array.positions(42))

    def test_candidates_unique_slots(self):
        array = ZCacheArray(512, num_ways=4, candidates_per_miss=52, seed=2)
        rng = random.Random(1)
        fill(array, rng, 512)
        for probe in (10_001, 10_002, 10_003):
            slots = [c.slot for c in array.candidates(probe)]
            assert len(slots) == len(set(slots))

    def test_paths_are_valid_relocation_chains(self):
        """Every path step must be a legal position for the line above it."""
        array = ZCacheArray(512, num_ways=4, candidates_per_miss=52, seed=3)
        rng = random.Random(2)
        fill(array, rng, 512)
        cands = array.candidates(77_777)
        for cand in cands:
            path = cand.path
            assert path[-1] == cand.slot
            for i in range(1, len(path)):
                mover = array.addr_at(path[i - 1])
                assert path[i] in array.positions(mover)

    def test_empty_slots_reported_during_warmup(self):
        array = ZCacheArray(256, num_ways=4, candidates_per_miss=16, seed=4)
        cands = array.candidates(5)
        assert any(c.addr is None for c in cands)

    def test_r_below_ways_rejected(self):
        with pytest.raises(ValueError):
            ZCacheArray(256, num_ways=4, candidates_per_miss=3)

    def test_walk_levels_match_paper_geometry(self):
        """Z4/52 walks 4 first-level, then up to 12 second- and 36
        third-level candidates (fewer only on slot collisions, which
        deeper levels absorb)."""
        array = ZCacheArray(4096, num_ways=4, candidates_per_miss=52, seed=5)
        rng = random.Random(3)
        fill(array, rng, 4096)
        for probe in (123_456, 234_567, 345_678):
            cands = array.candidates(probe)
            depths = [len(c.path) for c in cands]
            assert len(depths) == 52
            assert depths.count(1) == 4
            assert 8 <= depths.count(2) <= 12
            assert depths == sorted(depths), "walk must be breadth-first"


class TestRelocation:
    def test_install_relocates_and_preserves_other_lines(self):
        array = ZCacheArray(256, num_ways=4, candidates_per_miss=52, seed=6)
        rng = random.Random(4)
        resident = set(fill(array, rng, 256))
        newcomer = 888_888
        cands = array.candidates(newcomer)
        deep = next(c for c in cands if len(c.path) >= 2)
        moves = array.install(newcomer, deep)
        assert len(moves) == len(deep.path) - 1
        resident.discard(deep.addr)
        for addr in resident:
            slot = array.lookup(addr)
            assert slot is not None
            # Relocated lines must still sit in one of their legal positions.
            assert slot in array.positions(addr)
        assert array.lookup(newcomer) == deep.path[0]

    def test_moves_are_reported_in_execution_order(self):
        array = ZCacheArray(256, num_ways=4, candidates_per_miss=52, seed=7)
        rng = random.Random(5)
        fill(array, rng, 256)
        cands = array.candidates(777_777)
        deep = next(c for c in cands if len(c.path) == 3)
        moves = array.install(777_777, deep)
        assert moves == [
            (deep.path[1], deep.path[2]),
            (deep.path[0], deep.path[1]),
        ]


class TestSkewBase:
    def test_skew_is_one_candidate_per_way(self):
        array = SkewAssociativeArray(256, 4, seed=8)
        cands = array.candidates(9)
        assert len(cands) == 4
        assert array.candidates_per_miss == 4

    def test_way_banks_disjoint(self):
        array = SkewAssociativeArray(256, 4, seed=9)
        for addr in range(100):
            for way, slot in enumerate(array.positions(addr)):
                assert way * 64 <= slot < (way + 1) * 64
                assert array.way_of_slot(slot) == way
