"""Property-based invariants over every array organisation.

Whatever sequence of installs/evictions/invalidations happens, an
array must never lose or duplicate a line, and each line must remain
findable at a slot the geometry allows.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays import (
    RandomCandidatesArray,
    SetAssociativeArray,
    SkewAssociativeArray,
    ZCacheArray,
)


def make_arrays(seed):
    return [
        SetAssociativeArray(64, 4, hashed=True, seed=seed),
        SkewAssociativeArray(64, 4, seed=seed),
        ZCacheArray(64, 4, candidates_per_miss=16, seed=seed),
        RandomCandidatesArray(64, candidates_per_miss=8, seed=seed),
    ]


def check_invariants(array, expected_resident):
    # 1. Occupancy matches the model.
    assert array.occupancy() == len(expected_resident)
    # 2. Every resident line is findable, at a legal position.
    for addr in expected_resident:
        slot = array.lookup(addr)
        assert slot is not None
        assert array.addr_at(slot) == addr
        positions = array.positions(addr)
        if positions:  # random-candidates arrays have no geometry
            assert slot in positions or isinstance(array, RandomCandidatesArray)
    # 3. The tag store agrees with the index.
    seen = {}
    for slot, addr in array.contents():
        assert addr not in seen, "duplicate line"
        seen[addr] = slot
    assert set(seen) == expected_resident


@given(
    seed=st.integers(min_value=0, max_value=2**20),
    ops=st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=120),
)
@settings(max_examples=40, deadline=None)
def test_random_operation_sequences_preserve_invariants(seed, ops):
    rng = random.Random(seed)
    for array in make_arrays(seed & 0xFF):
        resident = set()
        for op_addr in ops:
            action = rng.random()
            if action < 0.15 and resident:
                victim_addr = rng.choice(sorted(resident))
                array.invalidate(victim_addr)
                resident.discard(victim_addr)
            else:
                addr = op_addr
                if addr in resident:
                    continue  # a real cache would hit; nothing to install
                cands = array.candidates(addr)
                empty = next((c for c in cands if c.addr is None), None)
                victim = empty if empty is not None else rng.choice(cands)
                if victim.addr is not None:
                    resident.discard(victim.addr)
                array.install(addr, victim)
                resident.add(addr)
        check_invariants(array, resident)


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=20, deadline=None)
def test_zcache_deep_eviction_never_loses_lines(seed):
    array = ZCacheArray(64, 4, candidates_per_miss=16, seed=seed & 0x7)
    rng = random.Random(seed)
    resident = set()
    for step in range(300):
        addr = rng.randrange(1000)
        if addr in resident:
            continue
        cands = array.candidates(addr)
        empty = next((c for c in cands if c.addr is None), None)
        if empty is not None:
            victim = empty
        else:
            # Bias toward deep candidates to exercise relocation.
            victim = max(cands, key=lambda c: len(c.path))
        if victim.addr is not None:
            resident.discard(victim.addr)
        array.install(addr, victim)
        resident.add(addr)
    check_invariants(array, resident)
