"""Tests for the set-associative array."""

import pytest

from repro.arrays import SetAssociativeArray


def fill_set(array, set_index, count):
    """Place `count` addresses mapping to `set_index`; returns them."""
    placed = []
    addr = 0
    while len(placed) < count:
        if array.set_index(addr) == set_index and addr not in array:
            cand = next(c for c in array.candidates(addr) if c.addr is None)
            array.install(addr, cand)
            placed.append(addr)
        addr += 1
    return placed


class TestGeometry:
    def test_slot_layout(self):
        array = SetAssociativeArray(64, 4, hashed=False)
        assert array.num_sets == 16
        assert array.positions(5) == (20, 21, 22, 23)

    def test_unhashed_index_is_low_bits(self):
        array = SetAssociativeArray(64, 4, hashed=False)
        assert array.set_index(5) == 5
        assert array.set_index(21) == 5

    def test_hashed_index_differs_from_modulo(self):
        array = SetAssociativeArray(4096, 16, hashed=True, seed=1)
        assert any(array.set_index(a) != a % array.num_sets for a in range(200))

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            SetAssociativeArray(48, 4, hashed=False)

    def test_candidates_cover_whole_set(self):
        array = SetAssociativeArray(64, 4, hashed=False)
        cands = array.candidates(3)
        assert [c.slot for c in cands] == [12, 13, 14, 15]
        assert [c.way for c in cands] == [0, 1, 2, 3]
        assert all(c.addr is None for c in cands)

    def test_candidates_per_miss_equals_ways(self):
        array = SetAssociativeArray(64, 4, hashed=False)
        assert array.candidates_per_miss == 4


class TestInstallLookup:
    def test_install_then_lookup(self):
        array = SetAssociativeArray(64, 4, hashed=False)
        cand = array.candidates(7)[0]
        array.install(7, cand)
        assert array.lookup(7) == cand.slot
        assert 7 in array
        assert array.occupancy() == 1

    def test_conflicting_addresses_share_set(self):
        array = SetAssociativeArray(64, 4, hashed=False)
        addrs = fill_set(array, 2, 4)
        assert len(addrs) == 4
        # Set 2 is now full: all candidates are occupied.
        more = [a for a in range(200) if array.set_index(a) == 2 and a not in array]
        cands = array.candidates(more[0])
        assert all(c.addr is not None for c in cands)

    def test_eviction_replaces_victim(self):
        array = SetAssociativeArray(64, 4, hashed=False)
        addrs = fill_set(array, 2, 4)
        newcomer = next(
            a for a in range(200) if array.set_index(a) == 2 and a not in array
        )
        victim = array.candidates(newcomer)[1]
        moves = array.install(newcomer, victim)
        assert moves == []
        assert array.lookup(newcomer) == victim.slot
        assert victim.addr not in array
        assert array.occupancy() == 4

    def test_duplicate_install_rejected(self):
        array = SetAssociativeArray(64, 4, hashed=False)
        array.install(7, array.candidates(7)[0])
        with pytest.raises(ValueError):
            array.install(7, array.candidates(7)[1])

    def test_invalidate(self):
        array = SetAssociativeArray(64, 4, hashed=False)
        cand = array.candidates(9)[2]
        array.install(9, cand)
        assert array.invalidate(9) == cand.slot
        assert 9 not in array
        assert array.invalidate(9) is None

    def test_set_slots_helper(self):
        array = SetAssociativeArray(64, 4, hashed=False)
        assert list(array.set_slots(3)) == [12, 13, 14, 15]

    def test_contents_iterates_valid_lines(self):
        array = SetAssociativeArray(64, 4, hashed=False)
        for a in (1, 2, 3):
            array.install(a, next(c for c in array.candidates(a) if c.addr is None))
        assert dict((addr, slot) for slot, addr in array.contents()) == {
            1: array.lookup(1),
            2: array.lookup(2),
            3: array.lookup(3),
        }
