"""Tests for the H3 hash family."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.hashing import H3Family, H3Hash


class TestH3Hash:
    def test_deterministic_same_seed(self):
        a = H3Hash(1024, seed=7)
        b = H3Hash(1024, seed=7)
        assert all(a(x) == b(x) for x in range(1000))

    def test_different_seeds_differ(self):
        a = H3Hash(1024, seed=1)
        b = H3Hash(1024, seed=2)
        assert any(a(x) != b(x) for x in range(100))

    def test_range(self):
        h = H3Hash(256, seed=3)
        for x in range(5000):
            assert 0 <= h(x) < 256

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            H3Hash(100, seed=0)

    def test_rejects_zero_buckets(self):
        with pytest.raises(ValueError):
            H3Hash(0, seed=0)

    def test_large_keys_supported(self):
        h = H3Hash(1024, seed=5)
        big = (37 << 44) | 12345
        assert 0 <= h(big) < 1024
        # Same key hashes identically regardless of evaluation path.
        assert h(big) == h(big)

    def test_low_and_high_key_halves_both_matter(self):
        h = H3Hash(4096, seed=9)
        low_only = {h(x) for x in range(64)}
        high_only = {h(x << 40) for x in range(64)}
        assert len(low_only) > 1
        assert len(high_only) > 1

    def test_distribution_roughly_uniform(self):
        buckets = 64
        h = H3Hash(buckets, seed=11)
        counts = [0] * buckets
        n = 64 * 500
        for x in range(n):
            counts[h(x)] += 1
        expected = n / buckets
        # Loose 3-sigma-ish band; H3 on sequential keys is very even.
        assert all(0.5 * expected < c < 1.5 * expected for c in counts)

    def test_linearity_over_gf2(self):
        """H3 is GF(2)-linear: h(a ^ b) == h(a) ^ h(b) ^ h(0)."""
        h = H3Hash(256, seed=13)
        zero = h(0)
        for a, b in [(3, 12), (100, 255), (77, 200), (1 << 35, 9)]:
            assert h(a ^ b) == h(a) ^ h(b) ^ zero

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    @settings(max_examples=200)
    def test_always_in_range(self, key):
        h = H3Hash(512, seed=17)
        assert 0 <= h(key) < 512

    def test_bulk_matches_scalar(self):
        numpy = pytest.importorskip("numpy")
        h = H3Hash(256, seed=11)
        # Keys straddling the 32-bit boundary exercise both the scalar
        # short-circuit and the full 8-byte evaluation.
        keys = list(range(64)) + [
            (37 * k + 5) % (1 << 62) for k in range(1, 400)
        ]
        bulk = h.bulk(numpy.asarray(keys, dtype=numpy.int64))
        assert bulk.tolist() == [h(k) for k in keys]


class TestH3Family:
    def test_member_count(self):
        fam = H3Family(4, 256, seed=0)
        assert len(fam) == 4
        assert len(fam.positions(42)) == 4

    def test_members_are_independent_functions(self):
        fam = H3Family(4, 1024, seed=0)
        # At least one key must disagree between any two ways.
        for i in range(4):
            for j in range(i + 1, 4):
                assert any(fam[i](x) != fam[j](x) for x in range(200))

    def test_deterministic(self):
        a = H3Family(3, 128, seed=5)
        b = H3Family(3, 128, seed=5)
        for x in range(500):
            assert a.positions(x) == b.positions(x)

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            H3Family(0, 128)
