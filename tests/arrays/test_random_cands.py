"""Tests for the idealised random-candidates array."""

import random

import pytest

from repro.arrays import RandomCandidatesArray


class TestFillPhase:
    def test_fills_before_replacing(self):
        array = RandomCandidatesArray(64, candidates_per_miss=8, seed=0)
        for addr in range(64):
            cands = array.candidates(addr)
            assert len(cands) == 1 and cands[0].addr is None
            array.install(addr, cands[0])
        assert array.occupancy() == 64

    def test_full_array_offers_r_occupied_candidates(self):
        array = RandomCandidatesArray(64, candidates_per_miss=8, seed=0)
        for addr in range(64):
            array.install(addr, array.candidates(addr)[0])
        cands = array.candidates(1000)
        assert len(cands) == 8
        assert all(c.addr is not None for c in cands)
        assert len({c.slot for c in cands}) == 8

    def test_invalidate_returns_slot_to_free_pool(self):
        array = RandomCandidatesArray(16, candidates_per_miss=4, seed=0)
        for addr in range(16):
            array.install(addr, array.candidates(addr)[0])
        array.invalidate(3)
        cands = array.candidates(100)
        assert cands[0].addr is None
        array.install(100, cands[0])
        assert array.occupancy() == 16


class TestValidation:
    def test_r_must_fit(self):
        with pytest.raises(ValueError):
            RandomCandidatesArray(4, candidates_per_miss=5)

    def test_r_positive(self):
        with pytest.raises(ValueError):
            RandomCandidatesArray(4, candidates_per_miss=0)


class TestUniformity:
    def test_candidates_cover_all_slots_uniformly(self):
        """Over many draws, each slot should be offered ~equally often."""
        array = RandomCandidatesArray(32, candidates_per_miss=4, seed=1)
        for addr in range(32):
            array.install(addr, array.candidates(addr)[0])
        counts = [0] * 32
        draws = 4000
        for i in range(draws):
            for c in array.candidates(10_000 + i):
                counts[c.slot] += 1
        expected = draws * 4 / 32
        assert all(0.7 * expected < c < 1.3 * expected for c in counts)

    def test_deterministic_by_seed(self):
        def draw(seed):
            array = RandomCandidatesArray(32, 4, seed=seed)
            for addr in range(32):
                array.install(addr, array.candidates(addr)[0])
            return [tuple(c.slot for c in array.candidates(100 + i)) for i in range(10)]

        assert draw(7) == draw(7)
        assert draw(7) != draw(8)
