"""Tests for the memoised position caches that make zcache walks
affordable: the caches must never return stale or wrong positions."""

from repro.arrays import SetAssociativeArray, SkewAssociativeArray, ZCacheArray
from repro.arrays.hashing import H3Family


class TestSkewPositionCache:
    def test_cache_agrees_with_direct_hashing(self):
        array = SkewAssociativeArray(256, 4, seed=5)
        fam = H3Family(4, 64, seed=5)
        for addr in range(500):
            cached = array.positions(addr)
            direct = tuple(w * 64 + fam[w](addr) for w in range(4))
            assert cached == direct
            # Second call returns the memoised tuple unchanged.
            assert array.positions(addr) == cached

    def test_position_cache_is_bounded(self):
        array = SkewAssociativeArray(64, 4, seed=11)
        cap = array._position_cache_cap
        assert cap == 1 << 16
        expected = {}
        for addr in range(cap + cap // 4):
            expected[addr] = array.positions(addr)
            assert len(array._position_cache) <= cap
        for addr in (0, cap - 1, cap, cap + cap // 4 - 1):
            assert array.positions(addr) == expected[addr]

    def test_positions_stable_across_installs(self):
        array = ZCacheArray(256, 4, candidates_per_miss=16, seed=6)
        before = {a: array.positions(a) for a in range(100)}
        for a in range(100):
            cands = array.candidates(a)
            empty = next((c for c in cands if c.addr is None), None)
            array.install(a, empty if empty is not None else cands[0])
        for a, positions in before.items():
            assert array.positions(a) == positions


class TestSetAssocIndexCache:
    def test_hashed_index_memoised_consistently(self):
        array = SetAssociativeArray(1024, 16, hashed=True, seed=7)
        first = [array.set_index(a) for a in range(300)]
        second = [array.set_index(a) for a in range(300)]
        assert first == second

    def test_index_cache_is_bounded(self):
        # A long run over far more distinct addresses than the cap must
        # not grow the memo without bound; after the wholesale flush the
        # returned indices must still be correct.
        array = SetAssociativeArray(64, 4, hashed=True, seed=9)
        cap = array._index_cache_cap
        assert cap == 1 << 16  # max(4 * 64, 1 << 16)
        indices = {}
        for addr in range(cap + cap // 2):
            indices[addr] = array.set_index(addr)
            assert len(array._index_cache) <= cap
        # Spot-check entries from before and after the flush.
        for addr in (0, 1, cap - 1, cap, cap + cap // 2 - 1):
            assert array.set_index(addr) == indices[addr]
            assert array.set_index(addr) == array._hash(addr)

    def test_positions_lie_in_the_indexed_set(self):
        array = SetAssociativeArray(1024, 16, hashed=True, seed=8)
        for addr in range(200):
            set_index = array.set_index(addr)
            for slot in array.positions(addr):
                assert slot // 16 == set_index
