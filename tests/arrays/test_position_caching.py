"""Tests for the memoised position caches that make zcache walks
affordable: the caches must never return stale or wrong positions."""

from repro.arrays import SetAssociativeArray, SkewAssociativeArray, ZCacheArray
from repro.arrays.hashing import H3Family


class TestSkewPositionCache:
    def test_cache_agrees_with_direct_hashing(self):
        array = SkewAssociativeArray(256, 4, seed=5)
        fam = H3Family(4, 64, seed=5)
        for addr in range(500):
            cached = array.positions(addr)
            direct = tuple(w * 64 + fam[w](addr) for w in range(4))
            assert cached == direct
            # Second call returns the memoised tuple unchanged.
            assert array.positions(addr) == cached

    def test_position_cache_is_bounded(self):
        array = SkewAssociativeArray(64, 4, seed=11)
        cap = array._position_cache_cap
        assert cap == 1 << 16
        expected = {}
        for addr in range(cap + cap // 4):
            expected[addr] = array.positions(addr)
            assert len(array._position_cache) <= cap
        for addr in (0, cap - 1, cap, cap + cap // 4 - 1):
            assert array.positions(addr) == expected[addr]

    def test_positions_stable_across_installs(self):
        array = ZCacheArray(256, 4, candidates_per_miss=16, seed=6)
        before = {a: array.positions(a) for a in range(100)}
        for a in range(100):
            cands = array.candidates(a)
            empty = next((c for c in cands if c.addr is None), None)
            array.install(a, empty if empty is not None else cands[0])
        for a, positions in before.items():
            assert array.positions(a) == positions


class TestSetAssocIndexCache:
    def test_hashed_index_memoised_consistently(self):
        array = SetAssociativeArray(1024, 16, hashed=True, seed=7)
        first = [array.set_index(a) for a in range(300)]
        second = [array.set_index(a) for a in range(300)]
        assert first == second

    def test_index_cache_is_bounded(self):
        # A long run over far more distinct addresses than the cap must
        # not grow the memo without bound; after the wholesale flush the
        # returned indices must still be correct.
        array = SetAssociativeArray(64, 4, hashed=True, seed=9)
        cap = array._index_cache_cap
        assert cap == 1 << 16  # max(4 * 64, 1 << 16)
        indices = {}
        for addr in range(cap + cap // 2):
            indices[addr] = array.set_index(addr)
            assert len(array._index_cache) <= cap
        # Spot-check entries from before and after the flush.
        for addr in (0, 1, cap - 1, cap, cap + cap // 2 - 1):
            assert array.set_index(addr) == indices[addr]
            assert array.set_index(addr) == array._hash(addr)

    def test_positions_lie_in_the_indexed_set(self):
        array = SetAssociativeArray(1024, 16, hashed=True, seed=8)
        for addr in range(200):
            set_index = array.set_index(addr)
            for slot in array.positions(addr):
                assert slot // 16 == set_index


class TestMemoFlushBoundary:
    """The wholesale flush fires exactly at ``max(4 * lines, 2**16)``:
    the memo holds precisely cap entries, and the insert *after* the
    cap is reached clears it down to the single fresh entry."""

    def test_cap_formula_tracks_large_arrays(self):
        # Small arrays floor at 2**16; past 16k lines the 4x term wins.
        assert SetAssociativeArray(64, 4, seed=1)._index_cache_cap == 1 << 16
        assert (
            SetAssociativeArray(32768, 16, seed=1)._index_cache_cap
            == 4 * 32768
        )
        assert SkewAssociativeArray(64, 4, seed=1)._position_cache_cap == 1 << 16
        assert (
            SkewAssociativeArray(32768, 4, seed=1)._position_cache_cap
            == 4 * 32768
        )

    def test_index_cache_flushes_exactly_at_cap(self):
        array = SetAssociativeArray(64, 4, hashed=True, seed=23)
        # The memo is pooled across same-identity arrays; start clean
        # so the fill count below is exact.
        array._index_cache.clear()
        cap = array._index_cache_cap
        for addr in range(cap):
            array.set_index(addr)
        assert len(array._index_cache) == cap
        # A hit at the cap must not flush (the guard sits on the miss
        # path only).
        array.set_index(0)
        assert len(array._index_cache) == cap
        # The first *miss* at the cap clears wholesale, then re-seeds.
        array.set_index(cap)
        assert array._index_cache == {cap: array._hash(cap)}

    def test_position_cache_flushes_exactly_at_cap(self):
        array = SkewAssociativeArray(64, 4, seed=29)
        array._position_cache.clear()
        cap = array._position_cache_cap
        for addr in range(cap):
            array.positions(addr)
        assert len(array._position_cache) == cap
        array.positions(0)
        assert len(array._position_cache) == cap
        array.positions(cap)
        assert len(array._position_cache) == 1
        assert cap in array._position_cache


class TestPositionsInto:
    """``positions_into`` must agree with ``positions`` on every path:
    memo hit, memo miss, and across the wholesale flush."""

    def _check(self, array, addrs):
        buf = [0] * array.num_ways
        for addr in addrs:
            n = array.positions_into(addr, buf)
            assert tuple(buf[:n]) == array.positions(addr)

    def test_set_assoc_agrees(self):
        array = SetAssociativeArray(256, 4, hashed=True, seed=31)
        self._check(array, range(300))

    def test_skew_cold_and_warm_paths_agree(self):
        array = SkewAssociativeArray(256, 4, seed=37)
        array._position_cache.clear()
        buf = [0] * 4
        for addr in range(100):
            # Cold: positions_into computes without memoising...
            n = array.positions_into(addr, buf)
            cold = tuple(buf[:n])
            assert addr not in array._position_cache
            # ...then positions memoises, and the warm path agrees.
            assert array.positions(addr) == cold
            n = array.positions_into(addr, buf)
            assert tuple(buf[:n]) == cold

    def test_zcache_agrees(self):
        array = ZCacheArray(256, 4, candidates_per_miss=16, seed=41)
        self._check(array, range(300))

    def test_agrees_across_the_flush(self):
        array = SkewAssociativeArray(64, 4, seed=43)
        array._position_cache.clear()
        cap = array._position_cache_cap
        probes = (0, 1, cap - 1, cap, cap + 1)
        buf = [0] * 4
        before = {}
        for addr in probes:
            n = array.positions_into(addr, buf)
            before[addr] = tuple(buf[:n])
        for addr in range(cap + 1):  # drives the memo through a flush
            array.positions(addr)
        assert len(array._position_cache) == 1
        for addr in probes:
            n = array.positions_into(addr, buf)
            assert tuple(buf[:n]) == before[addr]
            assert array.positions(addr) == before[addr]

    def test_buffer_tail_untouched(self):
        array = SetAssociativeArray(256, 4, hashed=True, seed=47)
        buf = [0] * 4 + [-7, -7]
        n = array.positions_into(5, buf)
        assert n == 4
        assert buf[4:] == [-7, -7]
