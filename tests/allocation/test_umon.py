"""Tests for the UMON-DSS utility monitor."""

import random

import pytest

from repro.allocation import UMonitor, interpolate_curve


class TestShadowTags:
    def test_hit_counters_track_stack_positions(self):
        """A fully-sampled monitor is an exact LRU stack-distance
        profiler."""
        m = UMonitor(4, model_sets=1, sampled_sets=1, seed=0)
        stream = [1, 2, 3, 1, 2, 3, 1, 2, 3]
        for addr in stream:
            m.access(addr)
        # After warmup, every access hits at stack distance 2 (0-based).
        assert m.hits[2] == 6
        assert m.hits[0] == m.hits[1] == 0
        assert m.accesses == 9

    def test_mru_hit_position_zero(self):
        m = UMonitor(4, model_sets=1, sampled_sets=1, seed=0)
        m.access(5)
        m.access(5)
        assert m.hits[0] == 1

    def test_capacity_bounded_by_ways(self):
        m = UMonitor(2, model_sets=1, sampled_sets=1, seed=0)
        for addr in (1, 2, 3):  # 3 distinct lines, 2-way stack
            m.access(addr)
        m.access(1)  # was evicted from the shadow stack
        assert sum(m.hits) == 0

    def test_miss_curve_shape(self):
        m = UMonitor(4, model_sets=1, sampled_sets=1, seed=0)
        for _ in range(3):
            for addr in (1, 2, 3):
                m.access(addr)
        curve = m.miss_curve()
        assert len(curve) == 5
        assert curve[0] == m.accesses
        assert curve == sorted(curve, reverse=True)
        # 3-line loop: fits in 3 ways, no extra benefit at 4.
        assert curve[3] == curve[4]

    def test_sampling_reduces_observed_accesses(self):
        full = UMonitor(8, model_sets=64, sampled_sets=64, seed=1)
        sampled = UMonitor(8, model_sets=64, sampled_sets=8, seed=1)
        rng = random.Random(0)
        addrs = [rng.randrange(10_000) for _ in range(5000)]
        for a in addrs:
            full.access(a)
            sampled.access(a)
        assert full.accesses == 5000
        assert 0.05 < sampled.accesses / 5000 < 0.25

    def test_epoch_reset_halves(self):
        m = UMonitor(2, model_sets=1, sampled_sets=1, seed=0)
        for _ in range(10):
            m.access(1)
        m.epoch_reset()
        assert m.accesses == 5
        assert m.hits[0] == 4  # 9 hits // 2

    def test_validation(self):
        with pytest.raises(ValueError):
            UMonitor(0, 64)
        with pytest.raises(ValueError):
            UMonitor(4, 63)
        with pytest.raises(ValueError):
            UMonitor(4, 64, sampled_sets=48)


class TestInterpolation:
    def test_endpoints_preserved(self):
        curve = [100.0, 60.0, 30.0, 10.0, 5.0]
        out = interpolate_curve(curve, 256)
        assert out[0] == 100.0
        assert out[-1] == 5.0
        assert len(out) == 257

    def test_linear_between_points(self):
        curve = [100.0, 0.0]
        out = interpolate_curve(curve, 4)
        assert out == [100.0, 75.0, 50.0, 25.0, 0.0]

    def test_monotone_input_stays_monotone(self):
        curve = [100.0, 80.0, 50.0, 49.0, 10.0]
        out = interpolate_curve(curve, 64)
        assert all(a >= b for a, b in zip(out, out[1:]))

    def test_too_short_curve(self):
        with pytest.raises(ValueError):
            interpolate_curve([1.0], 16)
