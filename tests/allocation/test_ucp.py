"""Tests for the Lookahead allocation algorithm and the UCP policy."""

import itertools

import pytest

from repro.allocation import UCPPolicy, UMonitor, lookahead_allocate


def brute_force_best(curves, total, min_units):
    """Exhaustively minimise total misses (ground truth for small cases)."""
    n = len(curves)
    best, best_misses = None, float("inf")
    for combo in itertools.product(range(min_units, total + 1), repeat=n):
        if sum(combo) != total:
            continue
        misses = sum(curves[p][combo[p]] for p in range(n))
        if misses < best_misses:
            best_misses = misses
            best = combo
    return best, best_misses


class TestLookahead:
    def test_greedy_convex_case(self):
        # Convex curves: lookahead == greedy == optimal.
        curves = [
            [100, 60, 30, 10, 5, 4, 3, 2, 1],
            [100, 95, 90, 85, 80, 75, 70, 65, 60],
        ]
        alloc = lookahead_allocate(curves, total_units=8, min_units=1)
        assert sum(alloc) == 8
        _, best = brute_force_best(curves, 8, 1)
        got = sum(curves[p][alloc[p]] for p in range(2))
        assert got == best

    def test_sees_past_plateaus(self):
        """The defining Lookahead property: a cliff behind a plateau
        (cache-fitting app) must still be found."""
        flat_then_cliff = [100, 100, 100, 100, 100, 0, 0, 0, 0]
        gentle = [100, 98, 96, 94, 92, 90, 88, 86, 84]
        alloc = lookahead_allocate([flat_then_cliff, gentle], 8, min_units=1)
        assert alloc[0] >= 5  # reached the cliff

    def test_matches_brute_force_on_small_cases(self):
        cases = [
            [[50, 30, 20, 15, 12, 10], [50, 45, 20, 10, 8, 7]],
            [[90, 90, 10, 10, 10, 10], [80, 40, 30, 25, 22, 20]],
            [[100, 0, 0, 0, 0, 0], [100, 99, 98, 0, 0, 0]],
        ]
        for curves in cases:
            alloc = lookahead_allocate(curves, 5, min_units=1)
            _, best_misses = brute_force_best(curves, 5, 1)
            got = sum(curves[p][alloc[p]] for p in range(2))
            # Lookahead is a strong heuristic; allow small slack.
            assert got <= best_misses * 1.1 + 1

    def test_all_units_always_assigned(self):
        flat = [[10.0] * 9, [10.0] * 9]
        alloc = lookahead_allocate(flat, 8, min_units=1)
        assert sum(alloc) == 8

    def test_min_units_respected(self):
        curves = [[100, 0, 0, 0, 0], [100, 100, 100, 100, 100]]
        alloc = lookahead_allocate(curves, 4, min_units=1)
        assert min(alloc) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            lookahead_allocate([[1, 2]], total_units=4, min_units=0)
        with pytest.raises(ValueError):
            lookahead_allocate([[1] * 3, [1] * 3], 2, min_units=2)

    def test_empty(self):
        assert lookahead_allocate([], 4) == []


class TestUCPPolicy:
    def make_policy(self, granularity=None, total=8):
        monitors = [UMonitor(8, 1, 1, seed=i) for i in range(2)]
        return UCPPolicy(monitors, total_units=total, min_units=1, granularity=granularity)

    def test_allocates_to_high_utility_partition(self):
        policy = self.make_policy()
        # Partition 0 reuses 6 lines heavily; partition 1 never reuses.
        for rep in range(50):
            for a in range(6):
                policy.observe(0, a)
        for n in range(300):
            policy.observe(1, 1000 + n)
        alloc = policy.allocate()
        assert sum(alloc) == 8
        assert alloc[0] > alloc[1]

    def test_line_granularity_scaling(self):
        policy = self.make_policy(granularity=16, total=1024)
        for rep in range(50):
            for a in range(6):
                policy.observe(0, a)
        for n in range(300):
            policy.observe(1, 1000 + n)
        alloc = policy.allocate()
        assert sum(alloc) <= 1024
        assert alloc[0] > alloc[1]
        # Units are lines, not points.
        assert max(alloc) > 64

    def test_monitors_decay_after_allocate(self):
        policy = self.make_policy()
        for _ in range(10):
            policy.observe(0, 1)
        before = policy.monitors[0].accesses
        policy.allocate()
        assert policy.monitors[0].accesses == before // 2
