"""Tests for the reuse-aware monitor and UCP policy."""

import pytest

from repro.allocation import ReuseAwareUCPPolicy, ReuseUMonitor


def _full_monitor(ways=4):
    """Fully-sampled monitor: every address lands in the one set."""
    return ReuseUMonitor(ways, model_sets=1, sampled_sets=1, seed=0)


class TestReuseUMonitor:
    def test_shared_subset_tracked_alongside_totals(self):
        m = _full_monitor()
        stream = [(1, False), (2, True), (1, False), (2, True)]
        for addr, shared in stream:
            m.access(addr, shared=shared)
        assert m.accesses == 4
        assert m.shared_accesses == 2
        # Second touch of each address hits at stack distance 1.
        assert m.hits[1] == 2
        assert m.shared_hits[1] == 1

    def test_curves_decompose(self):
        """private + shared = total, pointwise."""
        m = _full_monitor()
        for i in range(40):
            m.access(i % 3, shared=(i % 2 == 0))
        total = m.miss_curve()
        private = m.private_curve()
        shared = m.shared_curve()
        assert [p + s for p, s in zip(private, shared)] == total
        assert shared[0] == m.shared_accesses

    def test_default_is_private(self):
        m = _full_monitor()
        for addr in (1, 2, 1, 2):
            m.access(addr)
        assert m.shared_accesses == 0
        assert m.shared_curve() == [0.0] * (m.num_ways + 1)
        assert m.private_curve() == m.miss_curve()

    def test_epoch_reset_halves_shared_counters(self):
        m = _full_monitor()
        for _ in range(10):
            m.access(7, shared=True)
        m.epoch_reset()
        assert m.shared_accesses == 5
        assert m.shared_hits[0] == 4  # 9 hits // 2


def _policy(num_parts=2, total=4, ways=4):
    monitors = [_full_monitor(ways) for _ in range(num_parts)]
    return ReuseAwareUCPPolicy(monitors, total_units=total, min_units=1)


class TestReuseAwareUCPPolicy:
    def test_rejects_mismatched_hash_seeds(self):
        monitors = [
            ReuseUMonitor(4, model_sets=64, sampled_sets=64, seed=s)
            for s in (0, 1)
        ]
        with pytest.raises(ValueError, match="hash seed"):
            ReuseAwareUCPPolicy(monitors, total_units=8)

    def test_first_touch_classification(self):
        """The first partition to touch an address owns it; later
        touches by other partitions are shared reuse."""
        p = _policy()
        p.observe(0, 100)
        p.observe(1, 100)
        p.observe(0, 100)
        p.observe(1, 200)
        assert p.shared_observed == [0, 1]
        assert p.monitors[0].shared_accesses == 0
        assert p.monitors[1].shared_accesses == 1

    def test_first_touch_table_bounded(self):
        p = _policy()
        p.FIRST_TOUCH_CAP = 4
        for addr in range(4):
            p.observe(0, addr)
        assert len(p._first_touch) == 4
        # At the cap the table is cleared wholesale, then re-seeded.
        p.observe(0, 99)
        assert p._first_touch == {99: 0}

    def test_allocation_sums_to_total(self):
        p = _policy()
        for i in range(50):
            p.observe(i % 2, i % 5)
        units = p.allocate()
        assert sum(units) == p.total_units
        assert all(u >= p.min_units for u in units)
        assert p.last_allocation == units

    def test_shared_units_folded_to_sharers(self):
        """Capacity won by the pooled shared curve goes to partitions
        with shared reuse, not to the private-only partition."""
        p = _policy(num_parts=2, total=8, ways=8)
        # Partition 0: modest private reuse.  Partition 1: all its
        # utility is shared reuse (another partition touched first).
        m0, m1 = p.monitors
        m0.accesses = 100
        m0.hits = [10, 0, 0, 0, 0, 0, 0, 0]
        m1.accesses = 100
        m1.hits = [0, 90, 0, 0, 0, 0, 0, 0]
        m1.shared_accesses = 100
        m1.shared_hits = [0, 90, 0, 0, 0, 0, 0, 0]
        units = p.allocate()
        assert sum(units) == 8
        # Partition 1's private curve is flat (zero utility); anything
        # beyond its floor must have come from the shared fold-back.
        assert units[1] > p.min_units
        assert units[1] > units[0]

    def test_round_robin_when_no_sharers_recorded(self):
        """Shared pseudo-units with zero recorded shared volume (all
        curves flat) still get assigned -- every unit is handed out."""
        p = _policy()
        units = p.allocate()
        assert sum(units) == p.total_units

    def test_allocate_decays_monitors(self):
        p = _policy()
        for _ in range(10):
            p.observe(0, 1)
            p.observe(1, 1)
        shared_before = p.monitors[1].shared_accesses
        p.allocate()
        assert p.monitors[1].shared_accesses == shared_before // 2
