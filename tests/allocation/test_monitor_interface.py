"""UMonitor and RRIPMonitor present one telemetry interface
(:class:`repro.telemetry.SampledMonitor`), so UCP reports through a
single path with no per-monitor capability probing."""

import random

import pytest

from repro.allocation import UCPPolicy, UMonitor
from repro.allocation.umon_rrip import RRIPMonitor
from repro.telemetry import SampledMonitor, StatGroup

MONITORS = [
    lambda: UMonitor(8, 256, sampled_sets=16, seed=3),
    lambda: RRIPMonitor(8, 256, sampled_sets=16, seed=3),
]


@pytest.mark.parametrize("factory", MONITORS)
class TestSampledMonitorContract:
    def test_is_sampled_monitor(self, factory):
        assert isinstance(factory(), SampledMonitor)

    def test_sample_cache_memoises_decisions(self, factory):
        mon = factory()
        rng = random.Random(11)
        addrs = [rng.randrange(1 << 30) for _ in range(500)]
        for addr in addrs:
            mon.observe(addr)
        get = mon.sample_filter()
        sampled = 0
        for addr in addrs:
            decision = get(addr, -1)
            assert decision != -1  # every observed address is decided
            if decision is not None:
                assert isinstance(decision, int)
                sampled += 1
        assert 0 < sampled < len(addrs)  # both outcomes occur

    def test_observe_equals_access(self, factory):
        a, b = factory(), factory()
        rng = random.Random(12)
        addrs = [rng.randrange(1 << 30) for _ in range(300)]
        for addr in addrs:
            a.observe(addr)
            b.access(addr)
        assert a.miss_curve() == b.miss_curve()
        assert a._sample_cache == b._sample_cache

    def test_register_stats_includes_decided_addresses(self, factory):
        mon = factory()
        mon.observe(1234)
        group = StatGroup("mon")
        mon.register_stats(group)
        assert group.snapshot()["decided_addresses"] == 1


@pytest.mark.parametrize("factory", MONITORS)
def test_ucp_observe_uses_uniform_path(factory):
    """UCP's hot-path skip works identically for both monitor kinds:
    skipped addresses never reach the monitor, forwarded ones do."""
    monitors = [factory() for _ in range(2)]
    policy = UCPPolicy(monitors, total_units=16)
    rng = random.Random(13)
    addrs = [rng.randrange(1 << 30) for _ in range(400)]
    for addr in addrs:
        policy.observe(0, addr)
        policy.observe(0, addr)  # second sight exercises the skip path

    get = monitors[0].sample_filter()
    sampled = sum(1 for a in set(addrs) if get(a, -1) is not None)
    assert sampled > 0
    # Every unique address was decided through observe().
    assert all(get(a, -1) != -1 for a in addrs)
    # The untouched partition's monitor saw nothing.
    assert len(monitors[1]._sample_cache) == 0
    assert policy.observed[1] == 0
    assert policy.observed[0] > 0


def test_ucp_allocate_works_with_rrip_monitors():
    monitors = [RRIPMonitor(8, 256, sampled_sets=16, seed=s) for s in range(2)]
    policy = UCPPolicy(monitors, total_units=8)
    rng = random.Random(14)
    for _ in range(2000):
        policy.observe(rng.randrange(2), rng.randrange(1 << 14))
    units = policy.allocate()
    assert sum(units) == 8
    assert policy.last_allocation == units
