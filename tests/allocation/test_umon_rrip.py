"""Tests for the RRIP-chain UMON (Section 6.2's Vantage-DRRIP monitor)."""

import pytest

from repro.allocation import RRIPMonitor


class TestRRIPMonitor:
    def test_validation(self):
        with pytest.raises(ValueError):
            RRIPMonitor(0, 64)
        with pytest.raises(ValueError):
            RRIPMonitor(4, 63)
        with pytest.raises(ValueError):
            RRIPMonitor(4, 64, sampled_sets=1)

    def test_halves_split_srrip_brrip(self):
        m = RRIPMonitor(8, 64, sampled_sets=64, seed=0)
        halves = {m._half(s) for s in range(64)}
        assert halves == {"srrip", "brrip"}
        srrip_count = sum(1 for s in range(64) if m._half(s) == "srrip")
        assert srrip_count == 32

    def test_reuse_counts_as_hits(self):
        m = RRIPMonitor(8, 2, sampled_sets=2, seed=0)
        for _ in range(20):
            for a in range(4):
                m.access(a)
        curve = m.miss_curve()
        assert curve[0] > curve[-1]  # capacity helps
        assert curve == sorted(curve, reverse=True)

    def test_scan_hurts_brrip_less(self):
        """A thrash pattern (loop > ways) should favour BRRIP: its
        max-RRPV insertions preserve part of the loop."""
        m = RRIPMonitor(4, 2, sampled_sets=2, seed=1)
        for _ in range(300):
            for a in range(12):  # loop 3x the shadow capacity
                m.access(a)
        assert m.best_policy() == "brrip"

    def test_reuse_friendly_prefers_srrip(self):
        m = RRIPMonitor(4, 2, sampled_sets=2, seed=2)
        for _ in range(200):
            for a in range(3):  # fits: SRRIP keeps everything
                m.access(a)
        assert m.best_policy() == "srrip"

    def test_epoch_reset_halves_counters(self):
        m = RRIPMonitor(4, 2, sampled_sets=2, seed=3)
        for _ in range(10):
            m.access(1)
        m.epoch_reset()
        total = m.accesses["srrip"] + m.accesses["brrip"]
        assert total == 5

    def test_miss_curve_length(self):
        m = RRIPMonitor(6, 2, sampled_sets=2)
        assert len(m.miss_curve()) == 7
