"""Tests for static allocation policies."""

import pytest

from repro.allocation import EqualSharePolicy, StaticPolicy


class TestStaticPolicy:
    def test_returns_fixed_vector(self):
        policy = StaticPolicy([100, 200, 300])
        assert policy.allocate() == [100, 200, 300]
        policy.observe(0, 42)  # no-op
        assert policy.allocate() == [100, 200, 300]

    def test_returns_copy(self):
        policy = StaticPolicy([1, 2])
        out = policy.allocate()
        out[0] = 99
        assert policy.allocate() == [1, 2]


class TestEqualShare:
    def test_even_split(self):
        policy = EqualSharePolicy(4, 100)
        assert policy.allocate() == [25, 25, 25, 25]

    def test_remainder_to_first_partitions(self):
        policy = EqualSharePolicy(3, 10)
        assert policy.allocate() == [4, 3, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            EqualSharePolicy(0, 10)
