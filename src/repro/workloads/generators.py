"""Synthetic address-stream generators.

Each generator yields an infinite stream of ``(gap, line_addr)``
pairs: ``gap`` is the number of instructions executed since the
previous L2 access (the traces are post-L1, matching how the paper's
L2 sees each core), and ``line_addr`` is a line address inside the
application's private address space.

The four shapes map to the paper's four workload categories (Table 3)
through their miss-versus-capacity curves under LRU:

- ``zipf_stream`` over a small working set: *insensitive* -- all
  reuse hits in a tiny footprint, so extra capacity changes nothing.
- ``zipf_stream`` over a large working set: *cache-friendly* -- the
  skewed popularity law makes misses fall smoothly as capacity grows.
- ``loop_stream``: *cache-fitting* -- a sequential loop under LRU
  misses on everything until the allocation covers the whole working
  set, then on nothing: the sharp knee.
- ``scan_stream``: *thrashing/streaming* -- sequential access over a
  region far larger than the cache; no allocation helps.

``phased_stream`` alternates two generators to create the time-varying
behaviour UCP reacts to in Figure 8.
"""

from __future__ import annotations

import bisect
import random
from collections.abc import Iterator
from math import log as _log

TracePair = tuple[int, int]


def _gap(rng: random.Random, mean_gap: float) -> int:
    """Geometric-ish instruction gap with the requested mean."""
    return int(rng.expovariate(1.0 / mean_gap)) if mean_gap > 0 else 0


def zipf_stream(
    ws_lines: int,
    alpha: float,
    mean_gap: float,
    base: int,
    seed: int,
) -> Iterator[TracePair]:
    """Independent references with Zipf(alpha) popularity over
    ``ws_lines`` lines."""
    if ws_lines <= 0:
        raise ValueError("ws_lines must be positive")
    rng = random.Random(seed)
    cumulative = []
    total = 0.0
    for rank in range(1, ws_lines + 1):
        total += rank**-alpha
        cumulative.append(total)
    # Map popularity ranks to scattered line offsets so the footprint
    # is not contiguous (defeats accidental spatial effects).
    perm = list(range(ws_lines))
    rng.shuffle(perm)
    # Hot loop: expovariate is inlined (its body is exactly
    # ``-log(1 - random()) / lambd``) so each item costs two C-level
    # RNG draws, one bisect and one log -- no Python calls.
    rnd = rng.random
    bisect_left = bisect.bisect_left
    lambd = 1.0 / mean_gap if mean_gap > 0 else None
    if lambd is None:
        while True:
            rank = bisect_left(cumulative, rnd() * total)
            yield 0, base + perm[rank]
    while True:
        rank = bisect_left(cumulative, rnd() * total)
        yield int(-_log(1.0 - rnd()) / lambd), base + perm[rank]


def loop_stream(
    ws_lines: int,
    mean_gap: float,
    base: int,
    seed: int,
) -> Iterator[TracePair]:
    """Sequential loop over ``ws_lines`` lines (cache-fitting knee)."""
    if ws_lines <= 0:
        raise ValueError("ws_lines must be positive")
    rng = random.Random(seed)
    rnd = rng.random
    lambd = 1.0 / mean_gap if mean_gap > 0 else None
    index = 0
    while True:
        if lambd is None:
            yield 0, base + index
        else:
            yield int(-_log(1.0 - rnd()) / lambd), base + index
        index += 1
        if index >= ws_lines:
            index = 0


def scan_stream(
    region_lines: int,
    mean_gap: float,
    base: int,
    seed: int,
) -> Iterator[TracePair]:
    """Endless sequential scan over a huge region (streaming)."""
    return loop_stream(region_lines, mean_gap, base, seed)


def phased_stream(
    make_phase_a,
    make_phase_b,
    phase_accesses: int,
    base: int,
    seed: int,
) -> Iterator[TracePair]:
    """Alternate two sub-streams every ``phase_accesses`` accesses.

    ``make_phase_a`` / ``make_phase_b`` are called as
    ``fn(base, seed)`` and must return generators; phases resume where
    they left off, preserving each phase's locality.
    """
    gen_a = make_phase_a(base, seed)
    gen_b = make_phase_b(base + (1 << 30), seed + 1)
    while True:
        for _ in range(phase_accesses):
            yield next(gen_a)
        for _ in range(phase_accesses):
            yield next(gen_b)
