"""Synthetic address-stream generators.

Each generator yields an infinite stream of ``(gap, line_addr)``
pairs: ``gap`` is the number of instructions executed since the
previous L2 access (the traces are post-L1, matching how the paper's
L2 sees each core), and ``line_addr`` is a line address inside the
application's private address space.

The four shapes map to the paper's four workload categories (Table 3)
through their miss-versus-capacity curves under LRU:

- ``zipf_stream`` over a small working set: *insensitive* -- all
  reuse hits in a tiny footprint, so extra capacity changes nothing.
- ``zipf_stream`` over a large working set: *cache-friendly* -- the
  skewed popularity law makes misses fall smoothly as capacity grows.
- ``loop_stream``: *cache-fitting* -- a sequential loop under LRU
  misses on everything until the allocation covers the whole working
  set, then on nothing: the sharp knee.
- ``scan_stream``: *thrashing/streaming* -- sequential access over a
  region far larger than the cache; no allocation helps.

``phased_stream`` alternates two generators to create the time-varying
behaviour UCP reacts to in Figure 8.

The ``*_shared`` wrappers turn a private per-core stream into a
multi-threaded one: with probability ``fraction`` an access is
redirected into a *shared region* that overlaps the same lines on
every core of the mix.  The private stream still advances (its gap is
kept, so timing is unchanged); only the line address is substituted.
Three sharing shapes are provided:

- ``producer_consumer_stream``: every core sweeps one common ring in
  the same order, offset by a per-core phase -- lines installed by one
  core are re-read by the cores trailing it.
- ``shared_table_stream``: Zipf-popular reads of a common table; the
  popularity law and line permutation derive from ``shared_seed``
  alone, so the *same* lines are hot on every core (read-mostly
  sharing).
- ``migratory_stream``: cores take turns owning the shared set in
  time-slice windows; within its window a core sweeps the region with
  boosted probability, so lines migrate between partitions over time.
"""

from __future__ import annotations

import bisect
import random
from collections.abc import Iterator
from math import log as _log

TracePair = tuple[int, int]


def _gap(rng: random.Random, mean_gap: float) -> int:
    """Geometric-ish instruction gap with the requested mean."""
    return int(rng.expovariate(1.0 / mean_gap)) if mean_gap > 0 else 0


def zipf_stream(
    ws_lines: int,
    alpha: float,
    mean_gap: float,
    base: int,
    seed: int,
) -> Iterator[TracePair]:
    """Independent references with Zipf(alpha) popularity over
    ``ws_lines`` lines."""
    if ws_lines <= 0:
        raise ValueError("ws_lines must be positive")
    rng = random.Random(seed)
    cumulative = []
    total = 0.0
    for rank in range(1, ws_lines + 1):
        total += rank**-alpha
        cumulative.append(total)
    # Map popularity ranks to scattered line offsets so the footprint
    # is not contiguous (defeats accidental spatial effects).
    perm = list(range(ws_lines))
    rng.shuffle(perm)
    # Hot loop: expovariate is inlined (its body is exactly
    # ``-log(1 - random()) / lambd``) so each item costs two C-level
    # RNG draws, one bisect and one log -- no Python calls.
    rnd = rng.random
    bisect_left = bisect.bisect_left
    lambd = 1.0 / mean_gap if mean_gap > 0 else None
    if lambd is None:
        while True:
            rank = bisect_left(cumulative, rnd() * total)
            yield 0, base + perm[rank]
    while True:
        rank = bisect_left(cumulative, rnd() * total)
        yield int(-_log(1.0 - rnd()) / lambd), base + perm[rank]


def loop_stream(
    ws_lines: int,
    mean_gap: float,
    base: int,
    seed: int,
) -> Iterator[TracePair]:
    """Sequential loop over ``ws_lines`` lines (cache-fitting knee)."""
    if ws_lines <= 0:
        raise ValueError("ws_lines must be positive")
    rng = random.Random(seed)
    rnd = rng.random
    lambd = 1.0 / mean_gap if mean_gap > 0 else None
    index = 0
    while True:
        if lambd is None:
            yield 0, base + index
        else:
            yield int(-_log(1.0 - rnd()) / lambd), base + index
        index += 1
        if index >= ws_lines:
            index = 0


def scan_stream(
    region_lines: int,
    mean_gap: float,
    base: int,
    seed: int,
) -> Iterator[TracePair]:
    """Endless sequential scan over a huge region (streaming)."""
    return loop_stream(region_lines, mean_gap, base, seed)


def _shared_rng(shared_seed: int, seed: int) -> random.Random:
    """Per-core RNG for shared-region decisions.

    ``seed`` is the core's private stream seed (which already encodes
    the run seed and the core id), so cores draw independent decision
    streams while the run as a whole stays reproducible.
    """
    return random.Random(shared_seed * 1_000_003 + seed)


def producer_consumer_stream(
    private: Iterator[TracePair],
    shared_base: int,
    shared_lines: int,
    fraction: float,
    core: int,
    num_cores: int,
    shared_seed: int,
    seed: int,
) -> Iterator[TracePair]:
    """Common ring swept in the same order by every core.

    Each core starts at a phase offset of ``shared_lines/num_cores``
    lines, so the lines one core installs are re-touched by the cores
    behind it: classic producer/consumer reuse where the requester is
    rarely the line's first-touch owner.
    """
    if shared_lines <= 0:
        raise ValueError("shared_lines must be positive")
    rnd = _shared_rng(shared_seed, seed).random
    pos = (core * shared_lines) // max(1, num_cores)
    while True:
        gap, addr = next(private)
        if rnd() < fraction:
            addr = shared_base + pos
            pos += 1
            if pos >= shared_lines:
                pos = 0
        yield gap, addr


def shared_table_stream(
    private: Iterator[TracePair],
    shared_base: int,
    shared_lines: int,
    fraction: float,
    alpha: float,
    core: int,
    num_cores: int,
    shared_seed: int,
    seed: int,
) -> Iterator[TracePair]:
    """Read-mostly shared table with Zipf(alpha) popularity.

    The popularity ranking and the rank-to-line permutation are drawn
    from ``shared_seed`` only, so every core hammers the *same* hot
    lines -- the read-shared lookup-table pattern.
    """
    if shared_lines <= 0:
        raise ValueError("shared_lines must be positive")
    common = random.Random(shared_seed)
    cumulative = []
    total = 0.0
    for rank in range(1, shared_lines + 1):
        total += rank**-alpha
        cumulative.append(total)
    perm = list(range(shared_lines))
    common.shuffle(perm)
    rnd = _shared_rng(shared_seed, seed).random
    bisect_left = bisect.bisect_left
    while True:
        gap, addr = next(private)
        if rnd() < fraction:
            rank = bisect_left(cumulative, rnd() * total)
            addr = shared_base + perm[rank]
        yield gap, addr


def migratory_stream(
    private: Iterator[TracePair],
    shared_base: int,
    shared_lines: int,
    fraction: float,
    window: int,
    core: int,
    num_cores: int,
    shared_seed: int,
    seed: int,
) -> Iterator[TracePair]:
    """Shared lines whose ownership migrates between cores over time.

    Cores take turns in round-robin windows of ``window`` accesses
    (counted per core): inside its window a core sweeps the shared
    region with probability ``min(1, fraction * num_cores)``, outside
    it almost never touches it -- so over the run the whole shared set
    is handed from partition to partition.  The sweep position
    persists across a core's windows, so successive owners re-touch
    the same lines.
    """
    if shared_lines <= 0:
        raise ValueError("shared_lines must be positive")
    if window <= 0:
        raise ValueError("window must be positive")
    rnd = _shared_rng(shared_seed, seed).random
    boost = min(1.0, fraction * max(1, num_cores))
    cores = max(1, num_cores)
    pos = (core * shared_lines) // cores
    n = 0
    while True:
        gap, addr = next(private)
        mine = (n // window) % cores == core
        n += 1
        if mine and rnd() < boost:
            addr = shared_base + pos
            pos += 1
            if pos >= shared_lines:
                pos = 0
        yield gap, addr


def phased_stream(
    make_phase_a,
    make_phase_b,
    phase_accesses: int,
    base: int,
    seed: int,
) -> Iterator[TracePair]:
    """Alternate two sub-streams every ``phase_accesses`` accesses.

    ``make_phase_a`` / ``make_phase_b`` are called as
    ``fn(base, seed)`` and must return generators; phases resume where
    they left off, preserving each phase's locality.
    """
    gen_a = make_phase_a(base, seed)
    gen_b = make_phase_b(base + (1 << 30), seed + 1)
    while True:
        for _ in range(phase_accesses):
            yield next(gen_a)
        for _ in range(phase_accesses):
            yield next(gen_b)
