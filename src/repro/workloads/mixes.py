"""Multiprogrammed mix construction (Section 5, "Workloads").

The paper forms one *class* per combination-with-repetition of the
four workload categories taken four at a time -- 35 classes -- and
samples mixes per class: each slot of the class picks a random
application from its category.  4-core mixes fill each slot with one
application; 32-core mixes fill each slot with eight.

Mix names follow the paper's convention: category letters sorted
(e.g. ``sftn``) plus the mix index within the class (``sftn1``).
"""

from __future__ import annotations

import difflib
import random
import zlib
from dataclasses import dataclass
from itertools import combinations_with_replacement

from repro.workloads.apps import APPS, CATEGORIES, AppSpec, SharedRegionSpec

#: Order the paper uses in mix names (streaming first, e.g. "sftn1").
CATEGORY_ORDER = "sftn"


@dataclass(frozen=True)
class Mix:
    """One workload: an app per core, optionally sharing a region.

    Without ``shared``, every core gets a disjoint address space (the
    paper's multiprogrammed setup).  With a
    :class:`~repro.workloads.apps.SharedRegionSpec`, each core's
    stream redirects a fraction of its accesses into one region that
    overlaps the same line addresses on every core -- a multi-threaded
    workload where the requesting core and the line's first-touch
    owner genuinely diverge.
    """

    name: str
    class_letters: str
    apps: tuple[AppSpec, ...]
    shared: SharedRegionSpec | None = None

    @property
    def num_cores(self) -> int:
        return len(self.apps)

    def trace_factories(self, seed: int = 0):
        """Per-core trace factories: disjoint address spaces, plus the
        mix's shared region (if any) overlaid on every core."""
        num_cores = self.num_cores
        # The shared region lives above every core's private space so
        # it can never alias a private line.
        shared_base = num_cores << 44
        return [
            app.trace_factory(
                base=core << 44,
                seed=seed * 1000 + core,
                shared=self.shared,
                core=core,
                num_cores=num_cores,
                shared_base=shared_base,
            )
            for core, app in enumerate(self.apps)
        ]


def mix_classes() -> list[str]:
    """The 35 category classes, as sorted letter strings."""
    order = {letter: i for i, letter in enumerate(CATEGORY_ORDER)}
    classes = combinations_with_replacement(CATEGORY_ORDER, 4)
    return ["".join(sorted(cls, key=order.__getitem__)) for cls in classes]


def make_mix(
    class_letters: str,
    mix_index: int,
    apps_per_slot: int = 1,
    seed: int = 0,
) -> Mix:
    """Sample one mix of the given class.

    ``apps_per_slot`` is 1 for 4-core mixes and 8 for 32-core mixes
    (the paper's "8 randomly chosen workloads per category").
    """
    for letter in class_letters:
        if letter not in CATEGORIES:
            valid = "".join(sorted(CATEGORIES))
            close = difflib.get_close_matches(class_letters, mix_classes(), n=3)
            hint = f"; close matches: {', '.join(close)}" if close else ""
            raise ValueError(
                f"unknown category letter {letter!r} in mix class "
                f"{class_letters!r} (valid letters: {valid}){hint}"
            )
    # zlib.crc32, not hash(): string hashing is salted per process and
    # would make mixes irreproducible across runs.
    class_key = zlib.crc32(class_letters.encode()) & 0xFFFF
    rng = random.Random(class_key * 10_007 + mix_index * 131 + seed)
    apps: list[AppSpec] = []
    for letter in class_letters:
        pool = CATEGORIES[letter]
        for _ in range(apps_per_slot):
            apps.append(APPS[rng.choice(pool)])
    return Mix(
        name=f"{class_letters}{mix_index}",
        class_letters=class_letters,
        apps=tuple(apps),
    )


def make_shared_mix(
    class_letters: str,
    mix_index: int,
    shared: SharedRegionSpec,
    apps_per_slot: int = 1,
    seed: int = 0,
) -> Mix:
    """The same sampled mix as :func:`make_mix`, with a shared region
    overlaid on every core.

    The name records the sharing shape and fraction
    (``sftn1+producer-consumer@0.3``) so sweeps over the shared
    fraction stay tellable apart in tables and result files.
    """
    base = make_mix(class_letters, mix_index, apps_per_slot, seed)
    return Mix(
        name=f"{base.name}+{shared.kind}@{shared.fraction:g}",
        class_letters=base.class_letters,
        apps=base.apps,
        shared=shared,
    )


def make_mixes(
    mixes_per_class: int = 10,
    apps_per_slot: int = 1,
    seed: int = 0,
    class_stride: int = 1,
) -> list[Mix]:
    """The full mix suite: ``35 * mixes_per_class`` workloads.

    ``class_stride`` subsamples classes (every ``stride``-th class) so
    scaled-down runs still span the category space.
    """
    mixes = []
    for cls in mix_classes()[::class_stride]:
        for i in range(mixes_per_class):
            mixes.append(make_mix(cls, i + 1, apps_per_slot, seed))
    return mixes
