"""Multiprogrammed mix construction (Section 5, "Workloads").

The paper forms one *class* per combination-with-repetition of the
four workload categories taken four at a time -- 35 classes -- and
samples mixes per class: each slot of the class picks a random
application from its category.  4-core mixes fill each slot with one
application; 32-core mixes fill each slot with eight.

Mix names follow the paper's convention: category letters sorted
(e.g. ``sftn``) plus the mix index within the class (``sftn1``).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from itertools import combinations_with_replacement

from repro.workloads.apps import APPS, CATEGORIES, AppSpec

#: Order the paper uses in mix names (streaming first, e.g. "sftn1").
CATEGORY_ORDER = "sftn"


@dataclass(frozen=True)
class Mix:
    """One multiprogrammed workload: an app per core."""

    name: str
    class_letters: str
    apps: tuple[AppSpec, ...]

    @property
    def num_cores(self) -> int:
        return len(self.apps)

    def trace_factories(self, seed: int = 0):
        """Per-core trace factories with disjoint address spaces."""
        return [
            app.trace_factory(base=core << 44, seed=seed * 1000 + core)
            for core, app in enumerate(self.apps)
        ]


def mix_classes() -> list[str]:
    """The 35 category classes, as sorted letter strings."""
    order = {letter: i for i, letter in enumerate(CATEGORY_ORDER)}
    classes = combinations_with_replacement(CATEGORY_ORDER, 4)
    return ["".join(sorted(cls, key=order.__getitem__)) for cls in classes]


def make_mix(
    class_letters: str,
    mix_index: int,
    apps_per_slot: int = 1,
    seed: int = 0,
) -> Mix:
    """Sample one mix of the given class.

    ``apps_per_slot`` is 1 for 4-core mixes and 8 for 32-core mixes
    (the paper's "8 randomly chosen workloads per category").
    """
    # zlib.crc32, not hash(): string hashing is salted per process and
    # would make mixes irreproducible across runs.
    class_key = zlib.crc32(class_letters.encode()) & 0xFFFF
    rng = random.Random(class_key * 10_007 + mix_index * 131 + seed)
    apps: list[AppSpec] = []
    for letter in class_letters:
        pool = CATEGORIES[letter]
        for _ in range(apps_per_slot):
            apps.append(APPS[rng.choice(pool)])
    return Mix(
        name=f"{class_letters}{mix_index}",
        class_letters=class_letters,
        apps=tuple(apps),
    )


def make_mixes(
    mixes_per_class: int = 10,
    apps_per_slot: int = 1,
    seed: int = 0,
    class_stride: int = 1,
) -> list[Mix]:
    """The full mix suite: ``35 * mixes_per_class`` workloads.

    ``class_stride`` subsamples classes (every ``stride``-th class) so
    scaled-down runs still span the category space.
    """
    mixes = []
    for cls in mix_classes()[::class_stride]:
        for i in range(mixes_per_class):
            mixes.append(make_mix(cls, i + 1, apps_per_slot, seed))
    return mixes
