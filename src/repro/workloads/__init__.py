"""Synthetic SPEC-like applications and multiprogrammed mixes."""

from repro.workloads.apps import (
    APPS,
    CATEGORIES,
    CATEGORY_NAMES,
    FITTING,
    FRIENDLY,
    INSENSITIVE,
    STREAMING,
    AppSpec,
    make_app,
)
from repro.workloads.generators import (
    loop_stream,
    phased_stream,
    scan_stream,
    zipf_stream,
)
from repro.workloads.mixes import CATEGORY_ORDER, Mix, make_mix, make_mixes, mix_classes

__all__ = [
    "APPS",
    "AppSpec",
    "CATEGORIES",
    "CATEGORY_NAMES",
    "CATEGORY_ORDER",
    "FITTING",
    "FRIENDLY",
    "INSENSITIVE",
    "Mix",
    "STREAMING",
    "loop_stream",
    "make_app",
    "make_mix",
    "make_mixes",
    "mix_classes",
    "phased_stream",
    "scan_stream",
    "zipf_stream",
]
