"""Synthetic SPEC-like applications and multiprogrammed mixes."""

from repro.workloads.apps import (
    APPS,
    CATEGORIES,
    CATEGORY_NAMES,
    FITTING,
    FRIENDLY,
    INSENSITIVE,
    SHARED_KINDS,
    STREAMING,
    AppSpec,
    SharedRegionSpec,
    make_app,
)
from repro.workloads.generators import (
    loop_stream,
    migratory_stream,
    phased_stream,
    producer_consumer_stream,
    scan_stream,
    shared_table_stream,
    zipf_stream,
)
from repro.workloads.mixes import (
    CATEGORY_ORDER,
    Mix,
    make_mix,
    make_mixes,
    make_shared_mix,
    mix_classes,
)

__all__ = [
    "APPS",
    "AppSpec",
    "CATEGORIES",
    "CATEGORY_NAMES",
    "CATEGORY_ORDER",
    "FITTING",
    "FRIENDLY",
    "INSENSITIVE",
    "Mix",
    "SHARED_KINDS",
    "STREAMING",
    "SharedRegionSpec",
    "loop_stream",
    "make_app",
    "make_mix",
    "make_mixes",
    "make_shared_mix",
    "migratory_stream",
    "mix_classes",
    "phased_stream",
    "producer_consumer_stream",
    "scan_stream",
    "shared_table_stream",
    "zipf_stream",
]
