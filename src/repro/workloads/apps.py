"""The 29 synthetic SPEC-CPU2006-like applications (Table 3).

Each SPEC benchmark in the paper's Table 3 gets a synthetic stand-in
whose *category* (and therefore miss-versus-capacity curve shape) is
the one the paper assigned to it.  Parameters are varied across the
apps of a category so mixes built from different apps genuinely
differ, and ``tests/workloads`` verifies every app lands in its
intended category under the paper's classification procedure (MPKI
sweep from 64 KB to 8 MB).

Working-set sizes are in 64-byte lines; the 2 MB small-system L2 is
32 768 lines and the 8 MB large-system L2 is 131 072 lines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.traces.spec import TraceSpec

INSENSITIVE = "n"
FRIENDLY = "f"
FITTING = "t"
STREAMING = "s"

CATEGORY_NAMES = {
    INSENSITIVE: "insensitive",
    FRIENDLY: "cache-friendly",
    FITTING: "cache-fitting",
    STREAMING: "thrashing/streaming",
}


#: Shared-region generator kinds -> the TraceSpec kind that wraps a
#: private stream with that sharing shape.  The wrapped kinds are new
#: strings, so their trace-store / results-cache keys can never collide
#: with the private variants of the same app.
SHARED_KINDS = {
    "producer-consumer": "pc-shared",
    "shared-table": "table-shared",
    "migratory": "migratory-shared",
}


@dataclass(frozen=True)
class SharedRegionSpec:
    """A shared address region overlaid on a mix's private streams.

    ``kind`` picks the sharing shape (``producer-consumer``,
    ``shared-table`` or ``migratory``; see
    :mod:`repro.workloads.generators`), ``lines`` is the shared
    footprint in cache lines, and ``fraction`` the probability that
    any given access is redirected into the region.  ``alpha`` only
    matters for ``shared-table`` (popularity skew) and ``window`` only
    for ``migratory`` (ownership time-slice, in per-core accesses).
    ``seed`` feeds the region's common structure (table permutation,
    per-core decision streams) independently of the run seed.
    """

    kind: str
    lines: int
    fraction: float
    alpha: float = 0.9
    window: int = 2_000
    seed: int = 0

    def __post_init__(self):
        if self.kind not in SHARED_KINDS:
            raise ValueError(
                f"unknown shared-region kind {self.kind!r}; "
                f"known: {', '.join(sorted(SHARED_KINDS))}"
            )
        if self.lines <= 0:
            raise ValueError("shared region needs a positive line count")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("shared fraction must be in [0, 1]")

    @property
    def trace_kind(self) -> str:
        return SHARED_KINDS[self.kind]


@dataclass(frozen=True)
class AppSpec:
    """One synthetic application.

    ``kind`` selects the generator: ``zipf`` (ws_lines, alpha),
    ``loop`` (ws_lines), ``scan`` (ws_lines), or ``phased-loop``
    (alternates loops over ws_lines and ws2_lines every
    ``phase_accesses`` accesses).
    """

    name: str
    category: str
    kind: str
    ws_lines: int
    mean_gap: float
    alpha: float = 1.0
    ws2_lines: int = 0
    phase_accesses: int = 50_000

    def trace_spec(
        self,
        base: int,
        seed: int,
        shared: SharedRegionSpec | None = None,
        core: int = 0,
        num_cores: int = 1,
        shared_base: int = 0,
    ) -> TraceSpec:
        """This app's stream as a value: the chunk pipeline's unit of
        identity (see :mod:`repro.traces`).

        With a :class:`SharedRegionSpec`, the private stream is wrapped
        so a ``fraction`` of accesses land in the shared region at
        ``shared_base`` (common to every core of the mix).  The
        wrapped spec uses a distinct ``kind`` and folds every sharing
        parameter -- including the requesting ``core`` -- into
        ``params``, so shared and private variants can never collide
        in the trace store or the results cache.
        """
        if shared is not None:
            private = self.trace_spec(base, seed)
            extra: float | int = 0
            if shared.kind == "shared-table":
                extra = shared.alpha
            elif shared.kind == "migratory":
                extra = shared.window
            return TraceSpec(
                name=self.name,
                kind=shared.trace_kind,
                params=(
                    private.kind,
                    private.params,
                    shared_base,
                    shared.lines,
                    shared.fraction,
                    extra,
                    core,
                    num_cores,
                    shared.seed,
                ),
                base=base,
                seed=seed,
            )
        if self.kind == "zipf":
            params: tuple = (self.ws_lines, self.alpha, self.mean_gap)
        elif self.kind in ("loop", "scan"):
            params = (self.ws_lines, self.mean_gap)
        elif self.kind == "phased-loop":
            params = (
                self.ws_lines,
                self.ws2_lines,
                self.mean_gap,
                self.phase_accesses,
            )
        else:
            raise ValueError(f"unknown generator kind {self.kind!r}")
        return TraceSpec(
            name=self.name, kind=self.kind, params=params, base=base, seed=seed
        )

    def trace_factory(
        self,
        base: int,
        seed: int,
        shared: SharedRegionSpec | None = None,
        core: int = 0,
        num_cores: int = 1,
        shared_base: int = 0,
    ):
        """A zero-argument callable producing a fresh trace iterator,
        as :class:`~repro.sim.system.CMPSystem` expects.

        The callable is a :class:`~repro.traces.TraceSpec`, so the
        optimized event loop can also feed the same stream through the
        compiled chunk store; plain callables keep working and simply
        stay on the generator path.
        """
        return self.trace_spec(
            base,
            seed,
            shared=shared,
            core=core,
            num_cores=num_cores,
            shared_base=shared_base,
        )


def _app(name, category, kind, ws, gap, alpha=1.0, ws2=0, phase=50_000) -> AppSpec:
    return AppSpec(
        name=name,
        category=category,
        kind=kind,
        ws_lines=ws,
        mean_gap=gap,
        alpha=alpha,
        ws2_lines=ws2,
        phase_accesses=phase,
    )


#: All 29 applications, keyed by name, in Table 3's classification.
APPS: dict[str, AppSpec] = {
    app.name: app
    for app in [
        # --- Insensitive: tiny working sets, sparse L2 traffic. ---
        _app("perlbench", INSENSITIVE, "zipf", 384, 220, alpha=1.1),
        _app("bwaves", INSENSITIVE, "zipf", 512, 260, alpha=1.0),
        _app("gamess", INSENSITIVE, "zipf", 256, 300, alpha=1.2),
        _app("gromacs", INSENSITIVE, "zipf", 448, 240, alpha=1.1),
        _app("namd", INSENSITIVE, "zipf", 320, 280, alpha=1.0),
        _app("gobmk", INSENSITIVE, "zipf", 640, 200, alpha=1.1),
        _app("dealII", INSENSITIVE, "zipf", 512, 230, alpha=0.9),
        _app("povray", INSENSITIVE, "zipf", 288, 320, alpha=1.2),
        _app("calculix", INSENSITIVE, "zipf", 416, 260, alpha=1.0),
        _app("hmmer", INSENSITIVE, "zipf", 352, 290, alpha=1.1),
        _app("sjeng", INSENSITIVE, "zipf", 576, 210, alpha=1.0),
        _app("h264ref", INSENSITIVE, "zipf", 480, 250, alpha=1.1),
        _app("tonto", INSENSITIVE, "zipf", 384, 270, alpha=1.0),
        _app("wrf", INSENSITIVE, "zipf", 544, 240, alpha=1.0),
        # --- Cache-friendly: big skewed footprints, smooth curves. ---
        _app("bzip2", FRIENDLY, "zipf", 24_576, 30, alpha=0.85),
        _app("gcc", FRIENDLY, "zipf", 32_768, 25, alpha=0.80),
        _app("zeusmp", FRIENDLY, "zipf", 20_480, 35, alpha=0.90),
        _app("cactusADM", FRIENDLY, "zipf", 40_960, 28, alpha=0.75),
        _app("leslie3d", FRIENDLY, "zipf", 28_672, 32, alpha=0.85),
        _app("astar", FRIENDLY, "zipf", 36_864, 26, alpha=0.80),
        # --- Cache-fitting: sequential loops with sharp knees. ---
        _app("soplex", FITTING, "loop", 18_432, 24),
        _app("lbm", FITTING, "loop", 26_624, 20),
        _app("omnetpp", FITTING, "phased-loop", 14_336, 26, ws2=24_576, phase=20_000),
        _app("sphinx3", FITTING, "loop", 22_528, 22),
        _app("xalancbmk", FITTING, "phased-loop", 20_480, 25, ws2=12_288, phase=30_000),
        # --- Thrashing/streaming: scans far beyond any allocation. ---
        _app("mcf", STREAMING, "scan", 262_144, 14),
        _app("milc", STREAMING, "scan", 196_608, 16),
        _app("GemsFDTD", STREAMING, "scan", 327_680, 15),
        _app("libquantum", STREAMING, "scan", 524_288, 12),
    ]
}

#: Names per category letter (n / f / t / s), mirroring Table 3.
CATEGORIES: dict[str, list[str]] = {
    letter: [a.name for a in APPS.values() if a.category == letter]
    for letter in (INSENSITIVE, FRIENDLY, FITTING, STREAMING)
}


def make_app(name: str) -> AppSpec:
    """Look up one of the 29 applications by SPEC name."""
    try:
        return APPS[name]
    except KeyError:
        raise ValueError(f"unknown app {name!r}; see repro.workloads.APPS") from None
