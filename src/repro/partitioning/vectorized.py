"""Vectorized batch kernels (``REPRO_NUMPY=1``).

These builders register numpy variants of the batch scheduling
kernels for the set-associative LRU front-ends (the sa-LRU baseline,
the generic baseline on perfect LRU, and way partitioning).  The
kernel follows the same mega-kernel protocol as the pure-python batch
kernels (``kernel(next_service, unfinished) -> (now, unfinished,
reason, cid)``) but processes each compiled chunk as numpy columns:
set indices come from a gathered H3 evaluation over the whole chunk,
hit detection is one comparison against a tag-matrix gather, and runs
of consecutive hits are retired with a single fancy-index timestamp
store plus closed-form time/instruction prefix sums.  Misses (and
hits whose set a miss has dirtied) fall back to a scalar body that
mirrors the fused kernels bitwise.

The lane is deliberately narrow and *declines* -- falling back to the
pure-python batch kernel -- outside its envelope:

- multi-core systems (``num_cores > 1``): the scheduler interleaves
  cores every few accesses, so per-run vectorization would recompute
  chunk-sized prefixes for runs a handful of accesses long;
- L1 filters, observation (non-static allocation policies), or
  non-integer latencies (exact float addition order could differ from
  the scalar chain);
- array/policy pairs other than set-associative + coarse/perfect LRU.

Behaviour inside the envelope is pinned bitwise-identical to the
scalar paths, which the ``REPRO_NUMPY`` parity tests enforce.
"""

from __future__ import annotations

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

from repro.arrays.set_assoc import SetAssociativeArray
from repro.partitioning.base_cache import (
    BaselineCache,
    register_numpy_kernel,
)
from repro.partitioning.way_partitioning import WayPartitionedCache
from repro.replacement.lru import TIMESTAMP_MOD, CoarseLRUPolicy, PerfectLRUPolicy

_TS_MASK = TIMESTAMP_MOD - 1

# Accesses per window segment: every O(window) column build, rebuild
# and blocked-scan is bounded by this, so short runs never pay for a
# whole compiled chunk.
_WINDOW = 2048
# Slab width for the first-blocked-access scan inside a span.
_SLAB = 256

#: Cross-instance pool of vectorized H3 byte tables, keyed by the
#: hash identity ``(num_buckets, seed)`` (same reuse argument as the
#: position/index memo pools: the tables are a pure function of the
#: identity, so benchmark rounds share one copy).
_H3_TABLE_POOL: dict[tuple[int, int], object] = {}
_POOL_KEYS_MAX = 16


def _h3_tables(h3):
    """``(8, 256) int64`` ndarray of ``h3``'s byte tables.

    ``H3Hash.__call__`` skips the high four tables for keys below
    2**32, XOR-ing the tables' zero entries instead -- which are all
    zero, so evaluating all eight tables unconditionally is identical.
    """
    key = (h3.num_buckets, h3.seed)
    tables = _H3_TABLE_POOL.get(key)
    if tables is None:
        tables = _np.array(h3._tables, dtype=_np.int64)
        if len(_H3_TABLE_POOL) < _POOL_KEYS_MAX:
            _H3_TABLE_POOL[key] = tables
    return tables


def _set_index_column(array, addrs):
    """Vectorized ``array.set_index`` over an int64 address column."""
    if array._hash is None:
        return addrs & array._set_mask
    t = _h3_tables(array._hash)
    h = (
        t[0][addrs & 0xFF]
        ^ t[1][(addrs >> 8) & 0xFF]
        ^ t[2][(addrs >> 16) & 0xFF]
        ^ t[3][(addrs >> 24) & 0xFF]
        ^ t[4][(addrs >> 32) & 0xFF]
        ^ t[5][(addrs >> 40) & 0xFF]
        ^ t[6][(addrs >> 48) & 0xFF]
        ^ t[7][(addrs >> 56) & 0xFF]
    )
    return h & array._hash._mask


@register_numpy_kernel(BaselineCache)
def build_baseline_numpy(cache: BaselineCache, ctx):
    policy = cache.policy
    if type(policy) not in (CoarseLRUPolicy, PerfectLRUPolicy):
        return None
    return _sa_lru_numpy(cache, ctx, way_owner=None)


@register_numpy_kernel(WayPartitionedCache)
def build_waypart_numpy(cache: WayPartitionedCache, ctx):
    # Same gate as the fused/batch waypart kernels: coarse LRU only.
    if type(cache.policy) is not CoarseLRUPolicy:
        return None
    return _sa_lru_numpy(cache, ctx, way_owner=cache._way_owner)


def _sa_lru_numpy(cache, ctx, way_owner):
    """Shared vectorized kernel for the SA + LRU front-ends.

    ``way_owner`` is ``None`` for the baselines (victim scan over the
    whole set) or the live way-ownership column for way partitioning
    (victim scan over the partition's ways, read per miss so epoch
    reallocations between kernel entries take effect immediately).
    """
    if _np is None:
        return None
    if cache._shared_code:
        # Shared-hit bookkeeping (touched_by stamps) is not vectorized;
        # fall back to the pure-python batch kernels.
        return None
    array = cache.array
    policy = cache.policy
    if type(array) is not SetAssociativeArray:
        return None
    if ctx.num_cores != 1:
        return None
    if ctx.l1s is not None or ctx.observe is not None:
        return None
    if ctx.sample_gets is not None:
        return None
    if not ctx.exact_int_times:
        return None

    perfect = type(policy) is PerfectLRUPolicy
    granularity = getattr(policy, "_granularity", 1)

    lookup_tags = array._tags
    slot_of = array._slot_of
    set_free = array._set_free
    num_ways = array.num_ways
    state = policy.state
    part_of = cache.part_of
    sizes = cache._sizes
    st = cache.stats
    st_acc = st.accesses
    st_hit = st.hits
    st_miss = st.misses
    st_evict = st.evictions
    walk_stats = array._collect

    hit_latency = ctx.hit_latency
    memory = ctx.memory
    num_controllers = memory.num_controllers
    mem_latency = memory.latency
    service_cycles = memory.service_cycles
    free_at = memory._free_at
    target = ctx.target
    bufs = ctx.bufs
    positions = ctx.positions
    limits = ctx.limits
    instructions = ctx.instructions
    finished_at = ctx.finished_at
    instructions_at_finish = ctx.instructions_at_finish
    times = ctx.times
    batched = ctx.batched

    searchsorted = _np.searchsorted
    arange = _np.arange
    cumsum = _np.cumsum
    argmax = _np.argmax

    # Zero-copy numpy views over the live tag and policy-state
    # columns (both are ``array('q')``, which exports a writable
    # buffer): vectorized gathers and timestamp stores operate on the
    # same memory the scalar paths read and write, so there is no
    # mirror to synchronize -- epoch services and the object path see
    # every store immediately.
    tags_np = _np.frombuffer(lookup_tags, dtype=_np.int64)
    state_np = _np.frombuffer(state, dtype=_np.int64)
    tags2d = tags_np.reshape(-1, num_ways)

    def kernel(next_service, unfinished):
        now = times[0]
        if not batched[0]:
            return now, unfinished, 4, 0

        mem_requests = memory.requests
        mem_queue = memory.total_queue_cycles
        if perfect:
            clock0 = policy._clock
        else:
            ts0 = policy.current_ts
            acc0 = policy._accesses
        nacc = 0  # accesses retired this entry (drives the LRU clock)

        count = instructions[0]
        fin = finished_at[0] is not None
        pos = positions[0]
        limit = limits[0]
        reason = 0
        ptr = 0
        m = 0

        while True:
            if now >= next_service:
                reason = 1
                break
            if pos >= limit:
                reason = 2
                break
            if ptr >= m:
                lst, arr = bufs[0]
                wlimit = pos + 2 * _WINDOW
                if wlimit > limit:
                    wlimit = limit
                gaps = arr[pos:wlimit:2]
                addrs = arr[pos + 1 : wlimit : 2]
                m = len(gaps)
                set_idx = _set_index_column(array, addrs)
                hit_way = tags2d[set_idx] == addrs[:, None]
                # Hit predictions against the chunk-entry tag state.
                # A prediction stays valid until a miss touches the
                # access's set; ``dirty`` tracks touched sets (O(1)
                # per miss) and dirtied accesses re-check scalar.
                predicted_hit = hit_way.any(axis=1)
                hit_slot = set_idx * num_ways + argmax(hit_way, axis=1)
                dirty = _np.zeros(tags2d.shape[0], dtype=bool)
                steps = arange(1, m + 1)
                cg = cumsum(gaps)
                # All-hit time prefix: each retired hit adds gap + 1
                # (arrival) + the L2 hit latency.  A miss shifts every
                # later time by a constant, folded into ``delta``
                # instead of recomputing the column.
                t_arr = int(now) + cg + steps * (1 + hit_latency)
                count_arr = count + cg + steps
                if perfect:
                    stamps = clock0 + nacc + steps
                else:
                    stamps = (ts0 + (acc0 + nacc + arange(m)) // granularity) & _TS_MASK
                ptr = 0
                delta = 0
                scalar_run = 0
                dirty_hits = 0
                rebuild_at = 32

            if predicted_hit[ptr] and not dirty[set_idx[ptr]]:
                # Vectorized span of clean predicted hits, bounded by
                # the first blocked access (predicted miss or dirtied
                # set), the service deadline (a *pre*-access check
                # against the previous access's time, hence the +1)
                # and the instruction target.
                n_proc = (
                    int(searchsorted(t_arr[ptr:], next_service - delta, "left"))
                    + ptr
                    + 1
                )
                if n_proc > m:
                    n_proc = m
                j_fin = m
                if not fin:
                    j_fin = int(searchsorted(count_arr[ptr:], target, "left")) + ptr
                    if unfinished == 1 and j_fin + 1 < n_proc:
                        n_proc = j_fin + 1
                # First blocked access in [ptr, n_proc), scanned in
                # bounded slabs so a short span never gathers the
                # whole remaining window.
                j = ptr
                while j < n_proc:
                    e = j + _SLAB
                    if e > n_proc:
                        e = n_proc
                    b = ~predicted_hit[j:e] | dirty[set_idx[j:e]]
                    bad = int(argmax(b))
                    if b[bad]:
                        n_proc = j + bad
                        break
                    j = e

                state_np[hit_slot[ptr:n_proc]] = stamps[ptr:n_proc]
                k = n_proc - ptr
                st_acc[0] += k
                st_hit[0] += k
                nacc += k
                count = int(count_arr[n_proc - 1])
                prev_now = now
                if n_proc - 1 > ptr:
                    prev_now = float(t_arr[n_proc - 2] + delta)
                now = float(t_arr[n_proc - 1] + delta)
                if not fin and j_fin < n_proc:
                    fin = True
                    finished_at[0] = now if j_fin == n_proc - 1 else float(
                        t_arr[j_fin] + delta
                    )
                    instructions_at_finish[0] = int(count_arr[j_fin])
                    unfinished -= 1
                    if not unfinished:
                        # Protocol: park at the finishing access's
                        # time, report the pre-access ``now``.
                        times[0] = now
                        now = prev_now if j_fin == n_proc - 1 else now
                        reason = 3
                        break
                ptr = n_proc
                pos += 2 * k
                scalar_run = 0
                if k >= 8:
                    rebuild_at = 32
                continue

            # Scalar access: a predicted miss, or a hit in a dirtied
            # set re-checked against the live tags.  Mirrors the fused
            # sa-LRU / waypart access bodies bitwise.
            if predicted_hit[ptr]:
                # Blocked only by a dirtied set; enough of these means
                # the dirty map is polluting spans -- worth a refresh.
                dirty_hits += 1
            gap = int(gaps[ptr])
            addr = int(addrs[ptr])
            si = int(set_idx[ptr])
            base = si * num_ways
            t = now + gap + 1
            count += gap + 1
            row = tags_np[base : base + num_ways].tolist()
            try:
                way = row.index(addr)
            except ValueError:
                way = -1
            if perfect:
                clock = clock0 + nacc + 1
                cur = clock
            else:
                cur = (ts0 + (acc0 + nacc) // granularity) & _TS_MASK
            nacc += 1
            st_acc[0] += 1
            if way >= 0:
                slot = base + way
                state_np[slot] = cur
                st_hit[0] += 1
                t += hit_latency
            else:
                st_miss[0] += 1
                srow = state_np[base : base + num_ways].tolist()
                slot = -1
                if way_owner is None:
                    if set_free[si]:
                        scanned = 0
                        for w in range(num_ways):
                            scanned += 1
                            if row[w] < 0:
                                slot = base + w
                                break
                        if walk_stats:
                            array.stat_walks += 1
                            array.stat_candidates += scanned
                        set_free[si] -= 1
                    else:
                        if walk_stats:
                            array.stat_walks += 1
                            array.stat_candidates += num_ways
                        if perfect:
                            # PerfectLRUPolicy.select_victim_index:
                            # lowest clock, first of equals.
                            best = 0
                            best_key = srow[0]
                            for w in range(1, num_ways):
                                key = srow[w]
                                if key < best_key:
                                    best_key = key
                                    best = w
                        else:
                            # CoarseLRUPolicy: oldest modulo-256
                            # timestamp, first of equals.
                            best = 0
                            best_key = (cur - srow[0]) & _TS_MASK
                            for w in range(1, num_ways):
                                key = (cur - srow[w]) & _TS_MASK
                                if key > best_key:
                                    best_key = key
                                    best = w
                        slot = base + best
                        owner = part_of[slot]
                        if owner >= 0:
                            st_evict[owner] += 1
                            sizes[owner] -= 1
                        del slot_of[row[best]]
                else:
                    # Way-partitioned: one pass over this partition's
                    # ways -- first empty one, else oldest (first of
                    # equals), exactly as the fused waypart kernel.
                    victim = -1
                    best_key = -1
                    empty = -1
                    for w in range(num_ways):
                        if way_owner[w] != 0:
                            continue
                        if row[w] < 0:
                            empty = base + w
                            break
                        key = (cur - srow[w]) & _TS_MASK
                        if key > best_key:
                            best_key = key
                            victim = base + w
                    if empty >= 0:
                        slot = empty
                        set_free[si] -= 1
                    else:
                        slot = victim
                        owner = part_of[slot]
                        if owner >= 0:
                            st_evict[owner] += 1
                            sizes[owner] -= 1
                        del slot_of[row[slot - base]]
                lookup_tags[slot] = addr
                slot_of[addr] = slot
                if walk_stats:
                    array.stat_installs += 1
                part_of[slot] = 0
                sizes[0] += 1
                state_np[slot] = cur
                # This set's precomputed hit predictions are stale
                # from here on; re-check them scalar.
                dirty[si] = True
                # Inlined MemoryModel.request.
                ctrl = addr % num_controllers
                f = free_at[ctrl]
                start = f if f > t else t
                free_at[ctrl] = start + service_cycles
                queue = start - t
                mem_queue += queue
                mem_requests += 1
                t += hit_latency + (int(queue) + mem_latency)
            if not fin and count >= target:
                fin = True
                finished_at[0] = float(t)
                instructions_at_finish[0] = count
                unfinished -= 1
                if not unfinished:
                    times[0] = float(t)
                    reason = 3
                    break
            delta = int(t) - int(t_arr[ptr])
            now = float(t)
            ptr += 1
            pos += 2
            scalar_run += 1
            if (
                scalar_run >= rebuild_at or dirty_hits >= 64
            ) and m - ptr >= 64:
                # Re-vectorize: refresh the hit predictions against
                # the live tags and clear the dirty map.  Backs off
                # exponentially when the refreshed window is still
                # blocked at the cursor (miss-heavy stretches), so a
                # pure-scan phase degrades to the scalar burst loop
                # instead of paying O(window) per rebuild.
                hw = tags2d[set_idx[ptr:]] == addrs[ptr:, None]
                predicted_hit[ptr:] = hw.any(axis=1)
                hit_slot[ptr:] = set_idx[ptr:] * num_ways + argmax(hw, axis=1)
                dirty[:] = False
                rebuild_at = 32 if predicted_hit[ptr] else rebuild_at * 2
                scalar_run = 0
                dirty_hits = 0

        positions[0] = pos
        instructions[0] = count
        if reason != 3:
            times[0] = now
        if perfect:
            policy._clock = clock0 + nacc
        else:
            total = acc0 + nacc
            policy.current_ts = (ts0 + total // granularity) & _TS_MASK
            policy._accesses = total % granularity
        memory.requests = mem_requests
        memory.total_queue_cycles = mem_queue
        return now, unfinished, reason, 0

    kernel.chunk_arrays = True
    kernel.vectorized = True
    return kernel
