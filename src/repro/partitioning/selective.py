"""Selective cache allocation (CQoS, Iyer 2004) [10].

The earliest of the "soft partitioning by controlling insertion"
schemes Table 1 groups as policy-based: each partition gets an
insertion probability ``p``; a missing line is inserted with
probability ``p`` and *bypassed* (self-replaced) otherwise.  Capacity
control is indirect -- lowering ``p`` throttles a partition's churn --
and there are no guarantees on sizes or interference, which is exactly
the contrast with Vantage the paper draws.

Included as a reference rival: it completes Table 1's design space and
serves as an ablation for "probability-based" versus "churn-matched"
capacity control.
"""

from __future__ import annotations

import random

from repro.arrays.base import CacheArray
from repro.partitioning.base_cache import PartitionedCache
from repro.replacement.base import ReplacementPolicy
from repro.replacement.lru import CoarseLRUPolicy


class SelectiveAllocationCache(PartitionedCache):
    """Probabilistic-insertion cache (selective allocation).

    ``set_allocations`` takes per-partition insertion probabilities in
    parts-per-1024 (an integer hardware-friendly encoding); 1024 means
    always insert.
    """

    allocation_unit = "probability/1024"

    def __init__(
        self,
        array: CacheArray,
        num_partitions: int,
        policy: ReplacementPolicy | None = None,
        seed: int = 0,
    ):
        super().__init__(array, num_partitions)
        self.policy = policy if policy is not None else CoarseLRUPolicy(array.num_lines)
        self._prob = [1024] * num_partitions
        self._rng = random.Random(seed)
        self.bypasses = [0] * num_partitions

    @property
    def allocation_total(self) -> int:
        return 1024

    def set_allocations(self, units: list[int]) -> None:
        if len(units) != self.num_partitions:
            raise ValueError("allocation vector length mismatch")
        if any(not 0 <= u <= 1024 for u in units):
            raise ValueError("insertion probabilities must be in [0, 1024]")
        self._prob = list(units)

    def insertion_probability(self, part: int) -> float:
        return self._prob[part] / 1024

    def access(self, addr: int, part: int = 0) -> bool:
        array = self.array
        slot = array.lookup(addr)
        if slot is not None:
            self.policy.on_hit(slot, part, addr)
            self._record_access(part, hit=True)
            return True

        self._record_access(part, hit=False)
        if self._rng.random() >= self.insertion_probability(part):
            # Bypass: the line is serviced from memory but not cached.
            self.bypasses[part] += 1
            return False
        candidates = array.candidates(addr)
        victim = self._first_empty(candidates)
        if victim is None:
            victim = self.policy.select_victim(candidates)
            self._evict_bookkeeping(victim)
        moves = array.install(addr, victim)
        for src, dst in moves:
            self.policy.on_move(src, dst)
        landing = self._install_bookkeeping(addr, part, victim, moves)
        self.policy.on_insert(landing, part, addr)
        return False
