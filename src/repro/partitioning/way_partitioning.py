"""Way-partitioning (column caching) [Chiou et al., DAC 2000].

Each partition is assigned a subset of the ways; a miss from partition
``p`` may only evict from (and install into) ``p``'s ways, which gives
strict capacity guarantees at way granularity but reduces each
partition's associativity to its way count -- the central weakness the
paper's evaluation exposes at 32 cores.

Re-assigning ways does not move data: a way handed from partition A to
partition B still holds A's lines until B's misses evict them lazily,
which is why Figure 8a shows way-partitioning taking ~100 Mcycles to
converge after a downsize.  We reproduce that behaviour faithfully.
"""

from __future__ import annotations

from repro.arrays.base import Candidate
from repro.arrays.set_assoc import SetAssociativeArray
from repro.partitioning.base_cache import PartitionedCache
from repro.replacement.base import ReplacementPolicy
from repro.replacement.lru import CoarseLRUPolicy


class WayPartitionedCache(PartitionedCache):
    """Strict way-partitioned set-associative cache.

    Parameters
    ----------
    array:
        Must be a :class:`SetAssociativeArray`; way-partitioning is
        meaningless on skewed arrays, where a way is indexed by a
        different hash per way.
    num_partitions:
        Partition count; must not exceed the number of ways.
    policy:
        Replacement policy ranking lines *within* a partition's ways
        (LRU by default, as in the paper's comparison).
    """

    allocation_unit = "ways"

    def __init__(
        self,
        array: SetAssociativeArray,
        num_partitions: int,
        policy: ReplacementPolicy | None = None,
        shared_policy: str | None = None,
    ):
        if not isinstance(array, SetAssociativeArray):
            raise TypeError("way-partitioning requires a set-associative array")
        if num_partitions > array.num_ways:
            raise ValueError(
                f"cannot hold {num_partitions} partitions with only "
                f"{array.num_ways} ways"
            )
        super().__init__(array, num_partitions, shared_policy=shared_policy)
        self.policy = policy if policy is not None else CoarseLRUPolicy(array.num_lines)
        # Start with an equal split (every way assigned to someone).
        base, extra = divmod(array.num_ways, num_partitions)
        self._way_counts = [base + (1 if p < extra else 0) for p in range(num_partitions)]
        self._way_owner = self._assign_ways(self._way_counts)
        if type(self) is WayPartitionedCache:
            self._install_fused()

    @property
    def allocation_total(self) -> int:
        return self.array.num_ways

    def ways_of(self, part: int) -> list[int]:
        """Way indices currently assigned to ``part``."""
        return [w for w, owner in enumerate(self._way_owner) if owner == part]

    def set_allocations(self, units: list[int]) -> None:
        if len(units) != self.num_partitions:
            raise ValueError("allocation vector length mismatch")
        if any(u < 1 for u in units):
            raise ValueError("way-partitioning requires at least one way per partition")
        if sum(units) != self.array.num_ways:
            raise ValueError(
                f"way allocations must sum to {self.array.num_ways}, got {sum(units)}"
            )
        # In place: the fused access kernel captures both lists, and
        # UCP reallocates every epoch.
        self._way_counts[:] = units
        self._way_owner[:] = self._assign_ways(units)

    @staticmethod
    def _assign_ways(counts: list[int]) -> list[int]:
        owner: list[int] = []
        for part, count in enumerate(counts):
            owner.extend([part] * count)
        return owner

    def access(self, addr: int, part: int = 0) -> bool:
        array = self.array
        slot = array.lookup(addr)
        if slot is not None:
            self.policy.on_hit(slot, part, addr)
            self._record_access(part, hit=True)
            if self._shared_code and self.part_of[slot] != part:
                # Ownership here is attribution only: the line stays
                # in the way its installer owned (ways, not lines, are
                # the partitioning unit).
                self._shared_hit(slot, part)
            return True

        self._record_access(part, hit=False)
        owner = self._way_owner
        mine = [c for c in array.candidates(addr) if owner[c.way] == part]
        # At least one way belongs to every partition, so `mine` is
        # never empty.
        victim = self._first_empty(mine)
        if victim is None:
            victim = self.policy.select_victim(mine)
            self._evict_bookkeeping(victim)
        moves = array.install(addr, victim)
        landing = self._install_bookkeeping(addr, part, victim, moves)
        self.policy.on_insert(landing, part, addr)
        return False

    def register_stats(self, group) -> None:
        super().register_stats(group)
        w = group.group("waypart", "way-partitioning state")
        w.stat(
            "way_counts",
            lambda: list(self._way_counts),
            "per-partition assigned way counts",
        )
        if hasattr(self.policy, "register_stats"):
            self.policy.register_stats(
                group.group("replacement", "intra-partition policy")
            )
