"""Scheme-property matrix (the paper's Table 1).

Each partitioning scheme advertises the qualitative properties Table 1
compares; the ``table1`` benchmark prints the matrix so the claims stay
attached to the code that embodies them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SchemeCapabilities:
    """One row of Table 1."""

    name: str
    scalable_fine_grain: str
    maintains_associativity: str
    efficient_resizing: str
    strict_sizes_isolation: str
    independent_of_replacement: str
    hardware_cost: str
    partitions_whole_cache: str


TABLE1_COLUMNS = (
    "Scheme",
    "Scalable & fine-grain",
    "Maintains associativity",
    "Efficient resizing",
    "Strict sizes & isolation",
    "Indep. of repl. policy",
    "Hardware cost",
    "Partitions whole cache",
)

TABLE1_ROWS = (
    SchemeCapabilities(
        name="Way-partitioning [3, 20]",
        scalable_fine_grain="No",
        maintains_associativity="No",
        efficient_resizing="Yes",
        strict_sizes_isolation="Yes",
        independent_of_replacement="Yes",
        hardware_cost="Low",
        partitions_whole_cache="Yes",
    ),
    SchemeCapabilities(
        name="Set-partitioning [20, 25]",
        scalable_fine_grain="No",
        maintains_associativity="Yes",
        efficient_resizing="No",
        strict_sizes_isolation="Yes",
        independent_of_replacement="Yes",
        hardware_cost="High",
        partitions_whole_cache="Yes",
    ),
    SchemeCapabilities(
        name="Page coloring [14]",
        scalable_fine_grain="No",
        maintains_associativity="Yes",
        efficient_resizing="No",
        strict_sizes_isolation="Yes",
        independent_of_replacement="Yes",
        hardware_cost="None (SW)",
        partitions_whole_cache="Yes",
    ),
    SchemeCapabilities(
        name="Ins/repl policy-based [10, 26, 27]",
        scalable_fine_grain="Sometimes",
        maintains_associativity="Sometimes",
        efficient_resizing="Yes",
        strict_sizes_isolation="No",
        independent_of_replacement="No",
        hardware_cost="Low",
        partitions_whole_cache="Yes",
    ),
    SchemeCapabilities(
        name="Vantage",
        scalable_fine_grain="Yes",
        maintains_associativity="Yes",
        efficient_resizing="Yes",
        strict_sizes_isolation="Yes",
        independent_of_replacement="Yes",
        hardware_cost="Low",
        partitions_whole_cache="No (most)",
    ),
)


def format_table1() -> str:
    """Render Table 1 as an aligned text table."""
    rows = [TABLE1_COLUMNS]
    for cap in TABLE1_ROWS:
        rows.append(
            (
                cap.name,
                cap.scalable_fine_grain,
                cap.maintains_associativity,
                cap.efficient_resizing,
                cap.strict_sizes_isolation,
                cap.independent_of_replacement,
                cap.hardware_cost,
                cap.partitions_whole_cache,
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(TABLE1_COLUMNS))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
