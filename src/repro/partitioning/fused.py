"""Fused access kernels for the non-Vantage cache front-ends.

Each builder returns a closure replacing ``cache.access`` with the hit
detection, policy update, victim selection and install bookkeeping of
one (array geometry, replacement policy) pair fused into a single
function: no ``Candidate`` construction, no per-access method dispatch
through the ``PartitionedCache``/``ReplacementPolicy`` seams, and all
hot state (tag column, policy state column, owner column, stats
counters) captured as closure cells.

Behaviour is pinned bitwise-identical to the object-oriented access
methods they shadow -- the same stats counters, the same RNG draws,
the same telemetry bumps -- which ``REPRO_FUSED=0`` (running the
object path) and the parity tests enforce.  Builders return ``None``
for combinations without a kernel; those caches simply keep the
object path.

This module must not import ``repro.core`` (the Vantage kernels live
in ``repro.core.fused``); it is imported for its registration side
effects at the end of ``repro.partitioning.__init__``.
"""

from __future__ import annotations

from repro.arrays.base import CacheArray
from repro.arrays.set_assoc import SetAssociativeArray
from repro.partitioning.base_cache import (
    NO_PART,
    BaselineCache,
    register_batch_kernel,
    register_fused_kernel,
    scheduler_cells,
)
from repro.partitioning.pipp import STREAM_WAYS, PIPPCache
from repro.partitioning.way_partitioning import WayPartitionedCache
from repro.replacement.base import ReplacementPolicy, SlotStatePolicy
from repro.replacement.lru import TIMESTAMP_MOD, CoarseLRUPolicy, PerfectLRUPolicy
from repro.replacement.other import LFU_MAX, LFUPolicy
from repro.replacement.rrip import RRPV_MAX, SRRIPPolicy, _RRIPBase

_TS_MASK = TIMESTAMP_MOD - 1


@register_fused_kernel(BaselineCache)
def build_baseline_kernel(cache: BaselineCache):
    array = cache.array
    policy = cache.policy
    if type(array) is SetAssociativeArray and type(policy) is CoarseLRUPolicy:
        return _baseline_sa_lru_kernel(cache, array, policy)
    if type(array).candidate_slots is CacheArray.candidate_slots:
        # No fast-path walk: keep the Candidate-list object path.
        return None
    if type(policy).select_victim_index is ReplacementPolicy.select_victim_index:
        # Policy without an index-based victim scan: object path.
        return None
    return _baseline_generic_kernel(cache, array, policy)


def _baseline_sa_lru_kernel(cache, array, policy):
    """BaselineCache on a set-associative array with coarse LRU, fully
    inlined: the single hottest baseline configuration (LRU-SA16)."""
    lookup = array._slot_of.get
    slot_of = array._slot_of
    tags = array._tags
    set_index = array.set_index
    set_free = array._set_free
    num_ways = array.num_ways
    state = policy.state
    granularity = policy._granularity
    part_of = cache.part_of
    sizes = cache._sizes
    # Shared-region bookkeeping (0 = off).  _shared_hit stays a bound
    # call: it only mutates live cache state, none of which this
    # kernel hoists as scalars.
    shared_code = cache._shared_code
    shared_hit = cache._shared_hit
    touched_by = cache.touched_by
    st = cache.stats
    st_acc = st.accesses
    st_hit = st.hits
    st_miss = st.misses
    st_evict = st.evictions
    collect = array._collect

    def access(addr: int, part: int = 0) -> bool:
        slot = lookup(addr)
        if slot is not None:
            # CoarseLRUPolicy.on_hit: stamp + global tick.
            state[slot] = policy.current_ts
            acc = policy._accesses + 1
            if acc >= granularity:
                policy._accesses = 0
                policy.current_ts = (policy.current_ts + 1) & _TS_MASK
            else:
                policy._accesses = acc
            st_acc[part] += 1
            st_hit[part] += 1
            if shared_code and part_of[slot] != part:
                shared_hit(slot, part)
            return True

        st_acc[part] += 1
        st_miss[part] += 1
        si = set_index(addr)
        base = si * num_ways
        if set_free[si]:
            # candidate_slots stops at (and installs into) the first
            # empty way.
            scanned = 0
            slot = -1
            for s in range(base, base + num_ways):
                scanned += 1
                if tags[s] < 0:
                    slot = s
                    break
            if collect:
                array.stat_walks += 1
                array.stat_candidates += scanned
            tags[slot] = addr
            slot_of[addr] = slot
            set_free[si] -= 1
        else:
            if collect:
                array.stat_walks += 1
                array.stat_candidates += num_ways
            # CoarseLRUPolicy.select_victim_index: oldest timestamp,
            # first of equals.
            cur = policy.current_ts
            slot = base
            best_age = (cur - state[base]) & _TS_MASK
            for s in range(base + 1, base + num_ways):
                age = (cur - state[s]) & _TS_MASK
                if age > best_age:
                    best_age = age
                    slot = s
            owner = part_of[slot]
            if owner >= 0:
                hook = cache.eviction_hook
                if hook is not None:
                    hook(slot, owner)
                st_evict[owner] += 1
                sizes[owner] -= 1
            del slot_of[tags[slot]]
            tags[slot] = addr
            slot_of[addr] = slot
        if collect:
            array.stat_installs += 1
        part_of[slot] = part
        if shared_code:
            touched_by[slot] = 1 << part
        sizes[part] += 1
        # CoarseLRUPolicy.on_insert: stamp + tick.
        state[slot] = policy.current_ts
        acc = policy._accesses + 1
        if acc >= granularity:
            policy._accesses = 0
            policy.current_ts = (policy.current_ts + 1) & _TS_MASK
        else:
            policy._accesses = acc
        return False

    return access


def _baseline_generic_kernel(cache, array, policy):
    """BaselineCache on any fast-path array (zcache, skew, sa) with
    any indexed policy: hit/insert updates are inlined for the common
    policy classes, victim selection stays a bound policy call."""
    lookup = array._slot_of.get
    candidate_slots = array.candidate_slots
    install_walk = array.install_walk
    moves_buf = array._install_moves
    state = policy.state if isinstance(policy, SlotStatePolicy) else None
    pol_cls = type(policy)
    select_index = policy.select_victim_index

    # Hit dispatch: inline the per-policy state bump when the policy
    # keeps the stock implementation, otherwise call through.
    lru_hit = pol_cls is CoarseLRUPolicy
    plru_hit = pol_cls is PerfectLRUPolicy
    rrip_hit = pol_cls.on_hit is _RRIPBase.on_hit
    lfu_hit = pol_cls is LFUPolicy
    on_hit = policy.on_hit
    # Insert dispatch: only the unconditional stamps are inlined
    # (BRRIP/DRRIP draw RNG and vote; the bound call keeps them exact).
    lru_insert = pol_cls is CoarseLRUPolicy
    plru_insert = pol_cls is PerfectLRUPolicy
    srrip_insert = pol_cls is SRRIPPolicy
    on_insert = policy.on_insert
    # Relocation dispatch: SlotStatePolicy.on_move is a plain state
    # copy; subclasses that override it get the bound call.
    plain_move = pol_cls.on_move is SlotStatePolicy.on_move and state is not None
    on_move = policy.on_move

    granularity = getattr(policy, "_granularity", 1)
    part_of = cache.part_of
    sizes = cache._sizes
    shared_code = cache._shared_code
    shared_hit = cache._shared_hit
    touched_by = cache.touched_by
    st = cache.stats
    st_acc = st.accesses
    st_hit = st.hits
    st_miss = st.misses
    st_evict = st.evictions

    def access(addr: int, part: int = 0) -> bool:
        slot = lookup(addr)
        if slot is not None:
            if lru_hit:
                state[slot] = policy.current_ts
                acc = policy._accesses + 1
                if acc >= granularity:
                    policy._accesses = 0
                    policy.current_ts = (policy.current_ts + 1) & _TS_MASK
                else:
                    policy._accesses = acc
            elif rrip_hit:
                state[slot] = 0
            elif plru_hit:
                clock = policy._clock + 1
                policy._clock = clock
                state[slot] = clock
            elif lfu_hit:
                if state[slot] < LFU_MAX:
                    state[slot] += 1
            else:
                on_hit(slot, part, addr)
            st_acc[part] += 1
            st_hit[part] += 1
            if shared_code and part_of[slot] != part:
                shared_hit(slot, part)
            return True

        st_acc[part] += 1
        st_miss[part] += 1
        slots, parents, has_empty = candidate_slots(addr)
        if has_empty:
            index = len(slots) - 1
        else:
            index = select_index(slots)
            vslot = slots[index]
            if shared_code:
                touched_by[vslot] = 0
            owner = part_of[vslot]
            if owner >= 0:
                hook = cache.eviction_hook
                if hook is not None:
                    hook(vslot, owner)
                st_evict[owner] += 1
                sizes[owner] -= 1
                part_of[vslot] = NO_PART
        landing = install_walk(addr, slots, parents, index)
        if moves_buf:
            for k in range(0, len(moves_buf), 2):
                src = moves_buf[k]
                dst = moves_buf[k + 1]
                if plain_move:
                    state[dst] = state[src]
                else:
                    on_move(src, dst)
                part_of[dst] = part_of[src]
                part_of[src] = NO_PART
                if shared_code:
                    touched_by[dst] = touched_by[src]
                    touched_by[src] = 0
        part_of[landing] = part
        if shared_code:
            touched_by[landing] = 1 << part
        sizes[part] += 1
        if lru_insert:
            state[landing] = policy.current_ts
            acc = policy._accesses + 1
            if acc >= granularity:
                policy._accesses = 0
                policy.current_ts = (policy.current_ts + 1) & _TS_MASK
            else:
                policy._accesses = acc
        elif srrip_insert:
            state[landing] = RRPV_MAX - 1
        elif plru_insert:
            clock = policy._clock + 1
            policy._clock = clock
            state[landing] = clock
        else:
            on_insert(landing, part, addr)
        return False

    return access


@register_fused_kernel(WayPartitionedCache)
def build_waypart_kernel(cache: WayPartitionedCache):
    array = cache.array
    policy = cache.policy
    if type(array) is not SetAssociativeArray or type(policy) is not CoarseLRUPolicy:
        return None

    lookup = array._slot_of.get
    slot_of = array._slot_of
    tags = array._tags
    set_index = array.set_index
    set_free = array._set_free
    num_ways = array.num_ways
    state = policy.state
    granularity = policy._granularity
    way_owner = cache._way_owner
    part_of = cache.part_of
    sizes = cache._sizes
    shared_code = cache._shared_code
    shared_hit = cache._shared_hit
    touched_by = cache.touched_by
    st = cache.stats
    st_acc = st.accesses
    st_hit = st.hits
    st_miss = st.misses
    st_evict = st.evictions
    collect = array._collect

    def access(addr: int, part: int = 0) -> bool:
        slot = lookup(addr)
        if slot is not None:
            state[slot] = policy.current_ts
            acc = policy._accesses + 1
            if acc >= granularity:
                policy._accesses = 0
                policy.current_ts = (policy.current_ts + 1) & _TS_MASK
            else:
                policy._accesses = acc
            st_acc[part] += 1
            st_hit[part] += 1
            if shared_code and part_of[slot] != part:
                shared_hit(slot, part)
            return True

        st_acc[part] += 1
        st_miss[part] += 1
        base = set_index(addr) * num_ways
        # One pass over this partition's ways: install into the first
        # empty one (the object path's _first_empty over the filtered
        # candidate list), else evict the oldest (first of equals).
        cur = policy.current_ts
        victim = -1
        best_age = -1
        empty = -1
        for way in range(num_ways):
            if way_owner[way] != part:
                continue
            s = base + way
            if tags[s] < 0:
                empty = s
                break
            age = (cur - state[s]) & _TS_MASK
            if age > best_age:
                best_age = age
                victim = s
        if empty >= 0:
            slot = empty
            tags[slot] = addr
            slot_of[addr] = slot
            set_free[base // num_ways] -= 1
        else:
            slot = victim
            owner = part_of[slot]
            if owner >= 0:
                hook = cache.eviction_hook
                if hook is not None:
                    hook(slot, owner)
                st_evict[owner] += 1
                sizes[owner] -= 1
            del slot_of[tags[slot]]
            tags[slot] = addr
            slot_of[addr] = slot
        if collect:
            array.stat_installs += 1
        part_of[slot] = part
        if shared_code:
            touched_by[slot] = 1 << part
        sizes[part] += 1
        state[slot] = policy.current_ts
        acc = policy._accesses + 1
        if acc >= granularity:
            policy._accesses = 0
            policy.current_ts = (policy.current_ts + 1) & _TS_MASK
        else:
            policy._accesses = acc
        return False

    return access


@register_fused_kernel(PIPPCache)
def build_pipp_kernel(cache: PIPPCache):
    array = cache.array

    lookup = array._slot_of.get
    slot_of = array._slot_of
    tags = array._tags
    set_index = array.set_index
    set_free = array._set_free
    num_ways = array.num_ways
    rng_random = cache._rng.random
    p_prom = cache.p_prom
    p_stream = cache.p_stream
    streaming = cache.streaming
    alloc_ways = cache._alloc_ways
    chains = cache._chains
    pos_of = cache._pos_of
    promotions = cache.promotions
    win_accesses = cache._win_accesses
    win_misses = cache._win_misses
    part_of = cache.part_of
    sizes = cache._sizes
    shared_code = cache._shared_code
    shared_hit = cache._shared_hit
    touched_by = cache.touched_by
    st = cache.stats
    st_acc = st.accesses
    st_hit = st.hits
    st_miss = st.misses
    st_evict = st.evictions
    collect = array._collect

    def access(addr: int, part: int = 0) -> bool:
        win_accesses[part] += 1
        slot = lookup(addr)
        if slot is not None:
            st_acc[part] += 1
            st_hit[part] += 1
            # Single-step chain promotion with probability p_prom
            # (p_stream for streaming partitions): exactly one RNG
            # draw per hit, like the object path.
            if rng_random() < (p_stream if streaming[part] else p_prom):
                promotions[part] += 1
                chain = chains[slot // num_ways]
                i = pos_of[slot]
                if i + 1 < len(chain):
                    other = chain[i + 1]
                    chain[i] = other
                    chain[i + 1] = slot
                    pos_of[other] = i
                    pos_of[slot] = i + 1
            if shared_code and part_of[slot] != part:
                shared_hit(slot, part)
            return True

        st_acc[part] += 1
        st_miss[part] += 1
        win_misses[part] += 1
        si = set_index(addr)
        chain = chains[si]
        base = si * num_ways
        if set_free[si]:
            slot = -1
            for s in range(base, base + num_ways):
                if tags[s] < 0:
                    slot = s
                    break
            tags[slot] = addr
            slot_of[addr] = slot
            set_free[si] -= 1
        else:
            # The victim is always the LRU end of the set's chain.
            slot = chain[0]
            owner = part_of[slot]
            if owner >= 0:
                hook = cache.eviction_hook
                if hook is not None:
                    hook(slot, owner)
                st_evict[owner] += 1
                sizes[owner] -= 1
            # _chain_pop_lru, inlined.
            del chain[0]
            pos_of[slot] = -1
            for i in range(len(chain)):
                pos_of[chain[i]] = i
            del slot_of[tags[slot]]
            tags[slot] = addr
            slot_of[addr] = slot
        if collect:
            array.stat_installs += 1
        part_of[slot] = part
        if shared_code:
            touched_by[slot] = 1 << part
        sizes[part] += 1
        # _chain_insert at the partition's insertion position.
        index = STREAM_WAYS if streaming[part] else alloc_ways[part]
        if index > len(chain):
            index = len(chain)
        chain.insert(index, slot)
        for i in range(index, len(chain)):
            pos_of[chain[i]] = i
        return False

    return access


# ----------------------------------------------------------------------
# Batch scheduling kernels (mega-kernel protocol).
# ----------------------------------------------------------------------
#
# Each builder returns a kernel that runs the *whole* multi-core event
# loop -- core selection (two-minimum scan or heap), chunk cursors,
# timing, L1 filtering, policy observation, the cache access body and
# finish bookkeeping -- in one Python frame, returning only at
# boundaries the event loop itself must handle (see
# ``PartitionedCache.build_batch_kernel`` for the protocol).  The
# access bodies are verbatim copies of the fused closures above with
# the policy tick registers and the memory-model counters hoisted into
# frame locals and flushed before every return.

import heapq as _heapq

_INF = float("inf")
_heappush = _heapq.heappush
_heappop = _heapq.heappop


@register_batch_kernel(BaselineCache)
def build_baseline_batch(cache: BaselineCache, ctx):
    array = cache.array
    policy = cache.policy
    if type(array) is SetAssociativeArray and type(policy) is CoarseLRUPolicy:
        return _baseline_sa_lru_batch(cache, array, policy, ctx)
    if type(array).candidate_slots is CacheArray.candidate_slots:
        return None
    if type(policy).select_victim_index is ReplacementPolicy.select_victim_index:
        return None
    return _baseline_generic_batch(cache, array, policy, ctx)


def _baseline_sa_lru_batch(cache, array, policy, ctx):
    """Whole-loop kernel for BaselineCache on a set-associative array
    with coarse LRU.  The policy's tick registers (``current_ts`` /
    ``_accesses``) are cache-global and nothing outside the access
    body reads them mid-run, so they are hoisted across the whole
    kernel call."""
    (
        hit_latency, memory, num_controllers, mem_latency, service_cycles,
        free_at, observe, sample_gets, observed, mon_accesses, l1_accesses,
        collect, l1_hits, num_cores, target, bufs, positions, limits,
        instructions, finished_at, instructions_at_finish, times, heap,
        batched,
    ) = scheduler_cells(ctx)
    heappush = _heappush
    heappop = _heappop
    inf = _INF

    lookup = array._slot_of.get
    slot_of = array._slot_of
    tags = array._tags
    set_index = array.set_index
    set_free = array._set_free
    num_ways = array.num_ways
    state = policy.state
    granularity = policy._granularity
    part_of = cache.part_of
    sizes = cache._sizes
    # _shared_hit stays a bound call: it never touches the hoisted
    # policy tick registers, only live cache state.
    shared_code = cache._shared_code
    shared_hit = cache._shared_hit
    touched_by = cache.touched_by
    st = cache.stats
    st_acc = st.accesses
    st_hit = st.hits
    st_miss = st.misses
    st_evict = st.evictions
    walk_stats = array._collect

    def kernel(next_service, unfinished):
        cur_ts = policy.current_ts
        accs = policy._accesses
        mem_requests = memory.requests
        mem_queue = memory.total_queue_cycles
        while True:
            # -- select the next core: two-minimum scan or heap pop.
            if heap is None:
                now = times[0]
                cid = 0
                second = inf
                scid = 0
                for i in range(1, num_cores):
                    ti = times[i]
                    if ti < now:
                        second = now
                        scid = cid
                        now = ti
                        cid = i
                    elif ti < second:
                        second = ti
                        scid = i
            else:
                now, cid = heappop(heap)
                head = heap[0]
                second = head[0]
                scid = head[1]
            if not batched[cid]:
                if heap is not None:
                    heappush(heap, (now, cid))
                reason = 4
                break
            pos = positions[cid]
            limit = limits[cid]
            buf = bufs[cid]
            count = instructions[cid]
            fin = finished_at[cid] is not None
            l1a = l1_accesses[cid] if l1_accesses is not None else None
            if sample_gets is not None:
                sget = sample_gets[cid]
                macc = mon_accesses[cid]
            else:
                sget = None
            reason = 0
            while True:
                if now >= next_service:
                    reason = 1
                    break
                if pos >= limit:
                    reason = 2
                    break
                gap = buf[pos]
                addr = buf[pos + 1]
                pos += 2
                count += gap + 1
                t = now + gap + 1
                if l1a is not None and l1a(addr):
                    # L1 hit: fully pipelined, no stall.
                    if collect:
                        l1_hits[cid] += 1
                else:
                    if sget is not None:
                        if sget(addr, -1) is not None:
                            observed[cid] += 1
                            macc(addr)
                    elif observe is not None:
                        observe(cid, addr)
                    slot = lookup(addr)
                    if slot is not None:
                        state[slot] = cur_ts
                        accs += 1
                        if accs >= granularity:
                            accs = 0
                            cur_ts = (cur_ts + 1) & _TS_MASK
                        st_acc[cid] += 1
                        st_hit[cid] += 1
                        if shared_code and part_of[slot] != cid:
                            shared_hit(slot, cid)
                        t += hit_latency
                    else:
                        st_acc[cid] += 1
                        st_miss[cid] += 1
                        si = set_index(addr)
                        base = si * num_ways
                        if set_free[si]:
                            scanned = 0
                            slot = -1
                            for s in range(base, base + num_ways):
                                scanned += 1
                                if tags[s] < 0:
                                    slot = s
                                    break
                            if walk_stats:
                                array.stat_walks += 1
                                array.stat_candidates += scanned
                            tags[slot] = addr
                            slot_of[addr] = slot
                            set_free[si] -= 1
                        else:
                            if walk_stats:
                                array.stat_walks += 1
                                array.stat_candidates += num_ways
                            slot = base
                            best_age = (cur_ts - state[base]) & _TS_MASK
                            for s in range(base + 1, base + num_ways):
                                age = (cur_ts - state[s]) & _TS_MASK
                                if age > best_age:
                                    best_age = age
                                    slot = s
                            owner = part_of[slot]
                            if owner >= 0:
                                st_evict[owner] += 1
                                sizes[owner] -= 1
                            del slot_of[tags[slot]]
                            tags[slot] = addr
                            slot_of[addr] = slot
                        if walk_stats:
                            array.stat_installs += 1
                        part_of[slot] = cid
                        if shared_code:
                            touched_by[slot] = 1 << cid
                        sizes[cid] += 1
                        state[slot] = cur_ts
                        accs += 1
                        if accs >= granularity:
                            accs = 0
                            cur_ts = (cur_ts + 1) & _TS_MASK
                        # MemoryModel.request, inlined.
                        ctrl = addr % num_controllers
                        f = free_at[ctrl]
                        start = f if f > t else t
                        free_at[ctrl] = start + service_cycles
                        queue = start - t
                        mem_queue += queue
                        mem_requests += 1
                        t += hit_latency + (queue + mem_latency)
                if not fin and count >= target:
                    fin = True
                    finished_at[cid] = t
                    instructions_at_finish[cid] = count
                    unfinished -= 1
                    if not unfinished:
                        reason = 3
                        break
                if t < second or (t == second and cid < scid):
                    now = t
                    continue
                break
            positions[cid] = pos
            instructions[cid] = count
            if reason == 0 or reason == 3:
                if heap is None:
                    times[cid] = t
                else:
                    heappush(heap, (t, cid))
                if reason == 0:
                    continue
            elif heap is None:
                times[cid] = now
            else:
                heappush(heap, (now, cid))
            break
        policy.current_ts = cur_ts
        policy._accesses = accs
        memory.requests = mem_requests
        memory.total_queue_cycles = mem_queue
        return now, unfinished, reason, cid

    # Every exit parks the in-flight core's cursor and time, so
    # the event loop (and the fast-forward layer) may stop the
    # kernel at any boundary and re-enter without state loss.
    kernel.parks_state = True
    return kernel


def _baseline_generic_batch(cache, array, policy, ctx):
    """Whole-loop kernel for BaselineCache on any fast-path array with
    any indexed policy.  The policy's tick registers are *not* hoisted:
    ``select_victim_index`` stays a bound call and may read
    ``current_ts`` mid-event (coarse LRU ages against it)."""
    (
        hit_latency, memory, num_controllers, mem_latency, service_cycles,
        free_at, observe, sample_gets, observed, mon_accesses, l1_accesses,
        collect, l1_hits, num_cores, target, bufs, positions, limits,
        instructions, finished_at, instructions_at_finish, times, heap,
        batched,
    ) = scheduler_cells(ctx)
    heappush = _heappush
    heappop = _heappop
    inf = _INF

    lookup = array._slot_of.get
    candidate_slots = array.candidate_slots
    install_walk = array.install_walk
    moves_buf = array._install_moves
    state = policy.state if isinstance(policy, SlotStatePolicy) else None
    pol_cls = type(policy)
    select_index = policy.select_victim_index

    lru_hit = pol_cls is CoarseLRUPolicy
    plru_hit = pol_cls is PerfectLRUPolicy
    rrip_hit = pol_cls.on_hit is _RRIPBase.on_hit
    lfu_hit = pol_cls is LFUPolicy
    on_hit = policy.on_hit
    lru_insert = pol_cls is CoarseLRUPolicy
    plru_insert = pol_cls is PerfectLRUPolicy
    srrip_insert = pol_cls is SRRIPPolicy
    on_insert = policy.on_insert
    plain_move = pol_cls.on_move is SlotStatePolicy.on_move and state is not None
    on_move = policy.on_move

    granularity = getattr(policy, "_granularity", 1)
    part_of = cache.part_of
    sizes = cache._sizes
    shared_code = cache._shared_code
    shared_hit = cache._shared_hit
    touched_by = cache.touched_by
    st = cache.stats
    st_acc = st.accesses
    st_hit = st.hits
    st_miss = st.misses
    st_evict = st.evictions

    def kernel(next_service, unfinished):
        mem_requests = memory.requests
        mem_queue = memory.total_queue_cycles
        while True:
            if heap is None:
                now = times[0]
                cid = 0
                second = inf
                scid = 0
                for i in range(1, num_cores):
                    ti = times[i]
                    if ti < now:
                        second = now
                        scid = cid
                        now = ti
                        cid = i
                    elif ti < second:
                        second = ti
                        scid = i
            else:
                now, cid = heappop(heap)
                head = heap[0]
                second = head[0]
                scid = head[1]
            if not batched[cid]:
                if heap is not None:
                    heappush(heap, (now, cid))
                reason = 4
                break
            pos = positions[cid]
            limit = limits[cid]
            buf = bufs[cid]
            count = instructions[cid]
            fin = finished_at[cid] is not None
            l1a = l1_accesses[cid] if l1_accesses is not None else None
            if sample_gets is not None:
                sget = sample_gets[cid]
                macc = mon_accesses[cid]
            else:
                sget = None
            reason = 0
            while True:
                if now >= next_service:
                    reason = 1
                    break
                if pos >= limit:
                    reason = 2
                    break
                gap = buf[pos]
                addr = buf[pos + 1]
                pos += 2
                count += gap + 1
                t = now + gap + 1
                if l1a is not None and l1a(addr):
                    # L1 hit: fully pipelined, no stall.
                    if collect:
                        l1_hits[cid] += 1
                else:
                    if sget is not None:
                        if sget(addr, -1) is not None:
                            observed[cid] += 1
                            macc(addr)
                    elif observe is not None:
                        observe(cid, addr)
                    slot = lookup(addr)
                    if slot is not None:
                        if lru_hit:
                            state[slot] = policy.current_ts
                            acc = policy._accesses + 1
                            if acc >= granularity:
                                policy._accesses = 0
                                policy.current_ts = (
                                    policy.current_ts + 1
                                ) & _TS_MASK
                            else:
                                policy._accesses = acc
                        elif rrip_hit:
                            state[slot] = 0
                        elif plru_hit:
                            clock = policy._clock + 1
                            policy._clock = clock
                            state[slot] = clock
                        elif lfu_hit:
                            if state[slot] < LFU_MAX:
                                state[slot] += 1
                        else:
                            on_hit(slot, cid, addr)
                        st_acc[cid] += 1
                        st_hit[cid] += 1
                        if shared_code and part_of[slot] != cid:
                            shared_hit(slot, cid)
                        t += hit_latency
                    else:
                        st_acc[cid] += 1
                        st_miss[cid] += 1
                        slots, parents, has_empty = candidate_slots(addr)
                        if has_empty:
                            index = len(slots) - 1
                        else:
                            index = select_index(slots)
                            vslot = slots[index]
                            if shared_code:
                                touched_by[vslot] = 0
                            owner = part_of[vslot]
                            if owner >= 0:
                                st_evict[owner] += 1
                                sizes[owner] -= 1
                                part_of[vslot] = NO_PART
                        landing = install_walk(addr, slots, parents, index)
                        if moves_buf:
                            for k in range(0, len(moves_buf), 2):
                                src = moves_buf[k]
                                dst = moves_buf[k + 1]
                                if plain_move:
                                    state[dst] = state[src]
                                else:
                                    on_move(src, dst)
                                part_of[dst] = part_of[src]
                                part_of[src] = NO_PART
                                if shared_code:
                                    touched_by[dst] = touched_by[src]
                                    touched_by[src] = 0
                        part_of[landing] = cid
                        if shared_code:
                            touched_by[landing] = 1 << cid
                        sizes[cid] += 1
                        if lru_insert:
                            state[landing] = policy.current_ts
                            acc = policy._accesses + 1
                            if acc >= granularity:
                                policy._accesses = 0
                                policy.current_ts = (
                                    policy.current_ts + 1
                                ) & _TS_MASK
                            else:
                                policy._accesses = acc
                        elif srrip_insert:
                            state[landing] = RRPV_MAX - 1
                        elif plru_insert:
                            clock = policy._clock + 1
                            policy._clock = clock
                            state[landing] = clock
                        else:
                            on_insert(landing, cid, addr)
                        ctrl = addr % num_controllers
                        f = free_at[ctrl]
                        start = f if f > t else t
                        free_at[ctrl] = start + service_cycles
                        queue = start - t
                        mem_queue += queue
                        mem_requests += 1
                        t += hit_latency + (queue + mem_latency)
                if not fin and count >= target:
                    fin = True
                    finished_at[cid] = t
                    instructions_at_finish[cid] = count
                    unfinished -= 1
                    if not unfinished:
                        reason = 3
                        break
                if t < second or (t == second and cid < scid):
                    now = t
                    continue
                break
            positions[cid] = pos
            instructions[cid] = count
            if reason == 0 or reason == 3:
                if heap is None:
                    times[cid] = t
                else:
                    heappush(heap, (t, cid))
                if reason == 0:
                    continue
            elif heap is None:
                times[cid] = now
            else:
                heappush(heap, (now, cid))
            break
        memory.requests = mem_requests
        memory.total_queue_cycles = mem_queue
        return now, unfinished, reason, cid

    # Every exit parks the in-flight core's cursor and time, so
    # the event loop (and the fast-forward layer) may stop the
    # kernel at any boundary and re-enter without state loss.
    kernel.parks_state = True
    return kernel


@register_batch_kernel(WayPartitionedCache)
def build_waypart_batch(cache: WayPartitionedCache, ctx):
    array = cache.array
    policy = cache.policy
    if type(array) is not SetAssociativeArray or type(policy) is not CoarseLRUPolicy:
        return None
    (
        hit_latency, memory, num_controllers, mem_latency, service_cycles,
        free_at, observe, sample_gets, observed, mon_accesses, l1_accesses,
        collect, l1_hits, num_cores, target, bufs, positions, limits,
        instructions, finished_at, instructions_at_finish, times, heap,
        batched,
    ) = scheduler_cells(ctx)
    heappush = _heappush
    heappop = _heappop
    inf = _INF

    lookup = array._slot_of.get
    slot_of = array._slot_of
    tags = array._tags
    set_index = array.set_index
    set_free = array._set_free
    num_ways = array.num_ways
    state = policy.state
    granularity = policy._granularity
    way_owner = cache._way_owner
    part_of = cache.part_of
    sizes = cache._sizes
    shared_code = cache._shared_code
    shared_hit = cache._shared_hit
    touched_by = cache.touched_by
    st = cache.stats
    st_acc = st.accesses
    st_hit = st.hits
    st_miss = st.misses
    st_evict = st.evictions
    walk_stats = array._collect

    def kernel(next_service, unfinished):
        cur_ts = policy.current_ts
        accs = policy._accesses
        mem_requests = memory.requests
        mem_queue = memory.total_queue_cycles
        while True:
            if heap is None:
                now = times[0]
                cid = 0
                second = inf
                scid = 0
                for i in range(1, num_cores):
                    ti = times[i]
                    if ti < now:
                        second = now
                        scid = cid
                        now = ti
                        cid = i
                    elif ti < second:
                        second = ti
                        scid = i
            else:
                now, cid = heappop(heap)
                head = heap[0]
                second = head[0]
                scid = head[1]
            if not batched[cid]:
                if heap is not None:
                    heappush(heap, (now, cid))
                reason = 4
                break
            pos = positions[cid]
            limit = limits[cid]
            buf = bufs[cid]
            count = instructions[cid]
            fin = finished_at[cid] is not None
            l1a = l1_accesses[cid] if l1_accesses is not None else None
            if sample_gets is not None:
                sget = sample_gets[cid]
                macc = mon_accesses[cid]
            else:
                sget = None
            reason = 0
            while True:
                if now >= next_service:
                    reason = 1
                    break
                if pos >= limit:
                    reason = 2
                    break
                gap = buf[pos]
                addr = buf[pos + 1]
                pos += 2
                count += gap + 1
                t = now + gap + 1
                if l1a is not None and l1a(addr):
                    # L1 hit: fully pipelined, no stall.
                    if collect:
                        l1_hits[cid] += 1
                else:
                    if sget is not None:
                        if sget(addr, -1) is not None:
                            observed[cid] += 1
                            macc(addr)
                    elif observe is not None:
                        observe(cid, addr)
                    slot = lookup(addr)
                    if slot is not None:
                        state[slot] = cur_ts
                        accs += 1
                        if accs >= granularity:
                            accs = 0
                            cur_ts = (cur_ts + 1) & _TS_MASK
                        st_acc[cid] += 1
                        st_hit[cid] += 1
                        if shared_code and part_of[slot] != cid:
                            shared_hit(slot, cid)
                        t += hit_latency
                    else:
                        st_acc[cid] += 1
                        st_miss[cid] += 1
                        base = set_index(addr) * num_ways
                        victim = -1
                        best_age = -1
                        empty = -1
                        for way in range(num_ways):
                            if way_owner[way] != cid:
                                continue
                            s = base + way
                            if tags[s] < 0:
                                empty = s
                                break
                            age = (cur_ts - state[s]) & _TS_MASK
                            if age > best_age:
                                best_age = age
                                victim = s
                        if empty >= 0:
                            slot = empty
                            tags[slot] = addr
                            slot_of[addr] = slot
                            set_free[base // num_ways] -= 1
                        else:
                            slot = victim
                            owner = part_of[slot]
                            if owner >= 0:
                                st_evict[owner] += 1
                                sizes[owner] -= 1
                            del slot_of[tags[slot]]
                            tags[slot] = addr
                            slot_of[addr] = slot
                        if walk_stats:
                            array.stat_installs += 1
                        part_of[slot] = cid
                        if shared_code:
                            touched_by[slot] = 1 << cid
                        sizes[cid] += 1
                        state[slot] = cur_ts
                        accs += 1
                        if accs >= granularity:
                            accs = 0
                            cur_ts = (cur_ts + 1) & _TS_MASK
                        ctrl = addr % num_controllers
                        f = free_at[ctrl]
                        start = f if f > t else t
                        free_at[ctrl] = start + service_cycles
                        queue = start - t
                        mem_queue += queue
                        mem_requests += 1
                        t += hit_latency + (queue + mem_latency)
                if not fin and count >= target:
                    fin = True
                    finished_at[cid] = t
                    instructions_at_finish[cid] = count
                    unfinished -= 1
                    if not unfinished:
                        reason = 3
                        break
                if t < second or (t == second and cid < scid):
                    now = t
                    continue
                break
            positions[cid] = pos
            instructions[cid] = count
            if reason == 0 or reason == 3:
                if heap is None:
                    times[cid] = t
                else:
                    heappush(heap, (t, cid))
                if reason == 0:
                    continue
            elif heap is None:
                times[cid] = now
            else:
                heappush(heap, (now, cid))
            break
        policy.current_ts = cur_ts
        policy._accesses = accs
        memory.requests = mem_requests
        memory.total_queue_cycles = mem_queue
        return now, unfinished, reason, cid

    # Every exit parks the in-flight core's cursor and time, so
    # the event loop (and the fast-forward layer) may stop the
    # kernel at any boundary and re-enter without state loss.
    kernel.parks_state = True
    return kernel


@register_batch_kernel(PIPPCache)
def build_pipp_batch(cache: PIPPCache, ctx):
    array = cache.array
    (
        hit_latency, memory, num_controllers, mem_latency, service_cycles,
        free_at, observe, sample_gets, observed, mon_accesses, l1_accesses,
        collect, l1_hits, num_cores, target, bufs, positions, limits,
        instructions, finished_at, instructions_at_finish, times, heap,
        batched,
    ) = scheduler_cells(ctx)
    heappush = _heappush
    heappop = _heappop
    inf = _INF

    lookup = array._slot_of.get
    slot_of = array._slot_of
    tags = array._tags
    set_index = array.set_index
    set_free = array._set_free
    num_ways = array.num_ways
    rng_random = cache._rng.random
    p_prom = cache.p_prom
    p_stream = cache.p_stream
    streaming = cache.streaming
    alloc_ways = cache._alloc_ways
    chains = cache._chains
    pos_of = cache._pos_of
    promotions = cache.promotions
    win_accesses = cache._win_accesses
    win_misses = cache._win_misses
    part_of = cache.part_of
    sizes = cache._sizes
    shared_code = cache._shared_code
    shared_hit = cache._shared_hit
    touched_by = cache.touched_by
    st = cache.stats
    st_acc = st.accesses
    st_hit = st.hits
    st_miss = st.misses
    st_evict = st.evictions
    walk_stats = array._collect

    def kernel(next_service, unfinished):
        mem_requests = memory.requests
        mem_queue = memory.total_queue_cycles
        while True:
            if heap is None:
                now = times[0]
                cid = 0
                second = inf
                scid = 0
                for i in range(1, num_cores):
                    ti = times[i]
                    if ti < now:
                        second = now
                        scid = cid
                        now = ti
                        cid = i
                    elif ti < second:
                        second = ti
                        scid = i
            else:
                now, cid = heappop(heap)
                head = heap[0]
                second = head[0]
                scid = head[1]
            if not batched[cid]:
                if heap is not None:
                    heappush(heap, (now, cid))
                reason = 4
                break
            pos = positions[cid]
            limit = limits[cid]
            buf = bufs[cid]
            count = instructions[cid]
            fin = finished_at[cid] is not None
            l1a = l1_accesses[cid] if l1_accesses is not None else None
            if sample_gets is not None:
                sget = sample_gets[cid]
                macc = mon_accesses[cid]
            else:
                sget = None
            reason = 0
            while True:
                if now >= next_service:
                    reason = 1
                    break
                if pos >= limit:
                    reason = 2
                    break
                gap = buf[pos]
                addr = buf[pos + 1]
                pos += 2
                count += gap + 1
                t = now + gap + 1
                if l1a is not None and l1a(addr):
                    # L1 hit: fully pipelined, no stall.
                    if collect:
                        l1_hits[cid] += 1
                else:
                    if sget is not None:
                        if sget(addr, -1) is not None:
                            observed[cid] += 1
                            macc(addr)
                    elif observe is not None:
                        observe(cid, addr)
                    win_accesses[cid] += 1
                    slot = lookup(addr)
                    if slot is not None:
                        st_acc[cid] += 1
                        st_hit[cid] += 1
                        if rng_random() < (
                            p_stream if streaming[cid] else p_prom
                        ):
                            promotions[cid] += 1
                            chain = chains[slot // num_ways]
                            i = pos_of[slot]
                            if i + 1 < len(chain):
                                other = chain[i + 1]
                                chain[i] = other
                                chain[i + 1] = slot
                                pos_of[other] = i
                                pos_of[slot] = i + 1
                        if shared_code and part_of[slot] != cid:
                            shared_hit(slot, cid)
                        t += hit_latency
                    else:
                        st_acc[cid] += 1
                        st_miss[cid] += 1
                        win_misses[cid] += 1
                        si = set_index(addr)
                        chain = chains[si]
                        base = si * num_ways
                        if set_free[si]:
                            slot = -1
                            for s in range(base, base + num_ways):
                                if tags[s] < 0:
                                    slot = s
                                    break
                            tags[slot] = addr
                            slot_of[addr] = slot
                            set_free[si] -= 1
                        else:
                            slot = chain[0]
                            owner = part_of[slot]
                            if owner >= 0:
                                st_evict[owner] += 1
                                sizes[owner] -= 1
                            del chain[0]
                            pos_of[slot] = -1
                            for i in range(len(chain)):
                                pos_of[chain[i]] = i
                            del slot_of[tags[slot]]
                            tags[slot] = addr
                            slot_of[addr] = slot
                        if walk_stats:
                            array.stat_installs += 1
                        part_of[slot] = cid
                        if shared_code:
                            touched_by[slot] = 1 << cid
                        sizes[cid] += 1
                        index = (
                            STREAM_WAYS if streaming[cid] else alloc_ways[cid]
                        )
                        if index > len(chain):
                            index = len(chain)
                        chain.insert(index, slot)
                        for i in range(index, len(chain)):
                            pos_of[chain[i]] = i
                        ctrl = addr % num_controllers
                        f = free_at[ctrl]
                        start = f if f > t else t
                        free_at[ctrl] = start + service_cycles
                        queue = start - t
                        mem_queue += queue
                        mem_requests += 1
                        t += hit_latency + (queue + mem_latency)
                if not fin and count >= target:
                    fin = True
                    finished_at[cid] = t
                    instructions_at_finish[cid] = count
                    unfinished -= 1
                    if not unfinished:
                        reason = 3
                        break
                if t < second or (t == second and cid < scid):
                    now = t
                    continue
                break
            positions[cid] = pos
            instructions[cid] = count
            if reason == 0 or reason == 3:
                if heap is None:
                    times[cid] = t
                else:
                    heappush(heap, (t, cid))
                if reason == 0:
                    continue
            elif heap is None:
                times[cid] = now
            else:
                heappush(heap, (now, cid))
            break
        memory.requests = mem_requests
        memory.total_queue_cycles = mem_queue
        return now, unfinished, reason, cid

    # Every exit parks the in-flight core's cursor and time, so
    # the event loop (and the fast-forward layer) may stop the
    # kernel at any boundary and re-enter without state loss.
    kernel.parks_state = True
    return kernel
