"""PIPP: promotion/insertion pseudo-partitioning (Xie & Loh, ISCA 2009).

PIPP approximates partitioning purely through the insertion and
promotion policies of a set-associative cache:

- each partition inserts new lines at a chain position equal to its
  allocated way count (counted from the LRU end);
- hits promote a line a single position with probability
  ``p_prom = 3/4`` instead of moving it to the MRU end;
- the victim is always the line at the LRU end of the set.

A stream-detection mechanism caps cache pollution from thrashing
applications: a partition whose L2 miss *rate* over the last
classification window reaches ``theta_m = 12.5 %`` is classified as
streaming, inserts at position 1 (one way), and promotes with
``p_stream = 1/128``.  These are the exact constants the paper's
methodology section uses.  (The original PIPP paper detects streams
from miss counts relative to the partition's allocation; the Vantage
paper only states the threshold, so we interpret theta_m as a miss-rate
threshold and re-classify at every allocation epoch -- the same
windows UCP uses.)

Like the paper, PIPP here is evaluated on set-associative arrays; the
scheme is defined in terms of per-set LRU chains and does not
generalise to zcaches.
"""

from __future__ import annotations

import random

from repro.arrays.set_assoc import SetAssociativeArray
from repro.partitioning.base_cache import PartitionedCache

P_PROM = 3 / 4
P_STREAM = 1 / 128
THETA_M = 0.125
STREAM_WAYS = 1


class PIPPCache(PartitionedCache):
    """Pseudo-partitioned set-associative cache implementing PIPP."""

    allocation_unit = "ways"

    def __init__(
        self,
        array: SetAssociativeArray,
        num_partitions: int,
        p_prom: float = P_PROM,
        p_stream: float = P_STREAM,
        theta_m: float = THETA_M,
        seed: int = 0,
        shared_policy: str | None = None,
    ):
        if not isinstance(array, SetAssociativeArray):
            raise TypeError("PIPP requires a set-associative array")
        super().__init__(array, num_partitions, shared_policy=shared_policy)
        self.p_prom = p_prom
        self.p_stream = p_stream
        self.theta_m = theta_m
        self._rng = random.Random(seed)
        base, extra = divmod(array.num_ways, num_partitions)
        self._alloc_ways = [base + (1 if p < extra else 0) for p in range(num_partitions)]
        self.streaming = [False] * num_partitions
        # Per-set LRU chain: chain[s][0] is the LRU slot.  Only
        # occupied slots appear in a chain.
        self._chains: list[list[int]] = [[] for _ in range(array.num_sets)]
        self._pos_of: list[int] = [-1] * array.num_lines
        # Classification window counters.
        self._win_accesses = [0] * num_partitions
        self._win_misses = [0] * num_partitions
        # Telemetry counters.
        self.promotions = [0] * num_partitions
        self.stream_windows = [0] * num_partitions
        if type(self) is PIPPCache:
            self._install_fused()

    @property
    def allocation_total(self) -> int:
        return self.array.num_ways

    def set_allocations(self, units: list[int]) -> None:
        if len(units) != self.num_partitions:
            raise ValueError("allocation vector length mismatch")
        if any(u < 1 for u in units):
            raise ValueError("PIPP requires at least one way per partition")
        # In place: the fused access kernel captures this list.
        self._alloc_ways[:] = units

    def insertion_position(self, part: int) -> int:
        """Chain index (from the LRU end) where ``part`` inserts."""
        if self.streaming[part]:
            return STREAM_WAYS
        return self._alloc_ways[part]

    def promotion_probability(self, part: int) -> float:
        return self.p_stream if self.streaming[part] else self.p_prom

    def reclassify_streams(self) -> None:
        """Re-run stream detection over the last window and reset it.

        Call at allocation-epoch boundaries (the harness does this just
        before invoking UCP).
        """
        for part in range(self.num_partitions):
            accesses = self._win_accesses[part]
            if accesses:
                rate = self._win_misses[part] / accesses
                self.streaming[part] = rate >= self.theta_m
                if self.streaming[part]:
                    self.stream_windows[part] += 1
            self._win_accesses[part] = 0
            self._win_misses[part] = 0

    # ------------------------------------------------------------------
    # Chain maintenance.
    # ------------------------------------------------------------------

    def _chain_insert(self, chain: list[int], index: int, slot: int) -> None:
        index = min(index, len(chain))
        chain.insert(index, slot)
        pos_of = self._pos_of
        for i in range(index, len(chain)):
            pos_of[chain[i]] = i

    def _chain_pop_lru(self, chain: list[int]) -> int:
        slot = chain.pop(0)
        pos_of = self._pos_of
        pos_of[slot] = -1
        for i, s in enumerate(chain):
            pos_of[s] = i
        return slot

    def _promote(self, chain: list[int], slot: int) -> None:
        i = self._pos_of[slot]
        if i + 1 < len(chain):
            other = chain[i + 1]
            chain[i], chain[i + 1] = other, slot
            self._pos_of[other] = i
            self._pos_of[slot] = i + 1

    # ------------------------------------------------------------------
    # Access path.
    # ------------------------------------------------------------------

    def access(self, addr: int, part: int = 0) -> bool:
        array = self.array
        self._win_accesses[part] += 1
        slot = array.lookup(addr)
        if slot is not None:
            self._record_access(part, hit=True)
            if self._rng.random() < self.promotion_probability(part):
                self.promotions[part] += 1
                set_index = slot // array.num_ways
                self._promote(self._chains[set_index], slot)
            if self._shared_code and self.part_of[slot] != part:
                # Attribution only: PIPP partitions through chain
                # positions, so the line itself does not move.
                self._shared_hit(slot, part)
            return True

        self._record_access(part, hit=False)
        self._win_misses[part] += 1
        set_index = array.set_index(addr)
        chain = self._chains[set_index]
        candidates = array.candidates(addr)
        victim = self._first_empty(candidates)
        if victim is None:
            lru_slot = chain[0]
            victim = next(c for c in candidates if c.slot == lru_slot)
            self._evict_bookkeeping(victim)
            self._chain_pop_lru(chain)
        moves = array.install(addr, victim)
        landing = self._install_bookkeeping(addr, part, victim, moves)
        self._chain_insert(chain, self.insertion_position(part), landing)
        return False

    def register_stats(self, group) -> None:
        super().register_stats(group)
        p = group.group("pipp", "PIPP promotion/insertion state")
        p.stat(
            "promotions",
            lambda: list(self.promotions),
            "per-partition single-step chain promotions taken",
        )
        p.stat(
            "stream_windows",
            lambda: list(self.stream_windows),
            "per-partition windows classified as streaming",
        )
        p.stat(
            "streaming",
            lambda: list(self.streaming),
            "per-partition current streaming classification",
        )
        p.stat(
            "alloc_ways",
            lambda: list(self._alloc_ways),
            "per-partition allocated way counts",
        )
