"""Shared cache front-end and the unpartitioned baseline.

Every cache in this repository -- the LRU/RRIP baselines,
way-partitioning, PIPP and Vantage -- presents the same surface:

``access(addr, part) -> bool``
    Perform one access on behalf of partition ``part`` (a thread, in
    the paper's evaluation); returns ``True`` on a hit.

``set_allocations(units)``
    Install new per-partition capacity targets; the unit (ways or
    lines) depends on the scheme and is exposed as
    :attr:`allocation_unit` / :attr:`allocation_total`.

All caches also keep, per slot, the partition that inserted the line
(`part_of`), so experiments can measure each partition's *actual*
footprint under any scheme -- the quantity plotted in Figure 8.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from array import array as _array
from dataclasses import dataclass, field
from typing import Callable

from repro.arrays.base import CacheArray, Candidate
from repro.replacement.base import ReplacementPolicy

try:  # The numpy lane is optional; everything else is pure python.
    import numpy as _numpy
except ImportError:  # pragma: no cover - numpy is present in CI
    _numpy = None

#: ``part_of`` value for an empty slot.  Partition IDs are
#: non-negative and Vantage's unmanaged region is -1, so -2 keeps
#: ``owner >= 0`` as the "slot holds an owned line" test while still
#: distinguishing empty from unmanaged.
NO_PART = -2

#: On-shared-hit policies: what happens when a line is hit by a
#: partition other than its current owner (only possible on
#: shared-region mixes, where address spaces overlap).  ``part_of``
#: stays the single *owner* column driving eviction attribution and
#: size accounting; the ``touched_by`` bitmask records every partition
#: that ever hit the line.
#:
#: - ``keep-owner``: bookkeeping only -- ownership never moves.
#: - ``migrate-to-requester``: the requester takes ownership (and the
#:   line's budget) on every cross-owner hit, tracking migratory use.
#: - ``promote-to-shared``: hand the line to a shared pool.  Only
#:   Vantage has one (the unmanaged region); strictly partitioned
#:   schemes fall back to ``keep-owner``.
SHARED_POLICIES = {
    "keep-owner": 1,
    "migrate-to-requester": 2,
    "promote-to-shared": 3,
}


def fused_default() -> bool:
    """Whether caches should install their fused access kernels.

    Read from ``REPRO_FUSED`` at cache construction ("0" disables);
    the object-oriented access path stays available as the fallback
    and as the oracle the fused kernels are pinned against.
    """
    return os.environ.get("REPRO_FUSED", "1") != "0"


#: Registry of fused access-kernel builders, keyed by concrete cache
#: class.  A builder is called as ``builder(cache)`` and returns a
#: closure with the signature of :meth:`PartitionedCache.access`, or
#: ``None`` when the cache's array/policy combination has no fused
#: kernel (the object path is used unchanged).
_FUSED_KERNELS: dict[type, Callable] = {}


def register_fused_kernel(cls: type):
    """Class decorator registering a fused kernel builder for ``cls``."""

    def decorator(builder: Callable):
        _FUSED_KERNELS[cls] = builder
        return builder

    return decorator


def batch_default() -> bool:
    """Whether the event loop should drive whole trace segments
    through batch kernels.

    Read from ``REPRO_BATCH`` at run time ("0" disables); the
    single-access fused/object path stays available as the fallback
    and as the oracle the batch kernels are pinned against.
    """
    return os.environ.get("REPRO_BATCH", "1") != "0"


def fastfwd_default() -> bool:
    """Whether the event loop may fast-forward converged epoch tails.

    Read from ``REPRO_FASTFWD`` at run time; *off* unless set to
    ``1``.  Fast-forward replays the Vantage transfer-function model
    instead of simulating every access, so unlike every other lane it
    is modelled, not bitwise-exact -- the default keeps all existing
    parity guarantees untouched.
    """
    return os.environ.get("REPRO_FASTFWD", "0") == "1"


def fastfwd_tolerance() -> float:
    """Convergence tolerance of the fast-forward detector.

    Read from ``REPRO_FASTFWD_TOL`` (default 0.02: per-partition
    miss-rate/churn/aperture window deltas within 2 %).  ``0`` selects
    *detection-only* mode: the detector runs and logs where a replay
    would engage, but every access is still simulated exactly.
    """
    raw = os.environ.get("REPRO_FASTFWD_TOL")
    if raw is None:
        return 0.02
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_FASTFWD_TOL must be a number, got {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(f"REPRO_FASTFWD_TOL must be >= 0, got {value}")
    return value


def numpy_default() -> bool:
    """Whether the vectorized (numpy) batch-kernel lane is requested.

    Off by default: ``REPRO_NUMPY=1`` enables it for the cache
    classes that register a vectorized builder (sa-LRU, the generic
    set-associative baseline, way partitioning).  Requesting the lane
    without numpy installed silently falls back to the pure-python
    batch kernels -- both lanes are bitwise-identical by contract.
    """
    return os.environ.get("REPRO_NUMPY", "0") == "1" and _numpy is not None


#: Registries of batch access-kernel builders, keyed by concrete
#: cache class.  A builder is called as ``builder(cache, ctx)`` with a
#: :class:`BatchContext` and returns a segment kernel (see
#: :meth:`PartitionedCache.build_batch_kernel` for the signature), or
#: ``None`` when the cache's array/policy combination has no batch
#: kernel.  ``_NUMPY_KERNELS`` holds the optional vectorized variants
#: consulted first when ``REPRO_NUMPY=1``.
_BATCH_KERNELS: dict[type, Callable] = {}
_NUMPY_KERNELS: dict[type, Callable] = {}


def register_batch_kernel(cls: type):
    """Class decorator registering a batch kernel builder for ``cls``."""

    def decorator(builder: Callable):
        _BATCH_KERNELS[cls] = builder
        return builder

    return decorator


def register_numpy_kernel(cls: type):
    """Class decorator registering a vectorized batch builder for ``cls``."""

    def decorator(builder: Callable):
        _NUMPY_KERNELS[cls] = builder
        return builder

    return decorator


@dataclass
class BatchContext:
    """Event-loop and scheduler state a batch kernel closes over.

    Built once per :meth:`CMPSystem.run` and handed to the batch
    builders.  A batch kernel absorbs the *whole* scheduling loop --
    core selection (two-minimum scan or heap), the chunk cursors,
    timing, L1 filtering, policy observation, the cache access body
    and finish bookkeeping -- so one call executes events until the
    next boundary the event loop itself must handle (epoch/sample
    service, a chunk refill, a non-chunked core, or completion).

    All list fields are the *live* scheduler state of the running
    ``CMPSystem.run`` invocation, shared by reference and mutated in
    place by the kernel: the single-access fallback loop and the
    kernel read and write the same cursors, so control can bounce
    between them mid-run with no hand-off step.

    ``sample_gets``/``observed``/``mon_accesses`` are the exploded
    fast path of :meth:`UCPPolicy.observe` (per-partition sample
    filters, observation counters and bound monitor accessors); they
    are ``None`` when the policy is absent or overrides ``observe``,
    in which case kernels fall back to the bound ``observe`` call.
    """

    hit_latency: int
    memory: object
    observe: Callable | None
    sample_gets: list | None
    observed: list | None
    mon_accesses: list | None
    l1s: list | None
    collect: bool
    l1_hits: list
    #: True when every latency in the run is an integer (hit latency,
    #: memory latency and the controllers' service cycles), so all
    #: event times are integer-valued floats and vectorized time sums
    #: are bitwise-equal to the scalar chain of additions.  The numpy
    #: builders refuse to build without it.
    exact_int_times: bool
    #: -- scheduler state (shared with CMPSystem.run, mutated in place)
    num_cores: int
    target: int
    bufs: list
    positions: list
    limits: list
    instructions: list
    finished_at: list
    instructions_at_finish: list
    times: list
    heap: list | None
    batched: list


def scheduler_cells(ctx: BatchContext) -> tuple:
    """Unpack a :class:`BatchContext` into the closure cells every
    batch kernel's scheduling skeleton hoists (one tuple-unpack per
    builder keeps the twenty-odd hoists uniform across kernels).

    The memory model is exploded into its controller registers so the
    kernels can inline :meth:`MemoryModel.request` (the per-request
    ``requests``/``total_queue_cycles`` counters are hoisted and
    flushed by each kernel to preserve the exact accumulation order).
    """
    memory = ctx.memory
    l1_accesses = (
        [l1.access for l1 in ctx.l1s] if ctx.l1s is not None else None
    )
    return (
        ctx.hit_latency,
        memory,
        memory.num_controllers,
        memory.latency,
        memory.service_cycles,
        memory._free_at,
        ctx.observe,
        ctx.sample_gets,
        ctx.observed,
        ctx.mon_accesses,
        l1_accesses,
        ctx.collect,
        ctx.l1_hits,
        ctx.num_cores,
        ctx.target,
        ctx.bufs,
        ctx.positions,
        ctx.limits,
        ctx.instructions,
        ctx.finished_at,
        ctx.instructions_at_finish,
        ctx.times,
        ctx.heap,
        ctx.batched,
    )


@dataclass
class CacheStats:
    """Per-partition access statistics.

    ``evictions[p]`` counts evictions whose *victim* belonged to
    partition ``p`` (the interference-relevant direction), regardless
    of which partition's miss caused them.
    """

    num_partitions: int
    accesses: list[int] = field(default_factory=list)
    hits: list[int] = field(default_factory=list)
    misses: list[int] = field(default_factory=list)
    evictions: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name in ("accesses", "hits", "misses", "evictions"):
            if not getattr(self, name):
                setattr(self, name, [0] * self.num_partitions)

    @property
    def total_accesses(self) -> int:
        return sum(self.accesses)

    @property
    def total_misses(self) -> int:
        return sum(self.misses)

    def miss_rate(self, part: int | None = None) -> float:
        if part is None:
            acc, miss = self.total_accesses, self.total_misses
        else:
            acc, miss = self.accesses[part], self.misses[part]
        return miss / acc if acc else 0.0

    def reset(self) -> None:
        # In place: fused access kernels capture these lists at build
        # time, so rebinding them would silently disconnect a kernel
        # from the stats it reports into.
        for counters in (self.accesses, self.hits, self.misses, self.evictions):
            for i in range(len(counters)):
                counters[i] = 0


class PartitionedCache(ABC):
    """Common behaviour for every cache front-end.

    Parameters
    ----------
    array:
        Backing :class:`CacheArray`.
    num_partitions:
        Number of partitions the scheme must support (1 for the
        unpartitioned baseline).
    """

    #: "ways" or "lines" -- the unit of ``set_allocations``.
    allocation_unit: str = "lines"

    def __init__(
        self,
        array: CacheArray,
        num_partitions: int,
        shared_policy: str | None = None,
    ):
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive, got {num_partitions}")
        if shared_policy is not None and shared_policy not in SHARED_POLICIES:
            raise ValueError(
                f"unknown shared-hit policy {shared_policy!r}; "
                f"known: {', '.join(sorted(SHARED_POLICIES))}"
            )
        if shared_policy is not None and num_partitions > 63:
            raise ValueError(
                "shared-hit tracking uses a 64-bit touched_by bitmask; "
                f"{num_partitions} partitions do not fit"
            )
        self.array = array
        self.num_partitions = num_partitions
        self.num_lines = array.num_lines
        self.stats = CacheStats(num_partitions)
        # Flat owner column (structure-of-arrays): NO_PART for empty
        # slots, UNMANAGED (-1) for Vantage's unmanaged region,
        # otherwise the owning partition -- so ``owner >= 0`` is the
        # single hot-path ownership test.  The owner is the partition
        # *accountable* for the line (eviction attribution, size
        # budgets); on shared-region mixes other partitions may hit it
        # too, which ``touched_by`` records as a per-line core bitmask.
        self.part_of = _array("q", [NO_PART]) * array.num_lines
        self.touched_by = _array("q", [0]) * array.num_lines
        #: On-shared-hit policy (``None`` = off: bitwise-identical to
        #: the pre-sharing behaviour, no bookkeeping at all).
        self.shared_policy = shared_policy
        self._shared_code = SHARED_POLICIES.get(shared_policy, 0)
        #: Cross-owner hits, indexed by the *requesting* partition.
        self.shared_hits = [0] * num_partitions
        #: Ownership transfers, indexed by the partition that took over.
        self.shared_moves = [0] * num_partitions
        self._sizes = [0] * num_partitions
        # Bound tag-lookup for the access hot path (the array's
        # _slot_of dict is created once and never replaced).
        self._lookup = array._slot_of.get
        #: Optional measurement hook called as ``fn(victim_slot, victim_part)``
        #: immediately *before* an occupied victim is evicted.
        self.eviction_hook: Callable[[int, int], None] | None = None
        #: True when a fused access kernel is installed on this instance.
        self.fused = False

    # ------------------------------------------------------------------
    # Public surface.
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def allocation_total(self) -> int:
        """Total capacity available for allocation, in allocation units."""

    @abstractmethod
    def set_allocations(self, units: list[int]) -> None:
        """Install per-partition targets (length ``num_partitions``)."""

    @abstractmethod
    def access(self, addr: int, part: int = 0) -> bool:
        """Perform one access; returns ``True`` on hit."""

    def partition_size(self, part: int) -> int:
        """Current footprint of ``part`` in lines (measured, not target)."""
        return self._sizes[part]

    def partition_sizes(self) -> list[int]:
        return list(self._sizes)

    def reset_stats(self) -> None:
        self.stats.reset()
        # In place, like CacheStats.reset: kernels hoist these lists.
        for counters in (self.shared_hits, self.shared_moves):
            for i in range(len(counters)):
                counters[i] = 0

    # ------------------------------------------------------------------
    # Fast-forward state export/import.
    # ------------------------------------------------------------------

    def fastfwd_state(self) -> dict:
        """Snapshot every register a fast-forward replay may advance.

        The fast-forward layer (``repro.sim.fastfwd``) snapshots the
        cache before committing a model replay and restores the
        snapshot if the commit fails partway, so an aborted replay
        re-seeds *exactly* the state the detector measured.  Subclasses
        extend the dict with their scheme-specific registers; every
        value must be an independent copy (no aliasing of live state).
        """
        st = self.stats
        return {
            "accesses": list(st.accesses),
            "hits": list(st.hits),
            "misses": list(st.misses),
            "evictions": list(st.evictions),
            "sizes": list(self._sizes),
        }

    def fastfwd_restore(self, state: dict) -> None:
        """Restore a :meth:`fastfwd_state` snapshot, in place (fused
        and batch kernels hoist these lists, so they are never
        rebound)."""
        st = self.stats
        st.accesses[:] = state["accesses"]
        st.hits[:] = state["hits"]
        st.misses[:] = state["misses"]
        st.evictions[:] = state["evictions"]
        self._sizes[:] = state["sizes"]

    # ------------------------------------------------------------------
    # Fused access kernels.
    # ------------------------------------------------------------------

    def _install_fused(self) -> None:
        """Install this class's fused access kernel, if one is
        registered and ``REPRO_FUSED`` permits.

        Called at the end of each registered concrete class's
        ``__init__`` (guarded by ``type(self) is Cls`` so subclasses
        that override the access path are never fused).  The kernel is
        a closure bound to this instance's state columns, installed as
        an *instance* attribute shadowing the ``access`` method; the
        method itself remains the semantic definition and the
        ``REPRO_FUSED=0`` fallback.
        """
        if not fused_default():
            return
        builder = _FUSED_KERNELS.get(type(self))
        if builder is None:
            return
        kernel = builder(self)
        if kernel is None:
            return
        self.__dict__["access"] = kernel
        self.fused = True

    def _remove_fused(self) -> None:
        """Drop the instance-level fused kernel, restoring the method."""
        self.__dict__.pop("access", None)
        self.fused = False

    # ------------------------------------------------------------------
    # Batch access kernels.
    # ------------------------------------------------------------------

    def build_batch_kernel(self, ctx: BatchContext):
        """Build this cache's batch scheduling kernel, or ``None``.

        A batch kernel runs the whole multi-core event loop -- core
        selection, chunk cursors, timing, observation and this cache's
        access body fused into one frame -- until a boundary only the
        caller can handle::

            kernel(next_service, unfinished)
                -> (now, unfinished, reason, cid)

        ``next_service`` is the next epoch/sample deadline and
        ``unfinished`` the count of cores still short of their
        instruction target; the kernel consumes scheduling events
        (reading and updating the shared cursors in its
        :class:`BatchContext`) and reports why it stopped: ``1`` = an
        epoch/sample service is due at ``now`` (repartition/sample,
        then re-enter), ``2`` = core ``cid``'s chunk is exhausted
        (refill, then re-enter), ``4`` = core ``cid`` is not chunked
        (run one event on the single-access path, then re-enter),
        ``3`` = the last unfinished core crossed its target (``now``
        is the run's final cycle count).  Before every return the
        kernel parks the in-flight core back in the scheduler
        (``times``/``heap``) at its current time, so re-entry resumes
        it through the ordinary selection scan -- there is no hidden
        resume state.  Behaviour is pinned bitwise-identical to the
        single-access loop (``REPRO_BATCH=0``).

        When ``REPRO_NUMPY=1`` and a vectorized builder is registered
        for this class, it is consulted first; a vectorized builder
        that declines (unsupported array/policy/L1 combination) falls
        back to the pure-python batch builder.

        Caches with measurement hooks installed decline batching:
        hooks may read hoisted registers mid-segment.
        """
        if self.eviction_hook is not None:
            return None
        if getattr(self, "demotion_hook", None) is not None:
            return None
        if numpy_default():
            builder = _NUMPY_KERNELS.get(type(self))
            if builder is not None:
                kernel = builder(self, ctx)
                if kernel is not None:
                    return kernel
        builder = _BATCH_KERNELS.get(type(self))
        if builder is None:
            return None
        return builder(self, ctx)

    def register_stats(self, group) -> None:
        """Register the per-partition front-end counters; subclasses
        extend with scheme-specific registers."""
        st = self.stats
        group.stat(
            "accesses", lambda: list(st.accesses), "per-partition accesses"
        )
        group.stat("hits", lambda: list(st.hits), "per-partition hits")
        group.stat("misses", lambda: list(st.misses), "per-partition misses")
        group.stat(
            "evictions",
            lambda: list(st.evictions),
            "per-partition evictions (victim's partition)",
        )
        group.stat(
            "partition_sizes",
            lambda: self.partition_sizes(),
            "per-partition resident footprints, in lines",
        )
        # Gated on an explicit shared-hit policy so the stats schema
        # (and every existing golden tree) is unchanged for the
        # multiprogrammed schemes.
        if self._shared_code:
            sharing = group.group("sharing", "cross-owner line sharing")
            sharing.stat(
                "policy", lambda: self.shared_policy, "on-shared-hit policy"
            )
            sharing.stat(
                "shared_hits",
                lambda: list(self.shared_hits),
                "cross-owner hits, by requesting partition",
            )
            sharing.stat(
                "shared_moves",
                lambda: list(self.shared_moves),
                "ownership transfers, by new owner",
            )
            sharing.stat(
                "multi_touched_lines",
                lambda: sum(
                    1 for bits in self.touched_by if bits and bits & (bits - 1)
                ),
                "resident lines touched by more than one partition",
            )

    # ------------------------------------------------------------------
    # Bookkeeping helpers for subclasses.
    # ------------------------------------------------------------------

    def _record_access(self, part: int, hit: bool) -> None:
        st = self.stats
        st.accesses[part] += 1
        if hit:
            st.hits[part] += 1
        else:
            st.misses[part] += 1

    def _shared_hit(self, slot: int, requester: int) -> int:
        """Apply the on-shared-hit policy to a cross-owner hit.

        Called only when a shared-hit policy is active and
        ``part_of[slot] != requester`` on a hit.  Returns the line's
        owner after the policy ran (callers that stamp owner-relative
        state use the return value).  The base implementation covers
        strictly partitioned schemes: ``promote-to-shared`` has no
        shared pool here and falls back to ``keep-owner``; Vantage
        overrides this to move lines through its unmanaged region.
        """
        self.touched_by[slot] |= 1 << requester
        self.shared_hits[requester] += 1
        if self._shared_code == SHARED_POLICIES["migrate-to-requester"]:
            owner = self.part_of[slot]
            self.part_of[slot] = requester
            self._sizes[owner] -= 1
            self._sizes[requester] += 1
            self.shared_moves[requester] += 1
            return requester
        return self.part_of[slot]

    def _evict_bookkeeping(self, victim: Candidate) -> None:
        """Account for the eviction of an occupied ``victim``."""
        owner = self.part_of[victim.slot]
        if self._shared_code:
            self.touched_by[victim.slot] = 0
        if owner >= 0:
            if self.eviction_hook is not None:
                self.eviction_hook(victim.slot, owner)
            self.stats.evictions[owner] += 1
            self._sizes[owner] -= 1
            self.part_of[victim.slot] = NO_PART

    def _install_bookkeeping(
        self, addr: int, part: int, victim: Candidate, moves: list[tuple[int, int]]
    ) -> int:
        """Relocate ``part_of`` along ``moves`` and claim the landing slot.

        Returns the slot the new line landed in (``victim.path[0]``).
        """
        part_of = self.part_of
        for src, dst in moves:
            part_of[dst] = part_of[src]
            part_of[src] = NO_PART
        landing = victim.path[0]
        part_of[landing] = part
        if self._shared_code:
            touched_by = self.touched_by
            for src, dst in moves:
                touched_by[dst] = touched_by[src]
                touched_by[src] = 0
            touched_by[landing] = 1 << part
        self._sizes[part] += 1
        return landing

    @staticmethod
    def _first_empty(candidates: list[Candidate]) -> Candidate | None:
        for cand in candidates:
            if cand.addr is None:
                return cand
        return None


class BaselineCache(PartitionedCache):
    """Unpartitioned cache: one array plus one replacement policy.

    This is the paper's LRU / RRIP baseline ("LRU-SA16", "LRU-Z4/52",
    "SRRIP-Z4/52", ...).  Partition IDs are still accepted and tracked
    so per-thread statistics and footprints can be measured, but they
    never influence replacement.
    """

    allocation_unit = "lines"

    def __init__(
        self,
        array: CacheArray,
        policy: ReplacementPolicy,
        num_partitions: int = 1,
        shared_policy: str | None = None,
    ):
        super().__init__(array, num_partitions, shared_policy=shared_policy)
        if policy.num_lines != array.num_lines:
            raise ValueError("policy and array disagree on num_lines")
        self.policy = policy
        if type(self) is BaselineCache:
            self._install_fused()

    @property
    def allocation_total(self) -> int:
        return self.num_lines

    def set_allocations(self, units: list[int]) -> None:
        # An unpartitioned cache has nothing to enforce; accept and
        # ignore so allocation policies can drive any scheme uniformly.
        if len(units) != self.num_partitions:
            raise ValueError("allocation vector length mismatch")

    def register_stats(self, group) -> None:
        super().register_stats(group)
        if hasattr(self.policy, "register_stats"):
            self.policy.register_stats(
                group.group("replacement", "base replacement policy")
            )

    def access(self, addr: int, part: int = 0) -> bool:
        array = self.array
        st = self.stats
        slot = self._lookup(addr)
        if slot is not None:
            self.policy.on_hit(slot, part, addr)
            st.accesses[part] += 1
            st.hits[part] += 1
            if self._shared_code and self.part_of[slot] != part:
                self._shared_hit(slot, part)
            return True

        st.accesses[part] += 1
        st.misses[part] += 1
        fast = array.candidate_slots(addr)
        if fast is not None:
            slots, parents, has_empty = fast
            if has_empty:
                victim = array.make_candidate(slots, parents, len(slots) - 1)
            else:
                index = self.policy.select_victim_index(slots)
                if index is None:
                    candidates = [
                        array.make_candidate(slots, parents, i)
                        for i in range(len(slots))
                    ]
                    victim = self.policy.select_victim(candidates)
                else:
                    victim = array.make_candidate(slots, parents, index)
                self._evict_bookkeeping(victim)
        else:
            candidates = array.candidates(addr)
            victim = self._first_empty(candidates)
            if victim is None:
                victim = self.policy.select_victim(candidates)
                self._evict_bookkeeping(victim)
        moves = array.install(addr, victim)
        for src, dst in moves:
            self.policy.on_move(src, dst)
        landing = self._install_bookkeeping(addr, part, victim, moves)
        self.policy.on_insert(landing, part, addr)
        return False
