"""Shared cache front-end and the unpartitioned baseline.

Every cache in this repository -- the LRU/RRIP baselines,
way-partitioning, PIPP and Vantage -- presents the same surface:

``access(addr, part) -> bool``
    Perform one access on behalf of partition ``part`` (a thread, in
    the paper's evaluation); returns ``True`` on a hit.

``set_allocations(units)``
    Install new per-partition capacity targets; the unit (ways or
    lines) depends on the scheme and is exposed as
    :attr:`allocation_unit` / :attr:`allocation_total`.

All caches also keep, per slot, the partition that inserted the line
(`part_of`), so experiments can measure each partition's *actual*
footprint under any scheme -- the quantity plotted in Figure 8.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from array import array as _array
from dataclasses import dataclass, field
from typing import Callable

from repro.arrays.base import CacheArray, Candidate
from repro.replacement.base import ReplacementPolicy

#: ``part_of`` value for an empty slot.  Partition IDs are
#: non-negative and Vantage's unmanaged region is -1, so -2 keeps
#: ``owner >= 0`` as the "slot holds an owned line" test while still
#: distinguishing empty from unmanaged.
NO_PART = -2


def fused_default() -> bool:
    """Whether caches should install their fused access kernels.

    Read from ``REPRO_FUSED`` at cache construction ("0" disables);
    the object-oriented access path stays available as the fallback
    and as the oracle the fused kernels are pinned against.
    """
    return os.environ.get("REPRO_FUSED", "1") != "0"


#: Registry of fused access-kernel builders, keyed by concrete cache
#: class.  A builder is called as ``builder(cache)`` and returns a
#: closure with the signature of :meth:`PartitionedCache.access`, or
#: ``None`` when the cache's array/policy combination has no fused
#: kernel (the object path is used unchanged).
_FUSED_KERNELS: dict[type, Callable] = {}


def register_fused_kernel(cls: type):
    """Class decorator registering a fused kernel builder for ``cls``."""

    def decorator(builder: Callable):
        _FUSED_KERNELS[cls] = builder
        return builder

    return decorator


@dataclass
class CacheStats:
    """Per-partition access statistics.

    ``evictions[p]`` counts evictions whose *victim* belonged to
    partition ``p`` (the interference-relevant direction), regardless
    of which partition's miss caused them.
    """

    num_partitions: int
    accesses: list[int] = field(default_factory=list)
    hits: list[int] = field(default_factory=list)
    misses: list[int] = field(default_factory=list)
    evictions: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name in ("accesses", "hits", "misses", "evictions"):
            if not getattr(self, name):
                setattr(self, name, [0] * self.num_partitions)

    @property
    def total_accesses(self) -> int:
        return sum(self.accesses)

    @property
    def total_misses(self) -> int:
        return sum(self.misses)

    def miss_rate(self, part: int | None = None) -> float:
        if part is None:
            acc, miss = self.total_accesses, self.total_misses
        else:
            acc, miss = self.accesses[part], self.misses[part]
        return miss / acc if acc else 0.0

    def reset(self) -> None:
        # In place: fused access kernels capture these lists at build
        # time, so rebinding them would silently disconnect a kernel
        # from the stats it reports into.
        for counters in (self.accesses, self.hits, self.misses, self.evictions):
            for i in range(len(counters)):
                counters[i] = 0


class PartitionedCache(ABC):
    """Common behaviour for every cache front-end.

    Parameters
    ----------
    array:
        Backing :class:`CacheArray`.
    num_partitions:
        Number of partitions the scheme must support (1 for the
        unpartitioned baseline).
    """

    #: "ways" or "lines" -- the unit of ``set_allocations``.
    allocation_unit: str = "lines"

    def __init__(self, array: CacheArray, num_partitions: int):
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive, got {num_partitions}")
        self.array = array
        self.num_partitions = num_partitions
        self.num_lines = array.num_lines
        self.stats = CacheStats(num_partitions)
        # Flat owner column (structure-of-arrays): NO_PART for empty
        # slots, UNMANAGED (-1) for Vantage's unmanaged region,
        # otherwise the owning partition -- so ``owner >= 0`` is the
        # single hot-path ownership test.
        self.part_of = _array("q", [NO_PART]) * array.num_lines
        self._sizes = [0] * num_partitions
        # Bound tag-lookup for the access hot path (the array's
        # _slot_of dict is created once and never replaced).
        self._lookup = array._slot_of.get
        #: Optional measurement hook called as ``fn(victim_slot, victim_part)``
        #: immediately *before* an occupied victim is evicted.
        self.eviction_hook: Callable[[int, int], None] | None = None
        #: True when a fused access kernel is installed on this instance.
        self.fused = False

    # ------------------------------------------------------------------
    # Public surface.
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def allocation_total(self) -> int:
        """Total capacity available for allocation, in allocation units."""

    @abstractmethod
    def set_allocations(self, units: list[int]) -> None:
        """Install per-partition targets (length ``num_partitions``)."""

    @abstractmethod
    def access(self, addr: int, part: int = 0) -> bool:
        """Perform one access; returns ``True`` on hit."""

    def partition_size(self, part: int) -> int:
        """Current footprint of ``part`` in lines (measured, not target)."""
        return self._sizes[part]

    def partition_sizes(self) -> list[int]:
        return list(self._sizes)

    def reset_stats(self) -> None:
        self.stats.reset()

    # ------------------------------------------------------------------
    # Fused access kernels.
    # ------------------------------------------------------------------

    def _install_fused(self) -> None:
        """Install this class's fused access kernel, if one is
        registered and ``REPRO_FUSED`` permits.

        Called at the end of each registered concrete class's
        ``__init__`` (guarded by ``type(self) is Cls`` so subclasses
        that override the access path are never fused).  The kernel is
        a closure bound to this instance's state columns, installed as
        an *instance* attribute shadowing the ``access`` method; the
        method itself remains the semantic definition and the
        ``REPRO_FUSED=0`` fallback.
        """
        if not fused_default():
            return
        builder = _FUSED_KERNELS.get(type(self))
        if builder is None:
            return
        kernel = builder(self)
        if kernel is None:
            return
        self.__dict__["access"] = kernel
        self.fused = True

    def _remove_fused(self) -> None:
        """Drop the instance-level fused kernel, restoring the method."""
        self.__dict__.pop("access", None)
        self.fused = False

    def register_stats(self, group) -> None:
        """Register the per-partition front-end counters; subclasses
        extend with scheme-specific registers."""
        st = self.stats
        group.stat(
            "accesses", lambda: list(st.accesses), "per-partition accesses"
        )
        group.stat("hits", lambda: list(st.hits), "per-partition hits")
        group.stat("misses", lambda: list(st.misses), "per-partition misses")
        group.stat(
            "evictions",
            lambda: list(st.evictions),
            "per-partition evictions (victim's partition)",
        )
        group.stat(
            "partition_sizes",
            lambda: self.partition_sizes(),
            "per-partition resident footprints, in lines",
        )

    # ------------------------------------------------------------------
    # Bookkeeping helpers for subclasses.
    # ------------------------------------------------------------------

    def _record_access(self, part: int, hit: bool) -> None:
        st = self.stats
        st.accesses[part] += 1
        if hit:
            st.hits[part] += 1
        else:
            st.misses[part] += 1

    def _evict_bookkeeping(self, victim: Candidate) -> None:
        """Account for the eviction of an occupied ``victim``."""
        owner = self.part_of[victim.slot]
        if owner >= 0:
            if self.eviction_hook is not None:
                self.eviction_hook(victim.slot, owner)
            self.stats.evictions[owner] += 1
            self._sizes[owner] -= 1
            self.part_of[victim.slot] = NO_PART

    def _install_bookkeeping(
        self, addr: int, part: int, victim: Candidate, moves: list[tuple[int, int]]
    ) -> int:
        """Relocate ``part_of`` along ``moves`` and claim the landing slot.

        Returns the slot the new line landed in (``victim.path[0]``).
        """
        part_of = self.part_of
        for src, dst in moves:
            part_of[dst] = part_of[src]
            part_of[src] = NO_PART
        landing = victim.path[0]
        part_of[landing] = part
        self._sizes[part] += 1
        return landing

    @staticmethod
    def _first_empty(candidates: list[Candidate]) -> Candidate | None:
        for cand in candidates:
            if cand.addr is None:
                return cand
        return None


class BaselineCache(PartitionedCache):
    """Unpartitioned cache: one array plus one replacement policy.

    This is the paper's LRU / RRIP baseline ("LRU-SA16", "LRU-Z4/52",
    "SRRIP-Z4/52", ...).  Partition IDs are still accepted and tracked
    so per-thread statistics and footprints can be measured, but they
    never influence replacement.
    """

    allocation_unit = "lines"

    def __init__(self, array: CacheArray, policy: ReplacementPolicy, num_partitions: int = 1):
        super().__init__(array, num_partitions)
        if policy.num_lines != array.num_lines:
            raise ValueError("policy and array disagree on num_lines")
        self.policy = policy
        if type(self) is BaselineCache:
            self._install_fused()

    @property
    def allocation_total(self) -> int:
        return self.num_lines

    def set_allocations(self, units: list[int]) -> None:
        # An unpartitioned cache has nothing to enforce; accept and
        # ignore so allocation policies can drive any scheme uniformly.
        if len(units) != self.num_partitions:
            raise ValueError("allocation vector length mismatch")

    def register_stats(self, group) -> None:
        super().register_stats(group)
        if hasattr(self.policy, "register_stats"):
            self.policy.register_stats(
                group.group("replacement", "base replacement policy")
            )

    def access(self, addr: int, part: int = 0) -> bool:
        array = self.array
        st = self.stats
        slot = self._lookup(addr)
        if slot is not None:
            self.policy.on_hit(slot, part, addr)
            st.accesses[part] += 1
            st.hits[part] += 1
            return True

        st.accesses[part] += 1
        st.misses[part] += 1
        fast = array.candidate_slots(addr)
        if fast is not None:
            slots, parents, has_empty = fast
            if has_empty:
                victim = array.make_candidate(slots, parents, len(slots) - 1)
            else:
                index = self.policy.select_victim_index(slots)
                if index is None:
                    candidates = [
                        array.make_candidate(slots, parents, i)
                        for i in range(len(slots))
                    ]
                    victim = self.policy.select_victim(candidates)
                else:
                    victim = array.make_candidate(slots, parents, index)
                self._evict_bookkeeping(victim)
        else:
            candidates = array.candidates(addr)
            victim = self._first_empty(candidates)
            if victim is None:
                victim = self.policy.select_victim(candidates)
                self._evict_bookkeeping(victim)
        moves = array.install(addr, victim)
        for src, dst in moves:
            self.policy.on_move(src, dst)
        landing = self._install_bookkeeping(addr, part, victim, moves)
        self.policy.on_insert(landing, part, addr)
        return False
