"""Baseline and rival partitioning schemes (Vantage lives in ``repro.core``)."""

from repro.partitioning.base_cache import BaselineCache, CacheStats, PartitionedCache
from repro.partitioning.capabilities import (
    TABLE1_COLUMNS,
    TABLE1_ROWS,
    SchemeCapabilities,
    format_table1,
)
from repro.partitioning.pipp import PIPPCache
from repro.partitioning.selective import SelectiveAllocationCache
from repro.partitioning.way_partitioning import WayPartitionedCache

# Imported last, for its side effects: registers the fused access
# kernels for the schemes defined above, and the vectorized batch
# variants consulted under REPRO_NUMPY=1.
import repro.partitioning.fused  # noqa: E402,F401
import repro.partitioning.vectorized  # noqa: E402,F401

__all__ = [
    "BaselineCache",
    "CacheStats",
    "PIPPCache",
    "PartitionedCache",
    "SchemeCapabilities",
    "SelectiveAllocationCache",
    "TABLE1_COLUMNS",
    "TABLE1_ROWS",
    "WayPartitionedCache",
    "format_table1",
]
