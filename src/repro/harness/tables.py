"""Result-table formatting shared by the benchmarks.

Each benchmark prints the same kind of rows the paper's figures plot;
these helpers keep the output format consistent and save raw results
as JSON next to the benchmarks for later inspection.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.stats import fraction_above, geo_mean

RESULTS_DIR = Path(__file__).resolve().parents[3] / "results"


def distribution_row(name: str, rel_throughputs: Sequence[float]) -> dict:
    """Summary of one scheme's normalised-throughput distribution:
    the quantities the text of Section 6.1 quotes."""
    return {
        "scheme": name,
        "geomean": geo_mean(rel_throughputs),
        "improved_frac": fraction_above(rel_throughputs, 1.0),
        "degraded_frac": fraction_above([-x for x in rel_throughputs], -1.0),
        "best": max(rel_throughputs),
        "worst": min(rel_throughputs),
    }


def format_distribution_table(rows: list[dict], title: str) -> str:
    lines = [title]
    header = f"{'scheme':28s} {'geomean':>8s} {'improved':>9s} {'degraded':>9s} {'best':>7s} {'worst':>7s}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row['scheme']:28s} "
            f"{row['geomean']:8.3f} "
            f"{row['improved_frac']:8.0%} "
            f"{row['degraded_frac']:8.0%} "
            f"{row['best']:7.3f} "
            f"{row['worst']:7.3f}"
        )
    return "\n".join(lines)


def format_curve_table(
    title: str,
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    x_label: str = "x",
    fmt: str = "{:.4g}",
) -> str:
    """Aligned table with one column per named series (figure data)."""
    lines = [title]
    names = list(series)
    header = f"{x_label:>12s} " + " ".join(f"{n:>14s}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(xs):
        cells = " ".join(f"{fmt.format(series[n][i]):>14s}" for n in names)
        lines.append(f"{fmt.format(x):>12s} {cells}")
    return "\n".join(lines)


def save_results(name: str, payload: dict) -> Path:
    """Persist one experiment's raw output under ``results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    return path
