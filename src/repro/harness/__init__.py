"""Experiment harness: scheme factory, mix runners, scaling, tables."""

from repro.harness.classify import classify_app, classify_curve, mpki_curve
from repro.harness.env import (
    PAPER_EPOCH_CYCLES,
    PAPER_INSTRUCTIONS,
    PAPER_MIXES_PER_CLASS,
    class_stride,
    env_int,
    epoch_cycles,
    instructions_per_app,
    mixes_per_class,
)
from repro.harness.parallel import SimJob, SimOutcome, default_workers, run_jobs
from repro.harness.runner import MixRun, build_policy, relative_throughputs, run_mix
from repro.harness.schemes import build_array, build_cache, default_vantage_config
from repro.harness.tables import (
    distribution_row,
    format_curve_table,
    format_distribution_table,
    save_results,
)

__all__ = [
    "MixRun",
    "PAPER_EPOCH_CYCLES",
    "PAPER_INSTRUCTIONS",
    "PAPER_MIXES_PER_CLASS",
    "SimJob",
    "SimOutcome",
    "build_array",
    "build_cache",
    "build_policy",
    "class_stride",
    "classify_app",
    "classify_curve",
    "default_vantage_config",
    "default_workers",
    "distribution_row",
    "env_int",
    "epoch_cycles",
    "format_curve_table",
    "format_distribution_table",
    "instructions_per_app",
    "mixes_per_class",
    "mpki_curve",
    "relative_throughputs",
    "run_jobs",
    "run_mix",
    "save_results",
]
