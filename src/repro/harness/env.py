"""Environment-variable scaling knobs for the benchmark suite.

Pure-Python simulation cannot run the paper's 350 mixes x 200 M
instructions in a benchmark session; these knobs pick the default
scale and let users crank any experiment back up:

- ``REPRO_INSTRUCTIONS``: instructions simulated per application
  (paper: 200 000 000).
- ``REPRO_MIXES_PER_CLASS``: mixes sampled per workload class
  (paper: 10, i.e. 350 mixes total).
- ``REPRO_CLASS_STRIDE``: subsample the 35 classes (1 = all).
- ``REPRO_EPOCH_CYCLES``: UCP repartitioning period (paper: 5 M).
"""

from __future__ import annotations

import os

PAPER_INSTRUCTIONS = 200_000_000
PAPER_MIXES_PER_CLASS = 10
PAPER_EPOCH_CYCLES = 5_000_000


def env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {value!r}") from None


def instructions_per_app(default: int = 1_200_000) -> int:
    return env_int("REPRO_INSTRUCTIONS", default)


def mixes_per_class(default: int = 1) -> int:
    return env_int("REPRO_MIXES_PER_CLASS", default)


def class_stride(default: int = 1) -> int:
    return env_int("REPRO_CLASS_STRIDE", default)


def epoch_cycles(default: int = 250_000) -> int:
    return env_int("REPRO_EPOCH_CYCLES", default)


def require_bitwise(context: str) -> None:
    """Fail fast when ``REPRO_FASTFWD=1`` would undermine a run that
    must produce bitwise-exact output.

    Golden-stats snapshots and the parity suites pin exact simulation;
    fast-forward replays epoch tails through a model, so its counters
    are *accurate* but not *exact*.  Call this at the top of such runs
    so a stray environment override produces a clear error instead of
    a baffling diff.
    """
    if os.environ.get("REPRO_FASTFWD", "0") == "1":
        raise RuntimeError(
            f"REPRO_FASTFWD=1 cannot be combined with {context}: "
            f"fast-forward replays converged epoch tails through the "
            f"analytical model, so output is not bitwise-exact. Unset "
            f"REPRO_FASTFWD (or set it to 0) for this run."
        )
