"""Environment-variable scaling knobs for the benchmark suite.

Pure-Python simulation cannot run the paper's 350 mixes x 200 M
instructions in a benchmark session; these knobs pick the default
scale and let users crank any experiment back up:

- ``REPRO_INSTRUCTIONS``: instructions simulated per application
  (paper: 200 000 000).
- ``REPRO_MIXES_PER_CLASS``: mixes sampled per workload class
  (paper: 10, i.e. 350 mixes total).
- ``REPRO_CLASS_STRIDE``: subsample the 35 classes (1 = all).
- ``REPRO_EPOCH_CYCLES``: UCP repartitioning period (paper: 5 M).
"""

from __future__ import annotations

import os

PAPER_INSTRUCTIONS = 200_000_000
PAPER_MIXES_PER_CLASS = 10
PAPER_EPOCH_CYCLES = 5_000_000


def env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {value!r}") from None


def instructions_per_app(default: int = 1_200_000) -> int:
    return env_int("REPRO_INSTRUCTIONS", default)


def mixes_per_class(default: int = 1) -> int:
    return env_int("REPRO_MIXES_PER_CLASS", default)


def class_stride(default: int = 1) -> int:
    return env_int("REPRO_CLASS_STRIDE", default)


def epoch_cycles(default: int = 250_000) -> int:
    return env_int("REPRO_EPOCH_CYCLES", default)
