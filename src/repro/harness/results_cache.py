"""Content-addressed on-disk cache of simulation results.

A simulation is a pure function of its job description (mix, scheme,
system config, instruction budget, seeds and knobs), so its outcome
can be memoised on disk: re-running a figure after editing plotting
or analysis code costs nothing, and a mix suite interrupted halfway
resumes where it stopped.

Keys are SHA-256 digests of a canonical JSON encoding of the job
(plus ``CACHE_VERSION`` and the scheme's registry fingerprint);
payloads are pickled :class:`~repro.harness.parallel.SimOutcome`
objects.  The fingerprint covers the builder source of the scheme and
its array, so editing how a scheme is *constructed* invalidates its
cached results automatically; bump ``CACHE_VERSION`` for behavioural
changes the fingerprint cannot see (e.g. edits to the simulation loop
itself).

Environment knobs:

- ``REPRO_CACHE_DIR``: cache directory (default ``results/cache``).
- ``REPRO_RESULTS_CACHE=0``: disable reads and writes entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path

#: Bump when simulation behaviour changes (results would differ).
CACHE_VERSION = 1

_DEFAULT_DIR = Path("results") / "cache"

#: Process-wide telemetry counters (read by the harness stats tree).
HITS = 0
MISSES = 0
STORES = 0
CORRUPT = 0


def counters() -> dict[str, int]:
    """Current hit/miss/store counts for this process."""
    return {
        "hits": HITS,
        "misses": MISSES,
        "stores": STORES,
        "corrupt_entries": CORRUPT,
    }


def register_stats(group) -> None:
    """Register the cache counters into a stats tree group."""
    group.stat("hits", lambda: HITS, "results served from the on-disk cache")
    group.stat("misses", lambda: MISSES, "results that had to be simulated")
    group.stat("stores", lambda: STORES, "fresh results persisted to disk")
    group.stat(
        "corrupt_entries",
        lambda: CORRUPT,
        "torn or unpicklable entries dropped and treated as misses",
    )


def cache_enabled() -> bool:
    return os.environ.get("REPRO_RESULTS_CACHE", "1") != "0"


def cache_dir() -> Path:
    override = os.environ.get("REPRO_CACHE_DIR")
    return Path(override) if override else _DEFAULT_DIR


def _canonical(value):
    """Reduce a job field to canonically-JSON-encodable data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, **fields}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"job field of type {type(value).__name__} is not cacheable")


def job_key(job) -> str:
    """Stable content hash identifying ``job``'s simulation."""
    # Imported lazily: this module is imported by repro.harness's
    # __init__ chain, while schemes.py sits above it.
    from repro.harness.schemes import scheme_fingerprint

    payload = {
        "version": CACHE_VERSION,
        "job": _canonical(job),
        "registry": scheme_fingerprint(job.scheme),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _entry_path(key: str) -> Path:
    # Two-level fan-out keeps directory listings manageable.
    return cache_dir() / key[:2] / f"{key}.pkl"


def load(key: str):
    """The cached outcome for ``key``, or ``None``.

    A corrupt entry -- torn write, truncation, stale class layout, or
    any other unpickling failure -- is never an error: the bad file is
    deleted, ``corrupt_entries`` is bumped, and the lookup reports a
    miss so the sweep simply re-simulates the job.
    """
    global HITS, MISSES, CORRUPT
    if not cache_enabled():
        return None
    path = _entry_path(key)
    try:
        with path.open("rb") as fh:
            outcome = pickle.load(fh)
    except (FileNotFoundError, IsADirectoryError):
        MISSES += 1
        return None
    except Exception:
        # Unpickling a torn or hostile payload can raise nearly
        # anything (UnpicklingError, EOFError, AttributeError,
        # ImportError, ValueError, ...): drop the entry and miss.
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass
        MISSES += 1
        CORRUPT += 1
        return None
    HITS += 1
    return outcome


def store(key: str, outcome) -> None:
    """Persist ``outcome`` under ``key`` (atomic, best-effort)."""
    global STORES
    if not cache_enabled():
        return
    STORES += 1
    path = _entry_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(outcome, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except OSError:
        # A full or read-only disk must not fail the simulation.
        try:
            os.unlink(tmp)
        except OSError:
            pass
