"""Content-addressed on-disk cache of simulation results.

A simulation is a pure function of its job description (mix, scheme,
system config, instruction budget, seeds and knobs), so its outcome
can be memoised on disk: re-running a figure after editing plotting
or analysis code costs nothing, and a mix suite interrupted halfway
resumes where it stopped.

Keys are SHA-256 digests of a canonical JSON encoding of the job
(plus ``CACHE_VERSION``); payloads are pickled
:class:`~repro.harness.parallel.SimOutcome` objects.  Bump
``CACHE_VERSION`` whenever a change alters simulation *behaviour*
(not just speed) so stale entries can never be returned.

Environment knobs:

- ``REPRO_CACHE_DIR``: cache directory (default ``results/cache``).
- ``REPRO_RESULTS_CACHE=0``: disable reads and writes entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path

#: Bump when simulation behaviour changes (results would differ).
CACHE_VERSION = 1

_DEFAULT_DIR = Path("results") / "cache"


def cache_enabled() -> bool:
    return os.environ.get("REPRO_RESULTS_CACHE", "1") != "0"


def cache_dir() -> Path:
    override = os.environ.get("REPRO_CACHE_DIR")
    return Path(override) if override else _DEFAULT_DIR


def _canonical(value):
    """Reduce a job field to canonically-JSON-encodable data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, **fields}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"job field of type {type(value).__name__} is not cacheable")


def job_key(job) -> str:
    """Stable content hash identifying ``job``'s simulation."""
    payload = {"version": CACHE_VERSION, "job": _canonical(job)}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _entry_path(key: str) -> Path:
    # Two-level fan-out keeps directory listings manageable.
    return cache_dir() / key[:2] / f"{key}.pkl"


def load(key: str):
    """The cached outcome for ``key``, or ``None``."""
    if not cache_enabled():
        return None
    path = _entry_path(key)
    try:
        with path.open("rb") as fh:
            return pickle.load(fh)
    except FileNotFoundError:
        return None
    except (pickle.UnpicklingError, EOFError, AttributeError):
        # Torn write or stale class layout: drop the entry.
        path.unlink(missing_ok=True)
        return None


def store(key: str, outcome) -> None:
    """Persist ``outcome`` under ``key`` (atomic, best-effort)."""
    if not cache_enabled():
        return
    path = _entry_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(outcome, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except OSError:
        # A full or read-only disk must not fail the simulation.
        try:
            os.unlink(tmp)
        except OSError:
            pass
