"""``repro bench``: timed comparison of the optimized simulation
kernels against the reference (pre-optimization) implementations.

The pinned micro-benchmark is the paper's headline kernel: the
``sftn1`` 4-core mix on the 2 MB small system under Vantage-Z4/52 --
the configuration that exercises the zcache replacement walk and the
Vantage demotion scan hardest.  ``lru-sa16`` rides along as a
secondary kernel covering the baseline-cache miss path.  120 000
instructions per core is enough to take the L2 from cold through its
high-occupancy steady state (including forced managed evictions)
while keeping a bench run under a minute.

Both sides of each kernel run in this process, best-of-``rounds``,
and their :class:`~repro.sim.system.SystemResult`s are asserted
*equal*: the optimizations are strength reductions, not behaviour
changes, so any divergence fails the bench run loudly.

:func:`bench_trace_pipeline` additionally pins the batched trace
pipeline (see :mod:`repro.traces`): the full headline kernel with the
chunk cursor versus the generator feed, and the trace path alone
(generator production versus warm chunk replay), again with equality
asserted on both.

The run also measures the telemetry overhead on the headline kernel
(stats collection on vs off) and fails if it exceeds
:data:`STATS_OVERHEAD_BUDGET` -- the stats pipeline must stay cheap
enough to leave enabled everywhere.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

from repro import telemetry
from repro.harness.runner import build_policy
from repro.harness.schemes import build_cache
from repro.partitioning.base_cache import batch_default, fused_default
from repro.sim import CMPSystem
from repro.sim.configs import small_system
from repro.sim.reference import (
    as_reference_cache,
    as_reference_policy,
    reference_run,
)
from repro.workloads import make_mix

#: The pinned micro-benchmark (do not change without re-baselining).
MIX_CLASS = "sftn"
MIX_INDEX = 1
SEED = 0
INSTRUCTIONS = 120_000
ROUNDS = 3
SMOKE_INSTRUCTIONS = 15_000

#: Repartitioning epoch for bench runs.  The small system's default
#: epoch (5M cycles) is longer than the whole pinned run, which would
#: leave the allocation path (UMON curve read-out, Lookahead,
#: ``set_allocations``) outside the benchmark entirely.  150k cycles
#: puts several epoch boundaries inside even the smoke run, so the
#: bench exercises -- and the equality assertions pin -- repartitioning
#: under both kernel paths, and ``policy.last_allocation`` is
#: guaranteed non-empty afterwards (asserted in :func:`run_bench`).
BENCH_EPOCH_CYCLES = 150_000

#: Maximum fractional slowdown stats collection may cost on the
#: headline kernel (full runs).  Smoke runs use the looser smoke
#: budget: a 15k-instruction run is dominated by timing noise, and the
#: smoke step exists to exercise the guard, not to measure precisely.
STATS_OVERHEAD_BUDGET = 0.05
SMOKE_STATS_OVERHEAD_BUDGET = 0.50

#: (scheme, partitioned) kernels; the first entry is the headline.
KERNELS = (
    ("vantage-z4/52", True),
    ("lru-sa16", False),
)

#: The pinned sweep benchmark (``repro bench --sweep``): a fig-6-style
#: multi-scheme mini-sweep over the headline mix, run as successive
#: ``run_jobs`` fan-outs the way figure scripts and service clients
#: issue them.  Every round replays the *same* traces under different
#: schemes, so without the shared-memory fabric each round's fresh
#: worker pool re-compiles every chunk privately; with
#: ``REPRO_TRACE_SHM=1`` the first round publishes once and every
#: later worker attaches zero-copy.  Two workers is the floor that
#: exercises cross-process sharing while fitting CI runners.
SWEEP_ROUNDS = (
    ("vantage-z4/52", "lru-sa16"),
    ("drrip-z4/16", "waypart-sa16"),
    ("ta-drrip-sa16", "srrip-sa16"),
)
#: Smoke rounds keep two schemes per round: a single pending job
#: would run inline (no pool, no publish phase) and exercise nothing.
SWEEP_SMOKE_ROUNDS = (
    ("vantage-z4/52", "lru-sa16"),
    ("drrip-z4/16", "srrip-sa16"),
)
SWEEP_SEEDS = (0, 1, 2)
SWEEP_SMOKE_SEEDS = (0,)
SWEEP_INSTRUCTIONS = 60_000
SWEEP_SMOKE_INSTRUCTIONS = 12_000
SWEEP_WORKERS = 2


def _run_once(
    scheme: str,
    partitioned: bool,
    instructions: int,
    reference: bool,
    use_chunks: bool | None = None,
    use_batch: bool | None = None,
    use_fastfwd: bool | None = False,
):
    """Build a fresh system and time one simulation of the kernel.

    Returns ``(elapsed, result, tree, policy)``; ``tree`` is the run's
    stats tree for optimized runs and ``None`` for reference runs (the
    reference wrappers predate the telemetry spine).  ``use_chunks``
    pins the optimized loop's trace feed (chunk cursor vs generator);
    reference runs always use the generator feed.  ``use_fastfwd``
    defaults to *pinned off* (not the environment): every classic
    bench section asserts bitwise equality between kernel paths, which
    a stray ``REPRO_FASTFWD=1`` would silently break; only
    :func:`bench_fastfwd` opts in.
    """
    config = small_system(epoch_cycles=BENCH_EPOCH_CYCLES)
    mix = make_mix(MIX_CLASS, MIX_INDEX)
    cache = build_cache(scheme, config.l2_lines, config.num_cores, seed=SEED)
    policy = build_policy(cache, config, SEED) if partitioned else None
    if reference:
        as_reference_cache(cache)
        if policy is not None:
            as_reference_policy(policy)
    system = CMPSystem(
        cache,
        mix.trace_factories(SEED),
        config,
        policy=policy,
        use_chunks=use_chunks,
        use_batch=use_batch,
        use_fastfwd=use_fastfwd,
    )
    tree = None
    if not reference:
        tree = telemetry.system_tree(cache=cache, system=system, policy=policy)
    start = time.perf_counter()
    if reference:
        result = reference_run(system, instructions)
    else:
        result = system.run(instructions)
    return time.perf_counter() - start, result, tree, policy


def _peak_kib(scheme: str, partitioned: bool, instructions: int, reference: bool):
    """Peak traced allocation (KiB) of one untimed build+run."""
    tracemalloc.start()
    try:
        _run_once(scheme, partitioned, instructions, reference)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return round(peak / 1024, 1)


def bench_kernel(
    scheme: str, partitioned: bool, instructions: int, rounds: int
) -> dict:
    """Best-of-``rounds`` times for both kernel implementations.

    A separate, untimed run of each side under :mod:`tracemalloc`
    records the peak allocation footprint (tracing slows execution far
    too much to share a run with the timing loop).  The flat
    structure-of-arrays slot state shows up here: the optimized side's
    steady state is a handful of ``array('q')`` columns, while the
    reference side churns Candidate lists on every miss.
    """
    opt_best = ref_best = None
    opt_result = ref_result = None
    opt_tree = None
    opt_policy = None
    for _ in range(rounds):
        elapsed, opt_result, opt_tree, opt_policy = _run_once(
            scheme, partitioned, instructions, False
        )
        if opt_best is None or elapsed < opt_best:
            opt_best = elapsed
        elapsed, ref_result, _, _ = _run_once(
            scheme, partitioned, instructions, True
        )
        if ref_best is None or elapsed < ref_best:
            ref_best = elapsed
    identical = opt_result == ref_result
    return {
        "scheme": scheme,
        "partitioned": partitioned,
        "instructions": instructions,
        "rounds": rounds,
        "optimized_s": round(opt_best, 4),
        "reference_s": round(ref_best, 4),
        "speedup": round(ref_best / opt_best, 3) if opt_best else 0.0,
        "optimized_peak_kib": _peak_kib(scheme, partitioned, instructions, False),
        "reference_peak_kib": _peak_kib(scheme, partitioned, instructions, True),
        "identical": identical,
        "last_allocation": (
            list(opt_policy.last_allocation) if opt_policy is not None else None
        ),
        "stats": opt_tree.snapshot() if opt_tree is not None else None,
    }


#: Pairs per core the trace-feed micro-kernel produces/replays.
FEED_PAIRS = 50_000


def bench_trace_pipeline(instructions: int, rounds: int) -> dict:
    """The trace pipeline's two speedups on the pinned kernel.

    ``kernel``: the full pinned simulation with the chunk cursor
    (store warm, the sweep steady state) against the same optimized
    loop fed by per-event generator calls -- both must produce *equal*
    results.  This number is bounded by the trace feed's share of the
    kernel (~25% after PR 1's miss-path work), so it is modest.

    ``feed``: trace production/consumption alone -- pulling
    ``FEED_PAIRS`` pairs per core of the pinned mix through fresh
    generators versus walking warm chunk buffers.  This is the
    trace-path speedup the chunk store delivers to every job in a
    sweep after the first.
    """
    from repro import traces

    scheme, partitioned = KERNELS[0]
    store = traces.get_store()

    # Warm the store (untimed): sweeps compile each mix's chunks once.
    _run_once(scheme, partitioned, instructions, False, use_chunks=True)

    chunk_best = gen_best = None
    chunk_result = gen_result = None
    for _ in range(rounds):
        elapsed, chunk_result, _, _ = _run_once(
            scheme, partitioned, instructions, False, use_chunks=True
        )
        if chunk_best is None or elapsed < chunk_best:
            chunk_best = elapsed
        elapsed, gen_result, _, _ = _run_once(
            scheme, partitioned, instructions, False, use_chunks=False
        )
        if gen_best is None or elapsed < gen_best:
            gen_best = elapsed

    mix = make_mix(MIX_CLASS, MIX_INDEX)
    specs = [
        app.trace_spec(base=core << 44, seed=SEED * 1000 + core)
        for core, app in enumerate(mix.apps)
    ]

    def feed_generator() -> int:
        checksum = 0
        for spec in specs:
            nxt = spec.generator().__next__
            for _ in range(FEED_PAIRS):
                gap, addr = nxt()
                checksum += gap + addr
        return checksum

    def feed_chunks() -> int:
        checksum = 0
        for spec in specs:
            index = 0
            buf = store.chunk_list(spec, 0)
            limit = len(buf)
            pos = 0
            for _ in range(FEED_PAIRS):
                if pos >= limit:
                    index += 1
                    buf = store.chunk_list(spec, index)
                    limit = len(buf)
                    pos = 0
                checksum += buf[pos] + buf[pos + 1]
                pos += 2
        return checksum

    feed_chunks()  # warm any chunks past the kernel's reach
    feed_gen_best = feed_chunk_best = None
    gen_sum = chunk_sum = None
    for _ in range(rounds):
        start = time.perf_counter()
        gen_sum = feed_generator()
        elapsed = time.perf_counter() - start
        if feed_gen_best is None or elapsed < feed_gen_best:
            feed_gen_best = elapsed
        start = time.perf_counter()
        chunk_sum = feed_chunks()
        elapsed = time.perf_counter() - start
        if feed_chunk_best is None or elapsed < feed_chunk_best:
            feed_chunk_best = elapsed

    return {
        "scheme": scheme,
        "instructions": instructions,
        "rounds": rounds,
        "kernel": {
            "generator_s": round(gen_best, 4),
            "chunk_s": round(chunk_best, 4),
            "speedup": round(gen_best / chunk_best, 3) if chunk_best else 0.0,
            "identical": chunk_result == gen_result,
        },
        "feed": {
            "pairs_per_core": FEED_PAIRS,
            "generator_s": round(feed_gen_best, 4),
            "chunk_s": round(feed_chunk_best, 4),
            "speedup": (
                round(feed_gen_best / feed_chunk_best, 3)
                if feed_chunk_best
                else 0.0
            ),
            "identical": gen_sum == chunk_sum,
        },
        "store": store.counters(),
    }


def bench_batch(instructions: int, rounds: int) -> dict:
    """The batch kernel layer's speedup on the pinned headline kernel.

    Times the optimized loop with the batch scheduling kernels on
    (``REPRO_BATCH=1``, the default) against the same loop on the
    single-access fused path (``REPRO_BATCH=0``); both must produce
    *equal* results.  This isolates the batch layer's contribution
    from the reference-vs-optimized headline numbers.
    """
    scheme, partitioned = KERNELS[0]
    on_best = off_best = None
    on_result = off_result = None
    on_calls = 0
    for _ in range(rounds):
        elapsed, on_result, _, _ = _run_once(
            scheme, partitioned, instructions, False, use_batch=True
        )
        if on_best is None or elapsed < on_best:
            on_best = elapsed
        elapsed, off_result, _, _ = _run_once(
            scheme, partitioned, instructions, False, use_batch=False
        )
        if off_best is None or elapsed < off_best:
            off_best = elapsed
    return {
        "scheme": scheme,
        "instructions": instructions,
        "rounds": rounds,
        "batch_on_s": round(on_best, 4),
        "batch_off_s": round(off_best, 4),
        "speedup": round(off_best / on_best, 3) if on_best else 0.0,
        "identical": on_result == off_result,
    }


def bench_fastfwd(instructions: int, rounds: int) -> dict:
    """The analytical fast-forward layer on the pinned headline kernel.

    Times the headline mix with fast-forward pinned on
    (``use_fastfwd=True``) against the exact optimized path
    (``use_fastfwd=False``) and against the reference implementation --
    the headline number.  The reference lane is re-timed *here*, in
    the same round loop, rather than reusing the kernel section's
    number: on a shared host the minutes between bench sections are
    enough for load drift to skew a ratio whose sides were measured
    at different times, so every round times all three lanes
    back-to-back and the best of each is compared.  Fast-forward
    replays converged epoch tails
    through the Vantage transfer-function model, so its output is
    *approximate by design*: instead of the equality assertion every
    other section carries, this one records the accuracy deltas the
    contract bounds (worst per-core miss-rate delta and final
    Lookahead-allocation delta versus the exact run) together with the
    skipped-access fraction, and :func:`run_bench` enforces the <=1%
    contract plus a nonzero skipped fraction on full runs.
    """
    scheme, _ = KERNELS[0]
    config = small_system(epoch_cycles=BENCH_EPOCH_CYCLES)
    mix = make_mix(MIX_CLASS, MIX_INDEX)

    def once(use_fastfwd: bool):
        cache = build_cache(
            scheme, config.l2_lines, config.num_cores, seed=SEED
        )
        policy = build_policy(cache, config, SEED)
        system = CMPSystem(
            cache,
            mix.trace_factories(SEED),
            config,
            policy=policy,
            use_fastfwd=use_fastfwd,
        )
        start = time.perf_counter()
        result = system.run(instructions)
        elapsed = time.perf_counter() - start
        return elapsed, (result, cache, policy, system)

    on_best = off_best = ref_best = None
    on = off = None
    for _ in range(rounds):
        elapsed, run = once(True)
        if on_best is None or elapsed < on_best:
            on_best, on = elapsed, run
        elapsed, run = once(False)
        if off_best is None or elapsed < off_best:
            off_best, off = elapsed, run
        elapsed, _, _, _ = _run_once(
            scheme, True, instructions, reference=True
        )
        if ref_best is None or elapsed < ref_best:
            ref_best = elapsed

    on_result, on_cache, on_policy, on_system = on
    off_result, _, off_policy, _ = off
    ff = on_system.fastfwd
    worst_miss = max(
        abs(a - b)
        for a, b in zip(on_result.l2_miss_rates, off_result.l2_miss_rates)
    )
    total_units = on_cache.allocation_total
    alloc_delta = 0.0
    if on_policy.last_allocation and off_policy.last_allocation:
        alloc_delta = max(
            abs(a - b)
            for a, b in zip(
                on_policy.last_allocation, off_policy.last_allocation
            )
        ) / total_units
    return {
        "scheme": scheme,
        "instructions": instructions,
        "rounds": rounds,
        "enabled": bool(ff is not None and ff.enabled),
        "decline_reason": ff.decline_reason if ff is not None else None,
        "fastfwd_s": round(on_best, 4),
        "exact_s": round(off_best, 4),
        "speedup_vs_exact": (
            round(off_best / on_best, 3) if on_best else 0.0
        ),
        "reference_s": round(ref_best, 4),
        "speedup": (
            round(ref_best / on_best, 3) if on_best else 0.0
        ),
        "windows": ff.windows if ff is not None else 0,
        "triggers": ff.triggers if ff is not None else 0,
        "skips": ff.skips if ff is not None else 0,
        "aborts": ff.aborts if ff is not None else 0,
        "skipped_fraction": (
            round(ff.skipped_fraction(), 4) if ff is not None else 0.0
        ),
        "worst_miss_rate_delta": round(worst_miss, 5),
        "final_alloc_delta": round(alloc_delta, 5),
    }


def _run_lane(instructions: int, numpy_on: bool):
    """One single-core sa-LRU run on the requested batch lane.

    The vectorized kernels only engage on single-core systems, so the
    lane micro-kernel runs the pinned mix's first app alone against
    ``lru-sa16``.  Returns ``(elapsed, result, batch_kind)``.
    """
    config = small_system(num_cores=1)
    mix = make_mix(MIX_CLASS, MIX_INDEX)
    cache = build_cache("lru-sa16", config.l2_lines, 1, seed=SEED)
    factories = [mix.apps[0].trace_factory(base=0, seed=SEED * 1000)]
    prev = os.environ.get("REPRO_NUMPY")
    os.environ["REPRO_NUMPY"] = "1" if numpy_on else "0"
    try:
        system = CMPSystem(cache, factories, config, use_fastfwd=False)
        start = time.perf_counter()
        result = system.run(instructions)
        elapsed = time.perf_counter() - start
    finally:
        if prev is None:
            os.environ.pop("REPRO_NUMPY", None)
        else:
            os.environ["REPRO_NUMPY"] = prev
    return elapsed, result, system.batch_kind


def bench_lanes(instructions: int, rounds: int) -> dict:
    """Pure-python vs vectorized (``REPRO_NUMPY=1``) batch lanes.

    Both lanes are timed separately on the single-core sa-LRU lane
    kernel and recorded side by side; when numpy is unavailable the
    vectorized entry is ``None`` and only the pure-python lane runs.
    Results must be *equal* whenever both lanes ran.
    """
    try:
        import numpy  # noqa: F401

        numpy_available = True
    except ImportError:  # pragma: no cover - numpy is present in CI
        numpy_available = False

    python_best = numpy_best = None
    python_result = numpy_result = None
    python_kind = numpy_kind = None
    for _ in range(rounds):
        elapsed, python_result, python_kind = _run_lane(instructions, False)
        if python_best is None or elapsed < python_best:
            python_best = elapsed
        if numpy_available:
            elapsed, numpy_result, numpy_kind = _run_lane(instructions, True)
            if numpy_best is None or elapsed < numpy_best:
                numpy_best = elapsed
    report = {
        "scheme": "lru-sa16 (1 core)",
        "instructions": instructions,
        "rounds": rounds,
        "numpy_available": numpy_available,
        "pure_python": {
            "elapsed_s": round(python_best, 4),
            "batch_kind": python_kind,
        },
        "numpy": None,
        "identical": True,
    }
    if numpy_available:
        report["numpy"] = {
            "elapsed_s": round(numpy_best, 4),
            "batch_kind": numpy_kind,
        }
        report["identical"] = python_result == numpy_result
    return report


def compare_reports(
    current: dict, baseline: dict, tolerance: float = 0.10
) -> list[str]:
    """Compare two bench reports; return regression descriptions.

    A kernel regresses when its reference-vs-optimized speedup drops
    more than ``tolerance`` (fractional) below the baseline report's,
    and likewise for the batch layer's on/off speedup.  Kernels
    present in only one report are ignored (the suite may grow), as
    are smoke-mode baselines (their ratios are timing noise).
    """
    regressions: list[str] = []
    if baseline.get("smoke"):
        return regressions
    base_kernels = {
        row["scheme"]: row for row in baseline.get("kernels", [])
    }
    for row in current.get("kernels", []):
        base = base_kernels.get(row["scheme"])
        if base is None or not base.get("speedup"):
            continue
        floor = base["speedup"] * (1.0 - tolerance)
        if row["speedup"] < floor:
            regressions.append(
                f"{row['scheme']}: speedup {row['speedup']:.2f}x is more "
                f"than {tolerance:.0%} below the baseline "
                f"{base['speedup']:.2f}x"
            )
    base_batch = baseline.get("batch")
    cur_batch = current.get("batch")
    if base_batch and cur_batch and base_batch.get("speedup"):
        floor = base_batch["speedup"] * (1.0 - tolerance)
        if cur_batch["speedup"] < floor:
            regressions.append(
                f"batch layer ({cur_batch['scheme']}): speedup "
                f"{cur_batch['speedup']:.2f}x is more than "
                f"{tolerance:.0%} below the baseline "
                f"{base_batch['speedup']:.2f}x"
            )
    base_sweep = baseline.get("sweep")
    cur_sweep = current.get("sweep")
    if base_sweep and cur_sweep and base_sweep.get("shm_speedup"):
        floor = base_sweep["shm_speedup"] * (1.0 - tolerance)
        if (cur_sweep.get("shm_speedup") or 0.0) < floor:
            regressions.append(
                f"shm sweep: jobs/sec speedup "
                f"{cur_sweep.get('shm_speedup')}x is more than "
                f"{tolerance:.0%} below the baseline "
                f"{base_sweep['shm_speedup']:.2f}x"
            )
    return regressions


#: Per-kernel fields kept in a history entry: what compare_reports
#: reads, plus the raw timings behind the ratio for later inspection.
_HISTORY_KERNEL_FIELDS = (
    "scheme",
    "partitioned",
    "instructions",
    "optimized_s",
    "reference_s",
    "speedup",
)
_HISTORY_BATCH_FIELDS = ("scheme", "speedup", "batch_on_s", "batch_off_s")
#: Fast-forward history is record-only (no gate): its headline ratio
#: folds in convergence behaviour, so machine noise aside, a "drop"
#: can be a legitimate accuracy-motivated tuning change.  The series
#: still shows the trajectory.
_HISTORY_FASTFWD_FIELDS = (
    "scheme",
    "fastfwd_s",
    "exact_s",
    "reference_s",
    "speedup",
    "skipped_fraction",
)
#: Sweep-fabric history: the gated jobs/sec ratio plus the raw
#: numbers behind it.  The PSS ratio is recorded but not gated --
#: runner memory layout varies across hosts more than wall time does.
_HISTORY_SWEEP_FIELDS = (
    "jobs",
    "workers",
    "instructions",
    "shm_speedup",
    "pss_ratio",
    "identical",
)


def update_history(
    report: dict,
    path: str | Path,
    window: int = 5,
    tolerance: float = 0.10,
) -> tuple[list[str], int]:
    """Append ``report`` to the JSON history at ``path``, gating it
    against the best recent run.

    The history file holds a JSON list of slimmed bench entries, one
    per run.  Before appending, the report is compared (via
    :func:`compare_reports`) against a synthetic best-of baseline
    drawn from the last ``window`` non-smoke entries: per kernel
    scheme the highest recorded speedup, and the highest batch-layer
    speedup.  Comparing against the best of a window rather than the
    previous run keeps one slow run from silently ratcheting the
    floor down across a sequence of runs.  Smoke reports are appended
    (so the record shows CI activity) but never compared in either
    direction -- their ratios are timing noise.

    Returns ``(regressions, compared)``: the regression descriptions
    and how many history entries the baseline was drawn from.  The
    entry is appended even when regressions are found, so the slow
    run stays visible in the record.
    """
    path = Path(path)
    if path.exists():
        history = json.loads(path.read_text())
        if not isinstance(history, list):
            raise ValueError(
                f"{path} is not a bench history (expected a JSON list)"
            )
    else:
        history = []

    recent = [entry for entry in history if not entry.get("smoke")][-window:]
    if report.get("smoke"):
        recent = []  # smoke ratios are noise: record the run, skip the gate
    regressions: list[str] = []
    if recent:
        best_kernels: dict[str, dict] = {}
        best_batch: dict | None = None
        best_sweep: dict | None = None
        for entry in recent:
            for row in entry.get("kernels", []):
                best = best_kernels.get(row["scheme"])
                if best is None or row["speedup"] > best["speedup"]:
                    best_kernels[row["scheme"]] = row
            batch = entry.get("batch")
            if batch and (
                best_batch is None or batch["speedup"] > best_batch["speedup"]
            ):
                best_batch = batch
            sweep = entry.get("sweep")
            if sweep and sweep.get("shm_speedup") and (
                best_sweep is None
                or sweep["shm_speedup"] > best_sweep["shm_speedup"]
            ):
                best_sweep = sweep
        baseline = {
            "smoke": False,
            "kernels": list(best_kernels.values()),
            "batch": best_batch,
            "sweep": best_sweep,
        }
        regressions = compare_reports(report, baseline, tolerance)

    entry = {
        "tag": report.get("tag"),
        "smoke": bool(report.get("smoke")),
        "unix_time": round(time.time(), 3),
        "kernels": [
            {k: row[k] for k in _HISTORY_KERNEL_FIELDS if k in row}
            for row in report.get("kernels", [])
        ],
    }
    batch = report.get("batch")
    if batch:
        entry["batch"] = {
            k: batch[k] for k in _HISTORY_BATCH_FIELDS if k in batch
        }
    ffd = report.get("fastfwd")
    if ffd and ffd.get("enabled"):
        entry["fastfwd"] = {
            k: ffd[k]
            for k in _HISTORY_FASTFWD_FIELDS
            if ffd.get(k) is not None
        }
    sweep = report.get("sweep")
    if sweep:
        entry["sweep"] = {
            k: sweep[k] for k in _HISTORY_SWEEP_FIELDS if sweep.get(k) is not None
        }
    history.append(entry)
    path.write_text(json.dumps(history, indent=2) + "\n")
    return regressions, len(recent)


def bench_stats_overhead(instructions: int, rounds: int) -> dict:
    """Time the headline optimized kernel with telemetry on vs off.

    Both runs must produce *equal* results (collection may never
    perturb the simulation); the fractional slowdown is the number the
    <5% budget is enforced against.

    The fused kernels pushed the headline run under a third of a
    second, where shared-host load noise (one-sided: contention only
    ever *inflates* a run) dwarfs the few-percent true overhead, so
    per-side best-of times no longer estimate it reliably.  Instead
    each round times an adjacent on/off pair (order alternating so
    monotonic drift biases both sides equally) and the guard uses the
    *minimum* per-pair ratio: a lower bound on the true overhead under
    one-sided noise, and still a sound regression guard -- a genuine
    slowdown of the collection machinery inflates every pair, minimum
    included.  Per-side bests are kept for the report.
    """
    scheme, partitioned = KERNELS[0]
    rounds = max(rounds, 5)
    on_best = off_best = None
    on_result = off_result = None
    ratios = []
    prev = telemetry.enabled()
    try:
        for i in range(rounds):
            pair = {}
            for on in ((True, False) if i % 2 == 0 else (False, True)):
                telemetry.set_enabled(on)
                elapsed, result, _, _ = _run_once(
                    scheme, partitioned, instructions, False
                )
                pair[on] = elapsed
                if on:
                    on_result = result
                    if on_best is None or elapsed < on_best:
                        on_best = elapsed
                else:
                    off_result = result
                    if off_best is None or elapsed < off_best:
                        off_best = elapsed
            ratios.append(pair[True] / pair[False] - 1.0)
    finally:
        telemetry.set_enabled(prev)
    return {
        "scheme": scheme,
        "instructions": instructions,
        "rounds": rounds,
        "stats_on_s": round(on_best, 4),
        "stats_off_s": round(off_best, 4),
        "overhead": round(min(ratios), 4),
        "pair_overheads": [round(r, 4) for r in ratios],
        "identical": on_result == off_result,
    }


def run_bench(
    smoke: bool = False,
    tag: str | None = None,
    rounds: int | None = None,
    instructions: int | None = None,
    out_dir: str | Path = ".",
) -> dict:
    """Run the kernel set, print a table, write ``BENCH_<tag>.json``.

    ``smoke`` shrinks the run to a correctness check (fewer
    instructions, one round) for CI; timing ratios from a smoke run
    are not meaningful.
    """
    if instructions is None:
        instructions = SMOKE_INSTRUCTIONS if smoke else INSTRUCTIONS
    if rounds is None:
        rounds = 1 if smoke else ROUNDS
    if tag is None:
        tag = "smoke" if smoke else "local"

    kernels = [
        bench_kernel(scheme, partitioned, instructions, rounds)
        for scheme, partitioned in KERNELS
    ]
    trace = bench_trace_pipeline(instructions, rounds)
    batch = bench_batch(instructions, rounds)
    fastfwd = bench_fastfwd(instructions, rounds)
    lanes = bench_lanes(instructions, rounds)
    stats_overhead = bench_stats_overhead(instructions, rounds)
    budget = SMOKE_STATS_OVERHEAD_BUDGET if smoke else STATS_OVERHEAD_BUDGET
    report = {
        "tag": tag,
        "smoke": smoke,
        "fused": fused_default(),
        "batch": batch,
        "batch_default": batch_default(),
        "lanes": lanes,
        "pinned": {
            "mix": f"{MIX_CLASS}{MIX_INDEX}",
            "system": "small (2MB L2, 4 cores)",
            "instructions": instructions,
            "seed": SEED,
            "epoch_cycles": BENCH_EPOCH_CYCLES,
        },
        "kernels": kernels,
        "trace": trace,
        "fastfwd": fastfwd,
        "stats_overhead": {**stats_overhead, "budget": budget},
    }

    print(f"repro bench ({'smoke, ' if smoke else ''}{instructions} instrs/core, "
          f"best of {rounds}, fused={'on' if report['fused'] else 'off'})")
    print(f"{'kernel':>16s} {'reference':>10s} {'optimized':>10s} "
          f"{'speedup':>8s} {'peak KiB':>18s} {'identical':>10s}")
    for row in kernels:
        peaks = f"{row['reference_peak_kib']:.0f}/{row['optimized_peak_kib']:.0f}"
        print(
            f"{row['scheme']:>16s} {row['reference_s']:>9.3f}s "
            f"{row['optimized_s']:>9.3f}s {row['speedup']:>7.2f}x "
            f"{peaks:>18s} {str(row['identical']):>10s}"
        )
    kernel_part = trace["kernel"]
    feed_part = trace["feed"]
    print(
        f"trace pipeline on {trace['scheme']}: kernel "
        f"{kernel_part['speedup']:.2f}x (chunk {kernel_part['chunk_s']:.3f}s / "
        f"generator {kernel_part['generator_s']:.3f}s), feed "
        f"{feed_part['speedup']:.2f}x over {feed_part['pairs_per_core']} "
        f"pairs/core"
    )
    store = trace["store"]
    print(
        f"trace store: {store['mem_hits']} mem hits, "
        f"{store['disk_hits']} disk hits, {store['compiles']} compiles, "
        f"{store['bytes_written']} bytes written"
    )
    print(
        f"batch layer on {batch['scheme']}: {batch['speedup']:.2f}x "
        f"(on {batch['batch_on_s']:.3f}s / off {batch['batch_off_s']:.3f}s), "
        f"identical={batch['identical']}"
    )
    if fastfwd["enabled"]:
        print(
            f"fast-forward on {fastfwd['scheme']}: "
            f"{fastfwd['speedup']:.2f}x vs reference, "
            f"{fastfwd['speedup_vs_exact']:.2f}x vs exact "
            f"(fastfwd {fastfwd['fastfwd_s']:.3f}s / "
            f"exact {fastfwd['exact_s']:.3f}s), skipped "
            f"{fastfwd['skipped_fraction']:.1%} of accesses "
            f"({fastfwd['skips']} skips, {fastfwd['aborts']} aborts), "
            f"worst miss-rate delta {fastfwd['worst_miss_rate_delta']:.4f}, "
            f"alloc delta {fastfwd['final_alloc_delta']:.4f}"
        )
    else:
        print(
            f"fast-forward on {fastfwd['scheme']}: declined "
            f"({fastfwd['decline_reason']})"
        )
    numpy_lane = lanes["numpy"]
    if numpy_lane is not None:
        print(
            f"lanes on {lanes['scheme']}: pure-python "
            f"{lanes['pure_python']['elapsed_s']:.3f}s "
            f"({lanes['pure_python']['batch_kind']}), numpy "
            f"{numpy_lane['elapsed_s']:.3f}s ({numpy_lane['batch_kind']}), "
            f"identical={lanes['identical']}"
        )
    else:
        print(
            f"lanes on {lanes['scheme']}: pure-python "
            f"{lanes['pure_python']['elapsed_s']:.3f}s "
            f"(numpy unavailable)"
        )
    print(
        f"stats overhead on {stats_overhead['scheme']}: "
        f"{stats_overhead['overhead']:+.2%} (min over "
        f"{len(stats_overhead['pair_overheads'])} paired runs; "
        f"on {stats_overhead['stats_on_s']:.3f}s / "
        f"off {stats_overhead['stats_off_s']:.3f}s, budget {budget:.0%})"
    )

    path = Path(out_dir) / f"BENCH_{tag}.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {path}")

    mismatched = [row["scheme"] for row in kernels if not row["identical"]]
    if mismatched:
        raise AssertionError(
            f"optimized and reference kernels diverge on: {', '.join(mismatched)}"
        )
    if not batch["identical"]:
        raise AssertionError(
            f"batch and single-access kernels diverge on {batch['scheme']}"
        )
    if not lanes["identical"]:
        raise AssertionError(
            f"pure-python and numpy batch lanes diverge on {lanes['scheme']}"
        )
    for row in kernels:
        if row["partitioned"] and not row["last_allocation"]:
            raise AssertionError(
                f"{row['scheme']} crossed no repartitioning epoch "
                f"(empty last_allocation): the bench no longer covers "
                f"the allocation path"
            )
    if not trace["kernel"]["identical"]:
        raise AssertionError(
            f"chunk-cursor and generator feeds diverge on {trace['scheme']}"
        )
    if not trace["feed"]["identical"]:
        raise AssertionError(
            "chunk replay diverges from generator output in the feed kernel"
        )
    if not stats_overhead["identical"]:
        raise AssertionError(
            "telemetry collection changed simulation results on "
            f"{stats_overhead['scheme']}"
        )
    if stats_overhead["overhead"] > budget:
        raise AssertionError(
            f"stats collection costs {stats_overhead['overhead']:.2%} on "
            f"{stats_overhead['scheme']}, above the {budget:.0%} budget"
        )
    if not fastfwd["enabled"]:
        raise AssertionError(
            f"fast-forward declined the pinned kernel "
            f"({fastfwd['decline_reason']}): the bench no longer "
            f"covers the fast-forward layer"
        )
    if fastfwd["worst_miss_rate_delta"] > 0.01:
        raise AssertionError(
            f"fast-forward miss rates diverge "
            f"{fastfwd['worst_miss_rate_delta']:.4f} from the exact path "
            f"on {fastfwd['scheme']}, above the 1% accuracy contract"
        )
    if fastfwd["final_alloc_delta"] > 0.01:
        raise AssertionError(
            f"fast-forward final allocations diverge "
            f"{fastfwd['final_alloc_delta']:.4f} from the exact path "
            f"on {fastfwd['scheme']}, above the 1% accuracy contract"
        )
    if not smoke and fastfwd["skipped_fraction"] <= 0.0:
        raise AssertionError(
            f"fast-forward skipped no accesses on {fastfwd['scheme']} "
            f"({fastfwd['skips']} skips, {fastfwd['aborts']} aborts): "
            f"the bench is not measuring the layer it reports"
        )
    return report


# -- sweep throughput bench (repro bench --sweep) -----------------------
#
# The single-kernel sections above time one simulation in one process;
# the shared-memory trace fabric (REPRO_TRACE_SHM, repro.traces.shm)
# speeds up something they cannot see: many worker processes fanning
# out over the same traces.  Each lane of this bench runs the pinned
# mini-sweep in a *fresh subprocess* (so neither lane inherits warm
# chunk caches or segments from the other) while this process samples
# the lane's process tree.  Memory is reported as PSS
# (/proc/<pid>/smaps_rollup): shared segment pages count once,
# proportionally, across the processes mapping them, where plain RSS
# would bill every worker for the full shared mapping and hide
# exactly the saving being measured.


def _sweep_child_main() -> None:
    """One sweep lane; runs in a fresh subprocess.

    ``sys.argv[1]`` is the lane config (JSON); the result is written
    to ``cfg["out"]``.  The lane issues one ``run_jobs`` fan-out per
    scheme round -- each with its own worker pool, the way figure
    scripts and service clients arrive -- with the results cache off
    so every job really simulates, and digests every outcome so the
    parent can assert the two lanes were bitwise-identical.
    """
    import hashlib
    import sys

    cfg = json.loads(sys.argv[1])
    from repro import traces
    from repro.harness.parallel import SimJob, run_jobs

    config = small_system(epoch_cycles=BENCH_EPOCH_CYCLES)
    mix = make_mix(MIX_CLASS, MIX_INDEX)
    digest = hashlib.sha256()
    jobs_total = 0
    worker_shm_hits = 0
    start = time.perf_counter()
    for schemes in cfg["rounds"]:
        jobs = [
            SimJob(mix, scheme, config, cfg["instructions"], seed=seed)
            for scheme in schemes
            for seed in cfg["seeds"]
        ]
        outcomes = run_jobs(jobs, workers=cfg["workers"], use_cache=False)
        jobs_total += len(jobs)
        for job, outcome in zip(jobs, outcomes):
            digest.update(
                repr((job.scheme, job.seed, outcome.result)).encode()
            )
            counters = getattr(outcome, "trace_counters", None) or {}
            worker_shm_hits = max(worker_shm_hits, counters.get("shm_hits", 0))
    elapsed = time.perf_counter() - start
    counters = traces.get_store().counters()
    Path(cfg["out"]).write_text(
        json.dumps(
            {
                "jobs": jobs_total,
                "elapsed_s": round(elapsed, 4),
                "jobs_per_s": round(jobs_total / elapsed, 4),
                "digest": digest.hexdigest(),
                "worker_shm_hits": worker_shm_hits,
                "publisher_shm_publishes": counters["shm_publishes"],
                "publisher_compiles": counters["compiles"],
            }
        )
        + "\n"
    )


def _process_tree(root: int) -> list[int]:
    """``root`` and its descendant pids (via ``/proc/*/task/*/children``)."""
    pending = [root]
    seen: list[int] = []
    while pending:
        pid = pending.pop()
        seen.append(pid)
        task_dir = Path(f"/proc/{pid}/task")
        try:
            for task in task_dir.iterdir():
                children = (task / "children").read_text().split()
                pending.extend(int(child) for child in children)
        except (OSError, ValueError):
            continue
    return seen


def _pss_rss_kib(pid: int) -> tuple[int, int] | None:
    try:
        text = Path(f"/proc/{pid}/smaps_rollup").read_text()
    except OSError:
        return None
    pss = rss = 0
    for line in text.splitlines():
        if line.startswith("Pss:"):
            pss = int(line.split()[1])
        elif line.startswith("Rss:"):
            rss = int(line.split()[1])
    return pss, rss


def _is_resource_tracker(pid: int) -> bool:
    # multiprocessing's resource tracker is a helper, not a worker;
    # billing its interpreter footprint to the sweep would be noise.
    try:
        cmdline = Path(f"/proc/{pid}/cmdline").read_bytes()
    except OSError:
        return False
    return b"resource_tracker" in cmdline


def _sample_lane_memory(root_pid: int, stop, peaks: dict) -> None:
    """Sampler thread: peak PSS/RSS over the lane's process tree.

    ``peak_tree_*`` is the per-sample *sum* over the tree at its
    maximum -- aggregate concurrent memory, the number the fabric is
    supposed to lower; ``peak_worker_*`` is the hungriest single
    worker process at any sample.
    """
    while not stop.wait(0.02):
        total_pss = total_rss = 0
        procs = 0
        for pid in _process_tree(root_pid):
            if _is_resource_tracker(pid):
                continue
            sizes = _pss_rss_kib(pid)
            if sizes is None:
                continue
            pss, rss = sizes
            total_pss += pss
            total_rss += rss
            if pid != root_pid:
                procs += 1
                peaks["peak_worker_pss_kib"] = max(
                    peaks.get("peak_worker_pss_kib", 0), pss
                )
                peaks["peak_worker_rss_kib"] = max(
                    peaks.get("peak_worker_rss_kib", 0), rss
                )
        if procs or total_pss:
            peaks["peak_tree_pss_kib"] = max(
                peaks.get("peak_tree_pss_kib", 0), total_pss
            )
            peaks["peak_tree_rss_kib"] = max(
                peaks.get("peak_tree_rss_kib", 0), total_rss
            )
            peaks["max_worker_procs"] = max(
                peaks.get("max_worker_procs", 0), procs
            )


def _shm_segment_names() -> set[str]:
    from repro.traces.shm import SEGMENT_PREFIX, shm_dir

    root = shm_dir()
    if root is None:
        return set()
    return {path.name for path in root.glob(SEGMENT_PREFIX + "*")}


def _run_sweep_lane(shm_on: bool, cfg: dict) -> dict:
    """Run one lane in a fresh subprocess and sample its memory."""
    import subprocess
    import sys
    import tempfile
    import threading

    fd, out_path = tempfile.mkstemp(suffix=".json")
    os.close(fd)
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    extra = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root + os.pathsep + extra if extra else src_root
    )
    # Pin the lane environment: no disk caches (both lanes must pay
    # full compile cost or the comparison measures cache warmth), no
    # fast-forward, no inherited worker-count override.
    for knob in (
        "REPRO_TRACE_CACHE",
        "REPRO_RESULTS_CACHE",
        "REPRO_CACHE_DIR",
        "REPRO_FASTFWD",
        "REPRO_WORKERS",
    ):
        env.pop(knob, None)
    env["REPRO_TRACE_SHM"] = "1" if shm_on else "0"
    before = _shm_segment_names()
    proc = subprocess.Popen(
        [
            sys.executable,
            "-c",
            "from repro.harness.bench import _sweep_child_main; "
            "_sweep_child_main()",
            json.dumps({**cfg, "out": out_path}),
        ],
        env=env,
    )
    peaks: dict = {}
    stop = threading.Event()
    sampler = threading.Thread(
        target=_sample_lane_memory, args=(proc.pid, stop, peaks), daemon=True
    )
    sampler.start()
    returncode = proc.wait()
    stop.set()
    sampler.join()
    leftovers = sorted(_shm_segment_names() - before)
    if returncode != 0:
        raise AssertionError(
            f"sweep lane (shm {'on' if shm_on else 'off'}) exited "
            f"with {returncode}"
        )
    result = json.loads(Path(out_path).read_text())
    os.unlink(out_path)
    return {**result, **peaks, "leftover_segments": leftovers}


def bench_sweep(smoke: bool = False) -> dict:
    """Time the pinned mini-sweep with the shm fabric off, then on."""
    cfg = {
        "rounds": [list(r) for r in (SWEEP_SMOKE_ROUNDS if smoke else SWEEP_ROUNDS)],
        "seeds": list(SWEEP_SMOKE_SEEDS if smoke else SWEEP_SEEDS),
        "instructions": SWEEP_SMOKE_INSTRUCTIONS if smoke else SWEEP_INSTRUCTIONS,
        "workers": SWEEP_WORKERS,
    }
    off = _run_sweep_lane(False, cfg)
    on = _run_sweep_lane(True, cfg)
    off_pss = off.get("peak_tree_pss_kib", 0)
    on_pss = on.get("peak_tree_pss_kib", 0)
    return {
        "mix": f"{MIX_CLASS}{MIX_INDEX}",
        "workers": cfg["workers"],
        "rounds": cfg["rounds"],
        "seeds": cfg["seeds"],
        "instructions": cfg["instructions"],
        "jobs": on["jobs"],
        "identical": off["digest"] == on["digest"],
        "shm_speedup": round(on["jobs_per_s"] / off["jobs_per_s"], 3)
        if off["jobs_per_s"]
        else None,
        "pss_ratio": round(off_pss / on_pss, 3) if on_pss else None,
        "worker_shm_hits": on["worker_shm_hits"],
        "leftover_segments": sorted(
            set(on["leftover_segments"]) | set(off["leftover_segments"])
        ),
        "on": on,
        "off": off,
    }


def run_sweep_bench(
    smoke: bool = False,
    tag: str | None = None,
    out_dir: str | Path = ".",
) -> dict:
    """Run the sweep bench, print a summary, write ``BENCH_<tag>.json``.

    Correctness (bitwise-identical lanes, workers really attaching,
    no leaked segments) is asserted in both modes; the performance
    direction (higher jobs/sec and lower aggregate PSS with the
    fabric on) only on full runs -- smoke timings are noise.
    """
    if tag is None:
        tag = "sweep-smoke" if smoke else "sweep"
    sweep = bench_sweep(smoke=smoke)
    report = {
        "tag": tag,
        "smoke": smoke,
        "pinned": {
            "mix": sweep["mix"],
            "system": "small (2MB L2, 4 cores)",
            "instructions": sweep["instructions"],
            "workers": sweep["workers"],
            "epoch_cycles": BENCH_EPOCH_CYCLES,
        },
        "sweep": sweep,
    }

    on, off = sweep["on"], sweep["off"]
    print(
        f"repro bench --sweep ({'smoke, ' if smoke else ''}"
        f"{sweep['jobs']} jobs x {len(sweep['rounds'])} rounds, "
        f"{sweep['instructions']} instrs/core, {sweep['workers']} workers)"
    )
    print(
        f"{'lane':>8s} {'elapsed':>9s} {'jobs/s':>8s} "
        f"{'tree PSS MiB':>13s} {'worker PSS MiB':>15s}"
    )
    for label, lane in (("shm off", off), ("shm on", on)):
        print(
            f"{label:>8s} {lane['elapsed_s']:>8.2f}s "
            f"{lane['jobs_per_s']:>8.2f} "
            f"{lane.get('peak_tree_pss_kib', 0) / 1024:>13.1f} "
            f"{lane.get('peak_worker_pss_kib', 0) / 1024:>15.1f}"
        )
    speedup = sweep["shm_speedup"]
    pss_ratio = sweep["pss_ratio"]
    print(
        f"shm fabric: {speedup:.2f}x jobs/sec, "
        f"{pss_ratio:.2f}x aggregate PSS, "
        f"{on['publisher_shm_publishes']} segments published, "
        f"worker shm hits {sweep['worker_shm_hits']}, "
        f"identical={sweep['identical']}"
    )

    path = Path(out_dir) / f"BENCH_{tag}.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {path}")

    if not sweep["identical"]:
        raise AssertionError(
            "sweep results diverge between REPRO_TRACE_SHM on and off"
        )
    if sweep["leftover_segments"]:
        raise AssertionError(
            f"sweep lanes leaked shared-memory segments: "
            f"{', '.join(sweep['leftover_segments'])}"
        )
    if sweep["worker_shm_hits"] <= 0:
        raise AssertionError(
            "no worker attached a shared segment in the shm-on lane: "
            "the bench is not measuring the fabric it reports"
        )
    if on["publisher_shm_publishes"] <= 0:
        raise AssertionError(
            "the shm-on lane published no segments: the publish phase "
            "did not run"
        )
    if not smoke:
        if speedup is None or speedup <= 1.0:
            raise AssertionError(
                f"shm fabric shows no sweep speedup ({speedup}x): "
                f"on {on['elapsed_s']:.2f}s vs off {off['elapsed_s']:.2f}s"
            )
        if pss_ratio is None or pss_ratio <= 1.0:
            raise AssertionError(
                f"shm fabric shows no aggregate memory saving "
                f"(PSS ratio {pss_ratio})"
            )
    return report
