"""``repro bench``: timed comparison of the optimized simulation
kernels against the reference (pre-optimization) implementations.

The pinned micro-benchmark is the paper's headline kernel: the
``sftn1`` 4-core mix on the 2 MB small system under Vantage-Z4/52 --
the configuration that exercises the zcache replacement walk and the
Vantage demotion scan hardest.  ``lru-sa16`` rides along as a
secondary kernel covering the baseline-cache miss path.  120 000
instructions per core is enough to take the L2 from cold through its
high-occupancy steady state (including forced managed evictions)
while keeping a bench run under a minute.

Both sides of each kernel run in this process, best-of-``rounds``,
and their :class:`~repro.sim.system.SystemResult`s are asserted
*equal*: the optimizations are strength reductions, not behaviour
changes, so any divergence fails the bench run loudly.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.harness.runner import build_policy
from repro.harness.schemes import build_cache
from repro.sim import CMPSystem
from repro.sim.configs import small_system
from repro.sim.reference import (
    as_reference_cache,
    as_reference_policy,
    reference_run,
)
from repro.workloads import make_mix

#: The pinned micro-benchmark (do not change without re-baselining).
MIX_CLASS = "sftn"
MIX_INDEX = 1
SEED = 0
INSTRUCTIONS = 120_000
ROUNDS = 3
SMOKE_INSTRUCTIONS = 15_000

#: (scheme, partitioned) kernels; the first entry is the headline.
KERNELS = (
    ("vantage-z4/52", True),
    ("lru-sa16", False),
)


def _run_once(scheme: str, partitioned: bool, instructions: int, reference: bool):
    """Build a fresh system and time one simulation of the kernel."""
    config = small_system()
    mix = make_mix(MIX_CLASS, MIX_INDEX)
    cache = build_cache(scheme, config.l2_lines, config.num_cores, seed=SEED)
    policy = build_policy(cache, config, SEED) if partitioned else None
    if reference:
        as_reference_cache(cache)
        if policy is not None:
            as_reference_policy(policy)
    system = CMPSystem(cache, mix.trace_factories(SEED), config, policy=policy)
    start = time.perf_counter()
    if reference:
        result = reference_run(system, instructions)
    else:
        result = system.run(instructions)
    return time.perf_counter() - start, result


def bench_kernel(
    scheme: str, partitioned: bool, instructions: int, rounds: int
) -> dict:
    """Best-of-``rounds`` times for both kernel implementations."""
    opt_best = ref_best = None
    opt_result = ref_result = None
    for _ in range(rounds):
        elapsed, opt_result = _run_once(scheme, partitioned, instructions, False)
        if opt_best is None or elapsed < opt_best:
            opt_best = elapsed
        elapsed, ref_result = _run_once(scheme, partitioned, instructions, True)
        if ref_best is None or elapsed < ref_best:
            ref_best = elapsed
    identical = opt_result == ref_result
    return {
        "scheme": scheme,
        "instructions": instructions,
        "rounds": rounds,
        "optimized_s": round(opt_best, 4),
        "reference_s": round(ref_best, 4),
        "speedup": round(ref_best / opt_best, 3) if opt_best else 0.0,
        "identical": identical,
    }


def run_bench(
    smoke: bool = False,
    tag: str | None = None,
    rounds: int | None = None,
    instructions: int | None = None,
    out_dir: str | Path = ".",
) -> dict:
    """Run the kernel set, print a table, write ``BENCH_<tag>.json``.

    ``smoke`` shrinks the run to a correctness check (fewer
    instructions, one round) for CI; timing ratios from a smoke run
    are not meaningful.
    """
    if instructions is None:
        instructions = SMOKE_INSTRUCTIONS if smoke else INSTRUCTIONS
    if rounds is None:
        rounds = 1 if smoke else ROUNDS
    if tag is None:
        tag = "smoke" if smoke else "local"

    kernels = [
        bench_kernel(scheme, partitioned, instructions, rounds)
        for scheme, partitioned in KERNELS
    ]
    report = {
        "tag": tag,
        "smoke": smoke,
        "pinned": {
            "mix": f"{MIX_CLASS}{MIX_INDEX}",
            "system": "small (2MB L2, 4 cores)",
            "instructions": instructions,
            "seed": SEED,
        },
        "kernels": kernels,
    }

    print(f"repro bench ({'smoke, ' if smoke else ''}{instructions} instrs/core, "
          f"best of {rounds})")
    print(f"{'kernel':>16s} {'reference':>10s} {'optimized':>10s} "
          f"{'speedup':>8s} {'identical':>10s}")
    for row in kernels:
        print(
            f"{row['scheme']:>16s} {row['reference_s']:>9.3f}s "
            f"{row['optimized_s']:>9.3f}s {row['speedup']:>7.2f}x "
            f"{str(row['identical']):>10s}"
        )

    path = Path(out_dir) / f"BENCH_{tag}.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {path}")

    mismatched = [row["scheme"] for row in kernels if not row["identical"]]
    if mismatched:
        raise AssertionError(
            f"optimized and reference kernels diverge on: {', '.join(mismatched)}"
        )
    return report
