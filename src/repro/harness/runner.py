"""Mix runners: wire workloads, schemes, UCP and the CMP together.

``run_mix`` simulates one multiprogrammed mix on one scheme and
returns the :class:`~repro.sim.system.SystemResult`;
``relative_throughputs`` runs a scheme set against a baseline and
returns the normalised throughputs the paper's Figures 6, 7, 9, 10
and 11 plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry
from repro.allocation import (
    ReuseAwareUCPPolicy,
    ReuseUMonitor,
    UCPPolicy,
    UMonitor,
)
from repro.analysis.stats import SizeTimeSeries
from repro.harness.schemes import (
    build_cache,
    scheme_partitioned,
    scheme_reuse_aware,
)
from repro.sim import CMPSystem, SystemConfig, SystemResult
from repro.telemetry import StatGroup
from repro.workloads import Mix

#: UMON associativity per system scale (the paper configures UMONs
#: with the same way count way-partitioning and PIPP use).
UMON_WAYS_SMALL = 16
UMON_WAYS_LARGE = 64
VANTAGE_GRANULARITY = 256


def build_policy(
    cache, config: SystemConfig, seed: int = 0, scheme: str | None = None
) -> UCPPolicy:
    """A UCP policy matched to the cache's allocation unit.

    Reuse-aware schemes get :class:`ReuseAwareUCPPolicy` over
    :class:`ReuseUMonitor`\\ s sharing one hash seed (their sampled
    sets must coincide for the first-touch classification to see every
    partition's view of an address).
    """
    umon_ways = UMON_WAYS_SMALL if config.num_cores <= 8 else UMON_WAYS_LARGE
    model_sets = max(64, config.l2_lines // umon_ways)
    # Round down to a power of two for the set-index hash.
    model_sets = 1 << (model_sets.bit_length() - 1)
    reuse = scheme is not None and scheme_reuse_aware(scheme)
    if reuse:
        monitors = [
            ReuseUMonitor(umon_ways, model_sets, sampled_sets=64, seed=seed)
            for _part in range(config.num_cores)
        ]
        policy_cls = ReuseAwareUCPPolicy
    else:
        monitors = [
            UMonitor(
                umon_ways, model_sets, sampled_sets=64, seed=seed + 17 * part
            )
            for part in range(config.num_cores)
        ]
        policy_cls = UCPPolicy
    if cache.allocation_unit == "ways":
        return policy_cls(
            monitors, total_units=cache.allocation_total, min_units=1
        )
    return policy_cls(
        monitors,
        total_units=cache.allocation_total,
        min_units=1,
        granularity=VANTAGE_GRANULARITY,
    )


@dataclass
class MixRun:
    """Everything one simulation produced (for deeper inspection)."""

    result: SystemResult
    cache: object
    system: CMPSystem
    size_series: SizeTimeSeries | None = None
    telemetry: StatGroup | None = field(default=None, repr=False)

    def stats(self) -> dict:
        """Snapshot of the run's stats tree (empty dict if no tree)."""
        return self.telemetry.snapshot() if self.telemetry is not None else {}


def run_mix(
    mix: Mix,
    scheme: str,
    config: SystemConfig,
    instructions: int,
    seed: int = 0,
    partitioned: bool | None = None,
    size_sample_cycles: int | None = None,
    use_l1: bool = False,
    vantage_config=None,
    use_fastfwd: bool | None = None,
    fastfwd_tol: float | None = None,
) -> MixRun:
    """Simulate ``mix`` under ``scheme``.

    ``partitioned=None`` takes the scheme registry's ``partitioned``
    metadata: baseline policies run without UCP, partitioning schemes
    with it.
    ``vantage_config`` overrides the Vantage parameters derived from
    the scheme name (Figure 9's unmanaged-region sweep).
    ``use_fastfwd`` / ``fastfwd_tol`` pass through to
    :class:`~repro.sim.system.CMPSystem` (None = read the
    ``REPRO_FASTFWD`` / ``REPRO_FASTFWD_TOL`` environment knobs).
    """
    if mix.num_cores != config.num_cores:
        raise ValueError(
            f"mix {mix.name} has {mix.num_cores} apps but the system has "
            f"{config.num_cores} cores"
        )
    cache = build_cache(
        scheme,
        config.l2_lines,
        config.num_cores,
        seed=seed,
        vantage_config=vantage_config,
    )
    if partitioned is None:
        partitioned = scheme_partitioned(scheme)
    policy = (
        build_policy(cache, config, seed, scheme=scheme) if partitioned else None
    )
    series = None
    if size_sample_cycles is not None:
        series = SizeTimeSeries(config.num_cores)
    system = CMPSystem(
        cache,
        mix.trace_factories(seed),
        config,
        policy=policy,
        use_l1=use_l1,
        size_series=series,
        size_sample_cycles=size_sample_cycles,
        use_fastfwd=use_fastfwd,
        fastfwd_tol=fastfwd_tol,
    )
    tree = telemetry.system_tree(cache=cache, system=system, policy=policy)
    result = system.run(instructions)
    return MixRun(
        result=result,
        cache=cache,
        system=system,
        size_series=series,
        telemetry=tree,
    )


def relative_throughputs(
    mixes: list[Mix],
    schemes: list[str],
    baseline: str,
    config: SystemConfig,
    instructions: int,
    seed: int = 0,
    workers: int | None = None,
) -> dict[str, list[float]]:
    """Throughput of each scheme on each mix, normalised to the
    baseline scheme on the same mix (Fig 6a / Fig 7 data).

    All ``(mix, scheme)`` simulations -- baseline included -- are
    submitted as one parallel batch; job deduplication means a
    baseline that also appears in ``schemes`` is simulated once.
    Results are bitwise-identical to running every pair serially.
    """
    from repro.harness.parallel import SimJob, run_jobs

    columns = [baseline] + list(schemes)
    jobs = [
        SimJob(mix, scheme, config, instructions, seed)
        for mix in mixes
        for scheme in columns
    ]
    outcomes = run_jobs(jobs, workers=workers)
    width = len(columns)
    out: dict[str, list[float]] = {scheme: [] for scheme in schemes}
    for m, mix in enumerate(mixes):
        row = outcomes[m * width : (m + 1) * width]
        base = row[0].result.throughput
        for scheme, outcome in zip(schemes, row[1:]):
            thr = outcome.result.throughput
            out[scheme].append(thr / base if base else 0.0)
    return out
