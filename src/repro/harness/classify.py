"""Workload classification sweep (Table 3's procedure, Section 5).

The paper classifies each application by running it alone with cache
sizes from 64 KB to 8 MB and inspecting the L2 MPKI curve:

- under 5 MPKI at every size      -> insensitive;
- gradual benefit from capacity   -> cache-friendly;
- abrupt drop past ~1 MB          -> cache-fitting;
- no benefit from extra capacity  -> thrashing/streaming.

``classify_app`` reruns that procedure on our synthetic applications;
the Table 3 benchmark and the workloads tests check every app lands in
its intended category.
"""

from __future__ import annotations

from repro.arrays import SetAssociativeArray
from repro.partitioning import BaselineCache
from repro.replacement import make_policy
from repro.workloads import AppSpec

#: 64 KB .. 8 MB in lines, the paper's sweep range.
SWEEP_LINES = (1024, 4096, 16384, 32768, 65536, 131072)
MPKI_INSENSITIVE = 5.0
ONE_MB_LINES = 16384


def mpki_at_size(
    app: AppSpec, num_lines: int, accesses: int = 60_000, seed: int = 0
) -> float:
    """Single-app L2 MPKI with a ``num_lines`` LRU cache."""
    cache = BaselineCache(
        SetAssociativeArray(num_lines, 16, hashed=True, seed=seed),
        make_policy("lru", num_lines),
    )
    trace = app.trace_factory(base=0, seed=seed)()
    instructions = 0
    # Warm up for the full measured length before counting, so phased
    # applications see every phase before measurement starts.
    warmup = accesses
    for _ in range(warmup):
        gap, addr = next(trace)
        cache.access(addr)
    cache.reset_stats()
    for _ in range(accesses):
        gap, addr = next(trace)
        instructions += gap + 1
        cache.access(addr)
    misses = cache.stats.total_misses
    return 1000.0 * misses / instructions if instructions else 0.0


def mpki_curve(app: AppSpec, accesses: int = 60_000, seed: int = 0) -> list[float]:
    return [mpki_at_size(app, n, accesses, seed) for n in SWEEP_LINES]


def classify_curve(curve: list[float]) -> str:
    """Category letter from an MPKI sweep (paper heuristics).

    Insensitive: under 5 MPKI everywhere.  Streaming: capacity barely
    helps.  Cache-fitting vs cache-friendly is decided by where the
    benefit starts: an LRU loop gains *nothing* until its working set
    fits (flat start, abrupt knee near capacity), while a friendly
    skewed-reuse app benefits from the very first capacity step.
    """
    peak = max(curve)
    if peak < MPKI_INSENSITIVE:
        return "n"
    total_drop = peak - min(curve)
    if total_drop < 0.25 * peak:
        return "s"
    early_drop = curve[0] - curve[1]
    if early_drop < 0.1 * total_drop:
        return "t"
    return "f"


def classify_app(app: AppSpec, accesses: int = 60_000, seed: int = 0) -> str:
    return classify_curve(mpki_curve(app, accesses, seed))
