"""Scheme factory: build any cache configuration the paper evaluates.

Scheme names compose a scheme token and an array token, e.g.
``vantage-z4/52``, ``waypart-sa16``, ``pipp-sa64``, ``lru-z4/16``,
``drrip-z4/52``, ``vantage-analytical-z4/52``, ``vantage-rc52``.

Construction goes through two :class:`repro.registry.Registry`
instances -- :data:`SCHEMES` and :data:`ARRAYS` -- populated below via
``@register_scheme`` / ``@register_array``.  The registries are what
the CLI lists, what the runner queries for ``partitioned`` metadata,
and what the results cache fingerprints; adding a scheme means adding
one decorated builder here (or in any imported module), nothing else.

Malformed tokens always raise ``ValueError`` naming the offending
token -- there are no silent defaults (``z4/`` with an empty
candidates field is an error; bare ``z4`` uses the documented
default of 52 candidates).

Vantage unmanaged-region defaults follow Section 6: 5 % for
high-candidate designs (R >= 52) and 10 % for R = 16 designs, with
``A_max = 0.5`` and ``slack = 0.1``.
"""

from __future__ import annotations

import difflib
from functools import lru_cache

from repro.arrays import (
    CacheArray,
    RandomCandidatesArray,
    SetAssociativeArray,
    SkewAssociativeArray,
    ZCacheArray,
)
from repro.core import (
    AnalyticalVantageCache,
    VantageCache,
    VantageConfig,
    VantageDRRIPCache,
)
from repro.partitioning import BaselineCache, PIPPCache, WayPartitionedCache
from repro.registry import Registry, RegistryEntry
from repro.replacement import make_policy

ARRAYS = Registry("array")
SCHEMES = Registry("scheme")

register_array = ARRAYS.register
register_scheme = SCHEMES.register


def _require_int(text: str, token: str, what: str) -> int:
    """Strictly parse one integer field of an array token."""
    try:
        value = int(text)
    except ValueError:
        raise ValueError(
            f"malformed array token {token!r}: {what} must be an "
            f"integer, got {text!r}"
        ) from None
    if value < 1:
        raise ValueError(
            f"malformed array token {token!r}: {what} must be positive"
        )
    return value


# -- array builders -----------------------------------------------------
#
# Builders take ``(spec, token, num_lines, seed)`` where ``spec`` is
# the token with the registered prefix stripped (``sa16`` -> ``16``)
# and ``token`` is the full lowercase token, used in error messages.


@register_array("sa", description="hashed set-associative, saN = N ways")
def _build_set_assoc(spec, token, num_lines, seed):
    ways = _require_int(spec, token, "way count")
    return SetAssociativeArray(num_lines, ways, hashed=True, seed=seed)


@register_array("skew", description="skew-associative, skewN = N ways")
def _build_skew(spec, token, num_lines, seed):
    ways = _require_int(spec, token, "way count")
    return SkewAssociativeArray(num_lines, ways, seed=seed)


@register_array(
    "z", description="zcache, zW/R = W ways, R replacement candidates"
)
def _build_zcache(spec, token, num_lines, seed):
    ways, slash, cands = spec.partition("/")
    if slash and not cands:
        raise ValueError(
            f"malformed array token {token!r}: empty candidates field "
            f"after '/' (write e.g. 'z4/52', or bare 'z4' for the "
            f"default of 52 candidates)"
        )
    num_ways = _require_int(ways, token, "way count")
    candidates = _require_int(cands, token, "candidate count") if cands else 52
    return ZCacheArray(
        num_lines,
        num_ways=num_ways,
        candidates_per_miss=candidates,
        seed=seed,
    )


@register_array("rc", description="idealised random candidates, rcR")
def _build_random_cands(spec, token, num_lines, seed):
    candidates = _require_int(spec, token, "candidate count")
    return RandomCandidatesArray(num_lines, candidates, seed=seed)


def build_array(token: str, num_lines: int, seed: int = 0) -> CacheArray:
    """Array tokens: ``saN`` (hashed set-assoc), ``zW/R`` (zcache),
    ``skewN``, ``rcR`` (idealised random candidates)."""
    name = token.lower()
    matched = ARRAYS.match_prefix(name)
    if matched is None:
        raise ValueError(
            f"unknown array token {token!r}; known kinds: "
            f"{', '.join(ARRAYS.names())}"
        )
    entry, spec = matched
    return entry.builder(spec, name, num_lines, seed)


def default_vantage_config(array: CacheArray) -> VantageConfig:
    """The paper's per-design unmanaged sizing (Section 6.2)."""
    u = 0.05 if array.candidates_per_miss >= 52 else 0.10
    return VantageConfig(unmanaged_fraction=u, a_max=0.5, slack=0.1)


# -- scheme builders ----------------------------------------------------
#
# Builders take ``(array, num_partitions, num_lines, seed,
# vantage_config)``.  ``partitioned`` metadata tells the runner whether
# the scheme enforces per-core partitions (and therefore gets an
# allocation policy wired up).


@register_scheme(
    "vantage",
    partitioned=True,
    description="Vantage practical controller (Section 5)",
)
def _build_vantage(array, num_partitions, num_lines, seed, vantage_config):
    config = vantage_config or default_vantage_config(array)
    return VantageCache(array, num_partitions, config)


@register_scheme(
    "vantage-drrip",
    partitioned=True,
    description="Vantage with DRRIP-managed demotion thresholds",
)
def _build_vantage_drrip(array, num_partitions, num_lines, seed, vantage_config):
    config = vantage_config or default_vantage_config(array)
    return VantageDRRIPCache(array, num_partitions, config, seed=seed)


@register_scheme(
    "vantage-analytical",
    partitioned=True,
    description="analytical Vantage model (Section 4, no feedback)",
)
def _build_vantage_analytical(
    array, num_partitions, num_lines, seed, vantage_config
):
    config = vantage_config or default_vantage_config(array)
    return AnalyticalVantageCache(array, num_partitions, config)


@register_scheme(
    "reuse-aware",
    partitioned=True,
    reuse_aware=True,
    description="Vantage with shared-line migration and reuse-aware UCP",
)
def _build_reuse_aware(array, num_partitions, num_lines, seed, vantage_config):
    config = vantage_config or default_vantage_config(array)
    # migrate-to-requester keeps shared lines inside the managed
    # region (promote-to-shared would thrash the ~5 % unmanaged pool
    # on read-mostly tables); the requester carrying the line's budget
    # is what the reuse-aware UMON classification models.
    return VantageCache(
        array, num_partitions, config, shared_policy="migrate-to-requester"
    )


@register_scheme(
    "waypart",
    partitioned=True,
    description="way partitioning (restricts insertion ways)",
)
def _build_waypart(array, num_partitions, num_lines, seed, vantage_config):
    return WayPartitionedCache(array, num_partitions)


@register_scheme(
    "pipp",
    partitioned=True,
    description="PIPP insertion/promotion partitioning",
)
def _build_pipp(array, num_partitions, num_lines, seed, vantage_config):
    return PIPPCache(array, num_partitions, seed=seed)


_BASELINE_POLICIES = {
    "lru": "unpartitioned LRU baseline",
    "srrip": "unpartitioned SRRIP baseline",
    "brrip": "unpartitioned BRRIP baseline",
    "drrip": "unpartitioned DRRIP baseline (set-dueling)",
    "ta-drrip": "thread-aware DRRIP baseline",
    "lfu": "unpartitioned LFU baseline",
    "random": "unpartitioned random-replacement baseline",
}

for _policy_name, _policy_desc in _BASELINE_POLICIES.items():

    @register_scheme(_policy_name, partitioned=False, description=_policy_desc)
    def _build_baseline(
        array, num_partitions, num_lines, seed, vantage_config,
        _policy=_policy_name,
    ):
        policy = make_policy(_policy, num_lines)
        return BaselineCache(array, policy, num_partitions)


def _close_matches_hint(name: str, known: list[str]) -> str:
    """`` (did you mean ...?)`` suffix for unknown-name errors."""
    # The prefix before the first array-token-looking fragment gives
    # difflib a fair shot at e.g. 'vantge-z4/52' -> 'vantage'.
    stem = name.split("-")[0]
    close = difflib.get_close_matches(name, known, n=3) or (
        difflib.get_close_matches(stem, known, n=3) if stem != name else []
    )
    return f" (did you mean: {', '.join(close)}?)" if close else ""


def split_scheme(scheme: str) -> tuple[RegistryEntry, str]:
    """Split ``scheme`` into its registry entry and array token."""
    name = scheme.lower()
    matched = SCHEMES.match_prefix(name, sep="-")
    if matched is None:
        known = SCHEMES.names()
        raise ValueError(
            f"unknown scheme {scheme!r}; known kinds: "
            f"{', '.join(known)}{_close_matches_hint(name, known)}"
        )
    return matched


def scheme_partitioned(scheme: str) -> bool:
    """Whether ``scheme`` enforces per-partition allocations."""
    entry, _ = split_scheme(scheme)
    return bool(entry.metadata.get("partitioned"))


def scheme_reuse_aware(scheme: str) -> bool:
    """Whether ``scheme`` wants the reuse-aware UCP policy stack."""
    entry, _ = split_scheme(scheme)
    return bool(entry.metadata.get("reuse_aware"))


@lru_cache(maxsize=None)
def scheme_fingerprint(scheme: str) -> str:
    """Digest covering how ``scheme`` (and its array) is constructed.

    Folded into results-cache keys: editing a builder invalidates the
    cached results that were produced through it.
    """
    entry, array_token = split_scheme(scheme)
    matched = ARRAYS.match_prefix(array_token)
    if matched is None:
        raise ValueError(
            f"unknown array token {array_token!r} in scheme {scheme!r}; "
            f"known kinds: {', '.join(ARRAYS.names())}"
        )
    array_entry, _ = matched
    return SCHEMES.fingerprint(entry.name)[:16] + array_entry.fingerprint()[:16]


def build_cache(
    scheme: str,
    num_lines: int,
    num_partitions: int,
    seed: int = 0,
    vantage_config: VantageConfig | None = None,
):
    """Instantiate a full cache (array + scheme) from its name."""
    entry, array_token = split_scheme(scheme)
    array = build_array(array_token, num_lines, seed)
    return entry.builder(array, num_partitions, num_lines, seed, vantage_config)
