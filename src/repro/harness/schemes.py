"""Scheme factory: build any cache configuration the paper evaluates.

Scheme names compose a policy/scheme token and an array token, e.g.
``vantage-z4/52``, ``waypart-sa16``, ``pipp-sa64``, ``lru-z4/16``,
``drrip-z4/52``, ``vantage-analytical-z4/52``, ``vantage-rc52``.

Vantage unmanaged-region defaults follow Section 6: 5 % for
high-candidate designs (R >= 52) and 10 % for R = 16 designs, with
``A_max = 0.5`` and ``slack = 0.1``.
"""

from __future__ import annotations

from repro.arrays import (
    CacheArray,
    RandomCandidatesArray,
    SetAssociativeArray,
    SkewAssociativeArray,
    ZCacheArray,
)
from repro.core import (
    AnalyticalVantageCache,
    VantageCache,
    VantageConfig,
    VantageDRRIPCache,
)
from repro.partitioning import BaselineCache, PIPPCache, WayPartitionedCache
from repro.replacement import make_policy


def build_array(token: str, num_lines: int, seed: int = 0) -> CacheArray:
    """Array tokens: ``saN`` (hashed set-assoc), ``zW/R`` (zcache),
    ``skewN``, ``rcR`` (idealised random candidates)."""
    token = token.lower()
    if token.startswith("sa"):
        return SetAssociativeArray(num_lines, int(token[2:]), hashed=True, seed=seed)
    if token.startswith("skew"):
        return SkewAssociativeArray(num_lines, int(token[4:]), seed=seed)
    if token.startswith("z"):
        ways, _, cands = token[1:].partition("/")
        return ZCacheArray(
            num_lines,
            num_ways=int(ways),
            candidates_per_miss=int(cands or 52),
            seed=seed,
        )
    if token.startswith("rc"):
        return RandomCandidatesArray(num_lines, int(token[2:]), seed=seed)
    raise ValueError(f"unknown array token {token!r}")


def default_vantage_config(array: CacheArray) -> VantageConfig:
    """The paper's per-design unmanaged sizing (Section 6.2)."""
    u = 0.05 if array.candidates_per_miss >= 52 else 0.10
    return VantageConfig(unmanaged_fraction=u, a_max=0.5, slack=0.1)


def build_cache(
    scheme: str,
    num_lines: int,
    num_partitions: int,
    seed: int = 0,
    vantage_config: VantageConfig | None = None,
):
    """Instantiate a full cache (array + scheme) from its name."""
    name = scheme.lower()
    known_kinds = (
        "vantage-analytical",
        "vantage-drrip",
        "vantage",
        "ta-drrip",
        "drrip",
        "srrip",
        "brrip",
        "waypart",
        "pipp",
        "lru",
        "lfu",
        "random",
    )
    kind = next((k for k in known_kinds if name.startswith(k + "-")), None)
    if kind is None:
        raise ValueError(f"unknown scheme {scheme!r}")
    array_token = name[len(kind) + 1 :]
    array = build_array(array_token, num_lines, seed)

    if kind in ("lru", "srrip", "brrip", "drrip", "ta-drrip", "lfu", "random"):
        policy = make_policy(kind, num_lines)
        return BaselineCache(array, policy, num_partitions)
    if kind == "waypart":
        return WayPartitionedCache(array, num_partitions)
    if kind == "pipp":
        return PIPPCache(array, num_partitions, seed=seed)
    config = vantage_config or default_vantage_config(array)
    if kind == "vantage":
        return VantageCache(array, num_partitions, config)
    if kind == "vantage-drrip":
        return VantageDRRIPCache(array, num_partitions, config, seed=seed)
    if kind == "vantage-analytical":
        return AnalyticalVantageCache(array, num_partitions, config)
    raise ValueError(f"unknown scheme {scheme!r}")
