"""Parallel experiment execution.

Every figure in the paper is an embarrassingly parallel sweep: many
independent ``run_mix`` simulations whose results are only combined
at the end.  This module expresses one simulation as a picklable
:class:`SimJob`, fans a job list over a ``ProcessPoolExecutor``, and
memoises outcomes through :mod:`repro.harness.results_cache`.

Determinism: a job carries every input that influences its
simulation -- including all seeds -- and workers run exactly the same
:func:`~repro.harness.runner.run_mix` code path as a serial call, so
``run_jobs`` output is bitwise-identical to running each job serially
(asserted by ``tests/harness/test_parallel.py``).  Duplicate jobs are
deduplicated before submission, which is also what lets a sweep share
one baseline simulation across schemes.

Environment knobs:

- ``REPRO_WORKERS``: worker process count (default: CPU count).
- ``REPRO_TRACE_CACHE``: directory for the on-disk trace-chunk store
  (see :mod:`repro.traces`); with it set, workers share compiled
  address streams across jobs instead of each regenerating them.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro import traces
from repro.analysis.stats import SizeTimeSeries
from repro.core import VantageConfig
from repro.harness import results_cache
from repro.sim import SystemConfig, SystemResult
from repro.telemetry import Distribution
from repro.workloads import Mix

#: Wall-time distribution over jobs executed by this process (fresh
#: simulations only; cache hits cost no simulation time).
JOB_WALL_TIME = Distribution("job_wall_time", "per-job wall time, seconds")


def register_stats(group) -> None:
    """Register harness-level telemetry (job timing, results cache)."""
    group.stat(
        "jobs_executed",
        lambda: JOB_WALL_TIME.count,
        "simulations actually executed (cache misses)",
    )
    group.stat(
        "job_wall_time",
        JOB_WALL_TIME.value,
        "per-job wall time distribution, seconds",
    )
    results_cache.register_stats(
        group.group("results_cache", "on-disk result cache")
    )
    traces.register_stats(
        group.group("trace_store", "compiled trace-chunk store")
    )


@dataclass(frozen=True)
class SimJob:
    """One simulation, fully described by picklable values.

    Mirrors the signature of :func:`~repro.harness.runner.run_mix`;
    ``vantage_config`` overrides the scheme's default Vantage
    parameters (Figure 9's u-sweep).
    """

    mix: Mix
    scheme: str
    config: SystemConfig
    instructions: int
    seed: int = 0
    partitioned: bool | None = None
    size_sample_cycles: int | None = None
    use_l1: bool = False
    vantage_config: VantageConfig | None = None


@dataclass
class SimOutcome:
    """The picklable portion of a simulation's products.

    Live ``cache``/``system`` objects stay in the worker; figures
    consume the result, the Figure-8 size series, and the Figure-9
    managed-eviction fraction.
    """

    result: SystemResult
    size_series: SizeTimeSeries | None = None
    managed_eviction_fraction: float | None = None
    #: Snapshot of the run's stats tree.  Excluded from equality: the
    #: simulation outputs above are bitwise-deterministic, telemetry
    #: (gated counters, wall time) legitimately is not.
    stats: dict | None = field(default=None, compare=False)
    wall_time_s: float | None = field(default=None, compare=False)


def default_workers() -> int:
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def _execute(job: SimJob) -> SimOutcome:
    """Run one job (in a worker process or inline)."""
    from repro.harness.runner import run_mix

    start = time.perf_counter()
    run = run_mix(
        job.mix,
        job.scheme,
        job.config,
        job.instructions,
        seed=job.seed,
        partitioned=job.partitioned,
        size_sample_cycles=job.size_sample_cycles,
        use_l1=job.use_l1,
        vantage_config=job.vantage_config,
    )
    wall = time.perf_counter() - start
    fraction = None
    cache = run.cache
    if hasattr(cache, "managed_eviction_fraction"):
        fraction = cache.managed_eviction_fraction()
    return SimOutcome(
        result=run.result,
        size_series=run.size_series,
        managed_eviction_fraction=fraction,
        stats=run.stats(),
        wall_time_s=wall,
    )


def run_jobs(
    jobs: list[SimJob],
    workers: int | None = None,
    use_cache: bool = True,
) -> list[SimOutcome]:
    """Run ``jobs`` and return their outcomes in job order.

    Identical jobs are simulated once; results already in the on-disk
    cache are not simulated at all.  ``workers=1`` (or a single
    pending job) runs inline, with no worker processes.
    """
    keys = [results_cache.job_key(job) for job in jobs]
    outcomes: dict[str, SimOutcome] = {}
    pending: list[tuple[str, SimJob]] = []
    seen: set[str] = set()
    for key, job in zip(keys, jobs):
        if key in seen:
            continue
        seen.add(key)
        cached = results_cache.load(key) if use_cache else None
        if cached is not None:
            outcomes[key] = cached
        else:
            pending.append((key, job))

    if pending:
        if workers is None:
            workers = default_workers()
        workers = min(workers, len(pending))
        if workers <= 1:
            fresh = [_execute(job) for _, job in pending]
        else:
            # Batch jobs per worker dispatch: submitting one job at a
            # time pays a pickle round-trip per job, which dominates on
            # large sweeps of short simulations.  ``map`` keeps result
            # order aligned with ``pending`` regardless of chunksize.
            chunksize = max(1, len(pending) // (workers * 4))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                fresh = list(
                    pool.map(
                        _execute,
                        (job for _, job in pending),
                        chunksize=chunksize,
                    )
                )
        for (key, _), outcome in zip(pending, fresh):
            if outcome.wall_time_s is not None:
                JOB_WALL_TIME.record(outcome.wall_time_s)
            outcomes[key] = outcome
            if use_cache:
                results_cache.store(key, outcome)

    return [outcomes[key] for key in keys]
