"""Parallel experiment execution.

Every figure in the paper is an embarrassingly parallel sweep: many
independent ``run_mix`` simulations whose results are only combined
at the end.  This module expresses one simulation as a picklable
:class:`SimJob`, fans a job list over a ``ProcessPoolExecutor``, and
memoises outcomes through :mod:`repro.harness.results_cache`.

Determinism: a job carries every input that influences its
simulation -- including all seeds -- and workers run exactly the same
:func:`~repro.harness.runner.run_mix` code path as a serial call, so
``run_jobs`` output is bitwise-identical to running each job serially
(asserted by ``tests/harness/test_parallel.py``).  Duplicate jobs are
deduplicated before submission, which is also what lets a sweep share
one baseline simulation across schemes.

The building blocks are exported separately because the resident
daemon (:mod:`repro.service`) reuses them: :func:`plan_jobs` performs
the dedupe/cache split, :func:`execute_job` is the worker-side entry
point, and :func:`record_outcome` is the telemetry/persistence tail.
``run_jobs`` itself survives worker crashes: a ``BrokenProcessPool``
loses only the not-yet-returned jobs, which are resubmitted to a
fresh pool (after :data:`MAX_POOL_FAILURES` pool losses the leftovers
run inline in this process).

Environment knobs:

- ``REPRO_WORKERS``: worker process count (default: CPU count).
- ``REPRO_TRACE_CACHE``: directory for the on-disk trace-chunk store
  (see :mod:`repro.traces`); with it set, workers share compiled
  address streams across jobs instead of each regenerating them.
- ``REPRO_TRACE_SHM``: ``1`` adds a publish phase before the fan-out
  -- the parent compiles-or-loads each distinct trace once into
  shared-memory segments and workers attach zero-copy instead of
  compiling privately (see :mod:`repro.traces.shm`).
- ``REPRO_FED_GATEWAY``: an address (``host:port`` or a Unix socket
  path) routes the fan-out through a federation gateway
  (:mod:`repro.federation`) instead of a local worker pool -- the
  gateway consistent-hash spreads the jobs over its daemon fleet.  An
  unreachable gateway (or a partially failed batch) falls back to the
  local pool for whatever is still missing, so a sweep never fails
  just because the fleet did.
"""

from __future__ import annotations

import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro import traces
from repro.analysis.stats import SizeTimeSeries
from repro.core import VantageConfig
from repro.harness import results_cache
from repro.sim import SystemConfig, SystemResult
from repro.telemetry import Distribution
from repro.workloads import Mix

#: Wall-time distribution over jobs executed by this process (fresh
#: simulations only; cache hits cost no simulation time).
JOB_WALL_TIME = Distribution("job_wall_time", "per-job wall time, seconds")

#: Pool losses tolerated per ``run_jobs`` call before the remaining
#: jobs fall back to inline execution in the calling process.
MAX_POOL_FAILURES = 2

#: Process-wide supervision counters (read by the harness stats tree).
POOL_FAILURES = 0
JOBS_RETRIED = 0

#: Federation fan-out counters: jobs satisfied through the gateway,
#: and jobs that fell back to the local pool after a gateway failure.
FED_JOBS = 0
FED_FALLBACKS = 0


def register_stats(group) -> None:
    """Register harness-level telemetry (job timing, results cache)."""
    group.stat(
        "jobs_executed",
        lambda: JOB_WALL_TIME.count,
        "simulations actually executed (cache misses)",
    )
    group.stat(
        "job_wall_time",
        JOB_WALL_TIME.value,
        "per-job wall time distribution, seconds",
    )
    group.stat(
        "pool_failures",
        lambda: POOL_FAILURES,
        "worker pools lost to crashed processes",
    )
    group.stat(
        "jobs_retried",
        lambda: JOBS_RETRIED,
        "jobs resubmitted after a pool failure",
    )
    group.stat(
        "fed_jobs",
        lambda: FED_JOBS,
        "jobs satisfied through the federation gateway",
    )
    group.stat(
        "fed_fallbacks",
        lambda: FED_FALLBACKS,
        "jobs run locally after the gateway failed them",
    )
    results_cache.register_stats(
        group.group("results_cache", "on-disk result cache")
    )
    traces.register_stats(
        group.group("trace_store", "compiled trace-chunk store")
    )


@dataclass(frozen=True)
class SimJob:
    """One simulation, fully described by picklable values.

    Mirrors the signature of :func:`~repro.harness.runner.run_mix`;
    ``vantage_config`` overrides the scheme's default Vantage
    parameters (Figure 9's u-sweep).
    """

    mix: Mix
    scheme: str
    config: SystemConfig
    instructions: int
    seed: int = 0
    partitioned: bool | None = None
    size_sample_cycles: int | None = None
    use_l1: bool = False
    vantage_config: VantageConfig | None = None


@dataclass
class SimOutcome:
    """The picklable portion of a simulation's products.

    Live ``cache``/``system`` objects stay in the worker; figures
    consume the result, the Figure-8 size series, and the Figure-9
    managed-eviction fraction.
    """

    result: SystemResult
    size_series: SizeTimeSeries | None = None
    managed_eviction_fraction: float | None = None
    #: Snapshot of the run's stats tree.  Excluded from equality: the
    #: simulation outputs above are bitwise-deterministic, telemetry
    #: (gated counters, wall time) legitimately is not.
    stats: dict | None = field(default=None, compare=False)
    wall_time_s: float | None = field(default=None, compare=False)
    #: Cumulative trace-store counters of the executing process after
    #: this job (``shm_hits`` et al.) -- how sweeps observe that
    #: workers really attached shared segments.  Excluded from
    #: equality like the other telemetry.
    trace_counters: dict | None = field(default=None, compare=False)


def default_workers() -> int:
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def worker_init() -> None:
    """Initializer for simulation worker processes.

    Workers ignore SIGINT: a Ctrl-C lands on the whole process group,
    and only the parent should act on it (shutting the pool down
    cleanly instead of every worker spraying a traceback).
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (OSError, ValueError):
        pass


def execute_job(job: SimJob) -> SimOutcome:
    """Run one job (in a worker process or inline)."""
    from repro.harness.runner import run_mix

    start = time.perf_counter()
    run = run_mix(
        job.mix,
        job.scheme,
        job.config,
        job.instructions,
        seed=job.seed,
        partitioned=job.partitioned,
        size_sample_cycles=job.size_sample_cycles,
        use_l1=job.use_l1,
        vantage_config=job.vantage_config,
    )
    wall = time.perf_counter() - start
    fraction = None
    cache = run.cache
    if hasattr(cache, "managed_eviction_fraction"):
        fraction = cache.managed_eviction_fraction()
    return SimOutcome(
        result=run.result,
        size_series=run.size_series,
        managed_eviction_fraction=fraction,
        stats=run.stats(),
        wall_time_s=wall,
        trace_counters=traces.get_store().counters(),
    )


#: Backwards-compatible alias (pre-service name).
_execute = execute_job


def plan_jobs(
    jobs: list[SimJob], use_cache: bool = True
) -> tuple[list[str], dict[str, SimOutcome], list[tuple[str, SimJob]]]:
    """Dedupe ``jobs`` and split them into cached and pending work.

    Returns ``(keys, outcomes, pending)``: the per-job cache keys (in
    submission order, duplicates included), outcomes already satisfied
    by the on-disk cache, and the unique ``(key, job)`` pairs that
    still need a simulation -- in first-submission order.
    """
    keys = [results_cache.job_key(job) for job in jobs]
    outcomes: dict[str, SimOutcome] = {}
    pending: list[tuple[str, SimJob]] = []
    seen: set[str] = set()
    for key, job in zip(keys, jobs):
        if key in seen:
            continue
        seen.add(key)
        cached = results_cache.load(key) if use_cache else None
        if cached is not None:
            outcomes[key] = cached
        else:
            pending.append((key, job))
    return keys, outcomes, pending


def record_outcome(key: str, outcome: SimOutcome, use_cache: bool = True) -> None:
    """Account for a freshly simulated outcome and persist it."""
    if outcome.wall_time_s is not None:
        JOB_WALL_TIME.record(outcome.wall_time_s)
    if use_cache:
        results_cache.store(key, outcome)


def publish_traces(jobs: list[SimJob]) -> int:
    """Publish every distinct trace in ``jobs`` to the shared fabric.

    The owner half of ``REPRO_TRACE_SHM`` for batch sweeps: before
    fanning out, the parent scavenges segments orphaned by crashed
    runs, then compiles-or-loads each distinct ``TraceSpec`` once and
    publishes its chunk prefix, so workers attach by name instead of
    compiling one private copy each.  Returns the number of segments
    created.  Best-effort throughout -- a trace that fails to publish
    simply stays on the private layers (and a genuinely broken trace
    reports its real error from the worker that simulates it, not
    from here).
    """
    if not traces.shm_enabled():
        return 0
    traces.SharedChunkPool.scavenge()
    store = traces.get_store()
    wanted: dict[str, tuple[traces.TraceSpec, int]] = {}
    for job in jobs:
        try:
            factories = job.mix.trace_factories(job.seed)
        except Exception:
            continue
        for spec in factories:
            if not isinstance(spec, traces.TraceSpec):
                continue
            key = store.key_of(spec)
            prev = wanted.get(key)
            if prev is None or prev[1] < job.instructions:
                wanted[key] = (spec, job.instructions)
    created = 0
    for spec, instructions in wanted.values():
        try:
            created += store.publish_prefix(spec, instructions)
        except Exception:
            continue
    return created


def _run_pooled(jobs: list[SimJob], workers: int) -> list[SimOutcome]:
    """Execute ``jobs`` over worker processes, surviving crashes.

    ``pool.map`` yields outcomes in submission order, so when a worker
    dies mid-sweep (``BrokenProcessPool``) everything already yielded
    is kept and only the unfinished suffix is resubmitted to a fresh
    pool.  After :data:`MAX_POOL_FAILURES` pool losses the leftovers
    run inline: forward progress is guaranteed even on a host that
    keeps OOM-killing workers.
    """
    global POOL_FAILURES, JOBS_RETRIED
    outcomes: list[SimOutcome] = []
    remaining = list(jobs)
    failures = 0
    while remaining:
        if workers <= 1 or failures >= MAX_POOL_FAILURES:
            outcomes.extend(execute_job(job) for job in remaining)
            break
        # Batch jobs per worker dispatch: submitting one job at a
        # time pays a pickle round-trip per job, which dominates on
        # large sweeps of short simulations.  ``map`` keeps result
        # order aligned with ``remaining`` regardless of chunksize.
        chunksize = max(1, len(remaining) // (workers * 4))
        pool = ProcessPoolExecutor(
            max_workers=min(workers, len(remaining)), initializer=worker_init
        )
        done: list[SimOutcome] = []
        try:
            for outcome in pool.map(execute_job, remaining, chunksize=chunksize):
                done.append(outcome)
        except BrokenProcessPool:
            failures += 1
            POOL_FAILURES += 1
            outcomes.extend(done)
            remaining = remaining[len(done):]
            JOBS_RETRIED += len(remaining)
            pool.shutdown(wait=False, cancel_futures=True)
            continue
        except KeyboardInterrupt:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        outcomes.extend(done)
        remaining = []
        pool.shutdown(wait=True)
    return outcomes


def _run_federated(
    pending: list[tuple[str, SimJob]]
) -> dict[str, SimOutcome]:
    """Try to satisfy ``pending`` through the federation gateway.

    Returns the outcomes it obtained, keyed like ``pending``; missing
    keys (gateway unreachable, node-side failures) are the caller's to
    run locally.  Never raises -- federation is an accelerator, not a
    dependency.
    """
    global FED_JOBS, FED_FALLBACKS
    # Imported lazily: repro.federation itself imports SimJob from
    # this module, and the gateway address is only consulted when the
    # REPRO_FED_GATEWAY knob is actually set.
    from repro.federation import FederatedClient
    from repro.service.client import ServiceError

    got: dict[str, SimOutcome] = {}
    try:
        with FederatedClient() as fed:
            batch = fed.submit_batch([job for _, job in pending])
    except (ServiceError, OSError, ValueError):
        FED_FALLBACKS += len(pending)
        return got
    for (key, _), outcome in zip(pending, batch.outcomes):
        if outcome is not None:
            got[key] = outcome
            FED_JOBS += 1
        else:
            FED_FALLBACKS += 1
    return got


def run_jobs(
    jobs: list[SimJob],
    workers: int | None = None,
    use_cache: bool = True,
) -> list[SimOutcome]:
    """Run ``jobs`` and return their outcomes in job order.

    Identical jobs are simulated once; results already in the on-disk
    cache are not simulated at all.  ``workers=1`` (or a single
    pending job) runs inline, with no worker processes.  With
    ``REPRO_FED_GATEWAY`` set the pending work routes through the
    federation gateway first and only the leftovers (if the fleet
    failed any) run locally.
    """
    keys, outcomes, pending = plan_jobs(jobs, use_cache=use_cache)

    if pending and os.environ.get("REPRO_FED_GATEWAY"):
        federated = _run_federated(pending)
        for key, outcome in federated.items():
            # Persist locally so a later sweep in this process is a
            # plain cache hit; skip record_outcome -- the simulation
            # ran on a fleet node, so its wall time does not belong in
            # this process's jobs_executed telemetry.
            if use_cache:
                results_cache.store(key, outcome)
            outcomes[key] = outcome
        pending = [(k, j) for k, j in pending if k not in federated]

    if pending:
        if workers is None:
            workers = default_workers()
        workers = min(workers, len(pending))
        if workers > 1:
            publish_traces([job for _, job in pending])
        fresh = _run_pooled([job for _, job in pending], workers)
        for (key, _), outcome in zip(pending, fresh):
            record_outcome(key, outcome, use_cache=use_cache)
            outcomes[key] = outcome

    return [outcomes[key] for key in keys]
