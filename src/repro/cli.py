"""Command-line interface for the Vantage reproduction.

Subcommands:

- ``list-apps``: the 29 synthetic applications and their categories.
- ``classify <app>``: run the Table 3 MPKI sweep for one application.
- ``size-unmanaged``: evaluate the Section 4.3 sizing closed form.
- ``run-mix``: simulate one multiprogrammed mix under a scheme
  (``--stats-json`` exports the run's stats tree).
- ``schemes``: list the registered schemes and array kinds.
- ``overheads``: Vantage state-overhead accounting.
- ``bench``: time the optimized simulation kernels against the
  reference implementations and check the telemetry overhead budget
  (writes ``BENCH_<tag>.json``).
- ``traces``: inspect (``--list``, the default) or delete
  (``--purge``) the on-disk trace-chunk store named by
  ``REPRO_TRACE_CACHE``.
- ``serve``: run the resident experiment daemon (Unix socket; TCP
  via ``REPRO_SERVICE_ADDR`` or ``--tcp``).
- ``submit``: run one mix through a running daemon (same output as
  ``run-mix``, but simulated by the shared service).
- ``svc-stats``: a running daemon's telemetry tree (text or JSON).
- ``gateway``: run the federation gateway over N daemons
  (consistent-hash routing, health checks, failover).
- ``fed-submit``: run a mix x scheme sweep through a gateway in one
  batch request.
- ``fed-status``: a running gateway's membership table and counters.

Interrupts: Ctrl-C exits with code 130 and SIGTERM with 143, after
shutting worker pools down quietly (workers ignore SIGINT; only the
parent reports).

Example::

    python -m repro run-mix --mix-class sftn --scheme vantage-z4/52 \
        --instructions 400000
"""

from __future__ import annotations

import argparse

from repro.analysis import required_unmanaged_fraction, vantage_overheads
from repro.harness import mpki_curve, classify_curve, run_mix
from repro.harness.classify import SWEEP_LINES
from repro.sim import large_system, small_system
from repro.workloads import APPS, CATEGORY_NAMES, make_mix


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {n}")
    return n


def _cmd_list_apps(args) -> int:
    print(f"{'app':14s} {'category':>20s} {'kind':>12s} {'ws (lines)':>11s} {'gap':>6s}")
    for name, app in sorted(APPS.items()):
        print(
            f"{name:14s} {CATEGORY_NAMES[app.category]:>20s} "
            f"{app.kind:>12s} {app.ws_lines:>11d} {app.mean_gap:>6.0f}"
        )
    return 0


def _cmd_classify(args) -> int:
    try:
        app = APPS[args.app]
    except KeyError:
        print(f"unknown app {args.app!r}; try `list-apps`")
        return 1
    curve = mpki_curve(app, accesses=args.accesses)
    print(f"{args.app}: declared category {CATEGORY_NAMES[app.category]}")
    for lines, mpki in zip(SWEEP_LINES, curve):
        print(f"  {lines * 64 // 1024:>6d} KB: {mpki:8.2f} MPKI")
    got = classify_curve(curve)
    print(f"classified as: {CATEGORY_NAMES[got]}")
    return 0 if got == app.category else 1


def _cmd_size_unmanaged(args) -> int:
    u = required_unmanaged_fraction(args.candidates, args.a_max, args.slack, args.pev)
    print(
        f"R={args.candidates}, A_max={args.a_max}, slack={args.slack}, "
        f"Pev={args.pev:g} -> unmanaged fraction u = {u:.3f}"
    )
    return 0


def _cmd_overheads(args) -> int:
    o = vantage_overheads(
        cache_bytes=args.cache_mb * 1024 * 1024,
        num_partitions=args.partitions,
        num_banks=args.banks,
    )
    print(f"partition-ID tag bits: {o.partition_id_bits}")
    print(f"register bits per partition: {o.register_bits_per_partition}")
    print(f"total extra state: {o.total_extra_bits / 8 / 1024:.1f} KB")
    print(f"overhead vs data+tags: {o.overhead_fraction:.2%}")
    return 0


def _cmd_run_mix(args) -> int:
    from repro.harness.schemes import split_scheme

    config = small_system() if args.system == "small" else large_system()
    if args.epoch_cycles:
        from dataclasses import replace

        config = replace(config, epoch_cycles=args.epoch_cycles)
    apps_per_slot = config.num_cores // 4
    try:
        # Validate both names before the (potentially long) run; the
        # errors carry did-you-mean hints from the registries.
        split_scheme(args.scheme)
        mix = make_mix(
            args.mix_class, args.mix_index, apps_per_slot=apps_per_slot
        )
    except ValueError as err:
        print(f"error: {err}")
        return 1
    print(f"mix {mix.name}: {[a.name for a in mix.apps]}")
    fastfwd_kwargs = {}
    if args.fastfwd_report:
        # Detection-only mode: the fast-forward detector runs and logs
        # where it *would* trigger, but every access is still simulated
        # exactly, so the run's numbers are bitwise-identical to a plain
        # run-mix.
        fastfwd_kwargs = {"use_fastfwd": True, "fastfwd_tol": 0.0}
    run = run_mix(
        mix,
        args.scheme,
        config,
        args.instructions,
        seed=args.seed,
        **fastfwd_kwargs,
    )
    result = run.result
    print(f"scheme {args.scheme}: throughput {result.throughput:.3f}")
    for i, core in enumerate(result.cores):
        print(
            f"  core {i:>2d} {mix.apps[i].name:12s} ipc={core.ipc:6.3f} "
            f"l2-miss-rate={result.l2_miss_rates[i]:.3f}"
        )
    if hasattr(run.cache, "managed_eviction_fraction"):
        print(f"managed-eviction fraction: {run.cache.managed_eviction_fraction():.4f}")
    if args.fastfwd_report:
        ff = run.system.fastfwd
        if ff is None or not ff.enabled:
            reason = (
                ff.decline_reason
                if ff is not None
                else "fast-forward layer not constructed"
            )
            print(f"fast-forward: declined ({reason})")
        else:
            print(
                f"fast-forward (detection-only): {ff.triggers} trigger(s) "
                f"over {ff.windows} windows in {run.system.epochs} "
                f"epochs; would skip {ff.would_skip_fraction():.1%} of "
                f"accesses"
            )
            for ev in ff.events:
                line = (
                    f"  epoch {ev['epoch']:>3d} window {ev['window']:>2d} "
                    f"@ cycle {ev['cycle']:>12.0f}: "
                )
                if ev["action"] == "detect":
                    line += f"would skip {ev['accesses']} accesses"
                elif ev["action"] == "abort":
                    line += f"trigger declined ({ev['reason']})"
                else:
                    line += f"skipped {ev['accesses']} accesses"
                print(line)
    if args.stats_json:
        run.telemetry.dump(args.stats_json)
        print(f"wrote stats tree to {args.stats_json}")
    return 0


def _cmd_schemes(args) -> int:
    from repro.harness.schemes import ARRAYS, SCHEMES

    if args.list:
        for entry in SCHEMES.entries():
            print(entry.name)
        return 0
    print("schemes (compose with an array token, e.g. vantage-z4/52):")
    for entry in SCHEMES.entries():
        part = "partitioned" if entry.metadata.get("partitioned") else "baseline"
        line = f"  {entry.name:20s} {part:12s} {entry.description}"
        if args.fingerprints:
            line += f"  [{entry.fingerprint()[:16]}]"
        print(line)
    print("arrays:")
    for entry in ARRAYS.entries():
        line = f"  {entry.name:20s} {'':12s} {entry.description}"
        if args.fingerprints:
            line += f"  [{entry.fingerprint()[:16]}]"
        print(line)
    return 0


def _cmd_traces(args) -> int:
    from repro.traces import TraceStore
    from repro.traces.shm import SharedChunkPool

    root = TraceStore.disk_dir()
    shm_rows = SharedChunkPool.host_segments()
    if args.purge:
        if root is not None:
            removed = TraceStore.purge_disk()
            print(f"purged {removed} trace(s) from {root}")
        if getattr(args, "force", False):
            removed = SharedChunkPool.purge_host()
            print(f"force-removed {removed} shared-memory segment(s)")
            return 0
        scavenged = SharedChunkPool.scavenge()
        live = [
            row for row in SharedChunkPool.host_segments()
            if row["publisher_alive"]
        ]
        print(
            f"removed {scavenged} orphaned shared-memory segment(s); "
            f"{len(live)} segment(s) belong to live publishers"
        )
        for row in live:
            print(f"  kept {row['name']} (publisher pid {row['pid']})")
        return 0
    if root is None:
        print("REPRO_TRACE_CACHE is not set; the on-disk trace store is off")
    else:
        rows = TraceStore.list_disk()
        print(f"trace store at {root}: {len(rows)} trace(s)")
        if rows:
            print(
                f"{'app':14s} {'kind':>12s} {'base':>16s} {'seed':>6s} "
                f"{'chunks':>7s} {'MiB':>8s} {'key':>10s}"
            )
            for row in rows:
                print(
                    f"{row.get('name', '?'):14s} {row.get('kind', '?'):>12s} "
                    f"{row.get('base', 0):>16x} {row.get('seed', 0):>6d} "
                    f"{row['chunks']:>7d} {row['bytes'] / (1 << 20):>8.1f} "
                    f"{row['key'][:10]:>10s}"
                )
            total = sum(row["bytes"] for row in rows)
            print(f"total: {total / (1 << 20):.1f} MiB")
    print(f"shared-memory segments (REPRO_TRACE_SHM): {len(shm_rows)}")
    if shm_rows:
        print(
            f"{'name':40s} {'MiB':>8s} {'sealed':>7s} {'pid':>8s} "
            f"{'alive':>6s} {'attached':>9s}"
        )
        for row in shm_rows:
            attached = row["attached"]
            print(
                f"{row['name']:40s} {row['bytes'] / (1 << 20):>8.1f} "
                f"{str(row['sealed']):>7s} {row['pid']:>8d} "
                f"{str(row['publisher_alive']):>6s} "
                f"{'?' if attached is None else attached:>9}"
            )
        total = sum(row["bytes"] for row in shm_rows)
        print(f"total: {total / (1 << 20):.1f} MiB")
    if root is None and not shm_rows:
        return 1
    return 0


def _cmd_bench(args) -> int:
    import json
    from pathlib import Path

    from repro.harness.bench import (
        compare_reports,
        run_bench,
        run_sweep_bench,
        update_history,
    )

    baseline = None
    if args.compare is not None:
        # Parse the baseline up front so a bad path fails before the
        # (minutes-long) bench run, not after.
        baseline = json.loads(Path(args.compare).read_text())
    if args.history is not None:
        # The bench writes its report to BENCH_<tag>.json in the
        # working directory; a history file with that exact path would
        # be clobbered by the report before update_history reads it.
        if args.sweep:
            tag = args.tag or ("sweep-smoke" if args.smoke else "sweep")
        else:
            tag = args.tag or ("smoke" if args.smoke else "local")
        if Path(args.history).resolve() == Path(f"BENCH_{tag}.json").resolve():
            print(
                f"error: --history {args.history} collides with this "
                f"run's report file BENCH_{tag}.json; pick a different "
                f"--tag or history path"
            )
            return 1
        if Path(args.history).exists():
            # Likewise validate an existing history file up front.
            if not isinstance(json.loads(Path(args.history).read_text()), list):
                print(f"error: {args.history} is not a bench history "
                      f"(expected a JSON list)")
                return 1
    if args.sweep:
        report = run_sweep_bench(smoke=args.smoke, tag=args.tag)
    else:
        report = run_bench(
            smoke=args.smoke,
            tag=args.tag,
            rounds=args.rounds,
            instructions=args.instructions,
        )
        headline = report["kernels"][0]
        print(
            f"headline: {headline['scheme']} optimized kernel is "
            f"{headline['speedup']:.2f}x the reference"
        )
    if baseline is not None:
        regressions = compare_reports(report, baseline)
        if regressions:
            print(f"speedup regressions vs {args.compare}:")
            for line in regressions:
                print(f"  {line}")
            return 1
        print(f"no speedup regressions vs {args.compare}")
    if args.history is not None:
        regressions, compared = update_history(report, args.history)
        if regressions:
            print(
                f"speedup regressions vs best of last {compared} "
                f"runs in {args.history}:"
            )
            for line in regressions:
                print(f"  {line}")
            return 1
        print(
            f"appended to {args.history} (no regressions vs "
            f"{compared} prior runs)"
        )
    return 0


def _tcp_arg(text: str | None):
    """Parse a ``--tcp HOST:PORT`` value (``None`` passes through)."""
    if not text:
        return None
    from repro.service import parse_addr

    return parse_addr(text, what="--tcp")


def _service_client(args):
    from repro.service import ServiceClient

    return ServiceClient(
        socket_path=args.socket, tcp=_tcp_arg(getattr(args, "tcp", None))
    )


def _cmd_serve(args) -> int:
    from pathlib import Path

    from repro.service import ServiceConfig, serve
    from repro.service.protocol import default_socket

    tcp = _tcp_arg(args.tcp)
    config = ServiceConfig(
        socket_path=Path(args.socket) if args.socket else default_socket(),
        tcp=tcp,
        workers=args.workers,
        queue_size=args.queue_size,
        job_timeout=args.job_timeout,
        max_retries=args.max_retries,
        use_cache=not args.no_cache,
    )
    print(
        f"repro daemon: socket {config.socket_path}, "
        f"{config.workers} workers, queue {config.queue_size}"
        + (f", tcp {config.tcp[0]}:{config.tcp[1]}" if config.tcp else "")
    )
    serve(config)
    print("repro daemon: stopped")
    return 0


def _cmd_submit(args) -> int:
    from repro.harness import SimJob
    from repro.harness.schemes import split_scheme
    from repro.sim import large_system, small_system
    from repro.workloads import make_mix

    config = small_system() if args.system == "small" else large_system()
    if args.epoch_cycles:
        from dataclasses import replace

        config = replace(config, epoch_cycles=args.epoch_cycles)
    apps_per_slot = config.num_cores // 4
    try:
        # Same up-front validation as run-mix: fail with a hint before
        # anything is submitted to the daemon.
        split_scheme(args.scheme)
        mix = make_mix(
            args.mix_class, args.mix_index, apps_per_slot=apps_per_slot
        )
    except ValueError as err:
        print(f"error: {err}")
        return 1
    job = SimJob(mix, args.scheme, config, args.instructions, seed=args.seed)
    with _service_client(args) as svc:
        if args.no_wait:
            ticket = svc.submit(job, priority=args.priority, wait=False)
            print(
                f"submitted job {ticket['id']} "
                f"({'deduped' if ticket['deduped'] else ticket['state']})"
            )
            return 0
        outcome = svc.submit(job, priority=args.priority)
    result = outcome.result
    print(f"mix {mix.name}: {[a.name for a in mix.apps]}")
    print(f"scheme {args.scheme}: throughput {result.throughput:.3f}")
    for i, core in enumerate(result.cores):
        print(
            f"  core {i:>2d} {mix.apps[i].name:12s} ipc={core.ipc:6.3f} "
            f"l2-miss-rate={result.l2_miss_rates[i]:.3f}"
        )
    if outcome.managed_eviction_fraction is not None:
        print(
            f"managed-eviction fraction: "
            f"{outcome.managed_eviction_fraction:.4f}"
        )
    return 0


def _cmd_svc_stats(args) -> int:
    import json

    with _service_client(args) as svc:
        tree = svc.stats()
    if args.json:
        from pathlib import Path

        text = json.dumps(tree, indent=2) + "\n"
        if args.json == "-":
            print(text, end="")
        else:
            Path(args.json).write_text(text)
            print(f"wrote daemon stats tree to {args.json}")
        return 0

    def walk(node, prefix=""):
        for name, value in node.items():
            path = f"{prefix}{name}"
            if isinstance(value, dict) and not {"count", "total"} <= set(value):
                walk(value, path + ".")
            else:
                print(f"  {path:42s} {value}")

    print("daemon stats:")
    walk(tree)
    return 0


def _cmd_gateway(args) -> int:
    from pathlib import Path

    from repro.federation import (
        GatewayConfig,
        default_gateway_socket,
        serve_gateway,
    )

    config = GatewayConfig(
        socket_path=(
            Path(args.socket) if args.socket else default_gateway_socket()
        ),
        tcp=_tcp_arg(args.tcp),
        nodes=args.node,
        health_interval=args.health_interval,
        fail_threshold=args.fail_threshold,
        per_node_inflight=args.per_node_inflight,
        max_retries=args.max_retries,
        use_cache=not args.no_cache,
    )
    print(
        f"repro gateway: socket {config.socket_path}, "
        f"{len(config.nodes)} node(s): {', '.join(config.nodes)}"
        + (f", tcp {config.tcp[0]}:{config.tcp[1]}" if config.tcp else "")
    )
    serve_gateway(config)
    print("repro gateway: stopped")
    return 0


def _sweep_jobs(args):
    """Build the mix x scheme job grid shared by fed-submit."""
    from dataclasses import replace

    from repro.harness import SimJob
    from repro.harness.schemes import split_scheme
    from repro.sim import large_system, small_system
    from repro.workloads import make_mix

    config = small_system() if args.system == "small" else large_system()
    if args.epoch_cycles:
        config = replace(config, epoch_cycles=args.epoch_cycles)
    apps_per_slot = config.num_cores // 4
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    if not schemes:
        raise ValueError("--schemes names no schemes")
    for scheme in schemes:
        split_scheme(scheme)
    mixes = [
        make_mix(args.mix_class, index, apps_per_slot=apps_per_slot)
        for index in range(1, args.mixes + 1)
    ]
    jobs = [
        SimJob(mix, scheme, config, args.instructions, seed=args.seed)
        for mix in mixes
        for scheme in schemes
    ]
    return jobs, mixes, schemes


def _cmd_fed_submit(args) -> int:
    from repro.federation import FederatedClient
    from repro.service import ServiceError

    try:
        jobs, mixes, schemes = _sweep_jobs(args)
    except ValueError as err:
        print(f"error: {err}")
        return 1
    print(
        f"fed-submit: {len(jobs)} job(s) "
        f"({len(mixes)} mix(es) x {len(schemes)} scheme(s))"
    )
    try:
        with FederatedClient(args.gateway) as fed:
            batch = fed.submit_batch(jobs, priority=args.priority)
    except (ServiceError, OSError) as err:
        print(f"error: {err}")
        return 1
    slot = 0
    for mix in mixes:
        for scheme in schemes:
            outcome = batch.outcomes[slot]
            origin = (
                "cache" if batch.cached[slot]
                else "dedup" if batch.deduped[slot]
                else "fleet"
            )
            if outcome is None:
                print(
                    f"  {mix.name:12s} {scheme:20s} "
                    f"FAILED: {batch.errors[slot]}"
                )
            else:
                print(
                    f"  {mix.name:12s} {scheme:20s} "
                    f"throughput {outcome.result.throughput:7.3f}  [{origin}]"
                )
            slot += 1
    failed = sum(1 for e in batch.errors if e is not None)
    print(
        f"done: {len(jobs) - failed}/{len(jobs)} ok, "
        f"{sum(batch.cached)} cached, {sum(batch.deduped)} deduped"
    )
    return 1 if failed else 0


def _cmd_fed_status(args) -> int:
    import json

    from repro.federation import FederatedClient
    from repro.service import ServiceError

    try:
        with FederatedClient(args.gateway) as fed:
            summary = fed.status()
    except (ServiceError, OSError) as err:
        print(f"error: {err}")
        return 1
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(
        f"gateway: up {summary.get('uptime_s', 0):.0f}s, "
        f"routed {summary.get('routed', 0)}, "
        f"dedupe {summary.get('dedupe_hits', 0)}, "
        f"cache {summary.get('cache_hits', 0)}, "
        f"failover {summary.get('failover_requeues', 0)}, "
        f"completed {summary.get('completed', 0)}, "
        f"failed {summary.get('failed', 0)}"
    )
    nodes = summary.get("nodes", [])
    print(
        f"{'node':8s} {'state':>8s} {'addr':>24s} {'routed':>7s} "
        f"{'inflight':>9s} {'queue':>6s} {'workers':>8s}"
    )
    for row in nodes:
        queue = row.get("queue_depth")
        workers = row.get("workers_alive")
        print(
            f"{row['name']:8s} {row['state']:>8s} {row['addr']:>24s} "
            f"{row['routed']:>7d} {row['in_flight']:>9d} "
            f"{'?' if queue is None else queue:>6} "
            f"{'?' if workers is None else workers:>8}"
        )
    return 0 if any(row["state"] != "dead" for row in nodes) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Vantage cache-partitioning reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list the synthetic applications")

    p = sub.add_parser("classify", help="MPKI sweep for one application")
    p.add_argument("app")
    p.add_argument("--accesses", type=int, default=40_000)

    p = sub.add_parser("size-unmanaged", help="Section 4.3 sizing closed form")
    p.add_argument("--candidates", "-r", type=int, default=52)
    p.add_argument("--a-max", type=float, default=0.5)
    p.add_argument("--slack", type=float, default=0.1)
    p.add_argument("--pev", type=float, default=1e-2)

    p = sub.add_parser("overheads", help="Vantage state-overhead accounting")
    p.add_argument("--cache-mb", type=int, default=8)
    p.add_argument("--partitions", type=int, default=32)
    p.add_argument("--banks", type=int, default=4)

    p = sub.add_parser("run-mix", help="simulate one multiprogrammed mix")
    p.add_argument("--mix-class", default="sftn")
    p.add_argument("--mix-index", type=int, default=1)
    p.add_argument("--scheme", default="vantage-z4/52")
    p.add_argument("--system", choices=("small", "large"), default="small")
    p.add_argument("--instructions", type=int, default=400_000)
    p.add_argument("--epoch-cycles", type=int, default=250_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="write the run's exported stats tree to PATH as JSON",
    )
    p.add_argument(
        "--fastfwd-report",
        action="store_true",
        help="run the fast-forward detector in detection-only mode and "
        "print where it would trigger (epoch, window, skipped-access "
        "fraction); the simulation itself stays exact",
    )

    p = sub.add_parser("schemes", help="list the registered schemes and arrays")
    p.add_argument(
        "--list",
        action="store_true",
        help="bare scheme names only, one per line (for scripting/CI)",
    )
    p.add_argument(
        "--fingerprints",
        action="store_true",
        help="show each registry entry's fingerprint prefix",
    )

    p = sub.add_parser(
        "traces",
        help="inspect or purge the on-disk trace store and the "
        "shared-memory segments",
    )
    p.add_argument(
        "--list",
        action="store_true",
        help="list stored traces and live shared-memory segments "
        "(the default action)",
    )
    p.add_argument(
        "--purge",
        action="store_true",
        help="delete every stored trace chunk and scavenge "
        "shared-memory segments whose publisher is dead",
    )
    p.add_argument(
        "--force",
        action="store_true",
        help="with --purge: also unlink segments whose publisher is "
        "still alive (their attached runs fall back to compiling)",
    )

    p = sub.add_parser("serve", help="run the resident experiment daemon")
    p.add_argument("--socket", default=None, help="Unix socket path")
    p.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="also listen on TCP (or set REPRO_SERVICE_ADDR)",
    )
    p.add_argument("--workers", type=_positive_int, default=None)
    p.add_argument("--queue-size", type=_positive_int, default=256)
    p.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry jobs that run longer than this",
    )
    p.add_argument("--max-retries", type=int, default=2)
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk results cache",
    )

    p = sub.add_parser("submit", help="run one mix via a running daemon")
    p.add_argument("--socket", default=None, help="daemon Unix socket path")
    p.add_argument("--tcp", default=None, metavar="HOST:PORT")
    p.add_argument("--mix-class", default="sftn")
    p.add_argument("--mix-index", type=int, default=1)
    p.add_argument("--scheme", default="vantage-z4/52")
    p.add_argument("--system", choices=("small", "large"), default="small")
    p.add_argument("--instructions", type=int, default=400_000)
    p.add_argument("--epoch-cycles", type=int, default=250_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--priority", type=int, default=0)
    p.add_argument(
        "--no-wait",
        action="store_true",
        help="print the submission ticket instead of waiting",
    )

    p = sub.add_parser("svc-stats", help="a running daemon's telemetry tree")
    p.add_argument("--socket", default=None, help="daemon Unix socket path")
    p.add_argument("--tcp", default=None, metavar="HOST:PORT")
    p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the tree as JSON to PATH ('-' for stdout)",
    )

    p = sub.add_parser(
        "gateway", help="run the federation gateway over N daemons"
    )
    p.add_argument(
        "--socket",
        default=None,
        help="gateway Unix socket path (or REPRO_GATEWAY_SOCKET)",
    )
    p.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="also listen on TCP",
    )
    p.add_argument(
        "--node",
        action="append",
        required=True,
        metavar="ADDR",
        help="a backend daemon (host:port, [v6]:port or a socket "
        "path); repeat once per node",
    )
    p.add_argument(
        "--health-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="seconds between node health probes",
    )
    p.add_argument(
        "--fail-threshold",
        type=_positive_int,
        default=2,
        help="consecutive failed probes before a node is dead",
    )
    p.add_argument(
        "--per-node-inflight",
        type=_positive_int,
        default=8,
        help="concurrent jobs forwarded per node",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="failover hops tolerated per job",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the gateway's read-through results cache",
    )

    p = sub.add_parser(
        "fed-submit", help="run a mix x scheme sweep via a gateway"
    )
    p.add_argument(
        "--gateway",
        default=None,
        metavar="ADDR",
        help="gateway host:port or socket path (or REPRO_FED_GATEWAY)",
    )
    p.add_argument("--mix-class", default="sftn")
    p.add_argument(
        "--mixes",
        type=_positive_int,
        default=1,
        help="submit mix indices 1..N of the class",
    )
    p.add_argument(
        "--schemes",
        default="vantage-z4/52",
        help="comma-separated scheme list (the sweep is mixes x schemes)",
    )
    p.add_argument("--system", choices=("small", "large"), default="small")
    p.add_argument("--instructions", type=int, default=400_000)
    p.add_argument("--epoch-cycles", type=int, default=250_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--priority", type=int, default=0)

    p = sub.add_parser(
        "fed-status", help="a running gateway's nodes and counters"
    )
    p.add_argument(
        "--gateway",
        default=None,
        metavar="ADDR",
        help="gateway host:port or socket path (or REPRO_FED_GATEWAY)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the raw summary as JSON",
    )

    p = sub.add_parser(
        "bench", help="time the optimized kernels against the reference"
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help="short correctness run (CI); timings are not meaningful",
    )
    p.add_argument(
        "--sweep",
        action="store_true",
        help="run the sweep-throughput bench instead (multi-scheme "
        "run_jobs fan-out, REPRO_TRACE_SHM on vs off)",
    )
    p.add_argument("--tag", default=None, help="suffix for BENCH_<tag>.json")
    p.add_argument("--rounds", type=_positive_int, default=None)
    p.add_argument("--instructions", type=_positive_int, default=None)
    p.add_argument(
        "--compare",
        default=None,
        metavar="PATH",
        help="baseline BENCH_<tag>.json; exit 1 if any kernel's speedup "
        "regresses more than 10%% below it",
    )
    p.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="JSON history file: append this run and exit 1 if any "
        "kernel's speedup regresses more than 10%% below the best of "
        "the last 5 recorded runs",
    )

    return parser


_COMMANDS = {
    "list-apps": _cmd_list_apps,
    "classify": _cmd_classify,
    "size-unmanaged": _cmd_size_unmanaged,
    "overheads": _cmd_overheads,
    "run-mix": _cmd_run_mix,
    "schemes": _cmd_schemes,
    "traces": _cmd_traces,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "svc-stats": _cmd_svc_stats,
    "gateway": _cmd_gateway,
    "fed-submit": _cmd_fed_submit,
    "fed-status": _cmd_fed_status,
}

#: Conventional 128+signal exit codes for interrupted runs.
EXIT_SIGINT = 130
EXIT_SIGTERM = 143


def _sigterm_to_exit(signum, frame):
    raise SystemExit(EXIT_SIGTERM)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # A terminal Ctrl-C or a supervisor's SIGTERM must shut worker
    # pools down without spraying per-process tracebacks, and exit
    # with a distinct code the caller can script against.  Workers
    # themselves ignore SIGINT (see repro.harness.parallel.worker_init
    # and repro.service.workers._worker_main); the daemon installs
    # its own asyncio handlers and exits 0 on a clean shutdown.
    import signal as _signal

    previous = None
    try:
        previous = _signal.signal(_signal.SIGTERM, _sigterm_to_exit)
    except (OSError, ValueError):
        pass  # not the main thread (embedding); keep default handling
    from repro.service.protocol import ProtocolError

    try:
        return _COMMANDS[args.command](args)
    except ProtocolError as err:
        # Malformed --tcp / REPRO_SERVICE_ADDR / node address specs:
        # one clear line, exit 1, no traceback.
        print(f"error: {err}")
        return 1
    except KeyboardInterrupt:
        print("\ninterrupted", flush=True)
        return EXIT_SIGINT
    finally:
        if previous is not None:
            try:
                _signal.signal(_signal.SIGTERM, previous)
            except (OSError, ValueError):
                pass


if __name__ == "__main__":
    raise SystemExit(main())
