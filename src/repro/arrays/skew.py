"""Skew-associative cache array (Seznec, 1993).

Each way is a separate bank indexed with its own H3 hash function, so
conflicts in one way are spread out across the others.  A miss offers
one candidate per way (R = W), with no relocation: a skew cache is a
zcache whose replacement walk stops at the first level.
"""

from __future__ import annotations

from repro.arrays.base import CacheArray, Candidate
from repro.arrays.hashing import H3Family


class SkewAssociativeArray(CacheArray):
    """W-way skew-associative array.

    Slot layout: ``slot = way * num_sets + h_way(addr)``; each way owns
    a contiguous bank of ``num_sets`` slots.
    """

    def __init__(self, num_lines: int, num_ways: int, seed: int = 0):
        super().__init__(num_lines, num_ways)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"num_sets must be a power of two, got {self.num_sets}")
        self.hashes = H3Family(num_ways, self.num_sets, seed)
        self._position_cache: dict[int, tuple[int, ...]] = {}

    @property
    def candidates_per_miss(self) -> int:
        return self.num_ways

    def positions(self, addr: int) -> tuple[int, ...]:
        pos = self._position_cache.get(addr)
        if pos is None:
            num_sets = self.num_sets
            pos = tuple(
                way * num_sets + fn(addr) for way, fn in enumerate(self.hashes.functions)
            )
            self._position_cache[addr] = pos
        return pos

    def candidates(self, addr: int) -> list[Candidate]:
        tags = self._tags
        return [
            Candidate(slot, tags[slot], (slot,), way)
            for way, slot in enumerate(self.positions(addr))
        ]

    def way_of_slot(self, slot: int) -> int:
        return slot // self.num_sets
