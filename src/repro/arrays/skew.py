"""Skew-associative cache array (Seznec, 1993).

Each way is a separate bank indexed with its own H3 hash function, so
conflicts in one way are spread out across the others.  A miss offers
one candidate per way (R = W), with no relocation: a skew cache is a
zcache whose replacement walk stops at the first level.
"""

from __future__ import annotations

from repro.arrays.base import EMPTY, CacheArray, Candidate
from repro.arrays.hashing import _MASK_BITS, H3Family

#: Cross-instance pool of position memos, keyed by the full identity
#: of the position function ``(num_ways, num_sets, seed)`` (the hash
#: family and the lane offsets are both derived from exactly these).
#: A position tuple is a pure function of that identity and the
#: address, so arrays built with the same geometry and seed -- every
#: round of a benchmark, every mix of a sweep -- share one memo and
#: skip re-hashing addresses the process has already placed.  Sharing
#: is invisible to results and stats: entries are insert-only and no
#: counter exposes the memo's size.  The registry is bounded; at the
#: cap new identities stop sharing (live arrays keep their own dict).
_POSITION_CACHE_POOL: dict[tuple[int, int, int], dict] = {}
_POOL_KEYS_MAX = 16


def _pooled_position_cache(num_ways: int, num_sets: int, seed: int) -> dict:
    cache = _POSITION_CACHE_POOL.get((num_ways, num_sets, seed))
    if cache is None:
        cache = {}
        if len(_POSITION_CACHE_POOL) < _POOL_KEYS_MAX:
            _POSITION_CACHE_POOL[(num_ways, num_sets, seed)] = cache
    return cache


class SkewAssociativeArray(CacheArray):
    """W-way skew-associative array.

    Slot layout: ``slot = way * num_sets + h_way(addr)``; each way owns
    a contiguous bank of ``num_sets`` slots.
    """

    def __init__(self, num_lines: int, num_ways: int, seed: int = 0):
        super().__init__(num_lines, num_ways)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"num_sets must be a power of two, got {self.num_sets}")
        if num_lines >= 1 << _MASK_BITS:
            raise ValueError("num_lines must fit in one fused-hash lane")
        self.hashes = H3Family(num_ways, self.num_sets, seed)
        # Bounded memo of per-address position tuples, shared across
        # arrays with the same position-function identity (see
        # _POSITION_CACHE_POOL); flushed wholesale at the cap like
        # SetAssociativeArray._index_cache (resident lines re-memoise
        # on their next walk, so correctness never depends on an entry
        # being present).
        self._position_cache: dict[int, tuple[int, ...]] = (
            _pooled_position_cache(num_ways, self.num_sets, seed)
        )
        self._position_cache_cap = max(4 * num_lines, 1 << 16)
        # The fused hash packs each way's bucket into its own 32-bit
        # lane; adding these pre-shifted bank bases turns every lane
        # into a global slot index in a single operation (lanes are
        # pre-masked to the bucket width, so the add cannot carry).
        self._lane_offsets = sum(
            (way * self.num_sets) << (_MASK_BITS * way) for way in range(num_ways)
        )
        self._lane_shifts = tuple(_MASK_BITS * way for way in range(num_ways))
        self._lane_mask = (1 << _MASK_BITS) - 1
        # The *other-way* positions of the line resident at each slot
        # (None when empty): a line always sits at one of its own
        # hashed positions, so the walk never needs to re-visit that
        # one, and a list index replaces a per-parent dict lookup.
        self._pos_by_slot: list[tuple[int, ...] | None] = [None] * num_lines
        # Scratch list reused by candidate_slots (see the fast-path
        # protocol: the result is only valid until the next walk).
        self._walk_slots: list[int] = []

    @property
    def candidates_per_miss(self) -> int:
        return self.num_ways

    def positions(self, addr: int) -> tuple[int, ...]:
        cache = self._position_cache
        pos = cache.get(addr)
        if pos is None:
            if len(cache) >= self._position_cache_cap:
                cache.clear()
            h = self.hashes.packed(addr) + self._lane_offsets
            mask = self._lane_mask
            pos = tuple([(h >> shift) & mask for shift in self._lane_shifts])
            cache[addr] = pos
        return pos

    def positions_into(self, addr: int, buf: list[int]) -> int:
        pos = self._position_cache.get(addr)
        if pos is not None:
            n = len(pos)
            buf[:n] = pos
            return n
        h = self.hashes.packed(addr) + self._lane_offsets
        mask = self._lane_mask
        n = 0
        for shift in self._lane_shifts:
            buf[n] = (h >> shift) & mask
            n += 1
        return n

    def candidates(self, addr: int) -> list[Candidate]:
        tags = self._tags
        out: list[Candidate] = []
        for way, slot in enumerate(self.positions(addr)):
            tag = tags[slot]
            out.append(Candidate(slot, tag if tag >= 0 else None, (slot,), way))
        return out

    def candidate_slots(self, addr: int):
        tags = self._tags
        slots = self._walk_slots
        slots.clear()
        has_empty = False
        for slot in self.positions(addr):
            slots.append(slot)
            if tags[slot] < 0:
                has_empty = True
                break
        if self._collect:
            self.stat_walks += 1
            self.stat_candidates += len(slots)
        return slots, None, has_empty

    def way_of_slot(self, slot: int) -> int:
        return slot // self.num_sets

    def _other_positions(self, addr: int, slot: int) -> tuple[int, ...]:
        """``positions(addr)`` minus ``addr``'s own slot.  The line
        sits at its way's position, so dropping index ``way(slot)``
        removes exactly that one."""
        pos = self.positions(addr)
        way = slot // self.num_sets
        return pos[:way] + pos[way + 1 :]

    def install(self, addr: int, victim: Candidate) -> list[tuple[int, int]]:
        # Mirrors CacheArray.install with this class's _place/_move/
        # _remove bookkeeping inlined; install runs once per miss and
        # the method-call chain is measurable there.
        slot_of = self._slot_of
        if addr in slot_of:
            raise ValueError(f"address {addr:#x} is already present")
        path = victim.path
        last = path[-1]
        if victim.slot != last:
            raise ValueError("victim slot does not terminate its path")
        tags = self._tags
        pbs = self._pos_by_slot
        num_sets = self.num_sets
        pcache_get = self._position_cache.get
        if victim.addr is not None:
            old = tags[last]
            if old < 0:
                raise ValueError(f"slot {last} is already empty")
            tags[last] = EMPTY
            del slot_of[old]
            pbs[last] = None
        moves: list[tuple[int, int]] = []
        for i in range(len(path) - 1, 0, -1):
            src = path[i - 1]
            dst = path[i]
            line = tags[src]
            if line < 0:
                raise ValueError(f"cannot move from empty slot {src}")
            if tags[dst] >= 0:
                raise ValueError(f"cannot move into occupied slot {dst}")
            tags[src] = EMPTY
            tags[dst] = line
            slot_of[line] = dst
            # _other_positions(line, dst), inlined; the position memo
            # is bounded, so recompute on the (rare) post-flush miss.
            pos = pcache_get(line)
            if pos is None:
                pos = self.positions(line)
            way = dst // num_sets
            pbs[dst] = pos[:way] + pos[way + 1 :]
            pbs[src] = None
            moves.append((src, dst))
        first = path[0]
        if tags[first] >= 0:
            raise ValueError(f"slot {first} is occupied")
        tags[first] = addr
        slot_of[addr] = first
        pos = pcache_get(addr)
        if pos is None:
            pos = self.positions(addr)
        way = first // num_sets
        pbs[first] = pos[:way] + pos[way + 1 :]
        if self._collect:
            self.stat_installs += 1
            self.stat_relocations += len(moves)
        return moves

    def _place(self, addr: int, slot: int) -> None:
        super()._place(addr, slot)
        self._pos_by_slot[slot] = self._other_positions(addr, slot)

    def _move(self, src: int, dst: int) -> None:
        addr = self._tags[src]
        super()._move(src, dst)
        if addr >= 0:
            self._pos_by_slot[dst] = self._other_positions(addr, dst)
        self._pos_by_slot[src] = None

    def _remove(self, slot: int) -> None:
        super()._remove(slot)
        self._pos_by_slot[slot] = None
