"""Cache arrays: storage organisations that produce replacement candidates."""

from repro.arrays.base import CacheArray, Candidate
from repro.arrays.hashing import H3Family, H3Hash
from repro.arrays.random_cands import RandomCandidatesArray
from repro.arrays.set_assoc import SetAssociativeArray
from repro.arrays.skew import SkewAssociativeArray
from repro.arrays.zcache import ZCacheArray

__all__ = [
    "CacheArray",
    "Candidate",
    "H3Family",
    "H3Hash",
    "RandomCandidatesArray",
    "SetAssociativeArray",
    "SkewAssociativeArray",
    "ZCacheArray",
]
