"""Cache-array abstraction shared by every array organisation.

A *cache array* (following the framework of the zcache paper [21])
implements associative lookups and, on each replacement, produces a
list of *replacement candidates*.  Everything above the array -- the
replacement policy, the partitioning scheme, the Vantage controller --
only ever sees candidates and picks one to evict; the array then
installs the incoming line, performing any internal relocations (for
zcaches) and reporting the slot moves so per-line metadata kept by
higher layers can follow the lines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from array import array
from collections import namedtuple
from typing import Iterator

from repro import telemetry

#: Sentinel stored in the flat tag column for an empty slot.  Line
#: addresses are non-negative, so ``tag < 0`` is the emptiness test on
#: the hot path (``addr_at`` still presents ``None`` to callers).
EMPTY = -1


class Candidate(namedtuple("Candidate", ("slot", "addr", "path", "way"))):
    """One replacement option returned by :meth:`CacheArray.candidates`.

    A namedtuple (not a dataclass) with empty ``__slots__`` because
    millions can be created on the hot path of a simulation; the fast
    path (:meth:`CacheArray.candidate_slots`) avoids materialising
    them at all and only builds the final victim via
    :meth:`CacheArray.make_candidate`.

    Attributes
    ----------
    slot:
        Global slot index of the line that would be evicted.
    addr:
        Line address stored at ``slot``, or ``None`` if the slot is
        empty (installing there evicts nothing).
    path:
        Chain of slots from the incoming line's landing slot down to
        ``slot``.  For set-associative and skew-associative arrays this
        is always ``(slot,)``.  For zcaches, choosing a deeper
        candidate relocates each line on the path one step down:
        ``path[i]``'s line moves to ``path[i+1]``, and the incoming
        line lands in ``path[0]``.
    way:
        The way that ``slot`` belongs to.  Way-partitioning uses this
        to restrict victims to a partition's assigned ways.
    """

    __slots__ = ()

    @property
    def is_empty(self) -> bool:
        return self.addr is None


class CacheArray(ABC):
    """Associative storage for line addresses.

    Concrete arrays define the geometry (how addresses map to slots)
    and the candidate-generation process; this base class owns the
    tag store and the address-to-slot index.

    Line addresses are plain non-negative integers (byte addresses
    divided by the line size); the array never interprets them beyond
    hashing.
    """

    def __init__(self, num_lines: int, num_ways: int):
        if num_lines <= 0:
            raise ValueError(f"num_lines must be positive, got {num_lines}")
        if num_ways <= 0 or num_lines % num_ways:
            raise ValueError(
                f"num_lines ({num_lines}) must be a positive multiple of "
                f"num_ways ({num_ways})"
            )
        self.num_lines = num_lines
        self.num_ways = num_ways
        self.num_sets = num_lines // num_ways
        # Structure-of-arrays tag column: one signed 64-bit word per
        # slot (EMPTY for free slots) instead of a list of PyObject
        # pointers -- 8 bytes/slot regardless of address magnitude.
        self._tags = array("q", [EMPTY]) * num_lines
        # Bounded address->slot index: one entry per *resident* line,
        # so its size can never exceed num_lines.
        self._slot_of: dict[int, int] = {}
        # Scratch buffer for install_walk's relocation report: flat
        # (src, dst) pairs, overwritten on every call.
        self._install_moves: list[int] = []
        # Telemetry counters (plain ints; pull-based leaves read them
        # at snapshot time).  ``_collect`` is latched at construction
        # so disabled telemetry costs one attribute read per walk.
        self._collect = telemetry.enabled()
        self.stat_walks = 0
        self.stat_candidates = 0
        self.stat_installs = 0
        self.stat_relocations = 0

    # ------------------------------------------------------------------
    # Geometry hooks implemented by subclasses.
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def candidates_per_miss(self) -> int:
        """Nominal number of replacement candidates (R in the paper)."""

    @abstractmethod
    def positions(self, addr: int) -> tuple[int, ...]:
        """Slots where ``addr`` may directly reside (one per way)."""

    @abstractmethod
    def candidates(self, addr: int) -> list[Candidate]:
        """Replacement options for a miss on ``addr``.

        Empty slots are reported as candidates with ``addr=None``;
        callers normally install into an empty candidate when one
        exists, since that evicts nothing.
        """

    # ------------------------------------------------------------------
    # Fast-path candidate protocol.
    # ------------------------------------------------------------------
    #
    # ``candidates()`` materialises one Candidate per replacement
    # option -- millions of short-lived namedtuples per simulation.
    # The fast path works on plain slot indices instead and only
    # builds the single Candidate that is actually evicted:
    #
    #   1. ``candidate_slots(addr)`` returns ``(slots, parents,
    #      has_empty)``.  ``slots`` is a sequence (list or range) of
    #      candidate slots in exactly the discovery order of
    #      ``candidates()``.  ``parents`` is an *opaque descriptor*
    #      consumed only by ``make_candidate`` -- a per-slot parent
    #      index list (-1 for first-level candidates), ``None`` when
    #      every path is single-slot, or an array-private encoding.
    #      When ``has_empty`` is true, generation stopped at the first
    #      empty slot, which is ``slots[-1]`` -- semantically
    #      identical to a full generation followed by "install into
    #      the first empty candidate", since callers never inspect
    #      candidates past the one they install into.  Both ``slots``
    #      and ``parents`` may be scratch objects owned by the array:
    #      they are valid only until the next walk, so callers must
    #      consume (or copy) them within the current miss.
    #   2. ``make_candidate(slots, parents, i)`` reconstructs the full
    #      Candidate (path included) for the chosen index.
    #
    # The base implementation returns ``None`` (no fast path); callers
    # must then fall back to ``candidates()``.

    def candidate_slots(
        self, addr: int
    ) -> tuple[list[int], list[int] | None, bool] | None:
        """Fast-path candidate generation; ``None`` if unsupported."""
        return None

    def way_of_slot(self, slot: int) -> int:
        """The way ``slot`` belongs to (layout-dependent)."""
        return slot % self.num_ways

    def make_candidate(
        self, slots: list[int], parents: list[int] | None, index: int
    ) -> Candidate:
        """Materialise the :class:`Candidate` for ``slots[index]``."""
        slot = slots[index]
        if parents is None:
            path: tuple[int, ...] = (slot,)
        else:
            parent = parents[index]
            if parent < 0:
                path = (slot,)
            else:
                chain = [slot]
                while parent >= 0:
                    chain.append(slots[parent])
                    parent = parents[parent]
                chain.reverse()
                path = tuple(chain)
        tag = self._tags[slot]
        return Candidate(
            slot, tag if tag >= 0 else None, path, self.way_of_slot(slot)
        )

    # ------------------------------------------------------------------
    # Common operations.
    # ------------------------------------------------------------------

    def lookup(self, addr: int) -> int | None:
        """Slot holding ``addr``, or ``None`` on a miss."""
        slot = self._slot_of.get(addr)
        return slot

    def addr_at(self, slot: int) -> int | None:
        tag = self._tags[slot]
        return tag if tag >= 0 else None

    def positions_into(self, addr: int, buf: list[int]) -> int:
        """Write ``positions(addr)`` into the preallocated ``buf``.

        Returns the number of positions written; ``buf`` must be at
        least ``num_ways`` long (its tail is left untouched).  The
        default delegates to :meth:`positions`; geometry-aware
        subclasses fill ``buf`` without materialising a tuple, so hit
        paths polling several possible locations can reuse one buffer
        across accesses.
        """
        pos = self.positions(addr)
        n = len(pos)
        buf[:n] = pos
        return n

    def install_walk(
        self, addr: int, slots, parents, index: int
    ) -> int:
        """Fused ``make_candidate(slots, parents, index)`` + ``install``.

        Installs ``addr`` into the victim ``slots[index]`` (evicting
        the resident line if the slot is occupied) without building the
        intermediate :class:`Candidate`, and returns the slot the new
        line landed in.  Relocations (zcache paths) are reported in
        :attr:`_install_moves` as flat ``src, dst`` pairs in execution
        order -- a scratch buffer overwritten by the next call.  The
        arguments must come from the immediately preceding
        ``candidate_slots(addr)`` walk; validation is skipped.
        """
        slot = slots[index]
        self._install_moves.clear()
        if self._tags[slot] >= 0:
            self._remove(slot)
        self._place(addr, slot)
        if self._collect:
            self.stat_installs += 1
        return slot

    def install(self, addr: int, victim: Candidate) -> list[tuple[int, int]]:
        """Install ``addr``, evicting ``victim`` (if non-empty).

        Performs the relocations implied by ``victim.path`` and returns
        them as ``(from_slot, to_slot)`` pairs in execution order so
        callers can move per-slot metadata alongside the lines.  The
        incoming line always lands in ``path[0]``.
        """
        if addr in self._slot_of:
            raise ValueError(f"address {addr:#x} is already present")
        path = victim.path
        if victim.slot != path[-1]:
            raise ValueError("victim slot does not terminate its path")
        if victim.addr is not None:
            self._remove(path[-1])
        moves: list[tuple[int, int]] = []
        for i in range(len(path) - 1, 0, -1):
            self._move(path[i - 1], path[i])
            moves.append((path[i - 1], path[i]))
        self._place(addr, path[0])
        if self._collect:
            self.stat_installs += 1
            self.stat_relocations += len(moves)
        return moves

    def invalidate(self, addr: int) -> int | None:
        """Remove ``addr`` if present; returns the freed slot."""
        slot = self._slot_of.get(addr)
        if slot is not None:
            self._remove(slot)
        return slot

    def occupancy(self) -> int:
        """Number of valid lines currently stored."""
        return len(self._slot_of)

    def register_stats(self, group) -> None:
        """Register the array's counters into a stats tree group."""
        group.stat(
            "walks",
            lambda: self.stat_walks,
            "fast-path replacement walks performed",
        )
        group.stat(
            "candidates",
            lambda: self.stat_candidates,
            "replacement candidates inspected across all walks",
        )
        group.stat(
            "installs",
            lambda: self.stat_installs,
            "lines installed",
        )
        group.stat(
            "relocations",
            lambda: self.stat_relocations,
            "line relocations performed during installs (zcache paths)",
        )
        group.stat(
            "occupancy",
            lambda: len(self._slot_of),
            "valid lines currently resident",
        )

    def contents(self) -> Iterator[tuple[int, int]]:
        """Iterate over ``(slot, addr)`` for every valid line."""
        return ((slot, addr) for addr, slot in self._slot_of.items())

    def __contains__(self, addr: int) -> bool:
        return addr in self._slot_of

    def __len__(self) -> int:
        return self.num_lines

    # ------------------------------------------------------------------
    # Internal tag-store mutations.
    # ------------------------------------------------------------------

    def _place(self, addr: int, slot: int) -> None:
        if self._tags[slot] >= 0:
            raise ValueError(f"slot {slot} is occupied")
        self._tags[slot] = addr
        self._slot_of[addr] = slot

    def _remove(self, slot: int) -> None:
        addr = self._tags[slot]
        if addr < 0:
            raise ValueError(f"slot {slot} is already empty")
        self._tags[slot] = EMPTY
        del self._slot_of[addr]

    def _move(self, src: int, dst: int) -> None:
        addr = self._tags[src]
        if addr < 0:
            raise ValueError(f"cannot move from empty slot {src}")
        if self._tags[dst] >= 0:
            raise ValueError(f"cannot move into occupied slot {dst}")
        self._tags[src] = EMPTY
        self._tags[dst] = addr
        self._slot_of[addr] = dst
