"""ZCache array (Sanchez & Kozyrakis, MICRO 2010).

A zcache is a skew-associative array whose replacement process *walks*
the cache: the W direct positions of the incoming address yield W
first-level candidates; each candidate line can itself be relocated to
its positions in the other W-1 ways, exposing the lines there as
second-level candidates, and so on.  A W-way zcache therefore obtains
an arbitrarily large number of replacement candidates R with only W
lookups on a hit -- the paper's Z4/52 configuration is a 4-way zcache
walking to R = 52 candidates (4 + 12 + 36 over three levels).

Evicting a deep candidate relocates every line on its path one step
down, which :meth:`CacheArray.install` performs and reports, so the
candidates produced by the walk behave (statistically) like a uniform
random sample of the cache's lines -- the property Vantage's analysis
relies on.
"""

from __future__ import annotations

from repro.arrays.base import Candidate
from repro.arrays.skew import SkewAssociativeArray


class ZCacheArray(SkewAssociativeArray):
    """W-way zcache providing R candidates per replacement.

    Parameters
    ----------
    num_lines:
        Total capacity in lines.
    num_ways:
        Physical ways (W); determines lookup cost.
    candidates_per_miss:
        Walk size (R).  Z4/16 and Z4/52 from the paper correspond to
        ``num_ways=4`` with 16 and 52 candidates.
    seed:
        Seed for the per-way H3 hash functions.
    """

    def __init__(
        self,
        num_lines: int,
        num_ways: int = 4,
        candidates_per_miss: int = 52,
        seed: int = 0,
    ):
        super().__init__(num_lines, num_ways, seed)
        if candidates_per_miss < num_ways:
            raise ValueError(
                f"candidates_per_miss ({candidates_per_miss}) must be at least "
                f"num_ways ({num_ways})"
            )
        self._r = candidates_per_miss

    @property
    def candidates_per_miss(self) -> int:
        return self._r

    def candidates(self, addr: int) -> list[Candidate]:
        """Breadth-first replacement walk collecting up to R candidates.

        Empty slots found during the walk are reported as empty
        candidates (installing there needs no eviction) and are not
        expanded further, since they hold no line to relocate.
        """
        tags = self._tags
        num_sets = self.num_sets
        num_ways = self.num_ways
        positions = self.positions
        found: list[Candidate] = []
        visited: set[int] = set()
        # Frontier of expandable (occupied) candidates, in discovery order.
        frontier: list[Candidate] = []

        for way, slot in enumerate(positions(addr)):
            if slot in visited:
                continue
            visited.add(slot)
            line = tags[slot]
            cand = Candidate(slot, line, (slot,), way)
            found.append(cand)
            if line is not None:
                frontier.append(cand)

        r = self._r
        while len(found) < r and frontier:
            next_frontier: list[Candidate] = []
            for parent in frontier:
                parent_slot = parent.slot
                parent_way = parent_slot // num_sets
                line = tags[parent_slot]
                if line is None:
                    # The parent can only become empty through external
                    # mutation between walks; candidates() is atomic per
                    # miss, so this is unreachable -- but stay safe.
                    continue
                # positions() memoises the per-way hashes of resident
                # lines, which dominates the walk's cost otherwise.
                line_positions = positions(line)
                for way in range(num_ways):
                    if way == parent_way:
                        continue
                    slot = line_positions[way]
                    if slot in visited:
                        continue
                    visited.add(slot)
                    child = tags[slot]
                    cand = Candidate(slot, child, parent.path + (slot,), way)
                    found.append(cand)
                    if child is not None:
                        next_frontier.append(cand)
                    if len(found) >= r:
                        return found
            frontier = next_frontier
        return found
