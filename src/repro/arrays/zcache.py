"""ZCache array (Sanchez & Kozyrakis, MICRO 2010).

A zcache is a skew-associative array whose replacement process *walks*
the cache: the W direct positions of the incoming address yield W
first-level candidates; each candidate line can itself be relocated to
its positions in the other W-1 ways, exposing the lines there as
second-level candidates, and so on.  A W-way zcache therefore obtains
an arbitrarily large number of replacement candidates R with only W
lookups on a hit -- the paper's Z4/52 configuration is a 4-way zcache
walking to R = 52 candidates (4 + 12 + 36 over three levels).

Evicting a deep candidate relocates every line on its path one step
down, which :meth:`CacheArray.install` performs and reports, so the
candidates produced by the walk behave (statistically) like a uniform
random sample of the cache's lines -- the property Vantage's analysis
relies on.
"""

from __future__ import annotations

from repro.arrays.base import EMPTY, Candidate
from repro.arrays.skew import SkewAssociativeArray


class _WalkLevels(list):
    """Level-end indices of a replacement walk (``slots[bounds[k-1]:
    bounds[k]]`` is level ``k``), passed as the ``parents`` descriptor
    of the fast-path protocol.  The walk records no per-slot parent;
    :meth:`ZCacheArray.make_candidate` re-derives the victim's path:
    a slot's discoverer is the *first* previous-level candidate whose
    stored positions contain it (any earlier one would have discovered
    it first).  Every expanded parent is occupied -- an empty slot
    ends the walk immediately, so it can only ever be the last slot
    of the final level -- which is what lets the reconstruction read
    ``_pos_by_slot`` unconditionally.

    ``hint`` is the index (into the slot list) of the parent that
    discovered the *last* slot, recorded when the walk stops at an
    empty slot, or -1.  Empty-stop victims are the common case, and
    the hint skips the widest parent scan of the reconstruction."""

    __slots__ = ("hint",)


class ZCacheArray(SkewAssociativeArray):
    """W-way zcache providing R candidates per replacement.

    Parameters
    ----------
    num_lines:
        Total capacity in lines.
    num_ways:
        Physical ways (W); determines lookup cost.
    candidates_per_miss:
        Walk size (R).  Z4/16 and Z4/52 from the paper correspond to
        ``num_ways=4`` with 16 and 52 candidates.
    seed:
        Seed for the per-way H3 hash functions.
    """

    def __init__(
        self,
        num_lines: int,
        num_ways: int = 4,
        candidates_per_miss: int = 52,
        seed: int = 0,
    ):
        super().__init__(num_lines, num_ways, seed)
        if candidates_per_miss < num_ways:
            raise ValueError(
                f"candidates_per_miss ({candidates_per_miss}) must be at least "
                f"num_ways ({num_ways})"
            )
        self._r = candidates_per_miss
        # Generation-stamped visited marks: a per-slot int compared
        # against a walk counter is cheaper than a set of slot indices
        # rebuilt on every miss.
        self._walk_stamp = [0] * num_lines
        self._walk_gen = 0
        # Reused level-bounds descriptor (valid until the next walk,
        # like _walk_slots).
        self._walk_bounds = _WalkLevels()
        self._walk_bounds.hint = -1
        # Scratch chain reused by install_walk.
        self._install_chain: list[int] = []

    @property
    def candidates_per_miss(self) -> int:
        return self._r

    def candidates(self, addr: int) -> list[Candidate]:
        """Breadth-first replacement walk collecting up to R candidates.

        Empty slots found during the walk are reported as empty
        candidates (installing there needs no eviction) and are not
        expanded further, since they hold no line to relocate.
        """
        tags = self._tags
        num_sets = self.num_sets
        num_ways = self.num_ways
        positions = self.positions
        found: list[Candidate] = []
        visited: set[int] = set()
        # Frontier of expandable (occupied) candidates, in discovery order.
        frontier: list[Candidate] = []

        for way, slot in enumerate(positions(addr)):
            if slot in visited:
                continue
            visited.add(slot)
            line = tags[slot]
            occupied = line >= 0
            cand = Candidate(slot, line if occupied else None, (slot,), way)
            found.append(cand)
            if occupied:
                frontier.append(cand)

        r = self._r
        while len(found) < r and frontier:
            next_frontier: list[Candidate] = []
            for parent in frontier:
                parent_slot = parent.slot
                parent_way = parent_slot // num_sets
                line = tags[parent_slot]
                if line < 0:
                    # The parent can only become empty through external
                    # mutation between walks; candidates() is atomic per
                    # miss, so this is unreachable -- but stay safe.
                    continue
                # positions() memoises the per-way hashes of resident
                # lines, which dominates the walk's cost otherwise.
                line_positions = positions(line)
                for way in range(num_ways):
                    if way == parent_way:
                        continue
                    slot = line_positions[way]
                    if slot in visited:
                        continue
                    visited.add(slot)
                    child = tags[slot]
                    occupied = child >= 0
                    cand = Candidate(
                        slot, child if occupied else None, parent.path + (slot,), way
                    )
                    found.append(cand)
                    if occupied:
                        next_frontier.append(cand)
                    if len(found) >= r:
                        return found
            frontier = next_frontier
        return found

    def make_candidate(self, slots, parents, index):
        if type(parents) is not _WalkLevels:
            return super().make_candidate(slots, parents, index)
        bounds = parents
        slot = slots[index]
        level = 0
        while bounds[level] <= index:
            level += 1
        chain = [slot]
        cur = slot
        pos_by_slot = self._pos_by_slot
        if level > 0 and bounds.hint >= 0 and index == len(slots) - 1:
            cur = slots[bounds.hint]
            chain.append(cur)
            level -= 1
        while level > 0:
            lo = bounds[level - 2] if level >= 2 else 0
            for pi in range(lo, bounds[level - 1]):
                parent = slots[pi]
                if cur in pos_by_slot[parent]:
                    cur = parent
                    break
            else:  # pragma: no cover - the walk guarantees a parent
                raise RuntimeError("walk level bounds are inconsistent")
            chain.append(cur)
            level -= 1
        chain.reverse()
        tag = self._tags[slot]
        return Candidate(
            slot,
            tag if tag >= 0 else None,
            tuple(chain),
            slot // self.num_sets,
        )

    def install_walk(self, addr: int, slots, parents, index: int) -> int:
        bounds = parents
        if type(bounds) is not _WalkLevels:
            return super().install_walk(addr, slots, parents, index)
        slot = slots[index]
        # Derive the victim's relocation chain exactly like
        # make_candidate, reading _pos_by_slot before any mutation.
        level = 0
        while bounds[level] <= index:
            level += 1
        chain = self._install_chain
        chain.clear()
        chain.append(slot)
        cur = slot
        pos_by_slot = self._pos_by_slot
        if level > 0 and bounds.hint >= 0 and index == len(slots) - 1:
            cur = slots[bounds.hint]
            chain.append(cur)
            level -= 1
        while level > 0:
            lo = bounds[level - 2] if level >= 2 else 0
            for pi in range(lo, bounds[level - 1]):
                parent = slots[pi]
                if cur in pos_by_slot[parent]:
                    cur = parent
                    break
            else:  # pragma: no cover - the walk guarantees a parent
                raise RuntimeError("walk level bounds are inconsistent")
            chain.append(cur)
            level -= 1
        # chain[0] is the victim, chain[-1] the landing slot; lines
        # move one step toward the victim, nearest-the-victim first
        # (the order CacheArray.install reports).
        slot_of = self._slot_of
        tags = self._tags
        num_sets = self.num_sets
        pcache_get = self._position_cache.get
        old = tags[slot]
        if old >= 0:
            tags[slot] = EMPTY
            del slot_of[old]
            pos_by_slot[slot] = None
        moves = self._install_moves
        moves.clear()
        moves_append = moves.append
        for k in range(1, len(chain)):
            src = chain[k]
            dst = chain[k - 1]
            line = tags[src]
            tags[src] = EMPTY
            tags[dst] = line
            slot_of[line] = dst
            pos = pcache_get(line)
            if pos is None:
                pos = self.positions(line)
            way = dst // num_sets
            pos_by_slot[dst] = pos[:way] + pos[way + 1 :]
            pos_by_slot[src] = None
            moves_append(src)
            moves_append(dst)
        landing = chain[-1]
        tags[landing] = addr
        slot_of[addr] = landing
        pos = pcache_get(addr)
        if pos is None:
            pos = self.positions(addr)
        way = landing // num_sets
        pos_by_slot[landing] = pos[:way] + pos[way + 1 :]
        if self._collect:
            self.stat_installs += 1
            self.stat_relocations += len(chain) - 1
        return landing

    def candidate_slots(self, addr: int):
        """The replacement walk on primitive slot indices.

        Visits slots in exactly the order of :meth:`candidates` but
        materialises no Candidate objects, and stops at the first
        empty slot (see the fast-path protocol in
        :class:`~repro.arrays.base.CacheArray`).  A resident line
        always sits at one of its own hashed positions, so the
        parent's way is skipped implicitly by the ``visited`` check.
        """
        result = self._walk(addr)
        if self._collect:
            self.stat_walks += 1
            self.stat_candidates += len(result[0])
        return result

    def _walk(self, addr: int):
        tags = self._tags
        pos_by_slot = self._pos_by_slot
        gen = self._walk_gen + 1
        self._walk_gen = gen
        stamps = self._walk_stamp
        slots = self._walk_slots
        slots.clear()
        slots_append = slots.append

        first = self._position_cache.get(addr)
        if first is None:
            first = self.positions(addr)

        if len(self._slot_of) == self.num_lines:
            # Full array (the steady state): no slot can be empty, so
            # the per-slot emptiness and count checks disappear.  Each
            # parent's expansion may overshoot R; trimming to R keeps
            # exactly the first R slots in discovery order.  No parent
            # list is built either: make_candidate() re-derives the
            # victim's path from the level bounds (see _WalkLevels).
            for slot in first:
                if stamps[slot] != gen:
                    stamps[slot] = gen
                    slots_append(slot)
            r = self._r
            bounds = self._walk_bounds
            bounds.clear()
            bounds.hint = -1
            level_start = 0
            n = len(slots)
            bounds.append(n)
            while n < r and level_start < n:
                for pi in range(level_start, n):
                    for slot in pos_by_slot[slots[pi]]:
                        if stamps[slot] != gen:
                            stamps[slot] = gen
                            slots_append(slot)
                    if len(slots) >= r:
                        del slots[r:]
                        bounds.append(r)
                        return slots, bounds, False
                level_start = n
                n = len(slots)
                bounds.append(n)
            return slots, bounds, False

        # First-level positions sit in distinct banks and never collide
        # with each other, so their stamps are set but not checked.
        bounds = self._walk_bounds
        bounds.clear()
        bounds.hint = -1
        n = 0
        for slot in first:
            stamps[slot] = gen
            slots_append(slot)
            n += 1
            if tags[slot] < 0:
                bounds.append(n)
                return slots, bounds, True

        r = self._r
        bounds.append(n)
        level_start = 0
        # Every listed slot is occupied (an empty slot ends the walk
        # immediately), so each level's frontier is exactly the index
        # range the previous level appended -- no frontier lists; and
        # an occupied slot always has its line's positions cached in
        # _pos_by_slot, so expansion is a single list index.
        while n < r and level_start < n:
            level_end = n
            for pi in range(level_start, level_end):
                for slot in pos_by_slot[slots[pi]]:
                    if stamps[slot] != gen:
                        stamps[slot] = gen
                        slots_append(slot)
                        n += 1
                        if tags[slot] < 0:
                            bounds.append(n)
                            bounds.hint = pi
                            return slots, bounds, True
                        if n == r:
                            bounds.append(n)
                            return slots, bounds, False
            bounds.append(n)
            level_start = level_end
        return slots, bounds, False
