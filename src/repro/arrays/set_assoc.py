"""Conventional set-associative cache array.

The index is either the low bits of the line address or an H3 hash of
it ("hashed set-associative", which the paper uses for every
set-associative configuration).  A miss offers the W lines of the
indexed set as replacement candidates, so R = W.
"""

from __future__ import annotations

from repro.arrays.base import CacheArray, Candidate
from repro.arrays.hashing import H3Hash

#: Cross-instance pool of set-index memos, keyed by the full identity
#: of the hash function ``(num_sets, seed)``.  The H3 set index is a
#: pure function of that identity and the address, so arrays built
#: with the same geometry and seed (every round of a benchmark, every
#: mix of a sweep) share one memo and skip re-hashing first-touch
#: addresses the process has already placed.  Sharing is invisible to
#: results and stats: entries are only ever inserted, never mutated,
#: and no counter exposes the memo's size.  The registry itself is
#: bounded; at the cap new identities stop sharing (live arrays keep
#: their references).
_INDEX_CACHE_POOL: dict[tuple[int, int], dict[int, int]] = {}
_POOL_KEYS_MAX = 16


def _pooled_index_cache(num_sets: int, seed: int) -> dict[int, int]:
    cache = _INDEX_CACHE_POOL.get((num_sets, seed))
    if cache is None:
        cache = {}
        if len(_INDEX_CACHE_POOL) < _POOL_KEYS_MAX:
            _INDEX_CACHE_POOL[(num_sets, seed)] = cache
    return cache


class SetAssociativeArray(CacheArray):
    """W-way set-associative array.

    Slot layout: ``slot = set_index * num_ways + way``, which keeps a
    set's slots contiguous (convenient for per-set state such as PIPP's
    LRU chains).

    Parameters
    ----------
    num_lines:
        Total capacity in lines.
    num_ways:
        Set associativity.  ``num_lines / num_ways`` must be a power
        of two.
    hashed:
        Index with an H3 hash of the address (default, matching the
        paper) instead of the address's low bits.
    seed:
        Seed for the index hash.
    """

    def __init__(self, num_lines: int, num_ways: int, hashed: bool = True, seed: int = 0):
        super().__init__(num_lines, num_ways)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"num_sets must be a power of two, got {self.num_sets}")
        self.hashed = hashed
        self._hash = H3Hash(self.num_sets, seed) if hashed else None
        self._set_mask = self.num_sets - 1
        # Bounded memo of the per-address H3 set index, shared across
        # arrays with the same hash identity (see _INDEX_CACHE_POOL).
        # Unbounded, a long random-address run would hold one entry per
        # distinct address ever seen; instead the memo is flushed
        # wholesale when it reaches the cap (recomputing an H3 hash is
        # cheap, and a full clear keeps the hit path to a single dict
        # get).
        self._index_cache: dict[int, int] = (
            _pooled_index_cache(self.num_sets, seed) if hashed else {}
        )
        self._index_cache_cap = max(4 * num_lines, 1 << 16)
        # Free-slot count per set, so candidate_slots can skip the
        # per-way emptiness scan once a set is full (the steady state),
        # and reusable range objects for the full-set fast path.
        self._set_free = [num_ways] * self.num_sets
        self._set_ranges = [
            range(s * num_ways, (s + 1) * num_ways) for s in range(self.num_sets)
        ]

    @property
    def candidates_per_miss(self) -> int:
        return self.num_ways

    def set_index(self, addr: int) -> int:
        """Set index of ``addr`` (hashed or modulo)."""
        if self._hash is None:
            return addr & self._set_mask
        cache = self._index_cache
        idx = cache.get(addr)
        if idx is None:
            if len(cache) >= self._index_cache_cap:
                cache.clear()
            idx = self._hash(addr)
            cache[addr] = idx
        return idx

    def positions(self, addr: int) -> tuple[int, ...]:
        base = self.set_index(addr) * self.num_ways
        return tuple(range(base, base + self.num_ways))

    def positions_into(self, addr: int, buf: list[int]) -> int:
        base = self.set_index(addr) * self.num_ways
        num_ways = self.num_ways
        for way in range(num_ways):
            buf[way] = base + way
        return num_ways

    def candidates(self, addr: int) -> list[Candidate]:
        base = self.set_index(addr) * self.num_ways
        tags = self._tags
        out: list[Candidate] = []
        for way in range(self.num_ways):
            tag = tags[base + way]
            out.append(
                Candidate(
                    base + way, tag if tag >= 0 else None, (base + way,), way
                )
            )
        return out

    def candidate_slots(self, addr: int):
        set_index = self.set_index(addr)
        if self._set_free[set_index]:
            base = set_index * self.num_ways
            tags = self._tags
            slots: list[int] = []
            for slot in range(base, base + self.num_ways):
                slots.append(slot)
                if tags[slot] < 0:
                    if self._collect:
                        self.stat_walks += 1
                        self.stat_candidates += len(slots)
                    return slots, None, True
        if self._collect:
            self.stat_walks += 1
            self.stat_candidates += self.num_ways
        return self._set_ranges[set_index], None, False

    def _place(self, addr: int, slot: int) -> None:
        super()._place(addr, slot)
        self._set_free[slot // self.num_ways] -= 1

    def _remove(self, slot: int) -> None:
        super()._remove(slot)
        self._set_free[slot // self.num_ways] += 1

    def set_slots(self, set_index: int) -> range:
        """Slots of one set, in way order (used by per-set policies)."""
        base = set_index * self.num_ways
        return range(base, base + self.num_ways)
