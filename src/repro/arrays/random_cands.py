"""Idealised random-candidates array.

Section 6.2 of the paper validates Vantage's analytical models against
"a random candidates cache, an unrealistic cache design that gives
truly independent and uniformly distributed candidates".  This array
implements exactly that: lines live in a flat slot space, lookups use a
perfect index, and each miss offers R slots drawn uniformly at random.
It is the ground truth for the uniformity assumption F_A(x) = x^R
(Equation 1).
"""

from __future__ import annotations

import random

from repro.arrays.base import CacheArray, Candidate


class RandomCandidatesArray(CacheArray):
    """Flat array returning R uniformly random replacement candidates.

    While any slot is still free, misses are offered a single empty
    candidate (filling the cache before any replacement happens, like a
    real cache during warmup).  Once full, every miss samples R
    distinct occupied slots uniformly at random.
    """

    def __init__(self, num_lines: int, candidates_per_miss: int, seed: int = 0):
        super().__init__(num_lines, num_ways=1)
        if candidates_per_miss <= 0:
            raise ValueError(
                f"candidates_per_miss must be positive, got {candidates_per_miss}"
            )
        if candidates_per_miss > num_lines:
            raise ValueError("candidates_per_miss cannot exceed num_lines")
        self._r = candidates_per_miss
        self._rng = random.Random(seed)
        self._free = list(range(num_lines - 1, -1, -1))

    @property
    def candidates_per_miss(self) -> int:
        return self._r

    def positions(self, addr: int) -> tuple[int, ...]:
        slot = self._slot_of.get(addr)
        return (slot,) if slot is not None else ()

    def candidates(self, addr: int) -> list[Candidate]:
        if self._free:
            slot = self._free[-1]
            return [Candidate(slot, None, (slot,), 0)]
        tags = self._tags
        slots = self._rng.sample(range(self.num_lines), self._r)
        return [
            Candidate(slot, tags[slot] if tags[slot] >= 0 else None, (slot,), 0)
            for slot in slots
        ]

    def candidate_slots(self, addr: int):
        # Consumes the RNG exactly like candidates(): one sample per
        # miss once the array is full, nothing while slots are free.
        if self._free:
            if self._collect:
                self.stat_walks += 1
                self.stat_candidates += 1
            return [self._free[-1]], None, True
        if self._collect:
            self.stat_walks += 1
            self.stat_candidates += self._r
        return self._rng.sample(range(self.num_lines), self._r), None, False

    def install(self, addr: int, victim: Candidate) -> list[tuple[int, int]]:
        if victim.addr is None and self._free and victim.slot == self._free[-1]:
            self._free.pop()
        return super().install(addr, victim)

    def install_walk(self, addr: int, slots, parents, index: int) -> int:
        slot = slots[index]
        if self._free and slot == self._free[-1] and self._tags[slot] < 0:
            self._free.pop()
        return super().install_walk(addr, slots, parents, index)

    def invalidate(self, addr: int) -> int | None:
        slot = super().invalidate(addr)
        if slot is not None:
            self._free.append(slot)
        return slot
