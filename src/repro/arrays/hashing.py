"""H3 universal hashing (Carter & Wegman, 1977).

The paper indexes all evaluated caches with "simple H3 hashing" [1, 21].
An H3 function treats the key as a bit vector and XORs together a random
mask per set bit; the result is a GF(2)-linear map from keys to bucket
indices.  We implement the standard byte-wise *tabulation* form: eight
tables of 256 random masks, one table per key byte.  XOR-ing one entry
per byte computes exactly the same family (the tables encode the
per-bit masks) at an eighth of the Python-level work.
"""

from __future__ import annotations

import random

try:  # pragma: no cover - exercised via the gated bulk path
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

_KEY_BYTES = 8
_MASK_BITS = 32


class H3Hash:
    """One member of the H3 family, mapping 64-bit keys to buckets.

    Parameters
    ----------
    num_buckets:
        Number of output buckets.  Must be a power of two so the
        low-bit mask preserves GF(2) linearity.
    seed:
        Seed selecting the family member.  Two ``H3Hash`` objects with
        the same seed compute the same function.
    """

    def __init__(self, num_buckets: int, seed: int):
        if num_buckets <= 0 or num_buckets & (num_buckets - 1):
            raise ValueError(f"num_buckets must be a power of two, got {num_buckets}")
        self.num_buckets = num_buckets
        self.seed = seed
        rng = random.Random(seed)
        # One random mask per key bit (the H3 definition); each table
        # entry is the XOR of the masks of its byte value's set bits,
        # so byte-wise lookup computes the exact H3 function and the
        # family stays GF(2)-linear.
        #
        # The masks of the low log2(num_buckets) key bits are made
        # unit-triangular (bit i's mask has bit i set and randomness
        # only below it), which keeps the map bijective on any aligned
        # 2^b key range: purely random masks can be rank-deficient
        # over GF(2) and leave whole buckets unreachable for small,
        # dense address spaces.
        bucket_bits = num_buckets.bit_length() - 1
        all_masks = []
        for i in range(_KEY_BYTES * 8):
            mask = rng.getrandbits(_MASK_BITS)
            if i < bucket_bits:
                low = (rng.getrandbits(i) if i else 0) | (1 << i)
                mask = (mask & ~(num_buckets - 1)) | low
            all_masks.append(mask)
        self._tables = []
        for byte_index in range(_KEY_BYTES):
            bit_masks = all_masks[byte_index * 8 : byte_index * 8 + 8]
            table = []
            for value in range(256):
                h = 0
                for bit in range(8):
                    if value >> bit & 1:
                        h ^= bit_masks[bit]
                table.append(h)
            self._tables.append(table)
        self._mask = num_buckets - 1
        self._np_tables = None

    def __call__(self, key: int) -> int:
        t = self._tables
        h = (
            t[0][key & 0xFF]
            ^ t[1][(key >> 8) & 0xFF]
            ^ t[2][(key >> 16) & 0xFF]
            ^ t[3][(key >> 24) & 0xFF]
        )
        if key >> 32:
            h ^= (
                t[4][(key >> 32) & 0xFF]
                ^ t[5][(key >> 40) & 0xFF]
                ^ t[6][(key >> 48) & 0xFF]
                ^ t[7][(key >> 56) & 0xFF]
            )
        else:
            # XOR of the tables' zero entries keeps h(key) consistent
            # with the full 8-byte evaluation.
            h ^= t[4][0] ^ t[5][0] ^ t[6][0] ^ t[7][0]
        return h & self._mask

    def bulk(self, keys):
        """Vectorized ``__call__`` over a numpy int64 key array.

        Always evaluates all eight byte tables: for keys below 2^32
        the high bytes are zero and index the tables' zero entries --
        exactly the constant ``__call__``'s short-circuit XORs in --
        so the results are bit-identical to the scalar path.  Requires
        numpy (callers gate on availability).
        """
        tables = self._np_tables
        if tables is None:
            tables = self._np_tables = [
                _np.asarray(t, dtype=_np.int64) for t in self._tables
            ]
        h = tables[0][keys & 0xFF]
        for b in range(1, _KEY_BYTES):
            h = h ^ tables[b][(keys >> (8 * b)) & 0xFF]
        return h & self._mask

    def __repr__(self) -> str:
        return f"H3Hash(num_buckets={self.num_buckets}, seed={self.seed})"


class H3Family:
    """A tuple of independent H3 functions, one per cache way.

    Skew-associative caches and zcaches index each way with a different
    hash function; this helper derives ``num_ways`` members of the
    family from a single seed.
    """

    def __init__(self, num_ways: int, num_buckets: int, seed: int = 0):
        if num_ways <= 0:
            raise ValueError(f"num_ways must be positive, got {num_ways}")
        self.num_ways = num_ways
        self.num_buckets = num_buckets
        self.seed = seed
        base = random.Random(seed)
        self.functions = tuple(
            H3Hash(num_buckets, base.getrandbits(62)) for _ in range(num_ways)
        )
        # Fused tabulation tables: entry v of byte table b packs every
        # way's table[b][v] into one integer, 32 bits per way.  XOR is
        # bitwise, so one lookup chain evaluates all ways at once --
        # the per-way results are bit-identical to calling each
        # H3Hash separately.  Each lane is pre-masked to the bucket
        # width (AND distributes over XOR), so lane values never carry
        # into the next lane and callers may add per-lane offsets to
        # the packed result.
        bucket_mask = num_buckets - 1
        self._fused = []
        for byte_index in range(_KEY_BYTES):
            table = []
            for value in range(256):
                packed = 0
                for way, fn in enumerate(self.functions):
                    lane = fn._tables[byte_index][value] & bucket_mask
                    packed |= lane << (_MASK_BITS * way)
                table.append(packed)
            self._fused.append(table)
        self._fused_zero_high = (
            self._fused[4][0]
            ^ self._fused[5][0]
            ^ self._fused[6][0]
            ^ self._fused[7][0]
        )
        self._bucket_mask = num_buckets - 1

    def __getitem__(self, way: int) -> H3Hash:
        return self.functions[way]

    def __len__(self) -> int:
        return self.num_ways

    def packed(self, key: int) -> int:
        """All ways' bucket indices of ``key``, packed 32 bits per way
        (lane ``way`` holds way ``way``'s bucket)."""
        t = self._fused
        h = (
            t[0][key & 0xFF]
            ^ t[1][(key >> 8) & 0xFF]
            ^ t[2][(key >> 16) & 0xFF]
            ^ t[3][(key >> 24) & 0xFF]
        )
        if key >> 32:
            return h ^ (
                t[4][(key >> 32) & 0xFF]
                ^ t[5][(key >> 40) & 0xFF]
                ^ t[6][(key >> 48) & 0xFF]
                ^ t[7][(key >> 56) & 0xFF]
            )
        return h ^ self._fused_zero_high

    def positions(self, key: int) -> tuple[int, ...]:
        """Bucket index of ``key`` in every way."""
        h = self.packed(key)
        mask = self._bucket_mask
        return tuple(
            (h >> (_MASK_BITS * way)) & mask for way in range(self.num_ways)
        )
