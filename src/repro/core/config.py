"""Vantage configuration and unmanaged-region sizing (Section 4.3)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sizing import required_unmanaged_fraction


@dataclass(frozen=True)
class VantageConfig:
    """Tunables of the Vantage controller.

    Attributes
    ----------
    unmanaged_fraction:
        Fraction ``u`` of the cache left unpartitioned.  The paper's
        throughput results use 5 % (Z4/52) or 10 % (R=16 designs);
        strong-isolation deployments use 15-20 %.
    a_max:
        Maximum aperture: the largest fraction of a partition's
        candidates the controller will demote.  Beyond it the partition
        is allowed to outgrow its target instead (Section 3.4).
    slack:
        Fraction of the target size over which the aperture ramps
        linearly from 0 to ``a_max`` (Equation 7).
    threshold_entries:
        Entries in the demotion-thresholds lookup table (Fig 3c); the
        hardware design uses 8.
    candidates_per_adjust:
        Candidates seen from a partition between setpoint adjustments
        (``c`` in Section 4.2; the hardware uses an 8-bit counter,
        hence 256).
    """

    unmanaged_fraction: float = 0.05
    a_max: float = 0.5
    slack: float = 0.1
    threshold_entries: int = 8
    candidates_per_adjust: int = 256

    def __post_init__(self) -> None:
        if not 0.0 < self.unmanaged_fraction < 1.0:
            raise ValueError(f"unmanaged_fraction must be in (0, 1): {self.unmanaged_fraction}")
        if not 0.0 < self.a_max <= 1.0:
            raise ValueError(f"a_max must be in (0, 1]: {self.a_max}")
        if self.slack <= 0.0:
            raise ValueError(f"slack must be positive: {self.slack}")
        if self.threshold_entries < 2:
            raise ValueError("threshold_entries must be at least 2")
        if self.candidates_per_adjust < 8:
            raise ValueError("candidates_per_adjust must be at least 8")

    @classmethod
    def for_isolation(
        cls,
        candidates_per_miss: int,
        target_pev: float = 1e-2,
        a_max: float = 0.5,
        slack: float = 0.1,
        **kwargs,
    ) -> "VantageConfig":
        """Size the unmanaged region for a worst-case managed-eviction
        probability ``target_pev`` (the closed form of Section 4.3)."""
        u = required_unmanaged_fraction(
            candidates_per_miss, a_max=a_max, slack=slack, pev=target_pev
        )
        return cls(unmanaged_fraction=u, a_max=a_max, slack=slack, **kwargs)

    def managed_lines(self, num_lines: int) -> int:
        """Lines in the managed region for a cache of ``num_lines``."""
        return num_lines - int(round(self.unmanaged_fraction * num_lines))
