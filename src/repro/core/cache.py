"""The Vantage cache controller (Sections 3 and 4 of the paper).

``VantageCache`` implements the *practical* design of Section 4 on top
of any :class:`~repro.arrays.base.CacheArray`:

- the cache is split into a **managed** and an **unmanaged** region by
  tagging lines, never by placement (Section 3.3);
- partition sizes are enforced by **churn-based management**: on every
  replacement, each candidate below its partition's aperture is
  *demoted* to the unmanaged region, and the eviction victim is the
  oldest unmanaged candidate (Section 3.4);
- apertures are never computed: **feedback-based aperture control**
  (Section 4.1) lets partitions outgrow their targets slightly and
  reacts through the demotion-thresholds table;
- demotions never consult exact eviction priorities:
  **setpoint-based demotions** (Section 4.2) demote lines whose
  coarse LRU timestamp falls outside the keep window between the
  per-partition setpoint and current timestamps.

State mirrors Fig 4: per-line partition tag + 8-bit timestamp, and
per-partition registers (CurrentTS, SetpointTS, AccessCounter,
ActualSize, TargetSize, CandsSeen, CandsDemoted, threshold table).

One published ambiguity is resolved here: Section 4.2 and Section 4.3
state opposite setpoint-adjustment directions; we follow Section 4.3
(too many demotions => widen the keep window), which is the stable
negative-feedback direction (see DESIGN.md and
``tests/core/test_setpoint.py``).
"""

from __future__ import annotations

from array import array as _array

from repro.arrays.base import CacheArray, Candidate
from repro.arrays.zcache import ZCacheArray
from repro.core.config import VantageConfig
from repro.core.feedback import build_threshold_table, lookup_threshold

TS_MOD = 256
#: TS_MOD is a power of two, so hot paths use ``& _TS_MASK`` for the
#: modular timestamp distance instead of ``% TS_MOD``.
_TS_MASK = TS_MOD - 1
#: ``part_of`` value for lines in the unmanaged region.
UNMANAGED = -1
#: Initial keep-window width (timestamp distance between CurrentTS and
#: SetpointTS); feedback moves it from here.
INITIAL_KEEP_WIDTH = 192

from repro.partitioning.base_cache import NO_PART, PartitionedCache


class VantageCache(PartitionedCache):
    """Vantage-partitioned cache (practical controller, LRU base policy).

    Parameters
    ----------
    array:
        Backing array.  Vantage is designed for zcaches and skew
        caches (high R, uniform candidates) but also runs on hashed
        set-associative arrays with weaker guarantees (Fig 10).
    num_partitions:
        Number of partitions in the managed region.
    config:
        Controller tunables; see :class:`VantageConfig`.
    """

    allocation_unit = "lines"

    def __init__(
        self,
        array: CacheArray,
        num_partitions: int,
        config: VantageConfig | None = None,
        shared_policy: str | None = None,
    ):
        super().__init__(array, num_partitions, shared_policy=shared_policy)
        self.config = config if config is not None else VantageConfig()
        n = num_partitions

        # --- Per-line state (the tag extensions of Fig 4). ---
        # ``part_of[slot]`` is the partition for managed lines and
        # ``UNMANAGED`` for unmanaged ones (NO_PART only for empty
        # slots).  line_ts is a flat int64 column like part_of: 8-bit
        # coarse timestamps, one machine word per slot.
        self.line_ts = _array("q", [0]) * array.num_lines

        # --- Per-partition registers. ---
        managed = self.config.managed_lines(array.num_lines)
        base, extra = divmod(managed, n)
        self.target = [base + (1 if p < extra else 0) for p in range(n)]
        self.actual_size = [0] * n
        self.current_ts = [0] * n
        self.keep_width = [INITIAL_KEEP_WIDTH] * n
        self.access_counter = [0] * n
        self.cands_seen = [0] * n
        self.cands_demoted = [0] * n
        self._tables = [self._compile_table(t) for t in self.target]

        # --- Unmanaged-region state. ---
        self.unmanaged_size = 0
        self.unmanaged_ts = 0
        self._unmanaged_counter = 0

        # --- Vantage-specific statistics. ---
        self.demotions = [0] * n
        self.promotions = [0] * n
        self.evictions_unmanaged = 0
        self.evictions_managed = 0
        self.setpoint_widened = [0] * n
        self.setpoint_narrowed = [0] * n
        #: Optional hook ``fn(slot, part)`` called just before a line
        #: of ``part`` is demoted (measurement only).
        self.demotion_hook = None

        # --- Hot-path caches. ---
        # Tick periods (max(1, size >> 4)) memoised until the region
        # size they derive from changes.
        self._tick_period = [1] * n
        self._tick_size = [-1] * n
        self._utick_period = 1
        self._utick_size = -1
        # Dispatch flags: True when the subclass keeps the stock
        # implementation of a per-candidate/per-access hook, letting
        # the hot paths inline it instead of paying a method call.
        cls = type(self)
        self._lru_demotion = cls._demotable is VantageCache._demotable
        self._plain_demote = cls._demote is VantageCache._demote
        self._lru_touch = cls._touch is VantageCache._touch
        self._has_move_hook = cls._move_line_state is not VantageCache._move_line_state
        self._plain_insert = (
            cls._set_inserted_line_state is VantageCache._set_inserted_line_state
        )
        # Zcache replacement walks and the demotion scan can be fused
        # into one pass (see _zmiss); the walk reads only tag state
        # and the scan writes only partition state, so interleaving
        # them is behaviour-preserving.
        self._zwalk = isinstance(array, ZCacheArray)

        if type(self) is VantageCache:
            self._install_fused()

    # ------------------------------------------------------------------
    # Configuration / allocation interface.
    # ------------------------------------------------------------------

    @property
    def allocation_total(self) -> int:
        """Lines available for partitioning (the managed region)."""
        return self.config.managed_lines(self.num_lines)

    def _compile_table(self, target: int) -> list[tuple[int, int]]:
        cfg = self.config
        return build_threshold_table(
            target,
            a_max=cfg.a_max,
            slack=cfg.slack,
            entries=cfg.threshold_entries,
            candidates_per_adjust=cfg.candidates_per_adjust,
        )

    def set_allocations(self, units: list[int]) -> None:
        """Install new target sizes, in lines.

        Targets should sum to at most the managed-region size; a target
        of 0 deletes the partition (it drains at full aperture).
        """
        if len(units) != self.num_partitions:
            raise ValueError("allocation vector length mismatch")
        if any(u < 0 for u in units):
            raise ValueError("targets must be non-negative")
        if sum(units) > self.allocation_total:
            raise ValueError(
                f"targets sum to {sum(units)}, above the managed region "
                f"({self.allocation_total} lines)"
            )
        # In place: fused access kernels capture these lists at build
        # time, and UCP reallocates every epoch.
        self.target[:] = units
        self._tables[:] = [self._compile_table(t) for t in units]

    def partition_size(self, part: int) -> int:
        """Managed-region footprint of ``part`` (the ActualSize register)."""
        return self.actual_size[part]

    def partition_sizes(self) -> list[int]:
        return list(self.actual_size)

    def resize_partition(self, part: int, target_lines: int) -> None:
        """Change one partition's target, leaving the others alone.

        Resizing is cheap in Vantage (Section 3.4): only the target
        register and the threshold table change; capacity moves
        through demotions as the cache runs.
        """
        targets = list(self.target)
        targets[part] = target_lines
        self.set_allocations(targets)

    def delete_partition(self, part: int) -> None:
        """Delete a partition: target 0 compiles to a full-aperture
        threshold table, so its lines drain into the unmanaged region
        and the ID can be reused once :meth:`partition_is_drained`."""
        self.resize_partition(part, 0)

    def partition_is_drained(self, part: int, residual_lines: int = 0) -> bool:
        """Whether a deleted partition's footprint has emptied enough
        for its identifier to be reused."""
        return self.actual_size[part] <= residual_lines

    # ------------------------------------------------------------------
    # Timestamp plumbing.
    # ------------------------------------------------------------------

    def _tick(self, part: int) -> None:
        """Advance ``part``'s access counter; bump timestamps every
        1/16th of the partition's size worth of accesses.  The setpoint
        moves with CurrentTS, so the keep width is unchanged."""
        self.access_counter[part] += 1
        size = self.actual_size[part]
        if size != self._tick_size[part]:
            self._tick_size[part] = size
            period = size >> 4
            self._tick_period[part] = period if period > 0 else 1
        if self.access_counter[part] >= self._tick_period[part]:
            self.access_counter[part] = 0
            self.current_ts[part] = (self.current_ts[part] + 1) & _TS_MASK

    def _tick_unmanaged(self) -> None:
        self._unmanaged_counter += 1
        size = self.unmanaged_size
        if size != self._utick_size:
            self._utick_size = size
            period = size >> 4
            self._utick_period = period if period > 0 else 1
        if self._unmanaged_counter >= self._utick_period:
            self._unmanaged_counter = 0
            self.unmanaged_ts = (self.unmanaged_ts + 1) & _TS_MASK

    def staleness(self, slot: int) -> int:
        """Timestamp distance of the line at ``slot`` within its scope
        (its partition, or the unmanaged region).  Used by monitors."""
        owner = self.part_of[slot]
        if owner == UNMANAGED:
            return (self.unmanaged_ts - self.line_ts[slot]) & _TS_MASK
        return (self.current_ts[owner] - self.line_ts[slot]) & _TS_MASK

    # ------------------------------------------------------------------
    # Setpoint feedback (Section 4.2 mechanics, Section 4.3 direction).
    # ------------------------------------------------------------------

    def _adjust_setpoint(self, part: int) -> None:
        threshold = lookup_threshold(self._tables[part], self.actual_size[part])
        demoted = self.cands_demoted[part]
        if self.actual_size[part] <= self.target[part]:
            # The partition ended the window at/below target: recent
            # demotion bursts overshot (the size gate stopped them),
            # so relax the setpoint.  Without this case a low-churn
            # partition whose demand sits below the smallest table
            # threshold rails at maximum aperture and demotes
            # arbitrarily young lines.
            self._setpoint_demote_less(part)
        elif demoted > threshold:
            self._setpoint_demote_less(part)
        elif demoted < threshold:
            self._setpoint_demote_more(part)
        self.cands_demoted[part] = 0
        self.cands_seen[part] = 0

    def _setpoint_demote_less(self, part: int) -> None:
        """Demoting too fast: widen the keep window one step."""
        if self.keep_width[part] < TS_MOD - 1:
            self.keep_width[part] += 1
            self.setpoint_widened[part] += 1

    def _setpoint_demote_more(self, part: int) -> None:
        if self.keep_width[part] > 0:
            self.keep_width[part] -= 1
            self.setpoint_narrowed[part] += 1

    # ------------------------------------------------------------------
    # Access path.
    # ------------------------------------------------------------------

    def access(self, addr: int, part: int = 0) -> bool:
        # Stats bookkeeping is inlined (vs _record_access) -- this is
        # the hottest method of a simulation.
        st = self.stats
        slot = self._lookup(addr)
        if slot is not None:
            self._hit(slot, part)
            st.accesses[part] += 1
            st.hits[part] += 1
            return True
        st.accesses[part] += 1
        st.misses[part] += 1
        self._miss(addr, part)
        return False

    def _hit(self, slot: int, part: int) -> None:
        part_of = self.part_of
        owner = part_of[slot]
        if owner == UNMANAGED:
            # Promotion: the line re-joins the accessing partition.
            self.unmanaged_size -= 1
            part_of[slot] = part
            self.actual_size[part] += 1
            self.promotions[part] += 1
            if self._shared_code:
                self.touched_by[slot] |= 1 << part
            owner = part
        elif self._shared_code and owner != part:
            owner = self._shared_hit(slot, part)
            if owner == UNMANAGED:
                # promote-to-shared parked the line in the unmanaged
                # region (already stamped/ticked there); no managed
                # partition state to update.
                return
        if self._lru_touch:
            self.line_ts[slot] = self.current_ts[owner]
        else:
            self._touch(slot, owner)
        # _tick(owner), inlined: this runs once per hit.
        count = self.access_counter[owner] + 1
        size = self.actual_size[owner]
        if size != self._tick_size[owner]:
            self._tick_size[owner] = size
            period = size >> 4
            self._tick_period[owner] = period if period > 0 else 1
        if count >= self._tick_period[owner]:
            self.access_counter[owner] = 0
            self.current_ts[owner] = (self.current_ts[owner] + 1) & _TS_MASK
        else:
            self.access_counter[owner] = count

    def _touch(self, slot: int, owner: int) -> None:
        """Refresh the base-policy rank of a line on a hit (LRU:
        stamp it with the partition's current timestamp)."""
        self.line_ts[slot] = self.current_ts[owner]

    def _miss(self, addr: int, part: int) -> None:
        array = self.array
        if self._zwalk and len(array._slot_of) == array.num_lines:
            self._zmiss(addr, part, array)
            return
        fast = array.candidate_slots(addr)
        if fast is not None:
            slots, parents, has_empty = fast
            if has_empty:
                # Generation stopped at the first empty slot.
                index = len(slots) - 1
            else:
                index = self._replacement_index(slots)
            victim = array.make_candidate(slots, parents, index)
        else:
            # Arrays without a fast path still work via Candidate lists.
            candidates = array.candidates(addr)
            victim = self._first_empty(candidates)
            if victim is None:
                index = self._replacement_index([c.slot for c in candidates])
                victim = candidates[index]
        self._finish_install(addr, part, victim)

    def _zmiss(self, addr: int, part: int, array) -> None:
        """Fused replacement walk + demotion scan for a *full* zcache
        (the steady state, where no slot is ever empty).

        Candidate discovery order and every state update are identical
        to ``candidate_slots()`` followed by ``_replacement_index()``:
        the walk reads only tag/position state while the scan writes
        only partition state, so processing each candidate the moment
        it is discovered cannot change what either pass observes.  The
        fusion removes the second 52-iteration loop per miss.
        """
        pos_by_slot = array._pos_by_slot
        gen = array._walk_gen + 1
        array._walk_gen = gen
        stamps = array._walk_stamp
        r = array._r

        part_of = self.part_of
        line_ts = self.line_ts
        actual = self.actual_size
        target = self.target
        cands_seen = self.cands_seen
        current_ts = self.current_ts
        keep_width = self.keep_width
        cands_demoted = self.cands_demoted
        demotions = self.demotions
        c_adjust = self.config.candidates_per_adjust
        lru_demotion = self._lru_demotion
        plain_demote = self._plain_demote and self.demotion_hook is None
        uts = self.unmanaged_ts
        first_demoted = -1
        best_unmanaged = -1
        best_unmanaged_age = -1

        slots = array._walk_slots
        slots.clear()
        slots_append = slots.append
        bounds = array._walk_bounds
        bounds.clear()
        bounds.hint = -1
        first = array._position_cache.get(addr)
        if first is None:
            first = array.positions(addr)

        n = 0
        # First-level positions sit in distinct banks, so they never
        # collide with each other: stamps are set but not checked.
        # The per-candidate body below is duplicated in the expansion
        # loop; keep the two copies in sync.
        for slot in first:
            stamps[slot] = gen
            slots_append(slot)
            owner = part_of[slot]
            if owner == UNMANAGED:
                age = (uts - line_ts[slot]) & _TS_MASK
                if age > best_unmanaged_age:
                    best_unmanaged_age = age
                    best_unmanaged = n
            else:
                seen = cands_seen[owner] + 1
                cands_seen[owner] = seen
                if actual[owner] > target[owner]:
                    if lru_demotion:
                        demote = (
                            (current_ts[owner] - line_ts[slot]) & _TS_MASK
                        ) > keep_width[owner]
                    else:
                        demote = self._demotable(slot, owner)
                    if demote:
                        if plain_demote:
                            actual[owner] -= 1
                            cands_demoted[owner] += 1
                            demotions[owner] += 1
                            part_of[slot] = UNMANAGED
                            line_ts[slot] = uts
                            size = self.unmanaged_size + 1
                            self.unmanaged_size = size
                            count = self._unmanaged_counter + 1
                            if size != self._utick_size:
                                self._utick_size = size
                                period = size >> 4
                                self._utick_period = period if period > 0 else 1
                            if count >= self._utick_period:
                                self._unmanaged_counter = 0
                                uts = (uts + 1) & _TS_MASK
                                self.unmanaged_ts = uts
                            else:
                                self._unmanaged_counter = count
                        else:
                            self._demote(slot, owner)
                            uts = self.unmanaged_ts
                        if first_demoted < 0:
                            first_demoted = n
                if seen >= c_adjust:
                    self._adjust_setpoint(owner)
            n += 1

        bounds.append(n)
        level_start = 0
        while n < r and level_start < n:
            level_end = n
            for pi in range(level_start, level_end):
                for slot in pos_by_slot[slots[pi]]:
                    if stamps[slot] != gen:
                        stamps[slot] = gen
                        slots_append(slot)
                        owner = part_of[slot]
                        if owner == UNMANAGED:
                            age = (uts - line_ts[slot]) & _TS_MASK
                            if age > best_unmanaged_age:
                                best_unmanaged_age = age
                                best_unmanaged = n
                        else:
                            seen = cands_seen[owner] + 1
                            cands_seen[owner] = seen
                            if actual[owner] > target[owner]:
                                if lru_demotion:
                                    demote = (
                                        (current_ts[owner] - line_ts[slot])
                                        & _TS_MASK
                                    ) > keep_width[owner]
                                else:
                                    demote = self._demotable(slot, owner)
                                if demote:
                                    if plain_demote:
                                        actual[owner] -= 1
                                        cands_demoted[owner] += 1
                                        demotions[owner] += 1
                                        part_of[slot] = UNMANAGED
                                        line_ts[slot] = uts
                                        size = self.unmanaged_size + 1
                                        self.unmanaged_size = size
                                        count = self._unmanaged_counter + 1
                                        if size != self._utick_size:
                                            self._utick_size = size
                                            period = size >> 4
                                            self._utick_period = (
                                                period if period > 0 else 1
                                            )
                                        if count >= self._utick_period:
                                            self._unmanaged_counter = 0
                                            uts = (uts + 1) & _TS_MASK
                                            self.unmanaged_ts = uts
                                        else:
                                            self._unmanaged_counter = count
                                    else:
                                        self._demote(slot, owner)
                                        uts = self.unmanaged_ts
                                    if first_demoted < 0:
                                        first_demoted = n
                            if seen >= c_adjust:
                                self._adjust_setpoint(owner)
                        n += 1
                        if n == r:
                            break
                if n == r:
                    break
            bounds.append(n)
            if n == r:
                break
            level_start = level_end

        # The fused walk bypasses candidate_slots(), so the array's
        # walk telemetry is maintained here instead.
        if array._collect:
            array.stat_walks += 1
            array.stat_candidates += n

        if first_demoted < 0:
            self._on_no_demotions(slots)

        if best_unmanaged >= 0:
            self.evictions_unmanaged += 1
            self._evict_slot(slots[best_unmanaged])
            index = best_unmanaged
        else:
            self.evictions_managed += 1
            if first_demoted >= 0:
                index = first_demoted
            else:
                over = [
                    i
                    for i, slot in enumerate(slots)
                    if actual[part_of[slot]] > target[part_of[slot]]
                ]
                pool = over if over else range(len(slots))
                index = max(pool, key=lambda i: self.staleness(slots[i]))
                self._setpoint_demote_more(part_of[slots[index]])
            self._evict_slot(slots[index])
        victim = array.make_candidate(slots, bounds, index)
        self._finish_install(addr, part, victim)

    def _replacement_index(self, slots: list[int]) -> int:
        """Demotion checks over all candidate slots, then victim
        selection; returns the index of the victim in ``slots``."""
        part_of = self.part_of
        line_ts = self.line_ts
        actual = self.actual_size
        target = self.target
        cands_seen = self.cands_seen
        current_ts = self.current_ts
        keep_width = self.keep_width
        cands_demoted = self.cands_demoted
        demotions = self.demotions
        c_adjust = self.config.candidates_per_adjust
        lru_demotion = self._lru_demotion
        # Demotions can be inlined only while no measurement hook is
        # installed (the hook can be set/cleared at runtime).
        plain_demote = self._plain_demote and self.demotion_hook is None

        first_demoted = -1
        best_unmanaged = -1
        best_unmanaged_age = -1
        # unmanaged_ts must track _demote, which advances it mid-scan.
        uts = self.unmanaged_ts
        for i, slot in enumerate(slots):
            owner = part_of[slot]
            if owner == UNMANAGED:
                age = (uts - line_ts[slot]) & _TS_MASK
                if age > best_unmanaged_age:
                    best_unmanaged_age = age
                    best_unmanaged = i
                continue
            # Managed candidate: demotion check.
            seen = cands_seen[owner] + 1
            cands_seen[owner] = seen
            if actual[owner] > target[owner]:
                if lru_demotion:
                    demote = (
                        (current_ts[owner] - line_ts[slot]) & _TS_MASK
                    ) > keep_width[owner]
                else:
                    demote = self._demotable(slot, owner)
                if demote:
                    if plain_demote:
                        # _demote + _tick_unmanaged, inlined.
                        actual[owner] -= 1
                        cands_demoted[owner] += 1
                        demotions[owner] += 1
                        part_of[slot] = UNMANAGED
                        line_ts[slot] = uts
                        size = self.unmanaged_size + 1
                        self.unmanaged_size = size
                        count = self._unmanaged_counter + 1
                        if size != self._utick_size:
                            self._utick_size = size
                            period = size >> 4
                            self._utick_period = period if period > 0 else 1
                        if count >= self._utick_period:
                            self._unmanaged_counter = 0
                            uts = (uts + 1) & _TS_MASK
                            self.unmanaged_ts = uts
                        else:
                            self._unmanaged_counter = count
                    else:
                        self._demote(slot, owner)
                        uts = self.unmanaged_ts
                    if first_demoted < 0:
                        first_demoted = i
            if seen >= c_adjust:
                self._adjust_setpoint(owner)

        if first_demoted < 0:
            self._on_no_demotions(slots)

        if best_unmanaged >= 0:
            self.evictions_unmanaged += 1
            self._evict_slot(slots[best_unmanaged])
            return best_unmanaged

        # Forced eviction from the managed region (rare if u is sized
        # correctly): prefer a line we just demoted; otherwise evict
        # the stalest line of an over-target partition -- charging the
        # transient to the partitions that exceed their allocations
        # preserves isolation for the ones that do not -- and nudge
        # that partition's setpoint, since a forced eviction means its
        # demotions are lagging its churn.
        self.evictions_managed += 1
        if first_demoted >= 0:
            victim = first_demoted
        else:
            over = [
                i
                for i, slot in enumerate(slots)
                if actual[part_of[slot]] > target[part_of[slot]]
            ]
            pool = over if over else range(len(slots))
            victim = max(pool, key=lambda i: self.staleness(slots[i]))
            self._setpoint_demote_more(part_of[slots[victim]])
        self._evict_slot(slots[victim])
        return victim

    def _shared_hit(self, slot: int, requester: int) -> int:
        """Vantage's on-shared-hit policies.

        ``migrate-to-requester`` transfers the line (and its budget)
        between managed partitions.  ``promote-to-shared`` uses the
        unmanaged region as the shared pool: the line is parked there
        (stamped with the unmanaged clock, *not* counted as a churn
        demotion, so setpoint feedback is unaffected) and the ordinary
        unmanaged-hit promotion re-claims it for whichever partition
        touches it next.  Returns the line's owner afterwards
        (``UNMANAGED`` means the caller has nothing left to stamp).
        """
        self.touched_by[slot] |= 1 << requester
        self.shared_hits[requester] += 1
        code = self._shared_code
        if code == 2:  # migrate-to-requester
            owner = self.part_of[slot]
            self.part_of[slot] = requester
            self.actual_size[owner] -= 1
            self.actual_size[requester] += 1
            self.shared_moves[requester] += 1
            return requester
        if code == 3:  # promote-to-shared
            owner = self.part_of[slot]
            self.actual_size[owner] -= 1
            self.part_of[slot] = UNMANAGED
            self.line_ts[slot] = self.unmanaged_ts
            self.unmanaged_size += 1
            self.shared_moves[requester] += 1
            self._tick_unmanaged()
            return UNMANAGED
        return self.part_of[slot]

    def _demotable(self, slot: int, owner: int) -> bool:
        """Setpoint check: demote lines whose timestamp falls outside
        the keep window between SetpointTS and CurrentTS (Fig 3b)."""
        dist = (self.current_ts[owner] - self.line_ts[slot]) % TS_MOD
        return dist > self.keep_width[owner]

    def _on_no_demotions(self, slots: list[int]) -> None:
        """Hook for base policies that must age lines when a full
        candidate pass demotes nothing (RRIP); LRU ages via time."""

    def _demote(self, slot: int, owner: int) -> None:
        if self.demotion_hook is not None:
            self.demotion_hook(slot, owner)
        self.actual_size[owner] -= 1
        self.cands_demoted[owner] += 1
        self.demotions[owner] += 1
        self.part_of[slot] = UNMANAGED
        self.line_ts[slot] = self.unmanaged_ts
        self.unmanaged_size += 1
        self._tick_unmanaged()

    def _evict_slot(self, slot: int) -> None:
        owner = self.part_of[slot]
        if owner == UNMANAGED:
            # Ownership was erased at demotion time; unmanaged
            # evictions are tracked by evictions_unmanaged/managed.
            self.unmanaged_size -= 1
            if self.eviction_hook is not None:
                self.eviction_hook(slot, UNMANAGED)
        else:
            self.actual_size[owner] -= 1
            self.stats.evictions[owner] += 1
            if self.eviction_hook is not None:
                self.eviction_hook(slot, owner)
        if self._shared_code:
            self.touched_by[slot] = 0
        self.part_of[slot] = NO_PART

    def _finish_install(self, addr: int, part: int, victim: Candidate) -> None:
        moves = self.array.install(addr, victim)
        part_of = self.part_of
        line_ts = self.line_ts
        if moves:
            move_hook = self._has_move_hook
            for src, dst in moves:
                part_of[dst] = part_of[src]
                part_of[src] = NO_PART
                line_ts[dst] = line_ts[src]
                if move_hook:
                    self._move_line_state(src, dst)
        landing = victim.path[0]
        if self._shared_code:
            touched_by = self.touched_by
            for src, dst in moves:
                touched_by[dst] = touched_by[src]
                touched_by[src] = 0
            touched_by[landing] = 1 << part
        part_of[landing] = part
        if self._plain_insert:
            line_ts[landing] = self.current_ts[part]
        else:
            self._set_inserted_line_state(landing, part, addr)
        size = self.actual_size[part] + 1
        self.actual_size[part] = size
        # _tick(part), inlined: this runs once per miss.
        count = self.access_counter[part] + 1
        if size != self._tick_size[part]:
            self._tick_size[part] = size
            period = size >> 4
            self._tick_period[part] = period if period > 0 else 1
        if count >= self._tick_period[part]:
            self.access_counter[part] = 0
            self.current_ts[part] = (self.current_ts[part] + 1) & _TS_MASK
        else:
            self.access_counter[part] = count

    def _move_line_state(self, src: int, dst: int) -> None:
        """Hook: relocate extra per-line base-policy state (RRPVs)."""

    def _set_inserted_line_state(self, slot: int, part: int, addr: int) -> None:
        """Base-policy metadata for a freshly inserted line (LRU:
        stamp with the partition's current timestamp)."""
        self.line_ts[slot] = self.current_ts[part]

    # ------------------------------------------------------------------
    # Fast-forward state export/import.
    # ------------------------------------------------------------------

    def model_for_fastfwd(self):
        """The closed-form transfer-function model a fast-forward
        replay of this cache evaluates, or None when the concrete
        class carries extra state the replay would not maintain
        (subclasses with RRPVs, histograms, ...)."""
        if type(self) is not VantageCache:
            return None
        from repro.core.analytical import VantageModel

        return VantageModel(self.config, self.array.candidates_per_miss)

    def fastfwd_state(self) -> dict:
        """Extend the base snapshot with every Vantage register a model
        replay advances: the per-partition counters and clocks of Fig 4
        plus the per-line owner/timestamp columns (a replay rebases
        ``line_ts``, so the restore must be able to undo it)."""
        state = super().fastfwd_state()
        state.update(
            actual_size=list(self.actual_size),
            current_ts=list(self.current_ts),
            keep_width=list(self.keep_width),
            access_counter=list(self.access_counter),
            cands_seen=list(self.cands_seen),
            cands_demoted=list(self.cands_demoted),
            demotions=list(self.demotions),
            promotions=list(self.promotions),
            unmanaged_size=self.unmanaged_size,
            unmanaged_ts=self.unmanaged_ts,
            unmanaged_counter=self._unmanaged_counter,
            evictions_unmanaged=self.evictions_unmanaged,
            evictions_managed=self.evictions_managed,
            line_ts=self.line_ts[:],
            part_of=self.part_of[:],
        )
        return state

    def fastfwd_restore(self, state: dict) -> None:
        super().fastfwd_restore(state)
        self.actual_size[:] = state["actual_size"]
        self.current_ts[:] = state["current_ts"]
        self.keep_width[:] = state["keep_width"]
        self.access_counter[:] = state["access_counter"]
        self.cands_seen[:] = state["cands_seen"]
        self.cands_demoted[:] = state["cands_demoted"]
        self.demotions[:] = state["demotions"]
        self.promotions[:] = state["promotions"]
        self.unmanaged_size = state["unmanaged_size"]
        self.unmanaged_ts = state["unmanaged_ts"]
        self._unmanaged_counter = state["unmanaged_counter"]
        self.evictions_unmanaged = state["evictions_unmanaged"]
        self.evictions_managed = state["evictions_managed"]
        self.line_ts[:] = state["line_ts"]
        self.part_of[:] = state["part_of"]

    # ------------------------------------------------------------------
    # Introspection helpers.
    # ------------------------------------------------------------------

    def managed_eviction_fraction(self) -> float:
        """Fraction of all evictions forced out of the managed region
        (the y-axis of Figure 9b)."""
        total = self.evictions_managed + self.evictions_unmanaged
        return self.evictions_managed / total if total else 0.0

    def region_occupancy(self) -> tuple[int, int]:
        """(managed lines, unmanaged lines) currently resident."""
        return sum(self.actual_size), self.unmanaged_size

    def register_stats(self, group) -> None:
        super().register_stats(group)
        v = group.group("vantage", "Vantage controller registers")
        v.stat(
            "demotions",
            lambda: list(self.demotions),
            "per-partition lines demoted to the unmanaged region",
        )
        v.stat(
            "promotions",
            lambda: list(self.promotions),
            "per-partition lines promoted back on an unmanaged hit",
        )
        v.stat(
            "evictions_unmanaged",
            lambda: self.evictions_unmanaged,
            "evictions taken from the unmanaged region",
        )
        v.stat(
            "evictions_managed",
            lambda: self.evictions_managed,
            "forced evictions taken from the managed region",
        )
        v.stat(
            "setpoint_widened",
            lambda: list(self.setpoint_widened),
            "per-partition keep-window widening steps (demote less)",
        )
        v.stat(
            "setpoint_narrowed",
            lambda: list(self.setpoint_narrowed),
            "per-partition keep-window narrowing steps (demote more)",
        )
        v.stat(
            "keep_width",
            lambda: list(self.keep_width),
            "per-partition keep-window width (SetpointTS distance)",
        )
        v.stat(
            "target_size",
            lambda: list(self.target),
            "per-partition target sizes, in lines",
        )
        v.stat(
            "actual_size",
            lambda: list(self.actual_size),
            "per-partition managed-region footprints, in lines",
        )
        v.stat(
            "unmanaged_size",
            lambda: self.unmanaged_size,
            "unmanaged-region occupancy, in lines",
        )
