"""The Vantage cache controller (Sections 3 and 4 of the paper).

``VantageCache`` implements the *practical* design of Section 4 on top
of any :class:`~repro.arrays.base.CacheArray`:

- the cache is split into a **managed** and an **unmanaged** region by
  tagging lines, never by placement (Section 3.3);
- partition sizes are enforced by **churn-based management**: on every
  replacement, each candidate below its partition's aperture is
  *demoted* to the unmanaged region, and the eviction victim is the
  oldest unmanaged candidate (Section 3.4);
- apertures are never computed: **feedback-based aperture control**
  (Section 4.1) lets partitions outgrow their targets slightly and
  reacts through the demotion-thresholds table;
- demotions never consult exact eviction priorities:
  **setpoint-based demotions** (Section 4.2) demote lines whose
  coarse LRU timestamp falls outside the keep window between the
  per-partition setpoint and current timestamps.

State mirrors Fig 4: per-line partition tag + 8-bit timestamp, and
per-partition registers (CurrentTS, SetpointTS, AccessCounter,
ActualSize, TargetSize, CandsSeen, CandsDemoted, threshold table).

One published ambiguity is resolved here: Section 4.2 and Section 4.3
state opposite setpoint-adjustment directions; we follow Section 4.3
(too many demotions => widen the keep window), which is the stable
negative-feedback direction (see DESIGN.md and
``tests/core/test_setpoint.py``).
"""

from __future__ import annotations

from repro.arrays.base import CacheArray, Candidate
from repro.core.config import VantageConfig
from repro.core.feedback import build_threshold_table, lookup_threshold

TS_MOD = 256
#: ``part_of`` value for lines in the unmanaged region.
UNMANAGED = -1
#: Initial keep-window width (timestamp distance between CurrentTS and
#: SetpointTS); feedback moves it from here.
INITIAL_KEEP_WIDTH = 192

from repro.partitioning.base_cache import PartitionedCache


class VantageCache(PartitionedCache):
    """Vantage-partitioned cache (practical controller, LRU base policy).

    Parameters
    ----------
    array:
        Backing array.  Vantage is designed for zcaches and skew
        caches (high R, uniform candidates) but also runs on hashed
        set-associative arrays with weaker guarantees (Fig 10).
    num_partitions:
        Number of partitions in the managed region.
    config:
        Controller tunables; see :class:`VantageConfig`.
    """

    allocation_unit = "lines"

    def __init__(
        self,
        array: CacheArray,
        num_partitions: int,
        config: VantageConfig | None = None,
    ):
        super().__init__(array, num_partitions)
        self.config = config if config is not None else VantageConfig()
        n = num_partitions

        # --- Per-line state (the tag extensions of Fig 4). ---
        # ``part_of[slot]`` is the partition for managed lines and
        # ``UNMANAGED`` for unmanaged ones (None only for empty slots).
        self.line_ts = [0] * array.num_lines

        # --- Per-partition registers. ---
        managed = self.config.managed_lines(array.num_lines)
        base, extra = divmod(managed, n)
        self.target = [base + (1 if p < extra else 0) for p in range(n)]
        self.actual_size = [0] * n
        self.current_ts = [0] * n
        self.keep_width = [INITIAL_KEEP_WIDTH] * n
        self.access_counter = [0] * n
        self.cands_seen = [0] * n
        self.cands_demoted = [0] * n
        self._tables = [self._compile_table(t) for t in self.target]

        # --- Unmanaged-region state. ---
        self.unmanaged_size = 0
        self.unmanaged_ts = 0
        self._unmanaged_counter = 0

        # --- Vantage-specific statistics. ---
        self.demotions = [0] * n
        self.promotions = [0] * n
        self.evictions_unmanaged = 0
        self.evictions_managed = 0
        #: Optional hook ``fn(slot, part)`` called just before a line
        #: of ``part`` is demoted (measurement only).
        self.demotion_hook = None

    # ------------------------------------------------------------------
    # Configuration / allocation interface.
    # ------------------------------------------------------------------

    @property
    def allocation_total(self) -> int:
        """Lines available for partitioning (the managed region)."""
        return self.config.managed_lines(self.num_lines)

    def _compile_table(self, target: int) -> list[tuple[int, int]]:
        cfg = self.config
        return build_threshold_table(
            target,
            a_max=cfg.a_max,
            slack=cfg.slack,
            entries=cfg.threshold_entries,
            candidates_per_adjust=cfg.candidates_per_adjust,
        )

    def set_allocations(self, units: list[int]) -> None:
        """Install new target sizes, in lines.

        Targets should sum to at most the managed-region size; a target
        of 0 deletes the partition (it drains at full aperture).
        """
        if len(units) != self.num_partitions:
            raise ValueError("allocation vector length mismatch")
        if any(u < 0 for u in units):
            raise ValueError("targets must be non-negative")
        if sum(units) > self.allocation_total:
            raise ValueError(
                f"targets sum to {sum(units)}, above the managed region "
                f"({self.allocation_total} lines)"
            )
        self.target = list(units)
        self._tables = [self._compile_table(t) for t in units]

    def partition_size(self, part: int) -> int:
        """Managed-region footprint of ``part`` (the ActualSize register)."""
        return self.actual_size[part]

    def partition_sizes(self) -> list[int]:
        return list(self.actual_size)

    def resize_partition(self, part: int, target_lines: int) -> None:
        """Change one partition's target, leaving the others alone.

        Resizing is cheap in Vantage (Section 3.4): only the target
        register and the threshold table change; capacity moves
        through demotions as the cache runs.
        """
        targets = list(self.target)
        targets[part] = target_lines
        self.set_allocations(targets)

    def delete_partition(self, part: int) -> None:
        """Delete a partition: target 0 compiles to a full-aperture
        threshold table, so its lines drain into the unmanaged region
        and the ID can be reused once :meth:`partition_is_drained`."""
        self.resize_partition(part, 0)

    def partition_is_drained(self, part: int, residual_lines: int = 0) -> bool:
        """Whether a deleted partition's footprint has emptied enough
        for its identifier to be reused."""
        return self.actual_size[part] <= residual_lines

    # ------------------------------------------------------------------
    # Timestamp plumbing.
    # ------------------------------------------------------------------

    def _tick(self, part: int) -> None:
        """Advance ``part``'s access counter; bump timestamps every
        1/16th of the partition's size worth of accesses.  The setpoint
        moves with CurrentTS, so the keep width is unchanged."""
        self.access_counter[part] += 1
        if self.access_counter[part] >= max(1, self.actual_size[part] >> 4):
            self.access_counter[part] = 0
            self.current_ts[part] = (self.current_ts[part] + 1) % TS_MOD

    def _tick_unmanaged(self) -> None:
        self._unmanaged_counter += 1
        if self._unmanaged_counter >= max(1, self.unmanaged_size >> 4):
            self._unmanaged_counter = 0
            self.unmanaged_ts = (self.unmanaged_ts + 1) % TS_MOD

    def staleness(self, slot: int) -> int:
        """Timestamp distance of the line at ``slot`` within its scope
        (its partition, or the unmanaged region).  Used by monitors."""
        owner = self.part_of[slot]
        if owner == UNMANAGED:
            return (self.unmanaged_ts - self.line_ts[slot]) % TS_MOD
        return (self.current_ts[owner] - self.line_ts[slot]) % TS_MOD

    # ------------------------------------------------------------------
    # Setpoint feedback (Section 4.2 mechanics, Section 4.3 direction).
    # ------------------------------------------------------------------

    def _adjust_setpoint(self, part: int) -> None:
        threshold = lookup_threshold(self._tables[part], self.actual_size[part])
        demoted = self.cands_demoted[part]
        if self.actual_size[part] <= self.target[part]:
            # The partition ended the window at/below target: recent
            # demotion bursts overshot (the size gate stopped them),
            # so relax the setpoint.  Without this case a low-churn
            # partition whose demand sits below the smallest table
            # threshold rails at maximum aperture and demotes
            # arbitrarily young lines.
            self._setpoint_demote_less(part)
        elif demoted > threshold:
            self._setpoint_demote_less(part)
        elif demoted < threshold:
            self._setpoint_demote_more(part)
        self.cands_demoted[part] = 0
        self.cands_seen[part] = 0

    def _setpoint_demote_less(self, part: int) -> None:
        """Demoting too fast: widen the keep window one step."""
        if self.keep_width[part] < TS_MOD - 1:
            self.keep_width[part] += 1

    def _setpoint_demote_more(self, part: int) -> None:
        if self.keep_width[part] > 0:
            self.keep_width[part] -= 1

    # ------------------------------------------------------------------
    # Access path.
    # ------------------------------------------------------------------

    def access(self, addr: int, part: int = 0) -> bool:
        array = self.array
        slot = array.lookup(addr)
        if slot is not None:
            self._hit(slot, part)
            self._record_access(part, hit=True)
            return True
        self._record_access(part, hit=False)
        self._miss(addr, part)
        return False

    def _hit(self, slot: int, part: int) -> None:
        if self.part_of[slot] == UNMANAGED:
            # Promotion: the line re-joins the accessing partition.
            self.unmanaged_size -= 1
            self.part_of[slot] = part
            self.actual_size[part] += 1
            self.promotions[part] += 1
            owner = part
        else:
            owner = self.part_of[slot]
        self._touch(slot, owner)
        self._tick(owner)

    def _touch(self, slot: int, owner: int) -> None:
        """Refresh the base-policy rank of a line on a hit (LRU:
        stamp it with the partition's current timestamp)."""
        self.line_ts[slot] = self.current_ts[owner]

    def _miss(self, addr: int, part: int) -> None:
        array = self.array
        candidates = array.candidates(addr)
        victim = self._first_empty(candidates)
        demoted_this_miss: list[Candidate] = []
        if victim is None:
            victim = self._replacement(candidates, demoted_this_miss)
        self._finish_install(addr, part, victim)

    def _replacement(
        self, candidates: list[Candidate], demoted: list[Candidate]
    ) -> Candidate:
        """Demotion checks over all candidates, then victim selection."""
        part_of = self.part_of
        line_ts = self.line_ts
        actual = self.actual_size
        target = self.target
        c_adjust = self.config.candidates_per_adjust

        best_unmanaged: Candidate | None = None
        best_unmanaged_age = -1
        for cand in candidates:
            slot = cand.slot
            owner = part_of[slot]
            if owner == UNMANAGED:
                age = (self.unmanaged_ts - line_ts[slot]) % TS_MOD
                if age > best_unmanaged_age:
                    best_unmanaged_age = age
                    best_unmanaged = cand
                continue
            # Managed candidate: demotion check.
            self.cands_seen[owner] += 1
            if actual[owner] > target[owner] and self._demotable(slot, owner):
                self._demote(slot, owner)
                demoted.append(cand)
            if self.cands_seen[owner] >= c_adjust:
                self._adjust_setpoint(owner)

        if not demoted:
            self._on_no_demotions(candidates)

        if best_unmanaged is not None:
            self.evictions_unmanaged += 1
            self._evict(best_unmanaged)
            return best_unmanaged

        # Forced eviction from the managed region (rare if u is sized
        # correctly): prefer a line we just demoted; otherwise evict
        # the stalest line of an over-target partition -- charging the
        # transient to the partitions that exceed their allocations
        # preserves isolation for the ones that do not -- and nudge
        # that partition's setpoint, since a forced eviction means its
        # demotions are lagging its churn.
        self.evictions_managed += 1
        if demoted:
            victim = demoted[0]
        else:
            over = [
                c
                for c in candidates
                if actual[part_of[c.slot]] > target[part_of[c.slot]]
            ]
            pool = over if over else candidates
            victim = max(pool, key=lambda c: self.staleness(c.slot))
            self._setpoint_demote_more(part_of[victim.slot])
        self._evict(victim)
        return victim

    def _demotable(self, slot: int, owner: int) -> bool:
        """Setpoint check: demote lines whose timestamp falls outside
        the keep window between SetpointTS and CurrentTS (Fig 3b)."""
        dist = (self.current_ts[owner] - self.line_ts[slot]) % TS_MOD
        return dist > self.keep_width[owner]

    def _on_no_demotions(self, candidates: list[Candidate]) -> None:
        """Hook for base policies that must age lines when a full
        candidate pass demotes nothing (RRIP); LRU ages via time."""

    def _demote(self, slot: int, owner: int) -> None:
        if self.demotion_hook is not None:
            self.demotion_hook(slot, owner)
        self.actual_size[owner] -= 1
        self.cands_demoted[owner] += 1
        self.demotions[owner] += 1
        self.part_of[slot] = UNMANAGED
        self.line_ts[slot] = self.unmanaged_ts
        self.unmanaged_size += 1
        self._tick_unmanaged()

    def _evict(self, victim: Candidate) -> None:
        slot = victim.slot
        owner = self.part_of[slot]
        if owner == UNMANAGED:
            # Ownership was erased at demotion time; unmanaged
            # evictions are tracked by evictions_unmanaged/managed.
            self.unmanaged_size -= 1
            if self.eviction_hook is not None:
                self.eviction_hook(slot, UNMANAGED)
        else:
            self.actual_size[owner] -= 1
            self.stats.evictions[owner] += 1
            if self.eviction_hook is not None:
                self.eviction_hook(slot, owner)
        self.part_of[slot] = None

    def _finish_install(self, addr: int, part: int, victim: Candidate) -> None:
        moves = self.array.install(addr, victim)
        part_of = self.part_of
        line_ts = self.line_ts
        for src, dst in moves:
            part_of[dst] = part_of[src]
            part_of[src] = None
            line_ts[dst] = line_ts[src]
            self._move_line_state(src, dst)
        landing = victim.path[0]
        part_of[landing] = part
        self._set_inserted_line_state(landing, part, addr)
        self.actual_size[part] += 1
        self._tick(part)

    def _move_line_state(self, src: int, dst: int) -> None:
        """Hook: relocate extra per-line base-policy state (RRPVs)."""

    def _set_inserted_line_state(self, slot: int, part: int, addr: int) -> None:
        """Base-policy metadata for a freshly inserted line (LRU:
        stamp with the partition's current timestamp)."""
        self.line_ts[slot] = self.current_ts[part]

    # ------------------------------------------------------------------
    # Introspection helpers.
    # ------------------------------------------------------------------

    def managed_eviction_fraction(self) -> float:
        """Fraction of all evictions forced out of the managed region
        (the y-axis of Figure 9b)."""
        total = self.evictions_managed + self.evictions_unmanaged
        return self.evictions_managed / total if total else 0.0

    def region_occupancy(self) -> tuple[int, int]:
        """(managed lines, unmanaged lines) currently resident."""
        return sum(self.actual_size), self.unmanaged_size
