"""Vantage: the paper's contribution (controller, config, variants)."""

from repro.core.analytical import AnalyticalVantageCache
from repro.core.cache import UNMANAGED, VantageCache
from repro.core.config import VantageConfig
from repro.core.feedback import build_threshold_table, lookup_threshold
from repro.core.rrip_variant import VantageDRRIPCache

# Imported last, for its side effects: registers the fused access
# kernels for the Vantage controllers.
import repro.core.fused  # noqa: E402,F401

__all__ = [
    "AnalyticalVantageCache",
    "UNMANAGED",
    "VantageCache",
    "VantageConfig",
    "VantageDRRIPCache",
    "build_threshold_table",
    "lookup_threshold",
]
