"""Idealised Vantage controller used to validate the models (Sec 6.2).

The paper checks its practical controller against an "unrealistic"
configuration that uses feedback-based aperture control *with perfect
knowledge of the apertures* instead of setpoint-based demotions.  This
class implements that configuration: on (a sliding window of) every
miss it evaluates the exact transfer function of Equation 7 and demotes
precisely the top-``A_i`` fraction of each partition's lines by age,
derived from an exact per-partition timestamp histogram rather than a
feedback-adjusted setpoint.

Running this controller and the practical :class:`VantageCache` on the
same workloads should produce near-identical behaviour -- that is the
claim ``benchmarks/test_sec62_model_validation.py`` reproduces.

:class:`VantageModel` is the reusable closed-form core of that
controller: the Eq. 7 transfer function plus the steady-state flow
accounting that answers "how many hits, demotions and evictions do N
more accesses produce at aperture A".  The analytical cache uses it
for its exact-aperture thresholds, and the fast-forward layer
(``repro.sim.fastfwd``, ``REPRO_FASTFWD=1``) uses it to replay
converged epoch tails without simulating them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arrays.base import CacheArray
from repro.core.cache import TS_MOD, UNMANAGED, VantageCache
from repro.core.config import VantageConfig
from repro.analysis.sizing import aperture


@dataclass(frozen=True)
class ModelForecast:
    """Closed-form outcome of ``accesses`` more accesses to a partition
    whose statistics have stabilised (all values are expectations, not
    integers)."""

    accesses: float
    hits: float
    misses: float
    #: Replacement candidates of this partition examined by the
    #: demotion scans the ``walk_misses`` walks perform.
    candidates: float
    #: Lines demoted to the unmanaged region (aperture * candidates).
    demotions: float
    #: Lines leaving the cache entirely; at steady state every miss
    #: evicts exactly one line somewhere.
    evictions: float


class VantageModel:
    """The Eq. 7 transfer function plus steady-state flow accounting.

    Parameters
    ----------
    config:
        Controller tunables (``a_max``, ``slack``).
    candidates_per_miss:
        ``R``, the candidates each replacement walk examines.
    """

    def __init__(self, config: VantageConfig, candidates_per_miss: int):
        if candidates_per_miss <= 0:
            raise ValueError("candidates_per_miss must be positive")
        self.config = config
        self.r = candidates_per_miss

    def aperture(self, size: float, target: float) -> float:
        """Equation 7: the fraction of this partition's candidates that
        should be demoted at its current ``size``."""
        cfg = self.config
        return aperture(size, target, cfg.a_max, cfg.slack)

    def forecast(
        self,
        accesses: float,
        miss_rate: float,
        size: float,
        target: float,
        num_lines: int,
        walk_misses: float | None = None,
    ) -> ModelForecast:
        """Hits/demotions/evictions for ``accesses`` more accesses.

        ``walk_misses`` is the total number of replacement walks the
        partition's lines are exposed to (every miss of *any*
        partition scans R candidates); it defaults to the partition's
        own misses, which is exact only for a single partition.  Each
        walk examines ``R * size / num_lines`` of this partition's
        lines in expectation (near-uniform zcache candidates), and the
        feedback controller demotes the aperture fraction of them --
        the steady state of Section 3.4 that Equations 4-6 build on.
        """
        if num_lines <= 0:
            raise ValueError("num_lines must be positive")
        misses = accesses * miss_rate
        walks = misses if walk_misses is None else walk_misses
        candidates = walks * self.r * (size / num_lines)
        demotions = (
            candidates * self.aperture(size, target) if size > target else 0.0
        )
        return ModelForecast(
            accesses=accesses,
            hits=accesses - misses,
            misses=misses,
            candidates=candidates,
            demotions=demotions,
            evictions=misses,
        )


class AnalyticalVantageCache(VantageCache):
    """Vantage with exact apertures derived from timestamp histograms.

    Parameters
    ----------
    recompute_interval:
        Misses between demotion-threshold recomputations.  Each
        recomputation walks one 256-bin histogram per partition; the
        default keeps the idealised controller fast while tracking
        apertures far more often than sizes can drift.
    """

    def __init__(
        self,
        array: CacheArray,
        num_partitions: int,
        config: VantageConfig | None = None,
        recompute_interval: int = 16,
    ):
        super().__init__(array, num_partitions, config)
        self._hist = [[0] * TS_MOD for _ in range(num_partitions)]
        self._threshold_dist = [TS_MOD - 1] * num_partitions
        self._recompute_interval = recompute_interval
        self._misses_since_recompute = 0
        self._model = VantageModel(self.config, array.candidates_per_miss)
        self.recomputes = 0
        self.recompute_bins = 0

    @property
    def model(self) -> VantageModel:
        """The closed-form Eq. 7 model this controller evaluates."""
        return self._model

    # ------------------------------------------------------------------
    # Exact-aperture demotion predicate.
    # ------------------------------------------------------------------

    def _demotable(self, slot: int, owner: int) -> bool:
        dist = (self.current_ts[owner] - self.line_ts[slot]) % TS_MOD
        return dist > self._threshold_dist[owner]

    def _adjust_setpoint(self, part: int) -> None:
        # No feedback: thresholds come straight from the histograms.
        self.cands_demoted[part] = 0
        self.cands_seen[part] = 0

    def _miss(self, addr: int, part: int) -> None:
        self._misses_since_recompute += 1
        if self._misses_since_recompute >= self._recompute_interval:
            self._misses_since_recompute = 0
            self._recompute_thresholds()
        super()._miss(addr, part)

    def _recompute_thresholds(self) -> None:
        self.recomputes += 1
        bins = 0
        for p in range(self.num_partitions):
            size = self.actual_size[p]
            if size <= 0:
                self._threshold_dist[p] = TS_MOD - 1
                continue
            a = self._model.aperture(size, self.target[p])
            budget = a * size
            hist = self._hist[p]
            cur = self.current_ts[p]
            cum = 0
            threshold = -1
            # Oldest lines first: find the smallest distance D such
            # that at most `budget` lines are strictly older than D.
            for dist in range(TS_MOD - 1, -1, -1):
                bins += 1
                count = hist[(cur - dist) % TS_MOD]
                if cum + count > budget:
                    threshold = dist
                    break
                cum += count
            self._threshold_dist[p] = threshold if threshold >= 0 else -1
        self.recompute_bins += bins

    # ------------------------------------------------------------------
    # Histogram maintenance over every line transition.
    # ------------------------------------------------------------------

    def _hit(self, slot: int, part: int) -> None:
        owner_before = self.part_of[slot]
        ts_before = self.line_ts[slot]
        super()._hit(slot, part)
        owner_after = self.part_of[slot]
        if owner_before != UNMANAGED:
            self._hist[owner_before][ts_before] -= 1
        self._hist[owner_after][self.line_ts[slot]] += 1

    def _set_inserted_line_state(self, slot: int, part: int, addr: int) -> None:
        super()._set_inserted_line_state(slot, part, addr)
        self._hist[part][self.line_ts[slot]] += 1

    def _demote(self, slot: int, owner: int) -> None:
        self._hist[owner][self.line_ts[slot]] -= 1
        super()._demote(slot, owner)

    def _evict_slot(self, slot: int) -> None:
        owner = self.part_of[slot]
        if owner >= 0:
            self._hist[owner][self.line_ts[slot]] -= 1
        super()._evict_slot(slot)

    def register_stats(self, group) -> None:
        super().register_stats(group)
        a = group.group("analytical", "exact-aperture controller state")
        a.stat(
            "threshold_dist",
            lambda: list(self._threshold_dist),
            "per-partition demotion thresholds (timestamp distance)",
        )
        a.stat(
            "recomputes",
            lambda: self.recomputes,
            "histogram threshold recomputations performed",
        )
        a.stat(
            "recompute_bins",
            lambda: self.recompute_bins,
            "histogram bins walked across all recomputations",
        )
        a.stat(
            "recompute_interval",
            lambda: self._recompute_interval,
            "misses between threshold recomputations",
        )
