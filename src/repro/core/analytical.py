"""Idealised Vantage controller used to validate the models (Sec 6.2).

The paper checks its practical controller against an "unrealistic"
configuration that uses feedback-based aperture control *with perfect
knowledge of the apertures* instead of setpoint-based demotions.  This
class implements that configuration: on (a sliding window of) every
miss it evaluates the exact transfer function of Equation 7 and demotes
precisely the top-``A_i`` fraction of each partition's lines by age,
derived from an exact per-partition timestamp histogram rather than a
feedback-adjusted setpoint.

Running this controller and the practical :class:`VantageCache` on the
same workloads should produce near-identical behaviour -- that is the
claim ``benchmarks/test_sec62_model_validation.py`` reproduces.
"""

from __future__ import annotations

from repro.arrays.base import CacheArray
from repro.core.cache import TS_MOD, UNMANAGED, VantageCache
from repro.core.config import VantageConfig
from repro.analysis.sizing import aperture


class AnalyticalVantageCache(VantageCache):
    """Vantage with exact apertures derived from timestamp histograms.

    Parameters
    ----------
    recompute_interval:
        Misses between demotion-threshold recomputations.  Each
        recomputation walks one 256-bin histogram per partition; the
        default keeps the idealised controller fast while tracking
        apertures far more often than sizes can drift.
    """

    def __init__(
        self,
        array: CacheArray,
        num_partitions: int,
        config: VantageConfig | None = None,
        recompute_interval: int = 16,
    ):
        super().__init__(array, num_partitions, config)
        self._hist = [[0] * TS_MOD for _ in range(num_partitions)]
        self._threshold_dist = [TS_MOD - 1] * num_partitions
        self._recompute_interval = recompute_interval
        self._misses_since_recompute = 0

    # ------------------------------------------------------------------
    # Exact-aperture demotion predicate.
    # ------------------------------------------------------------------

    def _demotable(self, slot: int, owner: int) -> bool:
        dist = (self.current_ts[owner] - self.line_ts[slot]) % TS_MOD
        return dist > self._threshold_dist[owner]

    def _adjust_setpoint(self, part: int) -> None:
        # No feedback: thresholds come straight from the histograms.
        self.cands_demoted[part] = 0
        self.cands_seen[part] = 0

    def _miss(self, addr: int, part: int) -> None:
        self._misses_since_recompute += 1
        if self._misses_since_recompute >= self._recompute_interval:
            self._misses_since_recompute = 0
            self._recompute_thresholds()
        super()._miss(addr, part)

    def _recompute_thresholds(self) -> None:
        cfg = self.config
        for p in range(self.num_partitions):
            size = self.actual_size[p]
            if size <= 0:
                self._threshold_dist[p] = TS_MOD - 1
                continue
            a = aperture(size, self.target[p], cfg.a_max, cfg.slack)
            budget = a * size
            hist = self._hist[p]
            cur = self.current_ts[p]
            cum = 0
            threshold = -1
            # Oldest lines first: find the smallest distance D such
            # that at most `budget` lines are strictly older than D.
            for dist in range(TS_MOD - 1, -1, -1):
                count = hist[(cur - dist) % TS_MOD]
                if cum + count > budget:
                    threshold = dist
                    break
                cum += count
            self._threshold_dist[p] = threshold if threshold >= 0 else -1

    # ------------------------------------------------------------------
    # Histogram maintenance over every line transition.
    # ------------------------------------------------------------------

    def _hit(self, slot: int, part: int) -> None:
        owner_before = self.part_of[slot]
        ts_before = self.line_ts[slot]
        super()._hit(slot, part)
        owner_after = self.part_of[slot]
        if owner_before != UNMANAGED:
            self._hist[owner_before][ts_before] -= 1
        self._hist[owner_after][self.line_ts[slot]] += 1

    def _set_inserted_line_state(self, slot: int, part: int, addr: int) -> None:
        super()._set_inserted_line_state(slot, part, addr)
        self._hist[part][self.line_ts[slot]] += 1

    def _demote(self, slot: int, owner: int) -> None:
        self._hist[owner][self.line_ts[slot]] -= 1
        super()._demote(slot, owner)

    def _evict_slot(self, slot: int) -> None:
        owner = self.part_of[slot]
        if owner >= 0:
            self._hist[owner][self.line_ts[slot]] -= 1
        super()._evict_slot(slot)

    def register_stats(self, group) -> None:
        super().register_stats(group)
        a = group.group("analytical", "exact-aperture controller state")
        a.stat(
            "threshold_dist",
            lambda: list(self._threshold_dist),
            "per-partition demotion thresholds (timestamp distance)",
        )
