"""Vantage-DRRIP: Vantage with an RRIP base policy (Section 6.2).

Setpoint-based demotions generalise beyond coarse-timestamp LRU: with
RRIP as the base policy each partition keeps a *setpoint RRPV* instead
of a setpoint timestamp, and candidates whose re-reference prediction
value is at or above the setpoint are demoted.  The same negative
feedback drives the setpoint from the demotion-thresholds table.

Per the paper: lines from partitions at or below their target size are
never aged, and the SRRIP-vs-BRRIP decision is made per partition
(which makes the policy automatically thread-aware).  The paper picks
per-partition policies with modified UMONs at resize time; we duel
per-partition with leader constituencies (TADIP-style), which is
self-contained, adapts at the same timescale, and needs no extra
monitor hardware.
"""

from __future__ import annotations

import random
from array import array as _array

from repro.arrays.base import CacheArray
from repro.core.cache import VantageCache
from repro.core.config import VantageConfig
from repro.replacement.rrip import (
    BRRIP_EPSILON,
    LEADER_PERIOD,
    LEADERS_PER_POLICY,
    PSEL_MAX,
    RRPV_MAX,
)


class VantageDRRIPCache(VantageCache):
    """Vantage with a per-partition DRRIP base policy.

    Inherits the whole Vantage control system (regions, churn-based
    management, feedback, thresholds); only the per-line rank metadata
    and the demotion predicate change.
    """

    def __init__(
        self,
        array: CacheArray,
        num_partitions: int,
        config: VantageConfig | None = None,
        seed: int = 0,
    ):
        super().__init__(array, num_partitions, config)
        self.rrpv = _array("q", [RRPV_MAX]) * array.num_lines
        # Setpoint RRPV in [1, RRPV_MAX + 1]; RRPV_MAX + 1 demotes
        # nothing, 1 demotes everything not predicted imminent.
        self.setpoint_rrpv = [RRPV_MAX] * num_partitions
        self.psel = [PSEL_MAX // 2] * num_partitions
        self._rng = random.Random(seed)
        if type(self) is VantageDRRIPCache:
            self._install_fused()

    # ------------------------------------------------------------------
    # Per-line metadata hooks.
    # ------------------------------------------------------------------

    def _touch(self, slot: int, owner: int) -> None:
        super()._touch(slot, owner)
        self.rrpv[slot] = 0

    def _move_line_state(self, src: int, dst: int) -> None:
        self.rrpv[dst] = self.rrpv[src]

    def _set_inserted_line_state(self, slot: int, part: int, addr: int) -> None:
        super()._set_inserted_line_state(slot, part, addr)
        leader = self._leader(addr, part)
        if leader == "srrip":
            self._vote(part, +1)
            use_srrip = True
        elif leader == "brrip":
            self._vote(part, -1)
            use_srrip = False
        else:
            use_srrip = self.psel[part] <= PSEL_MAX // 2
        if use_srrip or self._rng.random() < BRRIP_EPSILON:
            self.rrpv[slot] = RRPV_MAX - 1
        else:
            self.rrpv[slot] = RRPV_MAX

    # ------------------------------------------------------------------
    # Demotion predicate and setpoint feedback on RRPVs.
    # ------------------------------------------------------------------

    def _demotable(self, slot: int, owner: int) -> bool:
        return self.rrpv[slot] >= self.setpoint_rrpv[owner]

    def _setpoint_demote_less(self, part: int) -> None:
        if self.setpoint_rrpv[part] <= RRPV_MAX:
            self.setpoint_rrpv[part] += 1
            self.setpoint_widened[part] += 1

    def _setpoint_demote_more(self, part: int) -> None:
        if self.setpoint_rrpv[part] > 1:
            self.setpoint_rrpv[part] -= 1
            self.setpoint_narrowed[part] += 1

    def _on_no_demotions(self, slots: list[int]) -> None:
        """RRIP aging, restricted to partitions above target size."""
        rrpv = self.rrpv
        part_of = self.part_of
        actual = self.actual_size
        target = self.target
        for slot in slots:
            owner = part_of[slot]
            if owner < 0:  # UNMANAGED or empty
                continue
            if actual[owner] > target[owner] and rrpv[slot] < RRPV_MAX:
                rrpv[slot] += 1

    # ------------------------------------------------------------------
    # Per-partition SRRIP/BRRIP duelling.
    # ------------------------------------------------------------------

    @staticmethod
    def _constituency(addr: int) -> int:
        return (addr * 0x9E3779B97F4A7C15 >> 13) % LEADER_PERIOD

    def _leader(self, addr: int, part: int) -> str | None:
        group = (self._constituency(addr) + part * 2 * LEADERS_PER_POLICY) % LEADER_PERIOD
        if group < LEADERS_PER_POLICY:
            return "srrip"
        if group < 2 * LEADERS_PER_POLICY:
            return "brrip"
        return None

    def _vote(self, part: int, delta: int) -> None:
        self.psel[part] = min(PSEL_MAX, max(0, self.psel[part] + delta))

    def register_stats(self, group) -> None:
        super().register_stats(group)
        d = group.group("drrip", "per-partition DRRIP duelling state")
        d.stat(
            "setpoint_rrpv",
            lambda: list(self.setpoint_rrpv),
            "per-partition setpoint RRPVs (demotion thresholds)",
        )
        d.stat(
            "psel",
            lambda: list(self.psel),
            "per-partition SRRIP/BRRIP policy selectors",
        )
