"""Fused access kernels for the Vantage controllers.

One closure per cache instance fuses hit detection, the promotion /
timestamp-touch hit path and the miss path's walk + demotion scan +
install bookkeeping, with every per-line column (tags, ``part_of``,
``line_ts``, RRPVs) and per-partition register captured as closure
cells.  The structure mirrors ``VantageCache.access``/``_hit``/
``_miss``/``_finish_install`` exactly; ``_replacement_index`` and
``_zmiss`` (already single-pass kernels) stay as bound calls, so every
demotion, setpoint adjustment and eviction decision runs the same
code in both paths.

Pinned bitwise-identical to the object path (``REPRO_FUSED=0``) by
the parity tests and the golden stats trees.

Imported for its registration side effects at the end of
``repro.core.__init__``.
"""

from __future__ import annotations

from repro.arrays.base import CacheArray
from repro.arrays.zcache import ZCacheArray
from repro.core.cache import _TS_MASK, UNMANAGED, VantageCache
from repro.core.rrip_variant import VantageDRRIPCache
from repro.partitioning.base_cache import NO_PART, register_fused_kernel


@register_fused_kernel(VantageCache)
def build_vantage_kernel(cache: VantageCache):
    return _vantage_kernel(cache, rrpv=None)


@register_fused_kernel(VantageDRRIPCache)
def build_vantage_drrip_kernel(cache: VantageDRRIPCache):
    return _vantage_kernel(cache, rrpv=cache.rrpv)


def _vantage_kernel(cache, rrpv):
    """Shared Vantage kernel; ``rrpv`` is the extra per-line column of
    the DRRIP variant (``None`` for plain Vantage, whose only per-line
    base-policy state is ``line_ts``)."""
    array = cache.array
    if type(array).candidate_slots is CacheArray.candidate_slots:
        # No fast-path walk (e.g. random-candidates arrays): the
        # object path's Candidate-list fallback is not worth fusing.
        return None

    lookup = array._slot_of.get
    slot_of = array._slot_of
    num_lines = array.num_lines
    candidate_slots = array.candidate_slots
    install_walk = array.install_walk
    moves_buf = array._install_moves

    # Zcache specialisation: while the array is not full, most walks
    # stop at an empty slot among the W first-level positions (95% of
    # the pinned bench's installs relocate nothing).  For that case the
    # whole walk + chain derivation + install collapses to a W-slot
    # scan: no visited stamps (nothing expands), no level bounds, no
    # relocation chain.  Deeper walks and replacements delegate to
    # candidate_slots()/install_walk() unchanged.  Exact-type check:
    # a subclass may override the walk or install protocol.
    zc = type(array) is ZCacheArray
    if zc:
        tags = array._tags
        pos_by_slot = array._pos_by_slot
        pcache_get = array._position_cache.get
        positions = array.positions
        num_sets = array.num_sets
        collect = array._collect

    part_of = cache.part_of
    line_ts = cache.line_ts
    actual = cache.actual_size
    current_ts = cache.current_ts
    access_counter = cache.access_counter
    tick_size = cache._tick_size
    tick_period = cache._tick_period
    promotions = cache.promotions
    replacement_index = cache._replacement_index
    zwalk = cache._zwalk
    # Latched like the object path's dispatch flags: True when the
    # concrete class keeps the stock hook (plain Vantage), in which
    # case the hook body is inlined below.  The DRRIP overrides are
    # themselves inlined via the rrpv column (touch, move) or kept as
    # a bound call (insert: leader voting + RNG).
    plain_insert = cache._plain_insert
    set_inserted = cache._set_inserted_line_state

    st = cache.stats
    st_acc = st.accesses
    st_hit = st.hits
    st_miss = st.misses

    def access(addr: int, part: int = 0) -> bool:
        slot = lookup(addr)
        if slot is not None:
            # --- _hit, inlined. ---
            owner = part_of[slot]
            if owner == UNMANAGED:
                cache.unmanaged_size -= 1
                part_of[slot] = part
                actual[part] += 1
                promotions[part] += 1
                owner = part
            line_ts[slot] = current_ts[owner]
            if rrpv is not None:
                rrpv[slot] = 0
            # _tick(owner), inlined.
            count = access_counter[owner] + 1
            size = actual[owner]
            if size != tick_size[owner]:
                tick_size[owner] = size
                period = size >> 4
                tick_period[owner] = period if period > 0 else 1
            if count >= tick_period[owner]:
                access_counter[owner] = 0
                current_ts[owner] = (current_ts[owner] + 1) & _TS_MASK
            else:
                access_counter[owner] = count
            st_acc[part] += 1
            st_hit[part] += 1
            return True

        st_acc[part] += 1
        st_miss[part] += 1
        # --- _miss, inlined. ---
        if zwalk and len(slot_of) == num_lines:
            # Full zcache: the fused walk + demotion scan.
            cache._zmiss(addr, part, array)
            return False
        if zc:
            # First-level positions sit in distinct banks (no
            # duplicates); an empty one ends the walk with the victim
            # as its own landing slot -- install is a plain placement.
            first = pcache_get(addr)
            if first is None:
                first = positions(addr)
            n = 0
            landing = -1
            for slot in first:
                n += 1
                if tags[slot] < 0:
                    landing = slot
                    break
            if landing >= 0:
                if collect:
                    array.stat_walks += 1
                    array.stat_candidates += n
                    array.stat_installs += 1
                tags[landing] = addr
                slot_of[addr] = landing
                way = landing // num_sets
                pos_by_slot[landing] = first[:way] + first[way + 1 :]
                part_of[landing] = part
                if plain_insert:
                    line_ts[landing] = current_ts[part]
                else:
                    set_inserted(landing, part, addr)
                size = actual[part] + 1
                actual[part] = size
                # _tick(part), inlined.
                count = access_counter[part] + 1
                if size != tick_size[part]:
                    tick_size[part] = size
                    period = size >> 4
                    tick_period[part] = period if period > 0 else 1
                if count >= tick_period[part]:
                    access_counter[part] = 0
                    current_ts[part] = (current_ts[part] + 1) & _TS_MASK
                else:
                    access_counter[part] = count
                return False
        slots, parents, has_empty = candidate_slots(addr)
        if has_empty:
            index = len(slots) - 1
        else:
            index = replacement_index(slots)
        landing = install_walk(addr, slots, parents, index)
        # --- _finish_install, inlined over the flat move pairs. ---
        if moves_buf:
            for k in range(0, len(moves_buf), 2):
                src = moves_buf[k]
                dst = moves_buf[k + 1]
                part_of[dst] = part_of[src]
                part_of[src] = NO_PART
                line_ts[dst] = line_ts[src]
                if rrpv is not None:
                    rrpv[dst] = rrpv[src]
        part_of[landing] = part
        if plain_insert:
            line_ts[landing] = current_ts[part]
        else:
            set_inserted(landing, part, addr)
        size = actual[part] + 1
        actual[part] = size
        # _tick(part), inlined.
        count = access_counter[part] + 1
        if size != tick_size[part]:
            tick_size[part] = size
            period = size >> 4
            tick_period[part] = period if period > 0 else 1
        if count >= tick_period[part]:
            access_counter[part] = 0
            current_ts[part] = (current_ts[part] + 1) & _TS_MASK
        else:
            access_counter[part] = count
        return False

    return access
