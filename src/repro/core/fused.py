"""Fused access kernels for the Vantage controllers.

One closure per cache instance fuses hit detection, the promotion /
timestamp-touch hit path and the miss path's walk + demotion scan +
install bookkeeping, with every per-line column (tags, ``part_of``,
``line_ts``, RRPVs) and per-partition register captured as closure
cells.  The structure mirrors ``VantageCache.access``/``_hit``/
``_miss``/``_finish_install`` exactly; ``_replacement_index`` and
``_zmiss`` (already single-pass kernels) stay as bound calls, so every
demotion, setpoint adjustment and eviction decision runs the same
code in both paths.

Pinned bitwise-identical to the object path (``REPRO_FUSED=0``) by
the parity tests and the golden stats trees.

Imported for its registration side effects at the end of
``repro.core.__init__``.
"""

from __future__ import annotations

import heapq as _heapq

from repro.arrays.base import CacheArray
from repro.arrays.zcache import ZCacheArray
from repro.core.cache import _TS_MASK, UNMANAGED, VantageCache
from repro.core.rrip_variant import VantageDRRIPCache
from repro.partitioning.base_cache import (
    NO_PART,
    register_batch_kernel,
    register_fused_kernel,
    scheduler_cells,
)


@register_fused_kernel(VantageCache)
def build_vantage_kernel(cache: VantageCache):
    return _vantage_kernel(cache, rrpv=None)


@register_fused_kernel(VantageDRRIPCache)
def build_vantage_drrip_kernel(cache: VantageDRRIPCache):
    return _vantage_kernel(cache, rrpv=cache.rrpv)


def _vantage_kernel(cache, rrpv):
    """Shared Vantage kernel; ``rrpv`` is the extra per-line column of
    the DRRIP variant (``None`` for plain Vantage, whose only per-line
    base-policy state is ``line_ts``)."""
    array = cache.array
    if type(array).candidate_slots is CacheArray.candidate_slots:
        # No fast-path walk (e.g. random-candidates arrays): the
        # object path's Candidate-list fallback is not worth fusing.
        return None

    lookup = array._slot_of.get
    slot_of = array._slot_of
    num_lines = array.num_lines
    candidate_slots = array.candidate_slots
    install_walk = array.install_walk
    moves_buf = array._install_moves

    # Zcache specialisation: while the array is not full, most walks
    # stop at an empty slot among the W first-level positions (95% of
    # the pinned bench's installs relocate nothing).  For that case the
    # whole walk + chain derivation + install collapses to a W-slot
    # scan: no visited stamps (nothing expands), no level bounds, no
    # relocation chain.  Deeper walks and replacements delegate to
    # candidate_slots()/install_walk() unchanged.  Exact-type check:
    # a subclass may override the walk or install protocol.
    zc = type(array) is ZCacheArray
    if zc:
        tags = array._tags
        pos_by_slot = array._pos_by_slot
        pcache_get = array._position_cache.get
        positions = array.positions
        num_sets = array.num_sets
        collect = array._collect

    part_of = cache.part_of
    line_ts = cache.line_ts
    actual = cache.actual_size
    current_ts = cache.current_ts
    access_counter = cache.access_counter
    tick_size = cache._tick_size
    tick_period = cache._tick_period
    promotions = cache.promotions
    replacement_index = cache._replacement_index
    zwalk = cache._zwalk
    # Latched like the object path's dispatch flags: True when the
    # concrete class keeps the stock hook (plain Vantage), in which
    # case the hook body is inlined below.  The DRRIP overrides are
    # themselves inlined via the rrpv column (touch, move) or kept as
    # a bound call (insert: leader voting + RNG).
    plain_insert = cache._plain_insert
    set_inserted = cache._set_inserted_line_state
    # Shared-region bookkeeping (0 = off, the default).  _shared_hit
    # stays a bound call: it only touches live cache registers (no
    # scalar here is hoisted across accesses), so the object path and
    # the kernel run the identical policy code.
    shared_code = cache._shared_code
    shared_hit = cache._shared_hit
    touched_by = cache.touched_by

    st = cache.stats
    st_acc = st.accesses
    st_hit = st.hits
    st_miss = st.misses

    def access(addr: int, part: int = 0) -> bool:
        slot = lookup(addr)
        if slot is not None:
            # --- _hit, inlined. ---
            owner = part_of[slot]
            if owner == UNMANAGED:
                cache.unmanaged_size -= 1
                part_of[slot] = part
                actual[part] += 1
                promotions[part] += 1
                if shared_code:
                    touched_by[slot] |= 1 << part
                owner = part
            elif shared_code and owner != part:
                owner = shared_hit(slot, part)
            if owner != UNMANAGED:
                # UNMANAGED only after a promote-to-shared _shared_hit
                # parked the line (stamped on the unmanaged clock);
                # otherwise stamp and tick the managed owner as always.
                line_ts[slot] = current_ts[owner]
                if rrpv is not None:
                    rrpv[slot] = 0
                # _tick(owner), inlined.
                count = access_counter[owner] + 1
                size = actual[owner]
                if size != tick_size[owner]:
                    tick_size[owner] = size
                    period = size >> 4
                    tick_period[owner] = period if period > 0 else 1
                if count >= tick_period[owner]:
                    access_counter[owner] = 0
                    current_ts[owner] = (current_ts[owner] + 1) & _TS_MASK
                else:
                    access_counter[owner] = count
            st_acc[part] += 1
            st_hit[part] += 1
            return True

        st_acc[part] += 1
        st_miss[part] += 1
        # --- _miss, inlined. ---
        if zwalk and len(slot_of) == num_lines:
            # Full zcache: the fused walk + demotion scan.
            cache._zmiss(addr, part, array)
            return False
        if zc:
            # First-level positions sit in distinct banks (no
            # duplicates); an empty one ends the walk with the victim
            # as its own landing slot -- install is a plain placement.
            first = pcache_get(addr)
            if first is None:
                first = positions(addr)
            n = 0
            landing = -1
            for slot in first:
                n += 1
                if tags[slot] < 0:
                    landing = slot
                    break
            if landing >= 0:
                if collect:
                    array.stat_walks += 1
                    array.stat_candidates += n
                    array.stat_installs += 1
                tags[landing] = addr
                slot_of[addr] = landing
                way = landing // num_sets
                pos_by_slot[landing] = first[:way] + first[way + 1 :]
                part_of[landing] = part
                if shared_code:
                    touched_by[landing] = 1 << part
                if plain_insert:
                    line_ts[landing] = current_ts[part]
                else:
                    set_inserted(landing, part, addr)
                size = actual[part] + 1
                actual[part] = size
                # _tick(part), inlined.
                count = access_counter[part] + 1
                if size != tick_size[part]:
                    tick_size[part] = size
                    period = size >> 4
                    tick_period[part] = period if period > 0 else 1
                if count >= tick_period[part]:
                    access_counter[part] = 0
                    current_ts[part] = (current_ts[part] + 1) & _TS_MASK
                else:
                    access_counter[part] = count
                return False
        slots, parents, has_empty = candidate_slots(addr)
        if has_empty:
            index = len(slots) - 1
        else:
            index = replacement_index(slots)
        landing = install_walk(addr, slots, parents, index)
        # --- _finish_install, inlined over the flat move pairs. ---
        if moves_buf:
            for k in range(0, len(moves_buf), 2):
                src = moves_buf[k]
                dst = moves_buf[k + 1]
                part_of[dst] = part_of[src]
                part_of[src] = NO_PART
                line_ts[dst] = line_ts[src]
                if rrpv is not None:
                    rrpv[dst] = rrpv[src]
                if shared_code:
                    touched_by[dst] = touched_by[src]
                    touched_by[src] = 0
        part_of[landing] = part
        if shared_code:
            touched_by[landing] = 1 << part
        if plain_insert:
            line_ts[landing] = current_ts[part]
        else:
            set_inserted(landing, part, addr)
        size = actual[part] + 1
        actual[part] = size
        # _tick(part), inlined.
        count = access_counter[part] + 1
        if size != tick_size[part]:
            tick_size[part] = size
            period = size >> 4
            tick_period[part] = period if period > 0 else 1
        if count >= tick_period[part]:
            access_counter[part] = 0
            current_ts[part] = (current_ts[part] + 1) & _TS_MASK
        else:
            access_counter[part] = count
        return False

    return access


@register_batch_kernel(VantageCache)
def build_vantage_batch(cache: VantageCache, ctx):
    return _vantage_batch(cache, ctx, rrpv=None)


@register_batch_kernel(VantageDRRIPCache)
def build_vantage_drrip_batch(cache: VantageDRRIPCache, ctx):
    return _vantage_batch(cache, ctx, rrpv=cache.rrpv)


def _vantage_batch(cache, ctx, rrpv):
    """Whole-loop Vantage kernel: the fused access body above embedded
    in the event loop's scheduling walk (see
    ``PartitionedCache.build_batch_kernel`` for the protocol).  No
    setpoint/timestamp register is hoisted across accesses -- they are
    all shared with ``_zmiss`` and ``_replacement_index`` (bound
    calls), so they stay live on the cache object; only the memory
    model's counters are hoisted and flushed."""
    array = cache.array
    if type(array).candidate_slots is CacheArray.candidate_slots:
        return None
    (
        hit_latency, memory, num_controllers, mem_latency, service_cycles,
        free_at, observe, sample_gets, observed, mon_accesses, l1_accesses,
        collect, l1_hits, num_cores, target, bufs, positions, limits,
        instructions, finished_at, instructions_at_finish, times, heap,
        batched,
    ) = scheduler_cells(ctx)
    heappush = _heapq.heappush
    heappop = _heapq.heappop
    inf = float("inf")

    lookup = array._slot_of.get
    slot_of = array._slot_of
    num_lines = array.num_lines
    candidate_slots = array.candidate_slots
    install_walk = array.install_walk
    moves_buf = array._install_moves

    zc = type(array) is ZCacheArray
    if zc:
        tags = array._tags
        pos_by_slot = array._pos_by_slot
        pcache_get = array._position_cache.get
        z_positions = array.positions
        num_sets = array.num_sets
        walk_stats = array._collect

    part_of = cache.part_of
    line_ts = cache.line_ts
    actual = cache.actual_size
    current_ts = cache.current_ts
    access_counter = cache.access_counter
    tick_size = cache._tick_size
    tick_period = cache._tick_period
    promotions = cache.promotions
    replacement_index = cache._replacement_index
    zmiss = cache._zmiss
    zwalk = cache._zwalk
    plain_insert = cache._plain_insert
    set_inserted = cache._set_inserted_line_state
    shared_code = cache._shared_code
    shared_hit = cache._shared_hit
    touched_by = cache.touched_by

    st = cache.stats
    st_acc = st.accesses
    st_hit = st.hits
    st_miss = st.misses

    def kernel(next_service, unfinished):
        mem_requests = memory.requests
        mem_queue = memory.total_queue_cycles
        while True:
            # -- select the next core: two-minimum scan or heap pop.
            if heap is None:
                now = times[0]
                cid = 0
                second = inf
                scid = 0
                for i in range(1, num_cores):
                    ti = times[i]
                    if ti < now:
                        second = now
                        scid = cid
                        now = ti
                        cid = i
                    elif ti < second:
                        second = ti
                        scid = i
            else:
                now, cid = heappop(heap)
                head = heap[0]
                second = head[0]
                scid = head[1]
            if not batched[cid]:
                if heap is not None:
                    heappush(heap, (now, cid))
                reason = 4
                break
            pos = positions[cid]
            limit = limits[cid]
            buf = bufs[cid]
            count = instructions[cid]
            fin = finished_at[cid] is not None
            l1a = l1_accesses[cid] if l1_accesses is not None else None
            if sample_gets is not None:
                sget = sample_gets[cid]
                macc = mon_accesses[cid]
            else:
                sget = None
            reason = 0
            while True:
                if now >= next_service:
                    reason = 1
                    break
                if pos >= limit:
                    reason = 2
                    break
                gap = buf[pos]
                addr = buf[pos + 1]
                pos += 2
                count += gap + 1
                t = now + gap + 1
                if l1a is not None and l1a(addr):
                    # L1 hit: fully pipelined, no stall.
                    if collect:
                        l1_hits[cid] += 1
                else:
                    if sget is not None:
                        if sget(addr, -1) is not None:
                            observed[cid] += 1
                            macc(addr)
                    elif observe is not None:
                        observe(cid, addr)
                    slot = lookup(addr)
                    if slot is not None:
                        owner = part_of[slot]
                        if owner == UNMANAGED:
                            cache.unmanaged_size -= 1
                            part_of[slot] = cid
                            actual[cid] += 1
                            promotions[cid] += 1
                            if shared_code:
                                touched_by[slot] |= 1 << cid
                            owner = cid
                        elif shared_code and owner != cid:
                            owner = shared_hit(slot, cid)
                        if owner != UNMANAGED:
                            # UNMANAGED only after promote-to-shared
                            # parked the line inside _shared_hit.
                            line_ts[slot] = current_ts[owner]
                            if rrpv is not None:
                                rrpv[slot] = 0
                            tick_count = access_counter[owner] + 1
                            size = actual[owner]
                            if size != tick_size[owner]:
                                tick_size[owner] = size
                                period = size >> 4
                                tick_period[owner] = (
                                    period if period > 0 else 1
                                )
                            if tick_count >= tick_period[owner]:
                                access_counter[owner] = 0
                                current_ts[owner] = (
                                    current_ts[owner] + 1
                                ) & _TS_MASK
                            else:
                                access_counter[owner] = tick_count
                        st_acc[cid] += 1
                        st_hit[cid] += 1
                        t += hit_latency
                    else:
                        st_acc[cid] += 1
                        st_miss[cid] += 1
                        if zwalk and len(slot_of) == num_lines:
                            zmiss(addr, cid, array)
                        else:
                            landing = -1
                            if zc:
                                first = pcache_get(addr)
                                if first is None:
                                    first = z_positions(addr)
                                n = 0
                                for slot in first:
                                    n += 1
                                    if tags[slot] < 0:
                                        landing = slot
                                        break
                            if landing >= 0:
                                if walk_stats:
                                    array.stat_walks += 1
                                    array.stat_candidates += n
                                    array.stat_installs += 1
                                tags[landing] = addr
                                slot_of[addr] = landing
                                way = landing // num_sets
                                pos_by_slot[landing] = (
                                    first[:way] + first[way + 1 :]
                                )
                            else:
                                slots, parents, has_empty = candidate_slots(
                                    addr
                                )
                                if has_empty:
                                    index = len(slots) - 1
                                else:
                                    index = replacement_index(slots)
                                landing = install_walk(
                                    addr, slots, parents, index
                                )
                                if moves_buf:
                                    for k in range(0, len(moves_buf), 2):
                                        src = moves_buf[k]
                                        dst = moves_buf[k + 1]
                                        part_of[dst] = part_of[src]
                                        part_of[src] = NO_PART
                                        line_ts[dst] = line_ts[src]
                                        if rrpv is not None:
                                            rrpv[dst] = rrpv[src]
                                        if shared_code:
                                            touched_by[dst] = touched_by[src]
                                            touched_by[src] = 0
                            part_of[landing] = cid
                            if shared_code:
                                touched_by[landing] = 1 << cid
                            if plain_insert:
                                line_ts[landing] = current_ts[cid]
                            else:
                                set_inserted(landing, cid, addr)
                            size = actual[cid] + 1
                            actual[cid] = size
                            tick_count = access_counter[cid] + 1
                            if size != tick_size[cid]:
                                tick_size[cid] = size
                                period = size >> 4
                                tick_period[cid] = period if period > 0 else 1
                            if tick_count >= tick_period[cid]:
                                access_counter[cid] = 0
                                current_ts[cid] = (
                                    current_ts[cid] + 1
                                ) & _TS_MASK
                            else:
                                access_counter[cid] = tick_count
                        # MemoryModel.request, inlined.
                        ctrl = addr % num_controllers
                        f = free_at[ctrl]
                        start = f if f > t else t
                        free_at[ctrl] = start + service_cycles
                        queue = start - t
                        mem_queue += queue
                        mem_requests += 1
                        t += hit_latency + (queue + mem_latency)
                if not fin and count >= target:
                    fin = True
                    finished_at[cid] = t
                    instructions_at_finish[cid] = count
                    unfinished -= 1
                    if not unfinished:
                        reason = 3
                        break
                if t < second or (t == second and cid < scid):
                    now = t
                    continue
                break
            positions[cid] = pos
            instructions[cid] = count
            if reason == 0 or reason == 3:
                if heap is None:
                    times[cid] = t
                else:
                    heappush(heap, (t, cid))
                if reason == 0:
                    continue
            elif heap is None:
                times[cid] = now
            else:
                heappush(heap, (now, cid))
            break
        memory.requests = mem_requests
        memory.total_queue_cycles = mem_queue
        return now, unfinished, reason, cid

    # Every exit parks the in-flight core's cursor and time, so
    # the event loop (and the fast-forward layer) may stop the
    # kernel at any boundary and re-enter without state loss.
    kernel.parks_state = True
    return kernel
