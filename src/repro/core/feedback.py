"""Feedback-based aperture control helpers (Section 4.1, Fig 3a/3c).

The practical controller never computes apertures explicitly.  At
resize time it compiles the linear transfer function of Equation 7
into a small *demotion-thresholds lookup table*: entry ``i`` maps a
range of partition sizes to the number of demotions expected per
``c`` candidates seen.  At run time, the setpoint-adjustment logic
compares the demotions actually performed against the table entry for
the partition's current size -- pure negative feedback, no division.

The paper's Fig 3c example (target 1000 lines, 10 % slack, 4 entries,
``c`` = 256, ``A_max`` = 0.5) compiles to size bounds 1000 / 1034 /
1067 / 1101 with thresholds 32 / 64 / 96 / 128 -- reproduced exactly
by :func:`build_threshold_table` and pinned by a unit test.
"""

from __future__ import annotations


def build_threshold_table(
    target: int,
    a_max: float,
    slack: float,
    entries: int = 8,
    candidates_per_adjust: int = 256,
) -> list[tuple[int, int]]:
    """Compile Equation 7 into ``(size_lower_bound, demotions)`` rows.

    Row ``i`` (0-based) applies to sizes in ``[bound_i, bound_{i+1})``
    and demands ``round(c * a_max * (i + 1) / entries)`` demotions per
    ``c`` candidates.  The last row is open-ended, demanding the full
    ``A_max`` demotion rate.  A zero ``target`` (deleted partition)
    compiles to a single full-aperture row.
    """
    full = round(candidates_per_adjust * a_max)
    if target <= 0:
        return [(1, full)]
    table = []
    span = slack * target / (entries - 1)
    for i in range(entries):
        if i == 0:
            bound = target
        elif i == entries - 1:
            # Beyond the slack region: full A_max aperture.
            bound = int((1.0 + slack) * target) + 1
        else:
            bound = target + int(i * span) + 1
        demotions = round(candidates_per_adjust * a_max * (i + 1) / entries)
        table.append((bound, demotions))
    return table


def lookup_threshold(table: list[tuple[int, int]], size: int) -> int:
    """Demotion threshold for ``size``: the row with the largest bound
    not exceeding it, or 0 when the partition is at/below target."""
    threshold = 0
    for bound, demotions in table:
        if size >= bound:
            threshold = demotions
        else:
            break
    return threshold
