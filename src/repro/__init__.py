"""Reproduction of *Vantage: Scalable and Efficient Fine-Grain Cache
Partitioning* (Sanchez & Kozyrakis, ISCA 2011).

The package implements the full evaluation stack of the paper in pure
Python:

- ``repro.arrays`` -- cache arrays (set-associative, skew-associative,
  zcache, idealised random-candidates).
- ``repro.replacement`` -- set-order-free replacement policies
  (coarse-timestamp LRU, the RRIP family, LFU, random).
- ``repro.partitioning`` -- baseline and rival partitioning schemes
  (unpartitioned, way-partitioning, PIPP).
- ``repro.core`` -- the Vantage controller itself (the paper's
  contribution), in practical and analytical variants.
- ``repro.allocation`` -- allocation policies (UCP with UMON-DSS and the
  Lookahead algorithm, static policies).
- ``repro.sim`` -- a trace-driven CMP substrate (in-order cores, private
  L1s, shared L2, memory controller).
- ``repro.workloads`` -- synthetic SPEC-CPU2006-like applications and
  multiprogrammed mix construction.
- ``repro.analysis`` -- the paper's analytical models (Equations 1-9)
  and measurement helpers.
- ``repro.harness`` -- experiment runners used by the benchmarks.

The most common entry points are re-exported here; see README.md for a
quickstart.
"""

from repro.arrays import (
    RandomCandidatesArray,
    SetAssociativeArray,
    SkewAssociativeArray,
    ZCacheArray,
)
from repro.core import VantageCache, VantageConfig
from repro.partitioning import BaselineCache, PIPPCache, WayPartitionedCache

__all__ = [
    "BaselineCache",
    "PIPPCache",
    "RandomCandidatesArray",
    "SetAssociativeArray",
    "SkewAssociativeArray",
    "VantageCache",
    "VantageConfig",
    "WayPartitionedCache",
    "ZCacheArray",
]

__version__ = "1.0.0"
