"""Utility-based cache partitioning: the Lookahead algorithm (UCP [19]).

Given each partition's miss-versus-allocation curve, Lookahead
repeatedly grants capacity to the partition with the best *marginal
utility per unit*: for every partition it finds the window size ``k``
maximising ``(misses(a) - misses(a + k)) / k`` and gives the winner
its whole window.  Considering windows (not single units) lets the
algorithm see past plateaus in non-convex miss curves -- the reason
the UCP paper prefers it to greedy hill-climbing.

The same routine allocates ways for way-partitioning/PIPP and
256-point line-granularity budgets for Vantage; only the unit differs.
"""

from __future__ import annotations

from collections.abc import Sequence

try:  # pragma: no cover - exercised indirectly via lookahead_allocate
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def lookahead_allocate(
    curves: Sequence[Sequence[float]],
    total_units: int,
    min_units: int = 0,
) -> list[int]:
    """Partition ``total_units`` of capacity among len(curves) owners.

    ``curves[p][a]`` is partition ``p``'s miss count when allocated
    ``a`` units; each curve must have at least ``total_units + 1``
    points (use :func:`repro.allocation.umon.interpolate_curve` to
    resample).  Every partition receives at least ``min_units``.
    """
    n = len(curves)
    if n == 0:
        return []
    if min_units * n > total_units:
        raise ValueError("min_units * partitions exceeds total_units")
    for p, curve in enumerate(curves):
        if len(curve) < total_units + 1:
            raise ValueError(
                f"curve {p} has {len(curve)} points; needs {total_units + 1}"
            )
    alloc = [min_units] * n
    balance = total_units - min_units * n

    # The windowed scan is the allocator's hot loop (up to
    # ``total_units`` candidate windows per partition per round).  The
    # vectorized variant computes the identical IEEE expression
    # ``(misses(a) - misses(a+k)) / k`` -- true division, no
    # reciprocal-multiply -- and ``argmax`` returns the first maximum,
    # matching the scalar loop's strict ``>`` update, so allocations
    # are bitwise-identical on both paths (the kernel parity suites
    # assert as much).
    np_curves = ks = None
    if _np is not None:
        np_curves = [_np.asarray(curve, dtype=_np.float64) for curve in curves]
        ks = _np.arange(1.0, total_units + 1.0)

    def best_window(p: int, limit: int) -> tuple[float, int]:
        """Best marginal utility per unit for partition p, looking
        ahead at most `limit` units."""
        a = alloc[p]
        if np_curves is not None:
            curve = np_curves[p]
            r = (curve[a] - curve[a + 1 : a + limit + 1]) / ks[:limit]
            k = int(r.argmax())
            rate = float(r[k])
            if rate > 0.0:
                return rate, k + 1
            return 0.0, 0
        misses_now = curves[p][a]
        curve = curves[p]
        rate, k_best = 0.0, 0
        for k in range(1, limit + 1):
            r = (misses_now - curve[a + k]) / k
            if r > rate:
                rate, k_best = r, k
        return rate, k_best

    # Cache each partition's best window; it only changes when the
    # partition wins units or the remaining balance shrinks below the
    # cached window size.
    cached: list[tuple[float, int] | None] = [None] * n
    while balance > 0:
        best_part = -1
        best_rate = 0.0
        best_k = 1
        for p in range(n):
            limit = min(balance, total_units - alloc[p])
            if limit <= 0:
                continue
            entry = cached[p]
            if entry is None or entry[1] > limit:
                entry = best_window(p, limit)
                cached[p] = entry
            rate, k = entry
            if k and rate > best_rate:
                best_rate = rate
                best_part = p
                best_k = k
        if best_part < 0:
            # No partition gains anything: spread the remainder round
            # robin (UCP always assigns every unit).
            p = 0
            while balance > 0:
                if alloc[p] < total_units:
                    alloc[p] += 1
                    balance -= 1
                p = (p + 1) % n
            break
        alloc[best_part] += best_k
        balance -= best_k
        cached[best_part] = None
    return alloc


class UCPPolicy:
    """Epoch-driven UCP allocation over a set of UMONs.

    Parameters
    ----------
    monitors:
        One :class:`~repro.allocation.umon.UMonitor` per partition.
    total_units:
        Units to distribute (ways, or line-granularity points).
    min_units:
        Floor per partition (1 way for way-partitioning and PIPP,
        which cannot express empty partitions).
    granularity:
        Points to interpolate each UMON curve to before running
        Lookahead; ``None`` keeps way granularity.  The paper uses
        256 for Vantage.
    """

    def __init__(
        self,
        monitors,
        total_units: int,
        min_units: int = 1,
        granularity: int | None = None,
    ):
        self.monitors = list(monitors)
        self.total_units = total_units
        self.min_units = min_units
        self.granularity = granularity
        # Bound per-monitor sample filters for observe()'s early exit
        # (the monitors list never changes after construction).  Every
        # monitor implements the SampledMonitor interface, so there is
        # exactly one reporting path -- no capability duck-probing.
        self._sample_gets = [m.sample_filter() for m in self.monitors]
        self.observed = [0] * len(self.monitors)
        self.last_allocation: list[int] = []

    def observe(self, part: int, addr: int) -> None:
        # The vast majority of addresses fall outside the monitor's
        # sampled sets; its per-address cache lets us skip the call.
        if self._sample_gets[part](addr, -1) is None:
            return
        self.observed[part] += 1
        self.monitors[part].access(addr)

    def allocate(self) -> list[int]:
        """Compute this epoch's allocation and decay the monitors."""
        from repro.allocation.umon import interpolate_curve

        curves = []
        for mon in self.monitors:
            curve = mon.miss_curve()
            if self.granularity is not None:
                curve = interpolate_curve(curve, self.granularity)
            curves.append(curve)
        units = lookahead_allocate(
            curves,
            self.granularity if self.granularity is not None else self.total_units,
            self.min_units,
        )
        if self.granularity is not None:
            # Scale granularity points to actual units (lines).
            scale = self.total_units / self.granularity
            units = [int(u * scale) for u in units]
        for mon in self.monitors:
            mon.epoch_reset()
        self.last_allocation = list(units)
        return units

    def register_stats(self, group) -> None:
        """Register UCP and per-partition monitor telemetry."""
        group.stat(
            "observed",
            lambda: list(self.observed),
            "per-partition accesses forwarded to the monitors",
        )
        group.stat(
            "last_allocation",
            lambda: list(self.last_allocation),
            "most recent allocation, in units",
        )
        monitors = group.group("monitors", "per-partition utility monitors")
        for i, mon in enumerate(self.monitors):
            mon.register_stats(monitors.group(f"part_{i}"))


class ReuseAwareUCPPolicy(UCPPolicy):
    """UCP over private/shared split curves (shared-address mixes).

    Sampled accesses are classified by comparing the requesting
    partition against the address's *first-touch* partition: an access
    to a line another partition touched first is shared reuse.  Each
    :class:`~repro.allocation.umon.ReuseUMonitor` tracks its shared
    subset, and Lookahead runs over the per-partition private curves
    plus one pooled shared pseudo-curve; the pseudo-partition's units
    are then folded back proportionally to each partition's shared
    observation volume, so capacity that serves shared lines is paid
    for by the partitions that reuse them instead of inflating one
    owner's private budget.

    All monitors must share one set-index hash seed: the first-touch
    table only sees sampled addresses, and with per-partition hash
    seeds each partition would sample (and classify) a different
    address subset.  Overriding ``observe`` also opts out of the batch
    kernels' exploded sample fast path automatically -- the kernels
    call this bound method, so the classification order is identical
    on every execution path.
    """

    #: First-touch table bound; at the cap the table is cleared
    #: wholesale (like the UMON hash memo, keeping behaviour a pure
    #: function of the access sequence).
    FIRST_TOUCH_CAP = 1 << 16

    def __init__(
        self,
        monitors,
        total_units: int,
        min_units: int = 1,
        granularity: int | None = None,
    ):
        super().__init__(monitors, total_units, min_units, granularity)
        seeds = {m._hash.seed for m in self.monitors}
        if len(seeds) > 1:
            raise ValueError(
                "reuse-aware UCP requires all monitors to share one "
                "set-index hash seed (their sampled sets must coincide)"
            )
        self._first_touch: dict[int, int] = {}
        self.shared_observed = [0] * len(self.monitors)

    def observe(self, part: int, addr: int) -> None:
        if self._sample_gets[part](addr, -1) is None:
            return
        self.observed[part] += 1
        ft = self._first_touch
        if len(ft) >= self.FIRST_TOUCH_CAP:
            ft.clear()
        owner = ft.setdefault(addr, part)
        shared = owner != part
        if shared:
            self.shared_observed[part] += 1
        self.monitors[part].access(addr, shared=shared)

    def allocate(self) -> list[int]:
        from repro.allocation.umon import interpolate_curve

        privates = []
        shareds = []
        for mon in self.monitors:
            private = mon.private_curve()
            shared = mon.shared_curve()
            if self.granularity is not None:
                private = interpolate_curve(private, self.granularity)
                shared = interpolate_curve(shared, self.granularity)
            privates.append(private)
            shareds.append(shared)
        pooled = [sum(points) for points in zip(*shareds)]
        total = (
            self.granularity if self.granularity is not None else self.total_units
        )
        units = lookahead_allocate(privates + [pooled], total, self.min_units)
        shared_units = units.pop()
        # Fold the shared pseudo-partition's units back onto the real
        # partitions in proportion to their shared observation volume
        # (largest remainder; index order breaks ties deterministically).
        if shared_units:
            weights = [m.shared_accesses for m in self.monitors]
            wsum = sum(weights)
            if wsum:
                quotas = [shared_units * w / wsum for w in weights]
                grants = [int(q) for q in quotas]
                leftover = shared_units - sum(grants)
                order = sorted(
                    range(len(grants)),
                    key=lambda i: (grants[i] - quotas[i], i),
                )
                for i in order[:leftover]:
                    grants[i] += 1
                units = [u + g for u, g in zip(units, grants)]
            else:
                for i in range(shared_units):
                    units[i % len(units)] += 1
        if self.granularity is not None:
            scale = self.total_units / self.granularity
            units = [int(u * scale) for u in units]
        for mon in self.monitors:
            mon.epoch_reset()
        self.last_allocation = list(units)
        return units

    def register_stats(self, group) -> None:
        super().register_stats(group)
        group.stat(
            "shared_observed",
            lambda: list(self.shared_observed),
            "per-partition sampled accesses classified as shared reuse",
        )
        group.stat(
            "first_touch_entries",
            lambda: len(self._first_touch),
            "addresses currently classified in the first-touch table",
        )
