"""RRIP-chain UMON (Section 6.2).

For Vantage-DRRIP the paper modifies UMON-DSS in two ways: the shadow
tags maintain *RRIP chains* instead of LRU chains (lines ordered by
their re-reference prediction values), and the sampled sets are split
in half -- one half simulating SRRIP, the other BRRIP -- so that at
every resize each partition can both report a miss curve consistent
with its RRIP behaviour and pick whichever insertion policy performed
better in the last interval.

``RRIPMonitor`` exposes the same ``access`` / ``miss_curve`` /
``epoch_reset`` surface as :class:`~repro.allocation.umon.UMonitor`,
plus :meth:`best_policy`.
"""

from __future__ import annotations

import random

from repro.allocation.umon import _HASH_MEMO_CAP, pooled_hash_memo
from repro.arrays.hashing import H3Hash
from repro.replacement.rrip import BRRIP_EPSILON, RRPV_MAX
from repro.telemetry import SampledMonitor


class _RRIPStack:
    """One shadow set: lines ordered as an RRIP chain.

    The chain keeps (addr, rrpv) pairs sorted by eviction preference:
    highest RRPV first (evicted first).  Hit position for utility
    accounting is the line's distance from the eviction end, i.e. a
    line that survives only with w ways allocated counts as a
    position-(w-1) hit, mirroring the LRU-stack formulation.
    """

    def __init__(self, ways: int, brrip: bool, rng: random.Random):
        self.ways = ways
        self.brrip = brrip
        self.rng = rng
        self.lines: list[list] = []  # [addr, rrpv], eviction end last

    def access(self, addr: int) -> int | None:
        """Returns the hit's stack position (0 = safest), or None."""
        for i, entry in enumerate(self.lines):
            if entry[0] == addr:
                entry[1] = 0
                position = len(self.lines) - 1 - i
                self._reorder()
                return position
        # Miss: insert with the policy's RRPV.
        if self.brrip and self.rng.random() >= BRRIP_EPSILON:
            rrpv = RRPV_MAX
        else:
            rrpv = RRPV_MAX - 1
        if len(self.lines) >= self.ways:
            self._evict()
        self.lines.append([addr, rrpv])
        self._reorder()
        return None

    def _evict(self) -> None:
        # Evict the max-RRPV line, aging if necessary (RRIP semantics).
        while True:
            for i, entry in enumerate(self.lines):
                if entry[1] >= RRPV_MAX:
                    del self.lines[i]
                    return
            for entry in self.lines:
                entry[1] += 1

    def _reorder(self) -> None:
        # Stable sort: safest (lowest RRPV) first, eviction end last.
        self.lines.sort(key=lambda e: e[1])


class RRIPMonitor(SampledMonitor):
    """Per-core utility monitor with RRIP shadow chains and
    SRRIP-vs-BRRIP duelling halves."""

    def __init__(
        self,
        num_ways: int,
        model_sets: int,
        sampled_sets: int = 64,
        seed: int = 0,
    ):
        if num_ways <= 0:
            raise ValueError("num_ways must be positive")
        if model_sets <= 0 or model_sets & (model_sets - 1):
            raise ValueError("model_sets must be a power of two")
        sampled_sets = min(sampled_sets, model_sets)
        if sampled_sets < 2 or model_sets % sampled_sets:
            raise ValueError("sampled_sets must divide model_sets and be >= 2")
        self.num_ways = num_ways
        self.model_sets = model_sets
        self.sampled_sets = sampled_sets
        self._period = model_sets // sampled_sets
        self._hash = H3Hash(model_sets, seed)
        self._rng = random.Random(seed + 1)
        self._stacks: dict[int, _RRIPStack] = {}
        # addr -> sampled set index (None outside the sampled sets);
        # the SampledMonitor contract, shared with UMonitor, which
        # lets UCP skip non-sampled addresses without a call.
        self._sample_cache: dict[int, int | None] = {}
        self._hash_memo = pooled_hash_memo(model_sets, seed)
        # Separate counters for the SRRIP and BRRIP halves.
        self.hits = {"srrip": [0] * num_ways, "brrip": [0] * num_ways}
        self.accesses = {"srrip": 0, "brrip": 0}

    def _half(self, set_index: int) -> str:
        return "srrip" if (set_index // self._period) % 2 == 0 else "brrip"

    def access(self, addr: int) -> None:
        set_index = self._sample_cache.get(addr, -1)
        if set_index == -1:
            # Shared pure-hash memo; the per-monitor _sample_cache
            # (the decided_addresses stat) is still populated below.
            memo = self._hash_memo
            set_index = memo.get(addr, -1)
            if set_index == -1:
                if len(memo) >= _HASH_MEMO_CAP:
                    memo.clear()
                set_index = self._hash(addr)
                memo[addr] = set_index
            if set_index % self._period:
                set_index = None
            self._sample_cache[addr] = set_index
        if set_index is None:
            return
        half = self._half(set_index)
        self.accesses[half] += 1
        stack = self._stacks.get(set_index)
        if stack is None:
            stack = _RRIPStack(self.num_ways, brrip=(half == "brrip"), rng=self._rng)
            self._stacks[set_index] = stack
        position = stack.access(addr)
        if position is not None and position < self.num_ways:
            self.hits[half][position] += 1

    def best_policy(self) -> str:
        """The insertion policy with the lower miss rate this interval."""
        rates = {}
        for half in ("srrip", "brrip"):
            acc = self.accesses[half]
            if acc == 0:
                rates[half] = 1.0
            else:
                rates[half] = (acc - sum(self.hits[half])) / acc
        return "srrip" if rates["srrip"] <= rates["brrip"] else "brrip"

    def miss_curve(self) -> list[float]:
        """Combined miss curve over both halves (for Lookahead)."""
        total = float(self.accesses["srrip"] + self.accesses["brrip"])
        curve = [total]
        running = total
        for w in range(self.num_ways):
            running -= self.hits["srrip"][w] + self.hits["brrip"][w]
            curve.append(running)
        return curve

    def epoch_reset(self) -> None:
        for half in ("srrip", "brrip"):
            self.accesses[half] //= 2
            self.hits[half] = [h // 2 for h in self.hits[half]]

    def register_stats(self, group) -> None:
        super().register_stats(group)
        group.stat(
            "sampled_accesses",
            lambda: dict(self.accesses),
            "accesses that fell in each duelling half (decayed)",
        )
        group.stat(
            "best_policy",
            self.best_policy,
            "insertion policy with the lower miss rate this interval",
        )
