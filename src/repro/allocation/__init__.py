"""Allocation policies: decide partition sizes (schemes enforce them)."""

from repro.allocation.static import EqualSharePolicy, StaticPolicy
from repro.allocation.ucp import (
    ReuseAwareUCPPolicy,
    UCPPolicy,
    lookahead_allocate,
)
from repro.allocation.umon import ReuseUMonitor, UMonitor, interpolate_curve
from repro.allocation.umon_rrip import RRIPMonitor

__all__ = [
    "EqualSharePolicy",
    "RRIPMonitor",
    "ReuseAwareUCPPolicy",
    "ReuseUMonitor",
    "StaticPolicy",
    "UCPPolicy",
    "UMonitor",
    "interpolate_curve",
    "lookahead_allocate",
]
