"""Allocation policies: decide partition sizes (schemes enforce them)."""

from repro.allocation.static import EqualSharePolicy, StaticPolicy
from repro.allocation.ucp import UCPPolicy, lookahead_allocate
from repro.allocation.umon import UMonitor, interpolate_curve
from repro.allocation.umon_rrip import RRIPMonitor

__all__ = [
    "EqualSharePolicy",
    "RRIPMonitor",
    "StaticPolicy",
    "UCPPolicy",
    "UMonitor",
    "interpolate_curve",
    "lookahead_allocate",
]
