"""UMON-DSS: utility monitors with dynamic set sampling (UCP [19]).

Each core gets a small shadow tag array that mimics how *that core
alone* would use the cache: ``num_ways``-deep true-LRU stacks for a
sampled subset of sets, with one hit counter per LRU stack position.
Position-``i`` hits are hits the core would get only if it were
allocated at least ``i + 1`` ways, so the counters directly yield the
core's miss-versus-allocation *utility curve*, which the Lookahead
algorithm consumes.

Counters are halved at every allocation epoch, giving an exponential
moving average that adapts to phase changes (as in the UCP paper).
"""

from __future__ import annotations

from repro.arrays.hashing import H3Hash
from repro.telemetry import SampledMonitor

try:  # pragma: no cover - exercised via the gated bulk path
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Below this many fresh addresses the numpy round-trip costs more
#: than hashing them one at a time.
_PRIME_MIN_BULK = 32

#: Cross-instance pool of set-index hash memos, keyed by the full
#: identity of the hash ``(model_sets, seed)``.  The H3 set index is a
#: pure function of that identity and the address, so monitors built
#: with the same geometry and seed -- every round of a benchmark,
#: every mix of a sweep -- share one memo and skip re-hashing
#: first-touch addresses the process has already classified.  Only the
#: raw hash is shared: the per-monitor ``_sample_cache`` (whose size
#: is the ``decided_addresses`` stat) is untouched, so stats stay
#: process-history independent.  The registry is bounded; at the cap
#: new identities get private memos.
_HASH_MEMO_POOL: dict[tuple[int, int], dict[int, int]] = {}
_POOL_KEYS_MAX = 16
_HASH_MEMO_CAP = 1 << 18


def pooled_hash_memo(model_sets: int, seed: int) -> dict[int, int]:
    """Shared addr -> H3 set-index memo for hash identity
    ``(model_sets, seed)`` (see ``_HASH_MEMO_POOL``)."""
    memo = _HASH_MEMO_POOL.get((model_sets, seed))
    if memo is None:
        memo = {}
        if len(_HASH_MEMO_POOL) < _POOL_KEYS_MAX:
            _HASH_MEMO_POOL[(model_sets, seed)] = memo
    return memo


class UMonitor(SampledMonitor):
    """Per-core utility monitor (UMON-DSS).

    Parameters
    ----------
    num_ways:
        Associativity being modelled; the utility curve has
        ``num_ways + 1`` points (0..num_ways ways).
    model_sets:
        Sets of the modelled cache (used to compute the sampling
        ratio and the set-index hash width).  Must be a power of two.
    sampled_sets:
        How many of those sets the monitor actually tracks (64 in the
        paper).
    """

    def __init__(
        self,
        num_ways: int,
        model_sets: int,
        sampled_sets: int = 64,
        seed: int = 0,
    ):
        if num_ways <= 0:
            raise ValueError("num_ways must be positive")
        if model_sets <= 0 or model_sets & (model_sets - 1):
            raise ValueError("model_sets must be a power of two")
        sampled_sets = min(sampled_sets, model_sets)
        if sampled_sets <= 0 or model_sets % sampled_sets:
            raise ValueError("sampled_sets must divide model_sets")
        self.num_ways = num_ways
        self.model_sets = model_sets
        self.sampled_sets = sampled_sets
        self._period = model_sets // sampled_sets
        self._hash = H3Hash(model_sets, seed)
        # One LRU stack (list of addrs, MRU first) per sampled set.
        self._stacks: dict[int, list[int]] = {}
        # addr -> sampled set index, or None for the (vast) majority
        # of addresses that fall outside the sampled sets.  The hash
        # and the sampling decision are static per address, so this
        # avoids re-hashing every access.
        self._sample_cache: dict[int, int | None] = {}
        self._hash_memo = pooled_hash_memo(model_sets, seed)
        self.hits = [0] * num_ways
        self.accesses = 0

    def access(self, addr: int) -> None:
        """Observe one of the core's L2 accesses."""
        set_index = self._sample_cache.get(addr, -1)
        if set_index == -1:
            memo = self._hash_memo
            set_index = memo.get(addr, -1)
            if set_index == -1:
                if len(memo) >= _HASH_MEMO_CAP:
                    memo.clear()
                set_index = self._hash(addr)
                memo[addr] = set_index
            if set_index % self._period:
                set_index = None
            self._sample_cache[addr] = set_index
        if set_index is None:
            return
        self.accesses += 1
        stack = self._stacks.get(set_index)
        if stack is None:
            stack = []
            self._stacks[set_index] = stack
        try:
            position = stack.index(addr)
        except ValueError:
            stack.insert(0, addr)
            if len(stack) > self.num_ways:
                stack.pop()
            return
        self.hits[position] += 1
        del stack[position]
        stack.insert(0, addr)

    def prime_sample_cache(self, addrs) -> None:
        """Bulk-classify ``addrs`` into the sample cache.

        Pure cache warming for the fast-forward replay walk: computes
        the same addr -> sampled-set-index-or-``None`` entries
        :meth:`access` derives one address at a time (H3 evaluated
        vectorized over the span's fresh addresses), without touching
        any counter or LRU stack.  After priming, the
        :meth:`~repro.telemetry.SampledMonitor.sample_filter` probe is
        definitive for every span address, so the replay only pays a
        real :meth:`access` call for the minority of accesses that
        actually fall in sampled sets -- instead of one
        classification-only call per first-touch address.
        """
        cache = self._sample_cache
        fresh = [a for a in set(addrs) if a not in cache]
        if not fresh:
            return
        period = self._period
        if _np is None or len(fresh) < _PRIME_MIN_BULK:
            hash_ = self._hash
            for a in fresh:
                idx = hash_(a)
                cache[a] = None if idx % period else idx
            return
        keys = _np.asarray(fresh, dtype=_np.int64)
        for a, idx in zip(fresh, self._hash.bulk(keys).tolist()):
            cache[a] = None if idx % period else idx

    def miss_curve(self) -> list[float]:
        """Misses the core would suffer with 0..num_ways allocated ways
        (in sampled accesses; the common scale cancels in Lookahead)."""
        curve = [float(self.accesses)]
        running = float(self.accesses)
        for h in self.hits:
            running -= h
            curve.append(running)
        return curve

    def epoch_reset(self) -> None:
        """Halve the counters (exponential decay across epochs)."""
        self.accesses //= 2
        self.hits = [h // 2 for h in self.hits]

    def model_advance(self, accesses: int, position_hits: list[int]) -> None:
        """Apply modelled counter updates from a fast-forwarded span.

        The fast-forward layer (``repro.sim.fastfwd``) skips simulating
        converged epoch tails, so the monitor never sees those
        addresses; it instead extrapolates the converged window's
        sampled-hit profile over the skipped accesses and deposits the
        totals here, keeping the miss curve Lookahead reads at the next
        epoch consistent with the modelled counts.
        """
        if accesses < 0:
            raise ValueError("accesses must be >= 0")
        self.accesses += accesses
        hits = self.hits
        for i, h in enumerate(position_hits[: len(hits)]):
            hits[i] += h

    def register_stats(self, group) -> None:
        super().register_stats(group)
        group.stat(
            "sampled_accesses",
            lambda: self.accesses,
            "accesses that fell in the sampled sets (decayed)",
        )
        group.stat(
            "position_hits",
            lambda: list(self.hits),
            "per-LRU-stack-position hit counters (decayed)",
        )


class ReuseUMonitor(UMonitor):
    """UMON that splits its utility curve into private and shared reuse.

    On shared-address mixes part of a core's hits come from lines other
    cores keep warm; allocating that core private capacity for them is
    wasted.  The caller classifies each sampled access (first-touch
    core vs requester, see ``ReuseAwareUCPPolicy.observe``) and the
    monitor tracks the shared subset alongside the parent totals:
    ``shared_curve()`` is the miss curve of the shared accesses alone
    and ``private_curve()`` the pointwise remainder, so Lookahead can
    weigh private capacity against one pooled shared budget.
    """

    def __init__(
        self,
        num_ways: int,
        model_sets: int,
        sampled_sets: int = 64,
        seed: int = 0,
    ):
        super().__init__(num_ways, model_sets, sampled_sets, seed)
        self.shared_accesses = 0
        self.shared_hits = [0] * num_ways

    def access(self, addr: int, shared: bool = False) -> None:
        set_index = self._sample_cache.get(addr, -1)
        if set_index == -1:
            memo = self._hash_memo
            set_index = memo.get(addr, -1)
            if set_index == -1:
                if len(memo) >= _HASH_MEMO_CAP:
                    memo.clear()
                set_index = self._hash(addr)
                memo[addr] = set_index
            if set_index % self._period:
                set_index = None
            self._sample_cache[addr] = set_index
        if set_index is None:
            return
        self.accesses += 1
        if shared:
            self.shared_accesses += 1
        stack = self._stacks.get(set_index)
        if stack is None:
            stack = []
            self._stacks[set_index] = stack
        try:
            position = stack.index(addr)
        except ValueError:
            stack.insert(0, addr)
            if len(stack) > self.num_ways:
                stack.pop()
            return
        self.hits[position] += 1
        if shared:
            self.shared_hits[position] += 1
        del stack[position]
        stack.insert(0, addr)

    def shared_curve(self) -> list[float]:
        """Miss curve of the shared-classified accesses alone."""
        curve = [float(self.shared_accesses)]
        running = float(self.shared_accesses)
        for h in self.shared_hits:
            running -= h
            curve.append(running)
        return curve

    def private_curve(self) -> list[float]:
        """Miss curve of the private accesses: total minus shared."""
        return [
            t - s for t, s in zip(self.miss_curve(), self.shared_curve())
        ]

    def epoch_reset(self) -> None:
        super().epoch_reset()
        self.shared_accesses //= 2
        self.shared_hits = [h // 2 for h in self.shared_hits]

    def register_stats(self, group) -> None:
        super().register_stats(group)
        group.stat(
            "shared_accesses",
            lambda: self.shared_accesses,
            "sampled accesses classified as shared reuse (decayed)",
        )
        group.stat(
            "shared_position_hits",
            lambda: list(self.shared_hits),
            "per-position hit counters of the shared subset (decayed)",
        )


def interpolate_curve(curve: list[float], num_points: int) -> list[float]:
    """Linearly resample a miss curve to ``num_points + 1`` points.

    The paper feeds Vantage 256-point curves interpolated from the
    way-granularity UMON output so Lookahead can allocate at line
    granularity.  Point ``i`` of the result corresponds to a capacity
    of ``i / num_points`` of the monitored cache.
    """
    if len(curve) < 2:
        raise ValueError("curve needs at least two points")
    last = len(curve) - 1
    out = []
    for i in range(num_points + 1):
        x = i * last / num_points
        lo = int(x)
        if lo >= last:
            out.append(curve[last])
            continue
        frac = x - lo
        out.append(curve[lo] * (1.0 - frac) + curve[lo + 1] * frac)
    return out
