"""Static allocation policies.

Not every use of partitioning is utility-driven: QoS contracts, local
stores and security isolation (Section 1) pin capacities explicitly.
These policies provide that, behind the same ``allocate()`` interface
as :class:`~repro.allocation.ucp.UCPPolicy` so the simulation harness
can drive any of them.
"""

from __future__ import annotations

from collections.abc import Sequence


class StaticPolicy:
    """Returns a fixed allocation vector every epoch."""

    def __init__(self, units: Sequence[int]):
        self.units = list(units)

    def observe(self, part: int, addr: int) -> None:
        pass

    def allocate(self) -> list[int]:
        return list(self.units)


class EqualSharePolicy:
    """Splits ``total_units`` evenly among ``num_partitions``."""

    def __init__(self, num_partitions: int, total_units: int):
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions
        self.total_units = total_units

    def observe(self, part: int, addr: int) -> None:
        pass

    def allocate(self) -> list[int]:
        base, extra = divmod(self.total_units, self.num_partitions)
        return [base + (1 if p < extra else 0) for p in range(self.num_partitions)]
