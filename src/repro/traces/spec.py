"""Trace specifications: picklable descriptions of one core's stream.

A :class:`TraceSpec` captures everything that determines a synthetic
address stream -- generator kind, its numeric parameters, the address
base and the seed -- without holding any generator state.  That makes
the *same* stream nameable across processes and runs, which is what
lets the trace store (:mod:`repro.traces.store`) compile it once and
replay it everywhere.

A spec is itself callable and returns a fresh generator, so it is a
drop-in trace factory for :class:`~repro.sim.system.CMPSystem`: the
generator path (and the reference event loop) call ``spec()`` exactly
as they called the old ``functools.partial`` factories, while the
optimized loop recognises the spec and switches to the chunk cursor.

Cache keys fold in a *generator-source fingerprint* (the digest of the
generator functions a kind executes), mirroring how the scheme
registry's builder fingerprints invalidate the results cache: editing
``generators.py`` invalidates exactly the chunk files whose streams it
changes.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import dataclass
from functools import partial

#: Bump when the chunk binary layout changes (invalidates every chunk).
TRACE_FORMAT_VERSION = 1

_fingerprint_cache: dict[str, str] = {}


def _generators():
    # Imported lazily: workloads.apps builds TraceSpecs, so a
    # module-level import here would be circular.
    from repro.workloads import generators

    return generators


def _kind_sources(kind: str) -> tuple:
    """Generator functions whose source defines ``kind``'s stream."""
    gen = _generators()
    # Every private generator a shared wrapper might wrap is folded
    # into the wrapper's fingerprint (conservative: editing any
    # private shape invalidates the shared chunks too, which is cheap
    # and always safe).
    private = (gen.zipf_stream, gen.loop_stream, gen.scan_stream, gen.phased_stream)
    sources = {
        "zipf": (gen.zipf_stream,),
        "loop": (gen.loop_stream,),
        "scan": (gen.scan_stream, gen.loop_stream),
        "phased-loop": (gen.phased_stream, gen.loop_stream),
        "pc-shared": (gen.producer_consumer_stream, gen._shared_rng) + private,
        "table-shared": (gen.shared_table_stream, gen._shared_rng) + private,
        "migratory-shared": (gen.migratory_stream, gen._shared_rng) + private,
    }
    try:
        return sources[kind]
    except KeyError:
        raise ValueError(
            f"unknown trace kind {kind!r}; known: {', '.join(sorted(sources))}"
        ) from None


def generator_fingerprint(kind: str) -> str:
    """Digest of the generator sources behind ``kind``.

    Best-effort like the registry fingerprints: if source is
    unavailable (frozen interpreter), the repr stands in.
    """
    cached = _fingerprint_cache.get(kind)
    if cached is not None:
        return cached
    parts = []
    for fn in _kind_sources(kind):
        try:
            parts.append(inspect.getsource(fn))
        except (OSError, TypeError):
            parts.append(repr(fn))
    digest = hashlib.sha256("\x1f".join(parts).encode()).hexdigest()
    _fingerprint_cache[kind] = digest
    return digest


@dataclass(frozen=True)
class TraceSpec:
    """One core's synthetic stream, fully described by values.

    ``params`` is the kind-specific parameter tuple:

    - ``zipf``: ``(ws_lines, alpha, mean_gap)``
    - ``loop`` / ``scan``: ``(ws_lines, mean_gap)``
    - ``phased-loop``: ``(ws_lines, ws2_lines, mean_gap, phase_accesses)``
    - ``pc-shared`` / ``table-shared`` / ``migratory-shared``:
      ``(private_kind, private_params, shared_base, shared_lines,
      fraction, extra, core, num_cores, shared_seed)`` where ``extra``
      is the table's alpha / the migratory window / 0.
    """

    name: str
    kind: str
    params: tuple
    base: int
    seed: int

    def generator(self):
        """A fresh ``(gap, addr)`` iterator -- bitwise-identical to the
        stream the pre-chunk ``AppSpec.trace_factory`` produced."""
        gen = _generators()
        kind = self.kind
        params = self.params
        if kind == "zipf":
            ws_lines, alpha, mean_gap = params
            return gen.zipf_stream(ws_lines, alpha, mean_gap, self.base, self.seed)
        if kind == "loop":
            ws_lines, mean_gap = params
            return gen.loop_stream(ws_lines, mean_gap, self.base, self.seed)
        if kind == "scan":
            ws_lines, mean_gap = params
            return gen.scan_stream(ws_lines, mean_gap, self.base, self.seed)
        if kind == "phased-loop":
            ws_lines, ws2_lines, mean_gap, phase_accesses = params
            return gen.phased_stream(
                partial(gen.loop_stream, ws_lines, mean_gap),
                partial(gen.loop_stream, ws2_lines, mean_gap),
                phase_accesses,
                self.base,
                self.seed,
            )
        if kind in ("pc-shared", "table-shared", "migratory-shared"):
            (
                private_kind,
                private_params,
                shared_base,
                shared_lines,
                fraction,
                extra,
                core,
                num_cores,
                shared_seed,
            ) = params
            private = TraceSpec(
                name=self.name,
                kind=private_kind,
                params=tuple(private_params),
                base=self.base,
                seed=self.seed,
            ).generator()
            if kind == "pc-shared":
                return gen.producer_consumer_stream(
                    private, shared_base, shared_lines, fraction,
                    core, num_cores, shared_seed, self.seed,
                )
            if kind == "table-shared":
                return gen.shared_table_stream(
                    private, shared_base, shared_lines, fraction, extra,
                    core, num_cores, shared_seed, self.seed,
                )
            return gen.migratory_stream(
                private, shared_base, shared_lines, fraction, extra,
                core, num_cores, shared_seed, self.seed,
            )
        raise ValueError(f"unknown trace kind {kind!r}")

    def __call__(self):
        return self.generator()

    def key(self, chunk_pairs: int) -> str:
        """Content hash naming this stream's chunk sequence in the
        trace store (app name + params + base + seed + chunking +
        generator-source fingerprint)."""
        payload = {
            "version": TRACE_FORMAT_VERSION,
            "name": self.name,
            "kind": self.kind,
            "params": list(self.params),
            "base": self.base,
            "seed": self.seed,
            "chunk_pairs": chunk_pairs,
            "generators": generator_fingerprint(self.kind),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def describe(self) -> dict:
        """Human-readable metadata persisted next to on-disk chunks."""
        return {
            "name": self.name,
            "kind": self.kind,
            "params": list(self.params),
            "base": self.base,
            "seed": self.seed,
        }
