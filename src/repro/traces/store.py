"""Keyed trace store: in-process LRU over compiled chunks, with an
optional on-disk layer shared across jobs and processes.

Chunks are keyed by ``(TraceSpec.key(chunk_pairs), chunk_index)`` --
that is, by app name + parameters + address base + seed + chunking +
the generator-source fingerprint -- so every simulation of the same
mix (any scheme, any process) replays the same compiled buffers
instead of re-running the Python generators item by item.

Layers, cheapest first:

1. **memory**: an LRU of at most ``max_chunks`` buffers (default 128
   chunks of 64K pairs = 128 MiB);
2. **disk**: enabled when ``REPRO_TRACE_CACHE`` names a directory
   (compact ``array('q').tofile`` binaries, native byte order, one
   sub-directory per trace with a ``meta.json`` sidecar for
   ``repro traces --list``);
3. **compile**: pull pairs from the spec's generator.  Each trace
   keeps a *producer* (its live generator plus the next chunk index)
   so sequential requests never regenerate the prefix; a request
   behind an evicted producer restarts the generator from item zero,
   which is always correct because the streams are deterministic.

Environment knobs:

- ``REPRO_TRACE_CACHE``: on-disk chunk directory (unset: memory only).
- ``REPRO_TRACE_CHUNK_PAIRS``: pairs per chunk (default 65536).
- ``REPRO_TRACE_MEM_CHUNKS``: in-memory LRU capacity in chunks
  (default 128).
"""

from __future__ import annotations

import json
import os
import tempfile
from array import array
from collections import OrderedDict
from pathlib import Path

from repro.traces.chunks import DEFAULT_CHUNK_PAIRS, compile_chunk
from repro.traces.spec import TraceSpec

#: Producers kept alive per store (live generators are cheap; this
#: only bounds pathological sweeps over thousands of distinct traces).
MAX_PRODUCERS = 128

#: Cap on the spec->key and meta-written memos.  A batch sweep never
#: notices, but the experiment daemon's workers are resident for
#: days, and an unbounded memo over every trace ever simulated is a
#: slow leak.  Flushed wholesale (like the H3 position memos): the
#: recompute cost is one content hash / one ``meta.json`` stat.
MAX_KEY_MEMO = 4096

_DEFAULT_MEM_CHUNKS = 128


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


class TraceStore:
    """LRU + disk cache of compiled trace chunks."""

    def __init__(
        self, chunk_pairs: int | None = None, max_chunks: int | None = None
    ):
        self.chunk_pairs = chunk_pairs or _env_int(
            "REPRO_TRACE_CHUNK_PAIRS", DEFAULT_CHUNK_PAIRS
        )
        if self.chunk_pairs < 1:
            raise ValueError("chunk_pairs must be positive")
        self.max_chunks = max_chunks or _env_int(
            "REPRO_TRACE_MEM_CHUNKS", _DEFAULT_MEM_CHUNKS
        )
        self.max_list_chunks = _env_int("REPRO_TRACE_LIST_CHUNKS", 32)
        self._chunks: OrderedDict[tuple[str, int], array] = OrderedDict()
        self._lists: OrderedDict[tuple[str, int], list] = OrderedDict()
        self._producers: OrderedDict[str, tuple] = OrderedDict()
        self._keys: dict[TraceSpec, str] = {}
        self._meta_written: set[str] = set()
        # Telemetry counters (pulled by the harness stats tree).
        self.mem_hits = 0
        self.disk_hits = 0
        self.compiles = 0
        self.evictions = 0
        self.bytes_compiled = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- keys and layout ------------------------------------------------

    def key_of(self, spec: TraceSpec) -> str:
        """``spec``'s store key (memoised; specs are frozen)."""
        key = self._keys.get(spec)
        if key is None:
            key = spec.key(self.chunk_pairs)
            if len(self._keys) >= MAX_KEY_MEMO:
                self._keys.clear()
            self._keys[spec] = key
        return key

    @staticmethod
    def disk_dir() -> Path | None:
        """The on-disk layer's directory, or ``None`` when disabled.

        Read from the environment on every call so tests (and the
        harness) can repoint or disable the layer without rebuilding
        stores.
        """
        override = os.environ.get("REPRO_TRACE_CACHE")
        return Path(override) if override else None

    def _trace_dir(self, key: str) -> Path | None:
        root = self.disk_dir()
        return root / key[:2] / key if root is not None else None

    def _chunk_path(self, key: str, index: int) -> Path | None:
        trace_dir = self._trace_dir(key)
        return trace_dir / f"{index:08d}.i64" if trace_dir is not None else None

    # -- layered lookup -------------------------------------------------

    def get_chunk(self, spec: TraceSpec, index: int) -> array:
        """The ``index``-th chunk of ``spec``'s stream (memory, then
        disk, then compile)."""
        if index < 0:
            raise ValueError("chunk index must be non-negative")
        key = self.key_of(spec)
        mem_key = (key, index)
        chunk = self._chunks.get(mem_key)
        if chunk is not None:
            self.mem_hits += 1
            self._chunks.move_to_end(mem_key)
            return chunk
        chunk = self._load_disk(key, index)
        if chunk is not None:
            self.disk_hits += 1
            self._remember(mem_key, chunk)
            return chunk
        return self._compile_through(spec, key, index)

    def chunk_list(self, spec: TraceSpec, index: int) -> list[int]:
        """The chunk as a plain list (the event loop's cursor format:
        list indexing is the cheapest per-event read Python offers).

        List conversions are memoised in their own small LRU
        (``REPRO_TRACE_LIST_CHUNKS``, default 32 -- the hot set of one
        running simulation) so a sweep re-simulating the same mix pays
        ``tolist`` once, not once per scheme job.
        """
        key = (self.key_of(spec), index)
        lists = self._lists
        chunk = lists.get(key)
        if chunk is not None:
            lists.move_to_end(key)
            return chunk
        chunk = self.get_chunk(spec, index).tolist()
        lists[key] = chunk
        while len(lists) > self.max_list_chunks:
            lists.popitem(last=False)
        return chunk

    # -- memory layer ---------------------------------------------------

    def _remember(self, mem_key: tuple[str, int], chunk: array) -> None:
        chunks = self._chunks
        chunks[mem_key] = chunk
        chunks.move_to_end(mem_key)
        while len(chunks) > self.max_chunks:
            chunks.popitem(last=False)
            self.evictions += 1

    # -- disk layer -----------------------------------------------------

    def _load_disk(self, key: str, index: int) -> array | None:
        path = self._chunk_path(key, index)
        if path is None:
            return None
        expected = 2 * self.chunk_pairs
        buf = array("q")
        try:
            with path.open("rb") as fh:
                buf.fromfile(fh, expected)
        except FileNotFoundError:
            return None
        except (OSError, EOFError, ValueError):
            # Torn write or truncated file (``fromfile`` raises
            # ``ValueError`` on a partial trailing item): drop it.
            path.unlink(missing_ok=True)
            return None
        self.bytes_read += buf.itemsize * expected
        return buf

    def _store_disk(self, spec: TraceSpec, key: str, index: int, chunk) -> None:
        path = self._chunk_path(key, index)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                chunk.tofile(fh)
            os.replace(tmp, path)
            self.bytes_written += chunk.itemsize * len(chunk)
            if key not in self._meta_written:
                if len(self._meta_written) >= MAX_KEY_MEMO:
                    self._meta_written.clear()
                self._meta_written.add(key)
                meta = path.parent / "meta.json"
                if not meta.exists():
                    meta.write_text(
                        json.dumps(
                            {**spec.describe(), "chunk_pairs": self.chunk_pairs},
                            indent=2,
                            sort_keys=True,
                        )
                        + "\n"
                    )
        except OSError:
            # A full or read-only disk must not fail the simulation.
            pass

    # -- compile layer --------------------------------------------------

    def _compile_through(self, spec: TraceSpec, key: str, index: int) -> array:
        """Compile chunks up to and including ``index``, remembering
        every chunk produced on the way."""
        producer = self._producers.pop(key, None)
        if producer is None or producer[1] > index:
            producer = (spec.generator(), 0)
        iterator, next_index = producer
        chunk_pairs = self.chunk_pairs
        chunk = None
        while next_index <= index:
            chunk = compile_chunk(iterator, chunk_pairs)
            self.compiles += 1
            self.bytes_compiled += chunk.itemsize * len(chunk)
            self._remember((key, next_index), chunk)
            self._store_disk(spec, key, next_index, chunk)
            next_index += 1
        producers = self._producers
        producers[key] = (iterator, next_index)
        while len(producers) > MAX_PRODUCERS:
            producers.popitem(last=False)
        return chunk

    # -- inspection / maintenance ---------------------------------------

    def counters(self) -> dict[str, int]:
        return {
            "mem_hits": self.mem_hits,
            "disk_hits": self.disk_hits,
            "compiles": self.compiles,
            "evictions": self.evictions,
            "bytes_compiled": self.bytes_compiled,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }

    def register_stats(self, group) -> None:
        """Register the store's counters into a stats tree group."""
        group.stat("mem_hits", lambda: self.mem_hits, "chunks served from the in-process LRU")
        group.stat("disk_hits", lambda: self.disk_hits, "chunks loaded from the on-disk store")
        group.stat("compiles", lambda: self.compiles, "chunks compiled from generators")
        group.stat("evictions", lambda: self.evictions, "chunks dropped by the LRU")
        group.stat("bytes_compiled", lambda: self.bytes_compiled, "bytes produced by the compile layer")
        group.stat("bytes_read", lambda: self.bytes_read, "bytes loaded from disk")
        group.stat("bytes_written", lambda: self.bytes_written, "bytes persisted to disk")

    def clear_memory(self) -> None:
        """Drop the LRU and producers (counters are kept)."""
        self._chunks.clear()
        self._lists.clear()
        self._producers.clear()
        self._keys.clear()
        self._meta_written.clear()

    @classmethod
    def list_disk(cls) -> list[dict]:
        """Inventory of the on-disk store, one row per trace."""
        root = cls.disk_dir()
        if root is None or not root.is_dir():
            return []
        rows = []
        for trace_dir in sorted(root.glob("??/*")):
            if not trace_dir.is_dir():
                continue
            chunk_files = sorted(trace_dir.glob("*.i64"))
            meta_path = trace_dir / "meta.json"
            meta = {}
            if meta_path.exists():
                try:
                    meta = json.loads(meta_path.read_text())
                except (OSError, json.JSONDecodeError):
                    meta = {}
            rows.append(
                {
                    "key": trace_dir.name,
                    "chunks": len(chunk_files),
                    "bytes": sum(p.stat().st_size for p in chunk_files),
                    **{
                        k: meta[k]
                        for k in ("name", "kind", "base", "seed", "chunk_pairs")
                        if k in meta
                    },
                }
            )
        return rows

    @classmethod
    def purge_disk(cls) -> int:
        """Delete every on-disk trace; returns the number removed."""
        root = cls.disk_dir()
        if root is None or not root.is_dir():
            return 0
        removed = 0
        for trace_dir in root.glob("??/*"):
            if not trace_dir.is_dir():
                continue
            for path in trace_dir.iterdir():
                path.unlink(missing_ok=True)
            trace_dir.rmdir()
            removed += 1
        for fanout in root.glob("??"):
            try:
                fanout.rmdir()
            except OSError:
                pass
        return removed


_STORE: TraceStore | None = None


def get_store() -> TraceStore:
    """The process-wide trace store (created on first use)."""
    global _STORE
    if _STORE is None:
        _STORE = TraceStore()
    return _STORE


def reset_store() -> TraceStore:
    """Replace the process-wide store (tests; chunking knob changes)."""
    global _STORE
    _STORE = TraceStore()
    return _STORE
